//! Shared collective plans: the tag partition and the binomial-tree step
//! generator used by *every* collective path — the host-driven trees in
//! `mpiq-mpi::collectives`, the script-level fallback runner, and the
//! NIC-firmware offload engine. One generator means an offloaded rank and
//! a fallen-back rank emit byte-identical wire patterns and therefore
//! interoperate mid-collective (e.g. when one node's ALPU is quarantined
//! and its neighbours' are not).
//!
//! # Tag partition
//!
//! Collective traffic runs on the internal context with tags in the upper
//! half of the 16-bit tag space (`0x8000 |`), leaving 15 bits. The old
//! scheme hashed `instance * 97 + k` into those 15 bits, which collides as
//! soon as a message index `k` reaches 97 — exactly what happens at ≥ 98
//! ranks, where per-rank tags use `k = 2 + rank`. [`ctag`] instead
//! *partitions* the space: each of [`INSTANCES`] instance slots owns a
//! contiguous block of [`K_SPAN`] message indices, so distinct in-flight
//! instances can never produce the same tag (scripts are sequential, so
//! only a couple of instances overlap in flight; 31 slots is far more
//! than the 2 the runtime needs).
//!
//! Message-index (`k`) assignment, fixed across the codebase:
//!
//! * `k = 0` — broadcast/down phase of a tree,
//! * `k = 1` — reduce/up phase of a tree,
//! * `k = 2 + rank` — per-rank tags (gather/scatter/alltoall).
//!
//! With `K_SPAN = 1056` the largest per-rank index at the target scale
//! (n = 1024 → `k = 1025`) fits with headroom; `31 * 1056 = 32736`
//! blocks fit in the 15-bit space with 32 codes to spare.

use mpiq_net::NodeId;

/// Context id collective traffic runs on. This must equal the MPI layer's
/// `CTX_INTERNAL`; `mpiq-nic` cannot depend on `mpiq-mpi`, so the value is
/// duplicated here and pinned by a test on the MPI side.
pub const COLL_CTX: u16 = 0;

/// Message-index span owned by each instance slot.
pub const K_SPAN: u16 = 1056;

/// Number of instance slots the 15-bit space is partitioned into.
pub const INSTANCES: u16 = 31;

/// Collision-free collective tag for `instance`, message index `k`.
///
/// Distinct instance slots (`instance mod INSTANCES`) map to disjoint
/// `K_SPAN`-sized blocks, so no two in-flight collectives with distinct
/// slots can collide, for any pair of message indices.
pub fn ctag(instance: u16, k: u16) -> u16 {
    assert!(k < K_SPAN, "collective message index {k} out of range");
    0x8000 | ((instance % INSTANCES) * K_SPAN + k)
}

/// The collectives the NIC firmware can run without host round-trips.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollOp {
    /// Zero-payload allreduce: up-tree then down-tree, root 0.
    Barrier,
    /// Binomial-tree broadcast from a root.
    Bcast,
    /// Reduce-to-0 then broadcast-from-0 (message pattern only; the
    /// combining arithmetic is not modeled).
    Allreduce,
    /// Fault-tolerant agreement on a failed-rank bitmask (ULFM
    /// `MPI_Comm_agree` shape). All-exchange rather than a tree: a tree
    /// edge through a dead rank would sever mask propagation, while the
    /// all-exchange plan keeps every pair of survivors directly
    /// connected. The mask itself rides in `payload_len` — the only data
    /// plane this simulator has — so `len` here is the *seed* mask and
    /// the firmware/fallback runner OR in everything they learn.
    Agree,
}

/// Direction of one collective step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dir {
    /// Transmit to `peer`.
    Send,
    /// Wait for a message from `peer`.
    Recv,
}

/// One point-to-point step of a collective, in dependency order: a rank's
/// steps must complete in sequence for the tree to make progress.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CollStep {
    /// Send or receive.
    pub dir: Dir,
    /// The absolute peer rank.
    pub peer: u32,
    /// Matching tag, from [`ctag`].
    pub tag: u16,
    /// Payload length in bytes.
    pub len: u32,
}

/// Steps of the binomial-tree reduce phase (`k = 1`) for rank `me` of
/// `n`, rooted at `root`: receive from each child in ascending mask
/// order, then send the combined value to the parent (the MPICH
/// `MPI_Reduce` pattern).
pub fn reduce_steps(me: u32, n: u32, root: u32, len: u32, instance: u16) -> Vec<CollStep> {
    assert!(me < n && root < n);
    let mut steps = Vec::new();
    if n <= 1 {
        return steps;
    }
    let relative = (me + n - root) % n;
    let tag = ctag(instance, 1);
    let mut mask = 1u32;
    while mask < n {
        if relative & mask == 0 {
            let src_rel = relative | mask;
            if src_rel < n {
                let peer = (src_rel + root) % n;
                steps.push(CollStep { dir: Dir::Recv, peer, tag, len });
            }
        } else {
            // De-rotate the parent's relative rank back into absolute
            // rank space through `root`.
            let peer = ((relative & !mask) + root) % n;
            steps.push(CollStep { dir: Dir::Send, peer, tag, len });
            break;
        }
        mask <<= 1;
    }
    steps
}

/// Steps of the binomial-tree broadcast phase (`k = 0`) for rank `me` of
/// `n`, rooted at `root`: receive once from the parent, then forward to
/// each child in descending mask order (the MPICH `MPI_Bcast` pattern).
///
/// Both the parent and the child are computed in *relative* rank space
/// and de-rotated through `root` explicitly — `((relative ± mask) + root)
/// % n` — rather than mixing absolute and relative arithmetic, so the
/// tree shape is manifestly root-invariant (see the shape-oracle tests).
pub fn bcast_steps(me: u32, n: u32, root: u32, len: u32, instance: u16) -> Vec<CollStep> {
    assert!(me < n && root < n);
    let mut steps = Vec::new();
    if n <= 1 {
        return steps;
    }
    let relative = (me + n - root) % n;
    let tag = ctag(instance, 0);
    let mut mask = 1u32;
    while mask < n {
        if relative & mask != 0 {
            // `relative & mask != 0` implies `relative >= mask`.
            let peer = ((relative - mask) + root) % n;
            steps.push(CollStep { dir: Dir::Recv, peer, tag, len });
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if relative + mask < n {
            let peer = ((relative + mask) + root) % n;
            steps.push(CollStep { dir: Dir::Send, peer, tag, len });
        }
        mask >>= 1;
    }
    steps
}

/// Steps of one fault-tolerant agreement sweep for rank `me` of `n`:
/// send the local failed-set mask to every other rank on this rank's
/// per-rank tag (`k = 2 + me`), then collect every other rank's mask
/// from *its* per-rank tag (`k = 2 + peer`), both in ascending peer
/// order. Sends come first so a rank never blocks its own contribution
/// behind a recv from a rank that may be dead.
///
/// The mask is a `u16`, one bit per world rank, so agreement is capped
/// at 16 ranks — far above the rank counts recovery scenarios run at,
/// and small enough that the mask-as-`payload_len` stays below the
/// eager threshold (offload and host fallback then use the same wire
/// protocol for every frame).
pub fn agree_steps(me: u32, n: u32, len: u32, instance: u16) -> Vec<CollStep> {
    assert!(me < n);
    assert!(n <= 16, "agreement mask is one u16 bit per rank");
    let mut steps = Vec::new();
    for peer in (0..n).filter(|&p| p != me) {
        steps.push(CollStep { dir: Dir::Send, peer, tag: ctag(instance, 2 + me as u16), len });
    }
    for peer in (0..n).filter(|&p| p != me) {
        steps.push(CollStep {
            dir: Dir::Recv,
            peer,
            tag: ctag(instance, 2 + peer as u16),
            len,
        });
    }
    steps
}

/// The full step list for rank `me` of `n` in one collective instance.
///
/// `root` is ignored for [`CollOp::Barrier`] and [`CollOp::Allreduce`]
/// (their trees root at 0). A single `instance` covers both phases of an
/// allreduce — the reduce phase uses `k = 1` and the broadcast phase
/// `k = 0`, so they cannot collide within the instance.
pub fn steps(op: CollOp, me: u32, n: u32, root: u32, len: u32, instance: u16) -> Vec<CollStep> {
    match op {
        CollOp::Bcast => bcast_steps(me, n, root, len, instance),
        CollOp::Agree => agree_steps(me, n, len, instance),
        CollOp::Barrier | CollOp::Allreduce => {
            let len = if op == CollOp::Barrier { 0 } else { len };
            let mut s = reduce_steps(me, n, 0, len, instance);
            s.extend(bcast_steps(me, n, 0, len, instance));
            s
        }
    }
}

/// Node a rank lives on when every node runs one rank — the only layout
/// the firmware offload engine accepts (multi-rank nodes decline to the
/// host path).
pub fn peer_node(rank: u32) -> NodeId {
    rank as NodeId
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    /// The pre-fix hash, reconstructed for the regression test.
    fn old_ctag(instance: u16, k: u16) -> u16 {
        0x8000 | ((instance.wrapping_mul(97).wrapping_add(k)) & 0x7FFF)
    }

    /// The old `*97` hash mis-matches two overlapping collectives as soon
    /// as a message index reaches 97 — i.e. at ≥ 98 ranks, where
    /// per-rank tags use `k = 2 + rank` (rank 97 → k = 99). Instance 1's
    /// rank-97 tag equals instance 2's rank-0 tag.
    #[test]
    fn old_hash_collides_at_98_ranks_new_partition_does_not() {
        // k = 99 is the per-rank index of rank 97, first reached with 98
        // ranks; k = 2 is rank 0's index in the neighbouring instance.
        assert_eq!(old_ctag(1, 99), old_ctag(2, 2), "old hash collision");
        assert_ne!(ctag(1, 99), ctag(2, 2), "partitioned tags must differ");
    }

    /// The partition is a bijection over its whole domain: all
    /// `INSTANCES * K_SPAN` (instance, k) pairs yield distinct tags with
    /// the collective bit set.
    #[test]
    fn ctag_is_bijective_over_the_partition() {
        let mut seen = HashSet::new();
        for i in 0..INSTANCES {
            for k in 0..K_SPAN {
                let t = ctag(i, k);
                assert!(t & 0x8000 != 0, "collective bit missing on {t:#x}");
                assert!(seen.insert(t), "collision at instance {i}, k {k}");
            }
        }
        assert_eq!(seen.len(), (INSTANCES as usize) * (K_SPAN as usize));
    }

    /// Exhaustive in-flight-pair check at n = 1024: for every pair of
    /// distinct instance slots, no tag produced by one (over the full
    /// index range a 1024-rank collective can use, k ≤ 2 + 1023) equals
    /// any tag produced by the other.
    #[test]
    fn no_instance_pair_collides_at_1024_ranks() {
        let k_max = 2 + 1023u16; // largest per-rank index at n = 1024
        assert!(k_max < K_SPAN);
        let mut owner: HashMap<u16, u16> = HashMap::new();
        for i in 0..INSTANCES {
            for k in 0..=k_max {
                if let Some(&j) = owner.get(&ctag(i, k)) {
                    panic!("instances {j} and {i} collide at k {k}");
                }
                owner.insert(ctag(i, k), i);
            }
        }
    }

    /// Collect every rank's steps for one op and return (sends, recvs) as
    /// (from, to, tag, len) tuples.
    fn edges(
        op: CollOp,
        n: u32,
        root: u32,
        len: u32,
        instance: u16,
    ) -> (Vec<(u32, u32, u16, u32)>, Vec<(u32, u32, u16, u32)>) {
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for me in 0..n {
            for s in steps(op, me, n, root, len, instance) {
                match s.dir {
                    Dir::Send => sends.push((me, s.peer, s.tag, s.len)),
                    Dir::Recv => recvs.push((s.peer, me, s.tag, s.len)),
                }
            }
        }
        (sends, recvs)
    }

    /// MPICH-shape oracle for bcast: every non-root rank receives exactly
    /// once, the root receives nothing, every send pairs with exactly one
    /// receive, and the send edges form a tree rooted at `root` reaching
    /// all ranks. Swept over non-power-of-two sizes and all roots — this
    /// is the oracle for the non-zero-root child-targeting bug class.
    #[test]
    fn bcast_shape_oracle_all_roots() {
        for n in 2..=33u32 {
            for root in 0..n {
                let (sends, recvs) = edges(CollOp::Bcast, n, root, 64, 5);
                let mut recv_count = vec![0u32; n as usize];
                for &(_, to, _, _) in &recvs {
                    recv_count[to as usize] += 1;
                }
                assert_eq!(recv_count[root as usize], 0, "n={n} root={root}");
                for (r, &c) in recv_count.iter().enumerate() {
                    if r as u32 != root {
                        assert_eq!(c, 1, "n={n} root={root}: rank {r} receives {c} times");
                    }
                }
                // Every send matched by exactly one receive on the same
                // (from, to, tag, len) edge.
                let mut s = sends.clone();
                let mut r = recvs.clone();
                s.sort_unstable();
                r.sort_unstable();
                assert_eq!(s, r, "n={n} root={root}: unmatched edges");
                // The send edges reach every rank from the root.
                let mut reached = HashSet::from([root]);
                let mut frontier = vec![root];
                while let Some(v) = frontier.pop() {
                    for &(from, to, _, _) in &sends {
                        if from == v && reached.insert(to) {
                            frontier.push(to);
                        }
                    }
                }
                assert_eq!(
                    reached.len(),
                    n as usize,
                    "n={n} root={root}: bcast tree does not span"
                );
            }
        }
    }

    /// Reduce oracle: every non-root sends exactly once, the root sends
    /// nothing, and the up-edges reach the root from every rank.
    #[test]
    fn reduce_shape_oracle_all_roots() {
        for n in 2..=33u32 {
            for root in 0..n {
                let mut sends = Vec::new();
                let mut recvs = Vec::new();
                for me in 0..n {
                    for s in reduce_steps(me, n, root, 64, 6) {
                        match s.dir {
                            Dir::Send => sends.push((me, s.peer)),
                            Dir::Recv => recvs.push((s.peer, me)),
                        }
                    }
                }
                let mut send_count = vec![0u32; n as usize];
                for &(from, _) in &sends {
                    send_count[from as usize] += 1;
                }
                assert_eq!(send_count[root as usize], 0, "n={n} root={root}");
                for (r, &c) in send_count.iter().enumerate() {
                    if r as u32 != root {
                        assert_eq!(c, 1, "n={n} root={root}: rank {r} sends {c} times");
                    }
                }
                sends.sort_unstable();
                recvs.sort_unstable();
                assert_eq!(sends, recvs, "n={n} root={root}: unmatched edges");
                // Following parent edges from any rank terminates at root.
                let parent: HashMap<u32, u32> = sends.iter().copied().collect();
                for mut v in 0..n {
                    let mut hops = 0;
                    while v != root {
                        v = parent[&v];
                        hops += 1;
                        assert!(hops <= n, "n={n} root={root}: cycle in reduce tree");
                    }
                }
            }
        }
    }

    /// Barrier and allreduce pair every send with a receive globally and
    /// use a single instance for both phases (distinct per-phase k).
    #[test]
    fn barrier_and_allreduce_edges_pair_up() {
        for n in [2u32, 3, 7, 16, 33] {
            for op in [CollOp::Barrier, CollOp::Allreduce] {
                let (mut s, mut r) = edges(op, n, 0, 128, 9);
                if op == CollOp::Barrier {
                    assert!(s.iter().all(|&(_, _, _, l)| l == 0), "barrier carries payload");
                }
                s.sort_unstable();
                r.sort_unstable();
                assert_eq!(s, r, "op={op:?} n={n}: unmatched edges");
                let tags: HashSet<u16> = s.iter().map(|&(_, _, t, _)| t).collect();
                assert_eq!(tags.len(), 2, "up and down phases share an instance");
                assert_eq!(tags, HashSet::from([ctag(9, 0), ctag(9, 1)]));
            }
        }
    }

    /// Agree oracle: every rank exchanges exactly once with every other
    /// rank in both directions, each send pairs with exactly one recv on
    /// the sender's per-rank tag, and all sends precede all recvs so no
    /// rank's contribution waits behind a possibly-dead peer.
    #[test]
    fn agree_is_a_complete_exchange_with_sends_first() {
        for n in [2u32, 3, 5, 8, 16] {
            let (mut s, mut r) = edges(CollOp::Agree, n, 0, 0b101, 4);
            assert_eq!(s.len(), (n * (n - 1)) as usize);
            s.sort_unstable();
            r.sort_unstable();
            assert_eq!(s, r, "n={n}: unmatched edges");
            for &(from, to, tag, _) in &s {
                assert_ne!(from, to);
                assert_eq!(tag, ctag(4, 2 + from as u16), "mask travels on sender's tag");
            }
            for me in 0..n {
                let st = agree_steps(me, n, 0, 4);
                let first_recv = st.iter().position(|x| x.dir == Dir::Recv).unwrap();
                assert!(
                    st[..first_recv].iter().all(|x| x.dir == Dir::Send),
                    "n={n} me={me}: send phase must fully precede recv phase"
                );
            }
        }
    }

    /// Steps are in dependency order: all of a rank's receives for the
    /// reduce phase precede its reduce send, which precedes any bcast
    /// step — the order the sequential offload engine relies on.
    #[test]
    fn steps_are_in_dependency_order() {
        for n in [4u32, 13, 32] {
            for me in 0..n {
                let s = steps(CollOp::Allreduce, me, n, 0, 32, 3);
                let up = ctag(3, 1);
                let mut seen_up_send = false;
                let mut seen_down = false;
                for st in s {
                    if st.tag == up {
                        assert!(!seen_down, "up-phase step after down phase");
                        if st.dir == Dir::Send {
                            seen_up_send = true;
                        } else {
                            assert!(!seen_up_send, "child recv after parent send");
                        }
                    } else {
                        seen_down = true;
                    }
                }
            }
        }
    }
}
