//! Overload soak driver.
//!
//! Usage:
//!     soak [--scenario incast|hot-receiver|credit-starve|chaos|all]
//!          [--seeds N | --seed S] [--senders N] [--msgs N] [--size B]
//!          [--credits N] [--max-unexpected N] [--eager-buffer B]
//!          [--alpu] [--faults seed=N,drop=P,...] [--deadline-ms T]
//!          [--mtbf-us T] [--mttr-us T] [--check-determinism] [--threads N]
//!          [--out PATH] [--server ADDR] [--curve] [--chaos-curve]
//!
//! Runs each (scenario, seed) pair under the deadlock watchdog, prints
//! one CSV row per run, and exits nonzero with the watchdog's diagnosis
//! on a stall. The flags assemble a [`RunSpec`]; with `--server ADDR`
//! the spec runs on a `simd` daemon instead of in-process (identical
//! bytes on stdout; resubmissions hit the daemon's memo cache).
//! `--check-determinism` repeats every run and demands a bit-identical
//! statistics dump. `--curve`, `--chaos-curve` and `--recovery-curve`
//! are exploratory sweeps that always run locally, as does `--check`
//! (the tracked-baseline gate).

use mpiq_bench::ascii_plot::{render, Series};
use mpiq_bench::cli::Cli;
use mpiq_bench::service;
use mpiq_bench::spec::{flags, BenchSpec, ResultRow, RunSpec};
use mpiq_bench::{run_soak, Scenario, SoakConfig};
use mpiq_dessim::Time;
use std::io::Write as _;

/// Compare current rows against a tracked baseline (a previous `--out`
/// dump). Simulated time is deterministic, so `runtime_ns` — and
/// `recovery_ns` where restarts ran — drifting past the band in either
/// direction is a failure. Baseline rows without a matching
/// (scenario, seed) run are skipped; matching nothing is an error.
fn check_baseline(
    baseline: &str,
    rows: &[ResultRow],
    tolerance_pct: f64,
) -> Result<Vec<String>, String> {
    use mpiq_bench::jsonlint::{self, Json};
    let doc = jsonlint::parse(baseline).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let base_rows = doc.as_array().ok_or("baseline is not a JSON array of rows")?;
    let mut failures = Vec::new();
    let mut matched = 0usize;
    for r in rows {
        let scenario = r.text("scenario").unwrap_or_default();
        let seed = r.num("seed").unwrap_or(-1.0) as u64;
        let senders = r.num("senders").unwrap_or(0.0) as u64;
        let Some(base) = base_rows.iter().find(|b| {
            b.get("scenario").and_then(Json::as_str) == Some(scenario.as_str())
                && b.get("seed").and_then(Json::as_u64) == Some(seed)
                && b.get("senders").and_then(Json::as_u64) == Some(senders)
        }) else {
            continue;
        };
        matched += 1;
        for field in ["runtime_ns", "recovery_ns"] {
            let current = r.num(field).unwrap_or(0.0) as u64;
            let Some(base_v) = base.get(field).and_then(Json::as_u64) else {
                continue;
            };
            if base_v == 0 && current == 0 {
                continue;
            }
            if base_v == 0 {
                failures.push(format!(
                    "{scenario} seed {seed}: {field} went {current} vs baseline 0"
                ));
                continue;
            }
            let drift = (current as f64 / base_v as f64 - 1.0) * 100.0;
            if drift.abs() > tolerance_pct {
                failures.push(format!(
                    "{scenario} seed {seed}: {field} {current} drifts {drift:+.1}% from baseline \
                     {base_v} (tolerance ±{tolerance_pct}%)"
                ));
            }
        }
    }
    if matched == 0 {
        return Err("no baseline row matches any current run — \
                    regenerate the baseline with --out"
            .to_string());
    }
    Ok(failures)
}

fn main() {
    let cli = Cli::parse("soak", "overload soak scenarios under the deadlock watchdog", flags("soak"));
    let spec = RunSpec::from_cli("soak", &cli).unwrap_or_else(|e| {
        eprintln!("soak: {e}");
        std::process::exit(2);
    });
    let BenchSpec::Soak {
        senders, msgs, size, credits, max_unexpected, eager_buffer, alpu, mttr_us, ..
    } = spec.bench.clone()
    else {
        unreachable!()
    };
    let parallelism = spec.threads;

    if cli.has("curve") {
        incast_curve(msgs, size, credits, max_unexpected, eager_buffer, alpu, parallelism);
        return;
    }
    if cli.has("chaos-curve") {
        chaos_curve(senders, msgs, size, alpu, parallelism, mttr_us);
        return;
    }
    if cli.has("recovery-curve") {
        recovery_curve(senders, msgs, size, parallelism);
        return;
    }

    let result = service::run_for_cli("soak", cli.common.server.as_deref(), &spec)
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
    let ok = service::emit(&result, cli.common.out.as_deref().map(std::path::Path::new))
        .expect("write json");

    if let Some(path) = cli.get_str("check") {
        let tolerance: f64 = cli.get("tolerance", 10.0);
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        match check_baseline(&baseline, &result.rows, tolerance) {
            Ok(failures) if failures.is_empty() => {
                eprintln!("soak: all runs within ±{tolerance}% of {path}");
            }
            Ok(failures) => {
                for f in &failures {
                    eprintln!("soak DRIFT: {f}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("soak: baseline check failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if !ok {
        std::process::exit(1);
    }
}

/// Sweep the incast fan-in and plot how backpressure absorbs the load:
/// runtime grows with senders while the unexpected high-water stays
/// pinned at the bound.
fn incast_curve(
    msgs: u32,
    size: u32,
    credits: u32,
    max_unexpected: u32,
    eager_buffer: u64,
    alpu: bool,
    parallelism: usize,
) {
    let fanin = [2u32, 4, 8, 16, 32, 64];
    let mut runtime = Vec::new();
    let mut refused = Vec::new();
    let mut hw = Vec::new();
    println!("senders,runtime_us,admission_refused,unexpected_hw,retransmits");
    for &n in &fanin {
        let mut cfg = SoakConfig::new(Scenario::Incast, 1);
        cfg.senders = n;
        cfg.msgs = msgs;
        cfg.msg_size = size;
        cfg.eager_credits = credits;
        cfg.max_unexpected = max_unexpected;
        cfg.eager_buffer_bytes = eager_buffer;
        cfg.alpu = alpu;
        cfg.deadline = Time::from_ms(2_000);
        cfg.parallelism = parallelism;
        let out = run_soak(&cfg).unwrap_or_else(|d| panic!("incast {n} stalled:\n{d}"));
        println!(
            "{n},{:.1},{},{},{}",
            out.runtime.as_ns_f64() / 1e3,
            out.admission_refused,
            out.unexpected_highwater,
            out.retransmits
        );
        runtime.push((n as f64, out.runtime.as_ns_f64() / 1e3));
        refused.push((n as f64, out.admission_refused as f64));
        hw.push((n as f64, out.unexpected_highwater as f64));
    }
    let plot = render(
        &[
            Series {
                label: "runtime (us)".into(),
                glyph: '*',
                points: runtime,
            },
            Series {
                label: "admission refusals".into(),
                glyph: 'r',
                points: refused,
            },
            Series {
                label: format!("unexpected high-water (bound {max_unexpected})"),
                glyph: 'u',
                points: hw,
            },
        ],
        72,
        20,
        "senders (incast fan-in)",
        "",
    );
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{plot}");
    let _ = writeln!(
        err,
        "incast degrades by protocol: load sheds into admission refusals and \
         retransmits while the unexpected queue stays at its bound"
    );
}

/// Sweep the crashed node's MTTR with restarts armed: how long the node
/// stays down governs both how many operations fail typed while it is
/// gone (availability) and the crash-to-recovered span. Four seeded
/// storms per point; `recovery_us` reports the p50 and max across the
/// seeds — time-to-recovery is dominated by the scheduled MTTR plus the
/// keepalive declaration and the retry backoff ladder, so the spread is
/// the storm's contribution.
fn recovery_curve(senders: u32, msgs: u32, size: u32, parallelism: usize) {
    let mttrs_us = [400u64, 600, 800, 1200, 1600, 2400];
    const CURVE_SEEDS: [u64; 4] = [1, 2, 3, 5];
    let mut availability = Vec::new();
    let mut recovery = Vec::new();
    println!("node_mttr_us,availability,recovery_us_p50,recovery_us_max,ops_rank_failed,epoch_fences");
    for &mttr in &mttrs_us {
        let mut avail_sum = 0.0f64;
        let (mut failed, mut fences) = (0u64, 0u64);
        let mut spans_us: Vec<f64> = Vec::new();
        for &seed in &CURVE_SEEDS {
            let mut cfg = SoakConfig::new(Scenario::Chaos, seed);
            cfg.senders = senders;
            cfg.msgs = msgs;
            cfg.msg_size = size;
            cfg.parallelism = parallelism;
            cfg.deadline = Time::from_ms(2_000);
            cfg.node_mttr = Some(Time::from_us(mttr));
            let out = run_soak(&cfg)
                .unwrap_or_else(|d| panic!("recovery mttr={mttr}us seed={seed} stalled:\n{d}"));
            avail_sum += out.availability(cfg.planned_ops());
            spans_us.push(out.recovery_ns as f64 / 1e3);
            failed += out.ops_rank_failed;
            fences += out.epoch_fences;
        }
        spans_us.sort_by(|a, b| a.total_cmp(b));
        let p50 = spans_us[spans_us.len() / 2];
        let max = spans_us[spans_us.len() - 1];
        let avail = avail_sum / CURVE_SEEDS.len() as f64;
        println!("{mttr},{avail:.4},{p50:.1},{max:.1},{failed},{fences}");
        availability.push((mttr as f64, avail));
        recovery.push((mttr as f64, p50));
    }
    // Normalise the recovery span so both series share the [0, 1] axis.
    let rmax = recovery.iter().map(|&(_, r)| r).fold(f64::MIN, f64::max);
    let recovery_rel: Vec<(f64, f64)> = recovery.iter().map(|&(m, r)| (m, r / rmax)).collect();
    let plot = render(
        &[
            Series {
                label: "availability (fraction of ops ok)".into(),
                glyph: 'a',
                points: availability,
            },
            Series {
                label: format!("crash-to-recovered p50 (fraction of {rmax:.0} us)"),
                glyph: 'r',
                points: recovery_rel,
            },
        ],
        72,
        20,
        "node MTTR (us)",
        "",
    );
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{plot}");
    let _ = writeln!(
        err,
        "recovery time tracks the MTTR almost linearly (the detector and the \
         retry ladder add a near-constant tail); availability falls as the \
         node stays down longer, because the survivors' reconnect retries \
         keep paying typed failures until the rebirth"
    );
}

/// Sweep the chaos scenario's link-flap MTBF: stormier fabrics (smaller
/// MTBF) cost retransmits and — once outages outlast the retry budget —
/// typed failures. Availability = fraction of planned operations that
/// completed without a `RankFailed`; goodput = successful operations per
/// simulated millisecond.
fn chaos_curve(senders: u32, msgs: u32, size: u32, alpu: bool, parallelism: usize, mttr_us: u64) {
    // One storm realisation is noise — a single flap landing on or off a
    // round's critical path swings the runtime — so every point averages
    // four seeded storms at the same MTBF.
    let mtbfs_us = [25u64, 50, 100, 200, 400, 800];
    const CURVE_SEEDS: [u64; 4] = [1, 2, 3, 5];
    let mut availability = Vec::new();
    let mut goodput = Vec::new();
    println!("mtbf_us,availability,goodput_ops_per_ms,ops_rank_failed,links_dead,retransmits");
    for &mtbf in &mtbfs_us {
        let (mut avail_sum, mut gput_sum) = (0.0f64, 0.0f64);
        let (mut failed, mut dead, mut retx) = (0u64, 0u64, 0u64);
        for &seed in &CURVE_SEEDS {
            let mut cfg = SoakConfig::new(Scenario::Chaos, seed);
            cfg.senders = senders;
            // Dense rounds (small inter-round gaps) so outage windows
            // actually overlap live traffic; 8 sparse rounds mostly miss
            // the storm and the curve degenerates to noise.
            cfg.msgs = msgs.max(48);
            cfg.msg_size = size;
            cfg.alpu = alpu;
            cfg.parallelism = parallelism;
            cfg.deadline = Time::from_ms(2_000);
            cfg.mtbf = Time::from_us(mtbf);
            cfg.mttr = Time::from_us(mttr_us);
            let out = run_soak(&cfg)
                .unwrap_or_else(|d| panic!("chaos mtbf={mtbf}us seed={seed} stalled:\n{d}"));
            let planned = cfg.planned_ops();
            avail_sum += out.availability(planned);
            let ok_ops = planned.saturating_sub(out.ops_rank_failed) as f64;
            gput_sum += ok_ops / (out.runtime.as_ns_f64() / 1e6);
            failed += out.ops_rank_failed;
            dead += out.links_dead;
            retx += out.retransmits;
        }
        let n = CURVE_SEEDS.len() as f64;
        let (avail, gput) = (avail_sum / n, gput_sum / n);
        println!("{mtbf},{avail:.4},{gput:.2},{failed},{dead},{retx}");
        availability.push((mtbf as f64, avail));
        goodput.push((mtbf as f64, gput));
    }
    // Normalise goodput so both series share the [0, 1] axis.
    let gmax = goodput.iter().map(|&(_, g)| g).fold(f64::MIN, f64::max);
    let goodput_rel: Vec<(f64, f64)> =
        goodput.iter().map(|&(m, g)| (m, g / gmax)).collect();
    let plot = render(
        &[
            Series {
                label: "availability (fraction of ops ok)".into(),
                glyph: 'a',
                points: availability,
            },
            Series {
                label: "goodput (fraction of storm-free)".into(),
                glyph: 'g',
                points: goodput_rel,
            },
        ],
        72,
        20,
        "mean time between link flaps (us)",
        "",
    );
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{plot}");
    let _ = writeln!(
        err,
        "both curves climb with MTBF: retransmit delay leaves the critical \
         path (goodput), and fewer storm-delayed operations are still in \
         flight when the scheduled crash lands (availability). Sub-budget \
         outages alone never cost a typed failure — go-back-N absorbs them."
    );
}
