//! Regenerates Table V: sizes and speeds of the unexpected-messages ALPU
//! prototypes, model estimates beside the published Xilinx results.

use mpiq_bench::cli::Cli;
use mpiq_fpga::{estimate, render_table, Variant};

fn main() {
    let _cli = Cli::parse("table5", "Table V: unexpected-messages ALPU sizes and speeds", &[]);
    print!("{}", render_table(Variant::Unexpected));
    println!();
    println!("Variant comparison at 256 cells / block 16:");
    let p = estimate(Variant::PostedReceive, 256, 16);
    let u = estimate(Variant::Unexpected, 256, 16);
    println!(
        "  posted FFs {} vs unexpected FFs {} — the difference is per-cell mask storage \
         (42 mask bits x 256 cells = {})",
        p.ffs,
        u.ffs,
        42 * 256
    );
}
