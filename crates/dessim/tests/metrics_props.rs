//! Property tests for the log2-bucket latency histograms: whatever the
//! sequence of recorded durations, the bucket counts must account for
//! every `record` call exactly once, each sample must land in the bucket
//! whose range covers it, and `merge` must behave like recording both
//! sample sets into one histogram.

use mpiq_dessim::metrics::BUCKETS;
use mpiq_dessim::{Histogram, Time};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn bucket_counts_sum_to_record_calls(samples in prop::collection::vec(0u64..1u64 << 50, 0..200)) {
        let mut h = Histogram::new();
        let mut sum = 0u64;
        let mut max = 0u64;
        for &ps in &samples {
            h.record(Time::from_ps(ps));
            sum += ps;
            max = max.max(ps);
        }
        let bucket_total: u64 = h.buckets().iter().sum();
        prop_assert_eq!(bucket_total, samples.len() as u64);
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum_ps(), sum);
        prop_assert_eq!(h.max_ps(), max);
    }

    #[test]
    fn every_sample_lands_in_its_covering_bucket(ps in 0u64..1u64 << 60) {
        let mut h = Histogram::new();
        h.record(Time::from_ps(ps));
        let i = Histogram::bucket_index(ps);
        prop_assert!(i < BUCKETS);
        prop_assert_eq!(h.buckets()[i], 1);
        // The bucket's floor is never above the sample, and the next
        // bucket's floor (when there is one) is strictly above it.
        prop_assert!(Histogram::bucket_floor(i) <= ps);
        if i + 1 < BUCKETS {
            prop_assert!(ps < Histogram::bucket_floor(i + 1));
        }
    }

    #[test]
    fn merge_equals_recording_both_sets(
        a in prop::collection::vec(0u64..1u64 << 40, 0..64),
        b in prop::collection::vec(0u64..1u64 << 40, 0..64),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &ps in &a {
            ha.record(Time::from_ps(ps));
            hall.record(Time::from_ps(ps));
        }
        for &ps in &b {
            hb.record(Time::from_ps(ps));
            hall.record(Time::from_ps(ps));
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        prop_assert_eq!(ha.sum_ps(), hall.sum_ps());
        prop_assert_eq!(ha.max_ps(), hall.max_ps());
        prop_assert_eq!(ha.buckets(), hall.buckets());
    }
}
