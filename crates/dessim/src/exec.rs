//! Execution cores for [`ShardedSim`]: the strategy that carries shards
//! through conservative lookahead windows.
//!
//! Both cores run the *same* windowed algorithm — plan a window bound
//! per shard (from the per-edge safe-time table under
//! [`WindowPolicy::PerEdge`], or one shared cap under
//! [`WindowPolicy::Global`]), execute every shard's in-window events,
//! swap cross-shard trays at a barrier, repeat. [`Sequential`] executes
//! all shards on the calling thread; [`Partitioned`] stripes them
//! across a scoped worker pool (`scoped_pool`). Because the window
//! schedule, per-shard event order, and barrier exchange order are all
//! independent of which OS thread carries a shard, the two cores — and
//! any worker count — produce bit-identical results.
//!
//! Shards live inside `Mutex` cells during a run. The locks are never
//! contended (each shard is touched by exactly one worker inside a
//! window, and only the driver touches them between windows); they exist
//! to give safe `&mut` access from the worker that owns the stripe. The
//! per-shard window bounds are broadcast through a table of relaxed
//! atomics written only by the driver between barriers.
//!
//! Caveat: a panic inside a component handler under [`Partitioned`]
//! leaves other workers parked at the window barrier; lookahead
//! violations are therefore asserted on the driver thread (at the
//! barrier tray swap) so they surface as ordinary panics in both cores.

use crate::shard::{exchange_trays, Shard, ShardedSim};
use crate::time::Time;
use crate::window::{SafeTimeTable, WindowPolicy};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// A strategy for running a [`ShardedSim`] to a horizon.
pub trait ExecCore {
    /// Execute every event with `time <= horizon` (or until a component
    /// requests a stop, honored at the next window barrier).
    fn run(&self, sim: &mut ShardedSim, horizon: Time);
}

/// Single-threaded core: the windowed algorithm with all shards on the
/// calling thread. This is what `threads = 1` selects, and the baseline
/// that `tests/parallel_determinism.rs` compares [`Partitioned`] against.
pub struct Sequential;

impl ExecCore for Sequential {
    fn run(&self, sim: &mut ShardedSim, horizon: Time) {
        run_windows(sim, horizon, 1);
    }
}

/// Multi-threaded core: shards striped over `threads` workers (the
/// driver doubles as worker zero). Thread count is clamped to the shard
/// count — extra threads would own empty stripes.
pub struct Partitioned {
    /// Total worker threads, including the driver. Values `<= 1` degrade
    /// to [`Sequential`] behavior.
    pub threads: usize,
}

impl ExecCore for Partitioned {
    fn run(&self, sim: &mut ShardedSim, horizon: Time) {
        run_windows(sim, horizon, self.threads.max(1));
    }
}

/// The shared windowed loop. `threads` includes the driver.
fn run_windows(sim: &mut ShardedSim, horizon: Time, threads: usize) {
    let nshards = sim.shards.len();
    if nshards == 0 {
        return;
    }
    let lookahead = sim.lookahead();
    let mut planner = match sim.window_policy() {
        WindowPolicy::Global => None,
        WindowPolicy::PerEdge => Some(SafeTimeTable::new(nshards, sim.topo.edges())),
    };
    let stride = threads.min(nshards).max(1);
    let extra = stride - 1;
    let cells: Vec<Mutex<Shard>> = sim.shards.drain(..).map(Mutex::new).collect();
    let topo = &sim.topo;
    // Per-shard window bounds for the round in flight. Written by the
    // driver strictly before the start barrier, read by workers strictly
    // after it; the barrier orders the accesses, so Relaxed suffices.
    let ends: Vec<AtomicU64> = (0..nshards).map(|_| AtomicU64::new(0)).collect();

    // One stripe of shards per worker: worker `w` owns shards
    // `w, w+stride, w+2*stride, ...`. The assignment is fixed for the
    // whole run, so a shard's events always execute on the same worker.
    let run_stripe = |w: usize| {
        for j in (w..cells.len()).step_by(stride) {
            let end = Time(ends[j].load(Ordering::Relaxed));
            cells[j]
                .lock()
                .expect("a worker panicked while running this shard")
                .run_window(topo, end);
        }
    };

    scoped_pool::run(
        extra,
        |w, _round| run_stripe(w),
        |pool| {
            let mut round = 0u64;
            let mut nexts = vec![0u64; nshards];
            loop {
                // Between windows only the driver is awake; these locks
                // are uncontended bookkeeping.
                let stopped = {
                    let guards = lock_all(&cells);
                    for (slot, g) in nexts.iter_mut().zip(guards.iter()) {
                        *slot = g.next_time().map_or(u64::MAX, |t| t.0);
                    }
                    guards.iter().any(|g| g.stop)
                };
                if stopped {
                    break;
                }
                let min_next = nexts.iter().copied().min().unwrap_or(u64::MAX);
                // Done when nothing at or below the horizon remains (the
                // top two u64 values are unreachable: see `plan_window`).
                if min_next >= u64::MAX - 1 || min_next > horizon.0 {
                    break;
                }
                match planner.as_mut() {
                    None => {
                        let end =
                            ShardedSim::plan_window(Some(Time(min_next)), lookahead, horizon)
                                .expect("pending event at or below the horizon");
                        for slot in &ends {
                            slot.store(end.0, Ordering::Relaxed);
                        }
                    }
                    Some(table) => {
                        let cap = horizon.0.saturating_add(1).min(u64::MAX - 1);
                        for (slot, &bound) in ends.iter().zip(table.bounds(&nexts)) {
                            slot.store(bound.min(cap), Ordering::Relaxed);
                        }
                    }
                }
                // All workers (and the driver, via the closure) execute
                // their stripes for [shard.floor, ends[shard]), then
                // meet back at the pool's completion barrier. The plan
                // value is only a round tag (kept off the shutdown
                // sentinel); the real bounds travel through `ends`.
                pool.step(round, || run_stripe(0));
                round = (round + 1) % (u64::MAX - 1);
                let mut guards = lock_all(&cells);
                let mut refs: Vec<&mut Shard> = guards.iter_mut().map(|g| &mut **g).collect();
                exchange_trays(&mut refs);
            }
        },
    );

    sim.shards = cells
        .into_iter()
        .map(|m| m.into_inner().expect("worker panic already propagated"))
        .collect();
}

fn lock_all(cells: &[Mutex<Shard>]) -> Vec<MutexGuard<'_, Shard>> {
    cells
        .iter()
        .map(|c| c.lock().expect("a worker panicked while running this shard"))
        .collect()
}
