//! Component-level fault domains, end to end.
//!
//! Where `fault_oracle.rs` stresses *message-level* faults (drops,
//! duplicates, corruption — transparently repaired by go-back-N) and
//! `overload.rs` stresses *resource-level* exhaustion, this suite covers
//! the third tier: *component-level* failures that are *not* repairable
//! and must surface as typed errors instead of hangs:
//!
//! * **crash-stop nodes** — a scheduled [`FaultEvent::NodeCrash`] kills a
//!   host and its NIC mid-collective; survivors get typed
//!   [`MpiError::RankFailed`] completions within the keepalive window and
//!   finish around the hole;
//! * **flapping links** — an outage shorter than the 16-retry budget is
//!   absorbed by resync (no spurious dead link), a longer one goes
//!   sticky-dead with typed failures (the satellite-1 regression pair);
//! * **partitions** — a stalled run under an active partition is
//!   diagnosed as [`StallKind::Partitioned`] with the exact groups, not
//!   misreported as a leak deadlock;
//! * **ALPU death** — the offload unit dies permanently and the firmware
//!   pins the software-fallback path, never re-engaging;
//! * **zero cost unarmed** — an empty schedule is byte-identical to
//!   never mentioning fault domains at all.

use mpiq::dessim::watchdog::StallKind;
use mpiq::dessim::{FaultEvent, FaultSchedule, Time};
use mpiq::mpi::script::{mark_log, status_log, StatusLog};
use mpiq::mpi::{AppProgram, Cluster, ClusterConfig, MpiError, Script};
use mpiq::nic::NicConfig;

/// Survivor workload for the crash tests: sleep past the crash instant,
/// run a barrier (the collective the dead rank should have joined), then
/// pinned-source point-to-point with every peer, recording the status of
/// each recv. Status record id = `me * 100 + src`.
fn crash_workload(ranks: u32, logs: &mut Vec<StatusLog>) -> Vec<Box<dyn AppProgram>> {
    let mut programs: Vec<Box<dyn AppProgram>> = Vec::new();
    for me in 0..ranks {
        let log = status_log();
        let mut b = Script::builder();
        b.sleep(Time::from_us(30));
        b.barrier();
        let mut pending = Vec::new();
        let mut recvs = Vec::new();
        for peer in (0..ranks).filter(|&p| p != me) {
            let r = b.irecv(Some(peer as u16), Some(500 + peer as u16), 512);
            recvs.push((r, peer));
            pending.push(r);
            pending.push(b.isend(peer, 500 + me as u16, 512));
        }
        b.wait_all(pending);
        for (r, peer) in recvs {
            b.status(r, me * 100 + peer);
        }
        b.mark(me);
        programs.push(Box::new(b.build(mark_log()).with_status_log(log.clone())));
        logs.push(log);
    }
    programs
}

/// A node crash in the middle of a barrier: the run must finish on both
/// engines — no hang, no panic — with typed `RankFailed` statuses on
/// every survivor's receive from the dead rank, inside the watchdog
/// deadline.
#[test]
fn crash_mid_collective_surfaces_typed_rank_failure() {
    const RANKS: u32 = 4;
    const DEAD: u32 = 2;
    for parallelism in [0, 2] {
        let sched: FaultSchedule = "crash@20us:node=2".parse().expect("spec grammar");
        let mut logs = Vec::new();
        let programs = crash_workload(RANKS, &mut logs);
        let cfg = ClusterConfig::builder(NicConfig::baseline())
            .fault_schedule(sched)
            .parallelism(parallelism)
            .build();
        let mut c = Cluster::new(cfg, programs);
        c.run_watched(Time::from_ms(50))
            .unwrap_or_else(|d| panic!("parallelism {parallelism}: stalled: {d}"));
        for me in (0..RANKS).filter(|&r| r != DEAD) {
            let log = logs[me as usize].borrow();
            let (_, st) = log
                .iter()
                .find(|(id, _)| *id == me * 100 + DEAD)
                .expect("recv-from-dead status recorded");
            assert_eq!(
                st.error,
                Some(MpiError::RankFailed { rank: DEAD as u16 }),
                "rank {me}: recv from crashed rank {DEAD} must fail typed"
            );
            assert!(st.rank_failed());
            // Survivor-to-survivor traffic is untouched.
            for peer in (0..RANKS).filter(|&p| p != me && p != DEAD) {
                let (_, st) = log
                    .iter()
                    .find(|(id, _)| *id == me * 100 + peer)
                    .expect("survivor recv status recorded");
                assert_eq!(st.error, None, "rank {me}: recv from live rank {peer}");
                assert_eq!(st.len, 512);
            }
        }
        let stats = c.stats();
        assert!(
            stats.sum_prefix("nic0.fault.peers_failed") > 0,
            "nic0 never declared the crashed peer dead"
        );
        assert_eq!(
            stats.sum_prefix(&format!("nic{DEAD}.fault.crashed")),
            1,
            "the crashed NIC must count its own crash-stop"
        );
    }
}

/// Bidirectional two-node traffic spanning a link outage. `down_for`
/// decides the story: shorter than the retry budget ⇒ resync and
/// deliver; longer ⇒ sticky dead link with typed failures. Returns
/// `(cluster, statuses_of_rank0_recv)`.
fn flap_run(down_for: Time) -> (Cluster, Vec<(u32, mpiq::mpi::MpiStatus)>) {
    let mut sched = FaultSchedule::new();
    sched.push(
        Time::from_us(10),
        FaultEvent::LinkFlap {
            a: 0,
            b: 1,
            down_for,
        },
    );
    let mut logs = Vec::new();
    let mut programs: Vec<Box<dyn AppProgram>> = Vec::new();
    for me in 0..2u32 {
        let peer = 1 - me;
        let log = status_log();
        let mut b = Script::builder();
        // Exchange 0 before the outage establishes the sequenced link.
        let r0 = b.irecv(Some(peer as u16), Some(100), 512);
        b.isend(peer, 100, 512);
        b.wait(r0);
        // Sleep into the outage (edge down from 10us), then issue the
        // rest mid-outage: their frames are refused at the wire and sit
        // in the go-back-N window until the edge heals — or the budget
        // runs out.
        b.sleep(Time::from_us(20));
        let mut pending = Vec::new();
        let mut recvs = vec![(r0, 0u16)];
        for i in 1..4u16 {
            let r = b.irecv(Some(peer as u16), Some(100 + i), 512);
            recvs.push((r, i));
            pending.push(r);
            pending.push(b.isend(peer, 100 + i, 512));
        }
        b.wait_all(pending);
        for (r, i) in recvs {
            b.status(r, i as u32);
        }
        b.mark(me);
        programs.push(Box::new(b.build(mark_log()).with_status_log(log.clone())));
        logs.push(log);
    }
    let cfg = ClusterConfig::builder(NicConfig::baseline())
        .fault_schedule(sched)
        .build();
    let mut c = Cluster::new(cfg, programs);
    c.run_watched(Time::from_ms(100))
        .unwrap_or_else(|d| panic!("flap run stalled: {d}"));
    let statuses = logs[0].borrow().clone();
    (c, statuses)
}

/// Satellite-1 regression, edge A: an outage well inside the 16-retry
/// budget (~1ms of backoff) must be ridden out by retransmission — every
/// message delivered, zero dead links, zero failed peers.
#[test]
fn short_flap_resyncs_without_rank_failure() {
    let (c, statuses) = flap_run(Time::from_us(120));
    let stats = c.stats();
    assert!(
        stats.sum_prefix("net.sched.edge_drops") > 0,
        "the flap never bit: test is vacuous"
    );
    assert!(
        stats.sum_prefix("nic0.link.retransmits") > 0,
        "outage absorbed without a single retransmit?"
    );
    for prefix in ["nic0", "nic1"] {
        assert_eq!(
            stats.sum_prefix(&format!("{prefix}.link.links_dead")),
            0,
            "{prefix}: a sub-budget flap must not kill the link"
        );
        assert_eq!(stats.sum_prefix(&format!("{prefix}.fault.peers_failed")), 0);
    }
    for (i, st) in &statuses {
        assert_eq!(st.error, None, "recv {i} must succeed after resync");
        assert_eq!(st.len, 512);
    }
}

/// Satellite-1 regression, edge B: an outage longer than the full retry
/// budget exhausts it; the link goes sticky-dead, and — with a schedule
/// armed — escalates to a typed peer failure on both sides instead of a
/// hang.
#[test]
fn long_flap_goes_sticky_dead_with_typed_failure() {
    let (c, statuses) = flap_run(Time::from_ms(30));
    let stats = c.stats();
    assert!(
        stats.sum_prefix("nic0.link.links_dead") > 0,
        "budget exhaustion must be counted as a dead link"
    );
    assert!(
        stats.sum_prefix("nic0.fault.peers_failed") > 0,
        "dead link must escalate to a typed peer failure"
    );
    assert!(
        statuses
            .iter()
            .any(|(_, st)| st.error == Some(MpiError::RankFailed { rank: 1 })),
        "rank 0 got no typed failure for its doomed receives: {statuses:?}"
    );
}

/// A run stalled by an active partition is diagnosed as
/// [`StallKind::Partitioned`] carrying the exact connectivity groups —
/// not as a generic deadline blowout, and not as a leak deadlock.
#[test]
fn partition_stall_is_diagnosed_with_groups() {
    let sched: FaultSchedule = "partition@10us:groups=0.1|2.3,heal=500ms"
        .parse()
        .expect("spec grammar");
    let mut programs: Vec<Box<dyn AppProgram>> = Vec::new();
    for me in 0..4u32 {
        // Cross-partition ring: every rank needs a message from the far
        // side, so nobody can finish while the fabric is split.
        let peer = (me + 2) % 4;
        let mut b = Script::builder();
        b.sleep(Time::from_us(20));
        let r = b.irecv(Some(peer as u16), Some(7), 512);
        b.isend(peer, 7, 512);
        b.wait(r);
        b.mark(me);
        programs.push(Box::new(b.build(mark_log())));
    }
    let cfg = ClusterConfig::builder(NicConfig::baseline())
        .fault_schedule(sched)
        .build();
    let mut c = Cluster::new(cfg, programs);
    let diagnosis = c
        .run_watched(Time::from_us(500))
        .expect_err("a split fabric cannot let the ring complete");
    match &diagnosis.kind {
        StallKind::Partitioned { groups } => {
            assert_eq!(groups, &vec![vec![0, 1], vec![2, 3]]);
        }
        other => panic!("expected a partition diagnosis, got {other}"),
    }
}

/// Scheduled ALPU death pins the software-fallback path permanently: the
/// unit is quarantined, counted, and never re-engages, while delivery
/// still completes exactly once.
#[test]
fn alpu_death_pins_software_fallback() {
    let sched: FaultSchedule = "alpu@40us:nic=1".parse().expect("spec grammar");
    let mut programs: Vec<Box<dyn AppProgram>> = Vec::new();
    for me in 0..2u32 {
        let peer = 1 - me;
        let mut b = Script::builder();
        for phase in 0..2u16 {
            let mut pending = Vec::new();
            for i in 0..8u16 {
                pending.push(b.irecv(Some(peer as u16), Some(phase * 100 + i), 512));
                pending.push(b.isend(peer, phase * 100 + i, 512));
            }
            b.wait_all(pending);
            // Phase 2 lands well after the death at 40us, so the pinned
            // fallback path carries real traffic.
            b.sleep(Time::from_us(100));
        }
        b.mark(me);
        programs.push(Box::new(b.build(mark_log())));
    }
    let cfg = ClusterConfig::builder(NicConfig::with_alpus(128))
        .fault_schedule(sched)
        .build();
    let mut c = Cluster::new(cfg, programs);
    c.run_watched(Time::from_ms(50))
        .unwrap_or_else(|d| panic!("stalled: {d}"));
    let fw = c.nic(1).firmware();
    assert!(fw.stats().alpus_killed > 0, "the death never landed");
    assert_eq!(
        fw.stats().alpu_reengagements, 0,
        "a dead ALPU must never re-engage"
    );
    assert!(
        fw.posted_quarantined() && !fw.posted_engaged(),
        "the dead unit must stay quarantined (software matching only)"
    );
    let healthy = c.nic(0).firmware();
    assert_eq!(healthy.stats().alpus_killed, 0, "the other NIC is untouched");
    assert!(!healthy.posted_quarantined(), "the other NIC is untouched");
}

/// Component-failure telemetry rides the existing observability flag:
/// armed, the crash / flap / peer-death transitions show up both as
/// `fault.*` metrics and as `ph:"i"` instants in the Chrome trace;
/// unarmed, nothing is recorded at all.
#[test]
fn fault_telemetry_is_gated_by_observability() {
    let run = |observed: bool| {
        let sched: FaultSchedule = "flap@10us:edge=0-1,down=60us;crash@20us:node=2"
            .parse()
            .expect("spec grammar");
        let mut logs = Vec::new();
        let programs = crash_workload(4, &mut logs);
        let mut builder = ClusterConfig::builder(NicConfig::baseline()).fault_schedule(sched);
        if observed {
            builder = builder.observability(1 << 16);
        }
        let mut c = Cluster::new(builder.build(), programs);
        c.run_watched(Time::from_ms(50))
            .unwrap_or_else(|d| panic!("stalled: {d}"));
        c
    };

    let observed = run(true);
    let metrics = observed.metrics().render();
    for key in ["fault.nodes_crashed", "fault.flap_transitions", "fault.peers_failed"] {
        assert!(metrics.contains(key), "metrics missing {key}:\n{metrics}");
    }
    let trace = observed.chrome_trace();
    assert!(trace.contains("\"ph\":\"i\""), "no instant events in the trace");
    for name in ["node-crash", "link-down", "link-up", "peer-dead"] {
        assert!(trace.contains(name), "trace missing a {name} instant");
    }

    let unobserved = run(false);
    assert_eq!(unobserved.trace_record_count(), 0, "telemetry leaked past the flag");
    assert!(!unobserved.metrics().render().contains("fault."));
}

/// An empty schedule must be exactly "never heard of fault domains":
/// same final time, byte-identical statistics dump, and no `fault.*`
/// keys anywhere.
#[test]
fn empty_schedule_is_zero_cost() {
    let build = |armed: bool| {
        let mut programs: Vec<Box<dyn AppProgram>> = Vec::new();
        for me in 0..2u32 {
            let peer = 1 - me;
            let mut b = Script::builder();
            let r = b.irecv(Some(peer as u16), Some(3), 1024);
            b.isend(peer, 3, 1024);
            b.wait(r);
            b.mark(me);
            programs.push(Box::new(b.build(mark_log())));
        }
        let mut builder = ClusterConfig::builder(NicConfig::baseline());
        if armed {
            builder = builder.fault_schedule(FaultSchedule::new());
        }
        let mut c = Cluster::new(builder.build(), programs);
        c.run();
        c
    };
    let plain = build(false);
    let armed = build(true);
    assert_eq!(plain.now(), armed.now());
    assert_eq!(
        plain.stats().to_json(),
        armed.stats().to_json(),
        "an empty fault schedule perturbed the simulation"
    );
    assert_eq!(armed.stats().sum_prefix("nic0.fault."), 0);
    assert_eq!(armed.stats().sum_prefix("net.sched."), 0);
}
