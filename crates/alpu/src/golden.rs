//! The golden reference model: an ordered list with MPI match semantics.
//!
//! This is exactly what an MPI implementation does in software — walk a
//! linear list oldest-first, return the first entry that matches, delete
//! it. The cycle-level [`engine::Alpu`](crate::engine::Alpu) must be
//! observationally equivalent to this model; the property-test suite
//! drives both with identical command streams and compares every response.

use crate::cell::cell_matches;
use crate::engine::AlpuKind;
use crate::match_types::{Entry, Probe, Tag};

/// An ordered match list: index 0 is the *oldest* (highest priority) entry.
#[derive(Clone, Debug, Default)]
pub struct GoldenList {
    entries: Vec<Entry>,
    capacity: usize,
    kind: AlpuKind,
}

impl GoldenList {
    /// Empty list with a capacity bound (mirrors the ALPU's cell count).
    pub fn new(capacity: usize, kind: AlpuKind) -> GoldenList {
        GoldenList {
            entries: Vec::new(),
            capacity,
            kind,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remaining insert capacity.
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Append a new (youngest) entry. Returns `false` when full.
    pub fn insert(&mut self, e: Entry) -> bool {
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push(e);
        true
    }

    /// Probe the list: first (oldest) match wins and is removed; its tag is
    /// returned.
    pub fn probe(&mut self, p: Probe) -> Option<Tag> {
        let idx = self
            .entries
            .iter()
            .position(|e| cell_matches(self.kind, e, p))?;
        Some(self.entries.remove(idx).tag)
    }

    /// Probe without removing (for assertions).
    pub fn peek(&self, p: Probe) -> Option<Tag> {
        self.entries
            .iter()
            .find(|e| cell_matches(self.kind, e, p))
            .map(|e| e.tag)
    }

    /// Clear all entries (RESET).
    pub fn reset(&mut self) {
        self.entries.clear();
    }

    /// Entries oldest-first (for equivalence checks).
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::match_types::MatchWord;

    fn posted() -> GoldenList {
        GoldenList::new(8, AlpuKind::PostedReceive)
    }

    #[test]
    fn first_match_wins_and_is_removed() {
        let mut g = posted();
        g.insert(Entry::mpi_recv(1, Some(2), Some(3), 100));
        g.insert(Entry::mpi_recv(1, Some(2), Some(3), 200));
        let hdr = Probe::exact(MatchWord::mpi(1, 2, 3));
        assert_eq!(g.probe(hdr), Some(100));
        assert_eq!(g.probe(hdr), Some(200));
        assert_eq!(g.probe(hdr), None);
    }

    #[test]
    fn ordering_beats_specificity() {
        // A wildcard receive posted *before* an exact one must win — the
        // MPI ordering constraint the paper contrasts with LPM routing.
        let mut g = posted();
        g.insert(Entry::mpi_recv(1, None, Some(3), 1)); // ANY_SOURCE, older
        g.insert(Entry::mpi_recv(1, Some(2), Some(3), 2)); // exact, newer
        assert_eq!(g.probe(Probe::exact(MatchWord::mpi(1, 2, 3))), Some(1));
    }

    #[test]
    fn capacity_bound() {
        let mut g = GoldenList::new(2, AlpuKind::PostedReceive);
        assert!(g.insert(Entry::mpi_recv(1, Some(1), Some(1), 0)));
        assert!(g.insert(Entry::mpi_recv(1, Some(1), Some(1), 1)));
        assert!(!g.insert(Entry::mpi_recv(1, Some(1), Some(1), 2)));
        assert_eq!(g.free(), 0);
    }

    #[test]
    fn unexpected_kind_uses_probe_mask() {
        let mut g = GoldenList::new(8, AlpuKind::Unexpected);
        g.insert(Entry::mpi_header(1, 5, 9, 77));
        // Receive with ANY_SOURCE matches the stored header.
        assert_eq!(g.probe(Probe::recv(1, None, Some(9))), Some(77));
        assert!(g.is_empty());
    }

    #[test]
    fn reset_clears() {
        let mut g = posted();
        g.insert(Entry::mpi_recv(1, Some(1), Some(1), 0));
        g.reset();
        assert!(g.is_empty());
        assert_eq!(g.free(), 8);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut g = posted();
        g.insert(Entry::mpi_recv(1, Some(2), Some(3), 5));
        let p = Probe::exact(MatchWord::mpi(1, 2, 3));
        assert_eq!(g.peek(p), Some(5));
        assert_eq!(g.len(), 1);
    }
}
