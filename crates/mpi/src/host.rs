//! The host CPU as a DES component.
//!
//! Per §V-C the host only dispatches requests and waits for completions,
//! so it is modeled as a thin component: it steps its [`AppProgram`] at
//! startup and on every completion, charging a fixed dispatch cost per
//! issued request.

use crate::app::{AppProgram, HostState, Mpi, PORT_COMPLETION, PORT_TIMER};
use crate::types::{MpiError, MpiStatus};
use mpiq_dessim::prelude::*;
use mpiq_dessim::watchdog::Health;
use mpiq_nic::Completion;
use std::collections::HashMap;

/// Port for the scheduled crash-stop wake (distinct from [`PORT_TIMER`],
/// which steps the program — a crash must *not* step anything).
pub const PORT_CRASH: InPort = InPort(2);

/// Port for the scheduled restart wake: the node comes back up with a
/// fresh incarnation, and the host boots its staged recovery program (if
/// any) from scratch — nothing of the pre-crash program survives.
pub const PORT_RESTART: InPort = InPort(3);

/// A host running one application rank.
pub struct Host {
    state: HostState,
    program: Option<Box<dyn AppProgram>>,
    /// Scheduled crash-stop instants, if this host's node is on the
    /// fault schedule's kill list (possibly again after a restart).
    crash_times: Vec<Time>,
    /// Scheduled restart instants (each follows a crash).
    restart_times: Vec<Time>,
    /// Program staged to boot at the first restart. Consumed then; later
    /// restarts of the same node come back up with nothing to run.
    recovery: Option<Box<dyn AppProgram>>,
    /// Crash-stop reached: the program is gone, and every later event
    /// falls on silence until a scheduled restart (if any).
    crashed: bool,
}

impl Host {
    /// Build a host for `rank` of `size`, attached to `nic`.
    pub fn new(
        rank: u32,
        size: u32,
        nic: ComponentId,
        dispatch_cost: Time,
        bus_latency: Time,
        program: Box<dyn AppProgram>,
    ) -> Host {
        Host {
            state: HostState {
                rank,
                size,
                nic,
                next_seq: 0,
                completed: HashMap::new(),
                done: false,
                dispatch_cost,
                bus_latency,
                issued_this_step: 0,
            },
            program: Some(program),
            crash_times: Vec::new(),
            restart_times: Vec::new(),
            recovery: None,
            crashed: false,
        }
    }

    /// Schedule a crash-stop at `t`: the program's state dies with the
    /// node and the rank never finishes on its own (unless a restart is
    /// also scheduled).
    pub fn with_crash_at(mut self, t: Time) -> Host {
        self.crash_times.push(t);
        self
    }

    /// Schedule restarts at `times` (each must follow a crash on the
    /// fault schedule), staging `recovery` to boot at the first one. A
    /// restarted host with no recovery program simply reports itself
    /// finished — the node is back (its NIC answers keepalives and
    /// serves peers), but the rank has nothing left to run.
    pub fn with_restarts(
        mut self,
        times: Vec<Time>,
        recovery: Option<Box<dyn AppProgram>>,
    ) -> Host {
        self.restart_times = times;
        self.recovery = recovery;
        self
    }

    /// Has the program called `finish`?
    pub fn done(&self) -> bool {
        self.state.done
    }

    /// Has the scheduled crash-stop fired?
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Completions received so far (diagnostics).
    pub fn completions(&self) -> usize {
        self.state.completed.len()
    }

    fn step_program(&mut self, ctx: &mut Ctx<'_>) {
        if self.state.done {
            return;
        }
        let mut program = self.program.take().expect("program present");
        self.state.issued_this_step = 0;
        {
            let mut mpi = Mpi {
                st: &mut self.state,
                ctx,
            };
            program.step(&mut mpi);
        }
        self.program = Some(program);
    }
}

impl Component for Host {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        for &at in &self.crash_times {
            ctx.wake_me(PORT_CRASH, Payload::empty(), at.saturating_sub(now));
        }
        for &at in &self.restart_times {
            ctx.wake_me(PORT_RESTART, Payload::empty(), at.saturating_sub(now));
        }
        self.step_program(ctx);
    }

    fn on_event(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        if ev.port == PORT_RESTART {
            if !self.crashed {
                return; // stale wake: the grammar puts restarts after crashes
            }
            self.crashed = false;
            // Nothing of the old life survives except `next_seq`: request
            // ids stay unique across incarnations so a straggler
            // completion from before the crash can never satisfy a
            // recovery-program request.
            self.state.completed.clear();
            self.program = self.recovery.take();
            if self.program.is_some() {
                self.state.done = false;
                self.step_program(ctx);
            } else {
                self.state.done = true;
            }
            return;
        }
        if self.crashed {
            return;
        }
        match ev.port {
            PORT_CRASH => {
                self.crashed = true;
                self.program = None;
                return;
            }
            PORT_COMPLETION => {
                let comp = *ev
                    .payload
                    .downcast::<Completion>()
                    .expect("completion payload");
                self.state.completed.insert(
                    comp.req,
                    MpiStatus {
                        source: comp.source,
                        tag: comp.tag,
                        len: comp.len,
                        cancelled: comp.cancelled,
                        overflow: comp.overflow,
                        error: comp
                            .rank_failed
                            .then_some(MpiError::RankFailed { rank: comp.source }),
                    },
                );
            }
            PORT_TIMER => {}
            other => panic!("host received event on unknown port {other:?}"),
        }
        self.step_program(ctx);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    /// Watchdog self-report: a host is busy until its program calls
    /// `finish` — an unfinished rank is the canonical deadlock symptom.
    fn health(&self) -> Option<Health> {
        if self.crashed {
            // A crashed rank is idle by definition — it will never finish,
            // and the watchdog must not read it as a leak.
            return Some(
                Health::default()
                    .gauge("completions", self.state.completed.len() as u64)
                    .note(format!(
                        "rank {} crashed (scheduled fault)",
                        self.state.rank
                    )),
            );
        }
        let mut h = Health {
            busy: !self.state.done,
            ..Health::default()
        }
        .gauge("completions", self.state.completed.len() as u64);
        if !self.state.done {
            h = h.note(format!("rank {} has not finished", self.state.rank));
        }
        Some(h)
    }
}
