//! Cell blocks and the chained cell array (§III-B, Fig. 2c).
//!
//! Physical picture: cells form one long shift chain. New entries are
//! inserted at cell 0 (the paper's "left") and data progresses toward
//! higher indices (the paper's "right"); the highest-index matching cell is
//! therefore the *oldest* posted entry and wins prioritization, which is
//! exactly MPI's first-match rule.
//!
//! The chain is partitioned into power-of-two blocks. Blocks matter in two
//! places:
//!
//! * **Priority muxing** — each block selects its local winner through a
//!   binary tree of 2-to-1 muxes (modeled literally in
//!   [`priority_select`]), then the same tree shape runs across block
//!   winners. The tree depth sets the pipeline latency
//!   (see [`crate::timing`]).
//! * **Compaction** — holes left by unevenly timed inserts migrate one
//!   cell per cycle, and a transfer may cross a block boundary only into
//!   the lowest cell of the next block (the paper's "space available"
//!   rule). Deletion is different: the match location is broadcast to all
//!   blocks and every cell at or below it shifts up in a single cycle, so
//!   deletes never create holes.

use crate::cell::{cell_matches, Cell};
use crate::engine::AlpuKind;
use crate::match_types::{Entry, MatchWord, Probe, Tag, MATCH_WIDTH};

/// A binary 2-to-1 priority-mux tree over `matched` flags, returning the
/// highest matching index and its tag — the hardware structure of
/// Fig. 2(c), where "the highest order cell (furthest to the right) is the
/// highest priority" and the match bits get encoded, level by level, into
/// the match location.
///
/// `matched.len()` must be a power of two (hardware pads blocks).
pub fn priority_select(matched: &[bool], tags: &[Tag]) -> Option<(usize, Tag)> {
    assert_eq!(matched.len(), tags.len());
    assert!(matched.len().is_power_of_two(), "mux tree needs 2^N inputs");
    // Each tree node carries (any_match, encoded_location, tag).
    let mut level: Vec<(bool, usize, Tag)> = matched
        .iter()
        .zip(tags)
        .map(|(&m, &t)| (m, 0usize, t))
        .collect();
    let mut bit = 0usize;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks_exact(2) {
            let (lo, hi) = (pair[0], pair[1]);
            // The higher-order input wins; its presence is encoded into
            // this level's bit of the match location.
            let sel_hi = hi.0;
            let m = lo.0 || hi.0;
            let (loc, tag) = if sel_hi {
                (hi.1 | (1 << bit), hi.2)
            } else {
                (lo.1, lo.2)
            };
            next.push((m, loc, tag));
        }
        level = next;
        bit += 1;
    }
    let (m, loc, tag) = level[0];
    m.then_some((loc, tag))
}

/// The chained cell array of one ALPU: `total` cells in blocks of
/// `block_size`.
#[derive(Clone, Debug)]
pub struct CellArray {
    cells: Vec<Cell>,
    block_size: usize,
    kind: AlpuKind,
    /// Maintained count of valid cells, so `occupied()` is O(1). Kept
    /// exact by `insert`/`delete_shift`/`reset`.
    len: usize,
    /// Maintained compactness flag, so `is_compact()` is O(1). Invariant:
    /// always equals the O(n) hole scan (checked in debug builds).
    compact: bool,
}

impl CellArray {
    /// Build an empty array. `total` and `block_size` must be powers of
    /// two with `block_size <= total`.
    pub fn new(total: usize, block_size: usize, kind: AlpuKind) -> CellArray {
        assert!(total.is_power_of_two(), "total cells must be a power of 2");
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of 2 (§III-B)"
        );
        assert!(block_size <= total, "block larger than array");
        CellArray {
            cells: vec![None; total],
            block_size,
            kind,
            len: 0,
            compact: true,
        }
    }

    /// Total number of cells.
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Cells per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks in the chain.
    pub fn num_blocks(&self) -> usize {
        self.cells.len() / self.block_size
    }

    /// Number of valid entries (O(1); maintained counter).
    pub fn occupied(&self) -> usize {
        debug_assert_eq!(
            self.len,
            self.cells.iter().filter(|c| c.is_some()).count(),
            "occupancy counter out of sync with the valid bits"
        );
        self.len
    }

    /// Number of free cells.
    pub fn free(&self) -> usize {
        self.capacity() - self.occupied()
    }

    /// Kind (posted-receive or unexpected variant).
    pub fn kind(&self) -> AlpuKind {
        self.kind
    }

    /// Combinational match: returns `(cell index, tag)` of the oldest
    /// (highest-index) matching valid cell.
    ///
    /// The hardware computes this through per-block priority-mux trees
    /// followed by an inter-block tree — modeled literally in
    /// [`CellArray::match_probe_mux`]. Because each tree level always
    /// selects its higher-order input, the composed trees reduce to
    /// "highest matching index wins", which this hot path computes with
    /// a single allocation-free descending scan. The two paths are
    /// asserted identical in debug builds and in the unit tests.
    pub fn match_probe(&self, probe: Probe) -> Option<(usize, Tag)> {
        let result = if self.len == 0 {
            None
        } else {
            self.cells.iter().enumerate().rev().find_map(|(i, c)| {
                c.as_ref()
                    .filter(|e| cell_matches(self.kind, e, probe))
                    .map(|e| (i, e.tag))
            })
        };
        debug_assert_eq!(
            result,
            self.match_probe_mux(probe),
            "scan shortcut diverged from the mux-tree model"
        );
        result
    }

    /// The hardware-literal match path: per-block priority trees, then
    /// the inter-block tree (Fig. 2c). Allocates per level; used as the
    /// reference model for [`CellArray::match_probe`].
    pub fn match_probe_mux(&self, probe: Probe) -> Option<(usize, Tag)> {
        let bs = self.block_size;
        let nblocks = self.num_blocks();
        // Per-block winners.
        let mut block_match = vec![false; nblocks];
        let mut block_loc = vec![0usize; nblocks];
        let mut block_tag = vec![0 as Tag; nblocks];
        for b in 0..nblocks {
            let base = b * bs;
            let matched: Vec<bool> = (0..bs)
                .map(|i| {
                    self.cells[base + i]
                        .as_ref()
                        .is_some_and(|e| cell_matches(self.kind, e, probe))
                })
                .collect();
            let tags: Vec<Tag> = (0..bs)
                .map(|i| self.cells[base + i].map(|e| e.tag).unwrap_or(0))
                .collect();
            if let Some((loc, tag)) = priority_select(&matched, &tags) {
                block_match[b] = true;
                block_loc[b] = loc;
                block_tag[b] = tag;
            }
        }
        // Inter-block tree (block counts are powers of two by construction).
        let (winner_block, tag) = priority_select(&block_match, &block_tag)?;
        Some((winner_block * bs + block_loc[winner_block], tag))
    }

    /// Single-cycle delete-with-shift: the match location is broadcast to
    /// all blocks; cells at and below `loc` shift up one position, and
    /// cell 0 becomes empty. Order among survivors is preserved and no
    /// hole is created.
    pub fn delete_shift(&mut self, loc: usize) {
        assert!(loc < self.cells.len());
        assert!(self.cells[loc].is_some(), "deleting an invalid cell");
        for i in (1..=loc).rev() {
            self.cells[i] = self.cells[i - 1];
        }
        self.cells[0] = None;
        self.len -= 1;
        // A delete can't introduce a hole; it *can* remove the last one
        // (a hole shifting into the now-empty bottom region), so a
        // non-compact array must be re-examined.
        if !self.compact {
            self.compact = self.scan_is_compact();
        }
    }

    /// Insert a new entry at cell 0. Fails if cell 0 is still occupied
    /// (compaction hasn't caught up) — the engine's flow control prevents
    /// this in normal operation by honoring the advertised free count.
    pub fn insert(&mut self, e: Entry) -> bool {
        if self.cells[0].is_some() {
            return false;
        }
        self.cells[0] = Some(e);
        self.len += 1;
        // The new entry sits at the bottom; if the cell above is empty
        // there is now (or may be) a hole to migrate upward.
        if self.cells.len() > 1 && self.cells[1].is_none() {
            self.compact = false;
        }
        true
    }

    /// One clock of hole compaction: each empty cell with an occupied
    /// neighbor below absorbs it, provided the transfer stays within a
    /// block or lands in the lowest cell of the next block ("space
    /// available", §III-B). Returns whether any data moved.
    pub fn compact_step(&mut self) -> bool {
        if self.compact {
            return false;
        }
        let n = self.cells.len();
        // Moves are decided against the pre-cycle state: destination `i`
        // receives from `i-1`. A cell is never both source and destination
        // (sources are occupied, destinations empty), so walking from the
        // top and skipping past each performed move applies exactly the
        // pre-state move set with no scratch buffer: after a move into
        // `i`, cell `i-1` was occupied pre-cycle and so cannot also be a
        // destination.
        let mut moved = false;
        let mut i = n - 1;
        while i >= 1 {
            if self.cells[i].is_none() && self.cells[i - 1].is_some() {
                let same_block = (i / self.block_size) == ((i - 1) / self.block_size);
                let block_lowest = i.is_multiple_of(self.block_size);
                if same_block || block_lowest {
                    self.cells[i] = self.cells[i - 1].take();
                    moved = true;
                    i -= 1; // `i-1` was a pre-state source, never a destination
                }
            }
            if i == 0 {
                break;
            }
            i -= 1;
        }
        if !moved {
            self.compact = true;
            return false;
        }
        // Check if fully compacted now: no empty cell below an occupied one.
        self.compact = self.scan_is_compact();
        // Note: `compact` here means "no holes"; an occupied cell 0 with
        // everything above full is also compact.
        true
    }

    /// True when no hole separates occupied cells (all data packed at the
    /// top of the chain). O(1): returns the maintained flag, which every
    /// mutation keeps exact (verified against the scan in debug builds).
    pub fn is_compact(&self) -> bool {
        debug_assert_eq!(
            self.compact,
            self.scan_is_compact(),
            "compactness flag out of sync with the cell state"
        );
        self.compact
    }

    /// The O(n) hole scan defining compactness.
    fn scan_is_compact(&self) -> bool {
        let n = self.cells.len();
        !(1..n).any(|i| self.cells[i].is_none() && self.cells[i - 1].is_some())
    }

    /// Clear all valid bits (RESET).
    pub fn reset(&mut self) {
        for c in &mut self.cells {
            *c = None;
        }
        self.len = 0;
        self.compact = true;
    }

    /// Fault injection: flip one bit of a stored match word. `sel` picks
    /// among the occupied cells (reduced modulo occupancy, oldest first)
    /// and `bit` picks the bit (reduced modulo the match width). Only the
    /// match *value* is disturbed — validity bits are untouched, so the
    /// occupancy and compactness invariants still hold; what breaks is the
    /// match outcome, which is exactly what a parity check over the cell
    /// state exists to catch. Returns `false` on an empty array (nothing
    /// to corrupt).
    pub fn flip_word_bit(&mut self, sel: u64, bit: u32) -> bool {
        if self.len == 0 {
            return false;
        }
        let nth = (sel % self.len as u64) as usize;
        let idx = self
            .cells
            .iter()
            .enumerate()
            .rev()
            .filter(|(_, c)| c.is_some())
            .nth(nth)
            .map(|(i, _)| i)
            .expect("nth < len occupied cells");
        let e = self.cells[idx].as_mut().expect("selected an occupied cell");
        e.word = MatchWord(e.word.0 ^ (1u64 << (bit % MATCH_WIDTH)));
        true
    }

    /// Entries in priority order (oldest first) — for equivalence checks
    /// against [`crate::golden::GoldenList`].
    pub fn entries_oldest_first(&self) -> Vec<Entry> {
        self.cells.iter().rev().filter_map(|c| *c).collect()
    }

    /// Raw view of a cell (diagnostics, examples).
    pub fn cell(&self, i: usize) -> &Cell {
        &self.cells[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::match_types::MatchWord;

    fn arr(total: usize, block: usize) -> CellArray {
        CellArray::new(total, block, AlpuKind::PostedReceive)
    }

    fn recv(tagv: u16, cookie: Tag) -> Entry {
        Entry::mpi_recv(1, Some(0), Some(tagv), cookie)
    }

    fn probe(tagv: u16) -> Probe {
        Probe::exact(MatchWord::mpi(1, 0, tagv))
    }

    /// Fill the array compactly with `n` entries, oldest = cookie 0.
    fn fill(a: &mut CellArray, n: usize) {
        for i in 0..n {
            assert!(a.insert(recv(i as u16, i as Tag)));
            while a.compact_step() {}
        }
    }

    #[test]
    fn priority_select_matches_linear_scan() {
        // Exhaustive over all 2^6 match patterns of a 6-cell... sizes must
        // be powers of two; use 8 cells and all 256 patterns.
        for pat in 0u32..256 {
            let matched: Vec<bool> = (0..8).map(|i| pat & (1 << i) != 0).collect();
            let tags: Vec<Tag> = (0..8).map(|i| 100 + i as Tag).collect();
            let want = (0..8).rev().find(|&i| matched[i]).map(|i| (i, tags[i]));
            assert_eq!(priority_select(&matched, &tags), want, "pattern {pat:08b}");
        }
    }

    #[test]
    fn oldest_entry_wins_across_blocks() {
        let mut a = arr(16, 4);
        fill(&mut a, 10);
        // Every entry has a distinct tag value; probe for two of them.
        assert_eq!(a.match_probe(probe(0)).map(|(_, t)| t), Some(0));
        assert_eq!(a.match_probe(probe(7)).map(|(_, t)| t), Some(7));
        assert_eq!(a.match_probe(probe(12)), None);
    }

    #[test]
    fn duplicate_matches_resolve_to_oldest() {
        let mut a = arr(16, 4);
        // Three identical receives, cookies 0,1,2 in post order.
        for c in 0..3 {
            assert!(a.insert(recv(5, c)));
            while a.compact_step() {}
        }
        let (loc, tag) = a.match_probe(probe(5)).unwrap();
        assert_eq!(tag, 0, "oldest must win");
        a.delete_shift(loc);
        assert_eq!(a.match_probe(probe(5)).map(|(_, t)| t), Some(1));
    }

    #[test]
    fn delete_shift_preserves_order_and_creates_no_hole() {
        let mut a = arr(16, 4);
        fill(&mut a, 8);
        let (loc, _) = a.match_probe(probe(3)).unwrap();
        a.delete_shift(loc);
        assert!(a.is_compact());
        let tags: Vec<Tag> = a.entries_oldest_first().iter().map(|e| e.tag).collect();
        assert_eq!(tags, vec![0, 1, 2, 4, 5, 6, 7]);
    }

    #[test]
    fn insert_requires_cell_zero_free() {
        let mut a = arr(4, 2);
        assert!(a.insert(recv(0, 0)));
        // No compaction step yet: cell 0 still occupied.
        assert!(!a.insert(recv(1, 1)));
        a.compact_step();
        assert!(a.insert(recv(1, 1)));
    }

    #[test]
    fn hole_migrates_one_cell_per_cycle_within_block() {
        let mut a = arr(8, 8);
        fill(&mut a, 3); // occupy cells 7,6,5
        // Delete the middle one... via match+delete of cookie 1 (cell 6).
        let (loc, _) = a.match_probe(probe(1)).unwrap();
        a.delete_shift(loc); // survivors shift; still compact
        assert!(a.is_compact());
        // Now insert without compaction catching up: hole between data.
        assert!(a.insert(recv(9, 9)));
        // cells: [9, _, _, _, _, _, 2?, 0?] — entry 9 at bottom, others top.
        let mut steps = 0;
        while !a.is_compact() {
            assert!(a.compact_step());
            steps += 1;
            assert!(steps < 16, "compaction did not converge");
        }
        // Entry 9 had to travel from cell 0 to cell 5: 5 steps.
        assert_eq!(steps, 5);
        let tags: Vec<Tag> = a.entries_oldest_first().iter().map(|e| e.tag).collect();
        assert_eq!(tags, vec![0, 2, 9]);
    }

    #[test]
    fn compaction_crosses_block_boundary_via_lowest_cell() {
        let mut a = arr(8, 4); // blocks: cells 0-3, 4-7
        fill(&mut a, 2); // cells 7, 6 occupied
        a.insert(recv(1, 1));
        // Entry must migrate from cell 0 (block 0) into block 1.
        let mut steps = 0;
        while !a.is_compact() {
            a.compact_step();
            steps += 1;
            assert!(steps < 16);
        }
        assert_eq!(a.entries_oldest_first().len(), 3);
        // It traveled 0 -> 5 (5 steps), crossing the boundary at cell 4.
        assert_eq!(steps, 5);
    }

    #[test]
    fn reset_clears_everything() {
        let mut a = arr(8, 4);
        fill(&mut a, 5);
        a.reset();
        assert_eq!(a.occupied(), 0);
        assert!(a.is_compact());
        assert_eq!(a.match_probe(probe(0)), None);
    }

    #[test]
    fn wildcard_entries_match_any_source() {
        let mut a = CellArray::new(8, 4, AlpuKind::PostedReceive);
        a.insert(Entry::mpi_recv(2, None, Some(3), 42));
        while a.compact_step() {}
        let p = Probe::exact(MatchWord::mpi(2, 777, 3));
        assert_eq!(a.match_probe(p).map(|(_, t)| t), Some(42));
    }

    #[test]
    fn unexpected_array_reverse_lookup() {
        let mut a = CellArray::new(8, 4, AlpuKind::Unexpected);
        a.insert(Entry::mpi_header(2, 10, 3, 7));
        while a.compact_step() {}
        assert_eq!(
            a.match_probe(Probe::recv(2, None, Some(3))).map(|(_, t)| t),
            Some(7)
        );
        assert_eq!(a.match_probe(Probe::recv(2, Some(11), Some(3))), None);
    }

    #[test]
    #[should_panic(expected = "power of 2")]
    fn non_power_of_two_block_rejected() {
        CellArray::new(16, 3, AlpuKind::PostedReceive);
    }
}
