//! Overload soak driver.
//!
//! Usage:
//!     soak [--scenario incast|hot-receiver|credit-starve|all]
//!          [--seeds N | --seed S] [--senders N] [--msgs N] [--size B]
//!          [--credits N] [--max-unexpected N] [--eager-buffer B]
//!          [--alpu] [--faults seed=N,drop=P,...] [--deadline-ms T]
//!          [--check-determinism] [--json PATH] [--curve]
//!
//! Runs each (scenario, seed) pair under the deadlock watchdog, prints
//! one CSV row per run, and exits nonzero with the watchdog's diagnosis
//! on a stall. `--check-determinism` repeats every run and demands a
//! bit-identical statistics dump. `--curve` sweeps the incast fan-in and
//! renders the degradation curve (runtime and backpressure vs senders).

use mpiq_bench::ascii_plot::{render, Series};
use mpiq_bench::report::{write_csv, write_json, CsvRow, JsonRow};
use mpiq_bench::report::{cells, json_str};
use mpiq_bench::{run_soak, Scenario, SoakConfig};
use mpiq_dessim::{FaultConfig, Time};
use std::io::Write as _;

struct Row {
    scenario: &'static str,
    seed: u64,
    cfg: SoakConfig,
    out: mpiq_bench::SoakOutcome,
}

const HEADER: &str = "scenario,seed,senders,msgs,runtime_ns,events,delivered,\
                      unexpected_hw,eager_bytes_hw,admission_refused,credit_stalls,\
                      truncated_admits,retransmits,grants_issued";

impl CsvRow for Row {
    fn csv(&self) -> String {
        format!(
            "{},{},{}",
            self.scenario,
            self.seed,
            cells(&[
                self.cfg.senders as u64,
                self.cfg.msgs as u64,
                self.out.runtime.ns(),
                self.out.events,
                self.out.delivered,
                self.out.unexpected_highwater,
                self.out.eager_bytes_highwater,
                self.out.admission_refused,
                self.out.credit_stalls,
                self.out.truncated_admits,
                self.out.retransmits,
                self.out.grants_issued,
            ])
        )
    }
}

impl JsonRow for Row {
    fn fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("scenario", json_str(self.scenario)),
            ("seed", self.seed.to_string()),
            ("senders", self.cfg.senders.to_string()),
            ("msgs", self.cfg.msgs.to_string()),
            ("runtime_ns", self.out.runtime.ns().to_string()),
            ("events", self.out.events.to_string()),
            ("delivered", self.out.delivered.to_string()),
            ("unexpected_hw", self.out.unexpected_highwater.to_string()),
            ("eager_bytes_hw", self.out.eager_bytes_highwater.to_string()),
            ("admission_refused", self.out.admission_refused.to_string()),
            ("credit_stalls", self.out.credit_stalls.to_string()),
            ("truncated_admits", self.out.truncated_admits.to_string()),
            ("retransmits", self.out.retransmits.to_string()),
            ("grants_issued", self.out.grants_issued.to_string()),
        ]
    }
}

fn main() {
    let mut scenarios: Vec<Scenario> = Scenario::ALL.to_vec();
    let mut seeds: Vec<u64> = vec![1, 2, 3, 4];
    let mut senders = 16u32;
    let mut msgs = 8u32;
    let mut size = 512u32;
    let mut credits = 4u32;
    let mut max_unexpected = 32u32;
    let mut eager_buffer = 16u64 << 10;
    let mut alpu = false;
    let mut faults: Option<FaultConfig> = None;
    let mut deadline_ms = 500u64;
    let mut check_determinism = false;
    let mut json_path: Option<String> = None;
    let mut curve = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| panic!("{a} needs a value"));
        match a.as_str() {
            "--scenario" => {
                let v = val();
                scenarios = if v == "all" {
                    Scenario::ALL.to_vec()
                } else {
                    vec![Scenario::parse(&v)
                        .unwrap_or_else(|| panic!("unknown scenario `{v}`"))]
                };
            }
            "--seeds" => {
                let n: u64 = val().parse().expect("--seeds: count");
                seeds = (1..=n).collect();
            }
            "--seed" => seeds = vec![val().parse().expect("--seed: u64")],
            "--senders" => senders = val().parse().expect("--senders: u32"),
            "--msgs" => msgs = val().parse().expect("--msgs: u32"),
            "--size" => size = val().parse().expect("--size: u32"),
            "--credits" => credits = val().parse().expect("--credits: u32"),
            "--max-unexpected" => max_unexpected = val().parse().expect("--max-unexpected: u32"),
            "--eager-buffer" => eager_buffer = val().parse().expect("--eager-buffer: u64"),
            "--alpu" => alpu = true,
            "--faults" => {
                faults = Some(val().parse().unwrap_or_else(|e| panic!("--faults: {e}")))
            }
            "--deadline-ms" => deadline_ms = val().parse().expect("--deadline-ms: u64"),
            "--check-determinism" => check_determinism = true,
            "--json" => json_path = Some(val()),
            "--curve" => curve = true,
            other => panic!("unknown flag `{other}`"),
        }
    }

    if curve {
        incast_curve(msgs, size, credits, max_unexpected, eager_buffer, alpu);
        return;
    }

    let mut rows = Vec::new();
    for &scenario in &scenarios {
        for &seed in &seeds {
            let mut cfg = SoakConfig::new(scenario, seed);
            cfg.senders = senders;
            cfg.msgs = msgs;
            cfg.msg_size = size;
            cfg.eager_credits = credits;
            cfg.max_unexpected = max_unexpected;
            cfg.eager_buffer_bytes = eager_buffer;
            cfg.alpu = alpu;
            cfg.faults = faults;
            cfg.deadline = Time::from_ms(deadline_ms);
            let out = match run_soak(&cfg) {
                Ok(out) => out,
                Err(diag) => {
                    eprintln!("soak STALLED: {} seed {seed}\n{diag}", scenario.name());
                    std::process::exit(1);
                }
            };
            if check_determinism {
                let again = run_soak(&cfg).expect("determinism re-run stalled");
                assert_eq!(
                    out.stats_json,
                    again.stats_json,
                    "{} seed {seed}: same-seed runs diverged",
                    scenario.name()
                );
            }
            rows.push(Row {
                scenario: scenario.name(),
                seed,
                cfg,
                out,
            });
        }
    }

    write_csv(std::io::stdout().lock(), HEADER, &rows).expect("stdout");
    if let Some(path) = json_path {
        write_json(std::path::Path::new(&path), &rows).expect("json out");
    }
    eprintln!(
        "soak: {} run(s) complete; all queues drained, all bounds held{}",
        rows.len(),
        if check_determinism {
            ", determinism checked"
        } else {
            ""
        }
    );
}

/// Sweep the incast fan-in and plot how backpressure absorbs the load:
/// runtime grows with senders while the unexpected high-water stays
/// pinned at the bound.
fn incast_curve(
    msgs: u32,
    size: u32,
    credits: u32,
    max_unexpected: u32,
    eager_buffer: u64,
    alpu: bool,
) {
    let fanin = [2u32, 4, 8, 16, 32, 64];
    let mut runtime = Vec::new();
    let mut refused = Vec::new();
    let mut hw = Vec::new();
    println!("senders,runtime_us,admission_refused,unexpected_hw,retransmits");
    for &n in &fanin {
        let mut cfg = SoakConfig::new(Scenario::Incast, 1);
        cfg.senders = n;
        cfg.msgs = msgs;
        cfg.msg_size = size;
        cfg.eager_credits = credits;
        cfg.max_unexpected = max_unexpected;
        cfg.eager_buffer_bytes = eager_buffer;
        cfg.alpu = alpu;
        cfg.deadline = Time::from_ms(2_000);
        let out = run_soak(&cfg).unwrap_or_else(|d| panic!("incast {n} stalled:\n{d}"));
        println!(
            "{n},{:.1},{},{},{}",
            out.runtime.as_ns_f64() / 1e3,
            out.admission_refused,
            out.unexpected_highwater,
            out.retransmits
        );
        runtime.push((n as f64, out.runtime.as_ns_f64() / 1e3));
        refused.push((n as f64, out.admission_refused as f64));
        hw.push((n as f64, out.unexpected_highwater as f64));
    }
    let plot = render(
        &[
            Series {
                label: "runtime (us)".into(),
                glyph: '*',
                points: runtime,
            },
            Series {
                label: "admission refusals".into(),
                glyph: 'r',
                points: refused,
            },
            Series {
                label: format!("unexpected high-water (bound {max_unexpected})"),
                glyph: 'u',
                points: hw,
            },
        ],
        72,
        20,
        "senders (incast fan-in)",
        "",
    );
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{plot}");
    let _ = writeln!(
        err,
        "incast degrades by protocol: load sheds into admission refusals and \
         retransmits while the unexpected queue stays at its bound"
    );
}
