//! Memory descriptors: the buffers operations deposit into / read from.

use bytes::Bytes;

/// Handle to a memory descriptor within one NI.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MdHandle(pub u32);

/// MD behavior flags.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MdOptions {
    /// Incoming operations use and advance the MD's local offset
    /// (`PTL_MD_MANAGE_REMOTE` inverse — Portals' locally managed
    /// offsets). When false, the initiator-supplied offset is used.
    pub manage_local_offset: bool,
    /// Truncate oversize deposits instead of rejecting them.
    pub truncate: bool,
    /// Number of operations after which the MD auto-unlinks
    /// (`threshold`); `None` = unlimited.
    pub threshold: Option<u32>,
}

impl Default for MdOptions {
    fn default() -> MdOptions {
        MdOptions {
            manage_local_offset: false,
            truncate: true,
            threshold: None,
        }
    }
}

/// A registered memory region. Data is modeled as real bytes so tests can
/// verify deposits end-to-end.
#[derive(Clone, Debug)]
pub struct Md {
    /// Backing storage.
    pub buf: Vec<u8>,
    /// Behavior flags.
    pub options: MdOptions,
    /// Locally managed offset (next deposit position).
    pub local_offset: u64,
    /// Operations performed so far.
    pub ops: u32,
}

/// Outcome of a deposit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Deposit {
    /// Where the data landed.
    pub offset: u64,
    /// Bytes written (after truncation).
    pub length: u64,
    /// The MD reached its threshold and must unlink.
    pub unlink: bool,
}

impl Md {
    /// A fresh MD over `len` zero bytes.
    pub fn new(len: usize, options: MdOptions) -> Md {
        Md {
            buf: vec![0; len],
            options,
            local_offset: 0,
            ops: 0,
        }
    }

    /// Deposit `data` (a put landing here). `req_offset` is the
    /// initiator-requested offset, used unless the MD manages offsets
    /// locally. Returns `None` if the data does not fit and truncation is
    /// disabled (the operation is rejected).
    pub fn deposit(&mut self, data: &Bytes, req_offset: u64) -> Option<Deposit> {
        let offset = if self.options.manage_local_offset {
            self.local_offset
        } else {
            req_offset
        };
        if offset as usize >= self.buf.len() && !data.is_empty() {
            return None;
        }
        let space = self.buf.len() as u64 - offset.min(self.buf.len() as u64);
        let want = data.len() as u64;
        if want > space && !self.options.truncate {
            return None;
        }
        let n = want.min(space);
        self.buf[offset as usize..(offset + n) as usize].copy_from_slice(&data[..n as usize]);
        if self.options.manage_local_offset {
            self.local_offset = offset + n;
        }
        self.ops += 1;
        let unlink = self.options.threshold.is_some_and(|t| self.ops >= t);
        Some(Deposit {
            offset,
            length: n,
            unlink,
        })
    }

    /// Read `len` bytes at `offset` (a get reading from here). Truncates
    /// to the region.
    pub fn read(&mut self, offset: u64, len: u64) -> Bytes {
        let start = (offset as usize).min(self.buf.len());
        let end = ((offset + len) as usize).min(self.buf.len());
        self.ops += 1;
        Bytes::copy_from_slice(&self.buf[start..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_at_requested_offset() {
        let mut md = Md::new(16, MdOptions::default());
        let d = md.deposit(&Bytes::from_static(b"abcd"), 4).unwrap();
        assert_eq!(d.offset, 4);
        assert_eq!(d.length, 4);
        assert_eq!(&md.buf[4..8], b"abcd");
    }

    #[test]
    fn locally_managed_offsets_advance() {
        let mut md = Md::new(16, MdOptions {
            manage_local_offset: true,
            ..MdOptions::default()
        });
        md.deposit(&Bytes::from_static(b"aa"), 999).unwrap();
        let d = md.deposit(&Bytes::from_static(b"bb"), 999).unwrap();
        assert_eq!(d.offset, 2, "requested offset ignored when locally managed");
        assert_eq!(&md.buf[..4], b"aabb");
    }

    #[test]
    fn truncation_clips_oversize_puts() {
        let mut md = Md::new(4, MdOptions::default());
        let d = md.deposit(&Bytes::from_static(b"abcdef"), 0).unwrap();
        assert_eq!(d.length, 4);
        assert_eq!(&md.buf[..], b"abcd");
    }

    #[test]
    fn no_truncate_rejects() {
        let mut md = Md::new(4, MdOptions {
            truncate: false,
            ..MdOptions::default()
        });
        assert!(md.deposit(&Bytes::from_static(b"abcdef"), 0).is_none());
    }

    #[test]
    fn threshold_requests_unlink() {
        let mut md = Md::new(16, MdOptions {
            threshold: Some(2),
            ..MdOptions::default()
        });
        assert!(!md.deposit(&Bytes::from_static(b"x"), 0).unwrap().unlink);
        assert!(md.deposit(&Bytes::from_static(b"y"), 1).unwrap().unlink);
    }

    #[test]
    fn read_truncates_to_region() {
        let mut md = Md::new(4, MdOptions::default());
        md.buf.copy_from_slice(b"wxyz");
        assert_eq!(&md.read(2, 10)[..], b"yz");
    }
}
