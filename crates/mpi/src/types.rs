//! Shared MPI-level types and constants.

/// The `MPI_COMM_WORLD` context id. User point-to-point traffic lives
/// here.
pub const CTX_WORLD: u16 = 1;

/// Context reserved for internal traffic (barriers and other collectives)
/// so it can never match user receives — the "system-assigned message tag
/// provides a safe message passing context" property from §II.
pub const CTX_INTERNAL: u16 = 0;

/// Wildcard source marker for the convenience APIs (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: Option<u16> = None;

/// Wildcard tag marker (`MPI_ANY_TAG`).
pub const ANY_TAG: Option<u16> = None;

/// Basic MPI datatypes (the prototype supports "only basic MPI
/// Datatypes", §V-C). Lengths in bytes multiply the element count.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Datatype {
    /// `MPI_BYTE`.
    Byte,
    /// `MPI_INT` (4 bytes).
    Int,
    /// `MPI_DOUBLE` (8 bytes).
    Double,
}

impl Datatype {
    /// Size in bytes of one element.
    pub fn size(self) -> u32 {
        match self {
            Datatype::Byte => 1,
            Datatype::Int => 4,
            Datatype::Double => 8,
        }
    }

    /// Buffer length for `count` elements.
    pub fn extent(self, count: u32) -> u32 {
        self.size() * count
    }
}

/// Typed MPI-level errors, after the User-Level Failure Mitigation (ULFM)
/// model: a failure surfaces as an error on the operations it dooms, not
/// as a hang or an aborted job. The subset the simulated cluster can
/// produce.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MpiError {
    /// The operation's peer rank was declared dead (crash-stop node or a
    /// link past its retry budget) before the operation could complete —
    /// ULFM's `MPI_ERR_PROC_FAILED`. The request *is* complete: waits
    /// return, and the program decides how to go on around the hole.
    RankFailed {
        /// The dead peer rank.
        rank: u16,
    },
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::RankFailed { rank } => write!(f, "peer rank {rank} failed"),
        }
    }
}

/// Completion status of a receive — the useful subset of `MPI_Status`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MpiStatus {
    /// Actual source rank (wildcards resolved).
    pub source: u16,
    /// Actual tag.
    pub tag: u16,
    /// Bytes delivered.
    pub len: u32,
    /// The request was cancelled (`MPI_Cancel`) rather than matched.
    pub cancelled: bool,
    /// The matched message lost its eager payload to receiver buffer-pool
    /// exhaustion (`MPI_ERR_TRUNCATE`-like): the envelope is intact, `len`
    /// is what actually arrived. Never set when overload protection is
    /// unconfigured.
    pub overflow: bool,
    /// Typed failure, if the operation ended in one instead of a match
    /// (`MPI_ERROR` field). `None` on every success path, so status
    /// checks written before fault domains existed keep their meaning.
    pub error: Option<MpiError>,
}

impl MpiStatus {
    /// Did the operation end in a typed rank failure?
    pub fn rank_failed(&self) -> bool {
        matches!(self.error, Some(MpiError::RankFailed { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_extents() {
        assert_eq!(Datatype::Byte.extent(10), 10);
        assert_eq!(Datatype::Int.extent(10), 40);
        assert_eq!(Datatype::Double.extent(3), 24);
    }

    #[test]
    fn contexts_are_distinct() {
        assert_ne!(CTX_WORLD, CTX_INTERNAL);
    }
}
