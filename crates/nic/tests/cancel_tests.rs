//! `MPI_Cancel` and tombstone mechanics: the ingredient of §II's wildcard
//! workaround ("post a receive from every possible source and then cancel
//! those receives that are unused"), including the interaction with an
//! ALPU that has no DELETE command.

use mpiq_cpusim::Core;
use mpiq_dessim::Time;
use mpiq_net::{Message, MsgHeader, MsgKind};
use mpiq_nic::firmware::{check_invariants, Firmware, WorkItem};
use mpiq_nic::{HostRequest, NicConfig, ReqId};

struct Rig {
    fw: Firmware,
    core: Core,
    now: Time,
}

impl Rig {
    fn new(cfg: NicConfig) -> Rig {
        Rig {
            fw: Firmware::new(1, cfg),
            core: Core::new(cfg.core),
            now: Time::from_us(1),
        }
    }

    fn run(&mut self, item: WorkItem) -> mpiq_nic::firmware::Effects {
        let (end, fx) = self.fw.process(item, self.now, &mut self.core);
        self.now = end + Time::from_ns(10);
        fx
    }

    fn rx(&mut self, msg: Message) -> mpiq_nic::firmware::Effects {
        let probed = self.fw.header_arrival(&msg, self.now);
        self.run(WorkItem::Rx { msg, probed })
    }

    fn flush_updates(&mut self) {
        let mut guard = 0;
        while self.fw.update_needed(true, self.now) {
            self.run(WorkItem::AlpuUpdate);
            guard += 1;
            assert!(guard < 128, "updates did not converge");
        }
        self.now += Time::from_us(10);
        self.fw.sync_hardware(self.now);
    }
}

fn rid(seq: u64) -> ReqId {
    ReqId { rank: 1, seq }
}

fn post_recv(seq: u64, src: Option<u16>, tag: Option<u16>) -> WorkItem {
    WorkItem::Host(HostRequest::PostRecv {
        req: rid(seq),
        src,
        context: 1,
        tag,
        len: 64,
    })
}

fn cancel(seq: u64) -> WorkItem {
    WorkItem::Host(HostRequest::CancelRecv { target: rid(seq) })
}

fn eager(tag: u16, seq: u64) -> Message {
    Message::new(
        MsgHeader {
            src_node: 0,
            dst_node: 1,
            dst_rank: 1,
            context: 1,
            src_rank: 0,
            tag,
            payload_len: 64,
            kind: MsgKind::Eager,
            seq,
        },
        Message::test_payload(64, seq as u8),
    )
}

#[test]
fn cancel_unlinks_software_entry() {
    let mut r = Rig::new(NicConfig::baseline());
    r.run(post_recv(0, Some(0), Some(5)));
    assert_eq!(r.fw.posted_len(), 1);
    let fx = r.run(cancel(0));
    assert_eq!(fx.completions.len(), 1);
    assert!(fx.completions[0].1.cancelled);
    assert_eq!(r.fw.posted_len(), 0);
    // The message now goes unexpected.
    let fx = r.rx(eager(5, 0));
    assert!(fx.completions.is_empty());
    assert_eq!(r.fw.unexpected_len(), 1);
}

#[test]
fn cancel_after_match_is_noop() {
    let mut r = Rig::new(NicConfig::baseline());
    r.run(post_recv(0, Some(0), Some(5)));
    let fx = r.rx(eager(5, 0));
    assert_eq!(fx.completions.len(), 1);
    let fx = r.run(cancel(0));
    assert!(fx.completions.is_empty(), "late cancel produces nothing");
}

#[test]
fn cancel_alpu_resident_entry_leaves_ghost() {
    let mut r = Rig::new(NicConfig::with_alpus(128));
    r.run(post_recv(0, Some(0), Some(5)));
    r.run(post_recv(1, Some(0), Some(6)));
    r.flush_updates();
    check_invariants(&r.fw);
    let fx = r.run(cancel(0));
    assert!(fx.completions[0].1.cancelled);
    assert_eq!(r.fw.posted_ghost_count(), 1);
    assert_eq!(r.fw.posted_len(), 2, "tombstone stays in the software queue");
    check_invariants(&r.fw); // prefix still equals hardware occupancy
    // A message for the cancelled receive must NOT match it: the ghost is
    // reclaimed and the message lands unexpected.
    let fx = r.rx(eager(5, 0));
    assert!(fx.completions.is_empty());
    assert_eq!(r.fw.unexpected_len(), 1);
    assert_eq!(r.fw.posted_ghost_count(), 0, "ghost reclaimed on hit");
    assert_eq!(r.fw.stats().ghost_rematches, 1);
    // The surviving receive still works.
    let fx = r.rx(eager(6, 1));
    assert_eq!(fx.completions.len(), 1);
    assert_eq!(fx.completions[0].1.req, rid(1));
}

#[test]
fn ghost_hit_rematches_to_correct_younger_entry() {
    // Two identical receives in the ALPU; cancel the older. A message
    // must hardware-hit the tombstone and re-match to the younger one.
    let mut r = Rig::new(NicConfig::with_alpus(128));
    r.run(post_recv(0, Some(0), Some(5)));
    r.run(post_recv(1, Some(0), Some(5)));
    r.flush_updates();
    r.run(cancel(0));
    let fx = r.rx(eager(5, 0));
    assert_eq!(fx.completions.len(), 1);
    assert_eq!(
        fx.completions[0].1.req,
        rid(1),
        "re-match must land on the younger live receive"
    );
    check_invariants(&r.fw);
}

#[test]
fn tombstone_buildup_triggers_purge() {
    let mut r = Rig::new(NicConfig::with_alpus(128));
    // Post and cancel enough receives to cross the purge threshold
    // (capacity/4 = 32 tombstones).
    for i in 0..40u64 {
        r.run(post_recv(i, Some(0), Some((100 + i) as u16)));
    }
    r.flush_updates();
    for i in 0..36u64 {
        r.run(cancel(i));
    }
    assert!(r.fw.posted_ghost_count() > 32);
    r.flush_updates(); // purge + rebuild session
    assert_eq!(r.fw.posted_ghost_count(), 0, "purge drops tombstones");
    assert_eq!(r.fw.posted_len(), 4, "live receives survive the rebuild");
    assert!(r.fw.stats().alpu_purges >= 1);
    check_invariants(&r.fw);
    // And they still match, via hardware.
    let fx = r.rx(eager(136, 0));
    assert_eq!(fx.completions.len(), 1);
    assert!(r.fw.stats().posted_alpu_hits >= 1);
}

#[test]
fn cancel_with_hash_strategy_unlinks_index() {
    let mut r = Rig::new(NicConfig::with_hash(16));
    r.run(post_recv(0, Some(0), Some(5)));
    r.run(cancel(0));
    let fx = r.rx(eager(5, 0));
    assert!(fx.completions.is_empty(), "cancelled entry must not match");
    assert_eq!(r.fw.unexpected_len(), 1);
}

#[test]
fn iprobe_peeks_without_consuming() {
    for nic in [NicConfig::baseline(), NicConfig::with_alpus(128)] {
        let mut r = Rig::new(nic);
        r.rx(eager(5, 0));
        r.flush_updates();
        // Hit: reports the envelope, leaves the message queued.
        let fx = r.run(WorkItem::Host(HostRequest::Probe {
            req: rid(10),
            src: Some(0),
            context: 1,
            tag: Some(5),
        }));
        assert_eq!(fx.completions.len(), 1);
        let c = fx.completions[0].1;
        assert!(!c.cancelled, "flag must be true");
        assert_eq!((c.source, c.tag, c.len), (0, 5, 64));
        assert_eq!(r.fw.unexpected_len(), 1, "probe must not consume");
        // Miss: flag == false via the cancelled marker.
        let fx = r.run(WorkItem::Host(HostRequest::Probe {
            req: rid(11),
            src: Some(0),
            context: 1,
            tag: Some(9),
        }));
        assert!(fx.completions[0].1.cancelled);
        // The real receive still drains it afterwards.
        let fx = r.run(post_recv(12, Some(0), Some(5)));
        assert_eq!(fx.completions.len(), 1);
        assert_eq!(r.fw.unexpected_len(), 0);
    }
}

#[test]
fn iprobe_wildcards_resolve_envelope() {
    let mut r = Rig::new(NicConfig::baseline());
    r.rx(eager(31, 3));
    let fx = r.run(WorkItem::Host(HostRequest::Probe {
        req: rid(20),
        src: None,
        context: 1,
        tag: None,
    }));
    let c = fx.completions[0].1;
    assert!(!c.cancelled);
    assert_eq!(c.tag, 31);
    assert_eq!(c.source, 0);
}
