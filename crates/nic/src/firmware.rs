//! The NIC firmware: the MPI engine of §V-C, with the ALPU management
//! heuristics of §IV.
//!
//! The firmware executes functionally in Rust; timing comes from running
//! emitted micro-op traces on the embedded [`Core`] and from explicit
//! interactions with the cycle-level [`Alpu`]s. Each externally triggered
//! activity is a [`WorkItem`]; the NIC component serializes items on the
//! (single) embedded processor.
//!
//! Protocol summary:
//!
//! * **Eager** (payload ≤ threshold): header+payload in one message. On a
//!   posted-queue match the Rx DMA moves the payload to the user buffer;
//!   unmatched payloads are buffered in NIC memory on the unexpected
//!   queue.
//! * **Rendezvous**: the request carries only the header. The receiver
//!   replies with a clear-to-send on match; the sender then DMAs the data
//!   across; the receiver DMAs it to the user buffer on arrival.
//!
//! ALPU usage follows §IV-B/C/D: the software keeps the full queues (the
//! ALPU returns a *key* into them), an insert session moves the
//! not-yet-inserted tail into the unit in batches, every match-eligible
//! header is answered by exactly one MATCH response which the firmware
//! pairs with its message, and a failed hardware match falls back to a
//! software search of the tail only.

use crate::config::{NicConfig, SwMatch};
use crate::hashmatch::PostedIndex;
use crate::dma::Dma;
use crate::host_iface::{Completion, HostRequest, ReqId};
use crate::queues::{Key, NicQueue};
use mpiq_alpu::{Alpu, AlpuConfig, AlpuKind, Command, Entry, MatchWord, Probe, Response, Tag};
use mpiq_cpusim::{Core, TraceBuilder};
use mpiq_dessim::trace::{
    AlpuCmdKind, DmaDir, QueueKind, QueueOpKind, SearchSource, TraceEvent,
};
use mpiq_dessim::{Clock, FaultPlan, Histogram, Time};
use mpiq_net::{Message, MsgHeader, MsgKind, NodeId};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// NIC memory map (addresses feed the cache model).
mod layout {
    /// Posted-receive queue entries.
    pub const POSTED_BASE: u64 = 0x10_0000;
    /// Unexpected queue entries.
    pub const UNEXP_BASE: u64 = 0x20_0000;
    /// Rx ring buffers.
    pub const RXBUF_BASE: u64 = 0x30_0000;
    /// Host request mailbox.
    pub const MAILBOX_BASE: u64 = 0x40_0000;
    /// Pending-send records.
    pub const SENDQ_BASE: u64 = 0x50_0000;
    /// Hash-bin headers (hash matching strategy only).
    pub const HASHBIN_BASE: u64 = 0x60_0000;
}

/// One unit of work for the embedded processor.
#[derive(Clone, Debug)]
pub enum WorkItem {
    /// A message arrived from the network. `probed` records whether the
    /// hardware delivered a header copy to the posted-receive ALPU at
    /// arrival time (the firmware must read exactly one response per
    /// probed header).
    Rx {
        /// The arrived message.
        msg: Message,
        /// Whether the posted-receive ALPU saw a copy of this header.
        probed: bool,
    },
    /// The host dispatched a request.
    Host(HostRequest),
    /// Move not-yet-inserted queue tails into the ALPUs (insert session).
    AlpuUpdate,
}

/// Externally visible effects of processing one work item.
#[derive(Debug, Default)]
pub struct Effects {
    /// Messages to inject into the fabric, with their injection times.
    pub tx: Vec<(Time, Message)>,
    /// Completions to deliver to the host, with their delivery times.
    pub completions: Vec<(Time, Completion)>,
}

/// A posted receive as the NIC stores it.
#[derive(Clone, Copy, Debug)]
pub struct RecvEntry {
    req: ReqId,
    word: MatchWord,
    mask: mpiq_alpu::MaskWord,
    len: u32,
    /// Tombstone: the receive was cancelled (or already consumed via a
    /// ghost-hit re-match) while its copy still sits in the ALPU, which
    /// has no DELETE command (Table I). Ghosts are skipped by software
    /// search and reclaimed when the hardware matches them.
    ghost: bool,
}

/// An unexpected message as the NIC stores it.
#[derive(Clone, Debug)]
struct UnexpEntry {
    header: MsgHeader,
    /// The eager payload was shed at admission because the staging pool
    /// ([`NicConfig::eager_buffer_bytes`]) was exhausted. Only the
    /// envelope survives; the eventual receive completes with
    /// `overflow = true` and `len = 0`.
    truncated: bool,
}

/// A parked rendezvous send awaiting its clear-to-send.
#[derive(Clone, Copy, Debug)]
struct SendEntry {
    req: ReqId,
    dst: NodeId,
    context: u16,
    tag: u16,
    len: u32,
    token: u64,
    addr: u64,
}

/// A send deferred behind an in-flight rendezvous to the same peer (see
/// `Firmware::deferred_sends`).
#[derive(Clone, Copy, Debug)]
struct PendingSend {
    req: ReqId,
    dst: NodeId,
    context: u16,
    tag: u16,
    len: u32,
}

/// A matched rendezvous awaiting its data message.
#[derive(Clone, Copy, Debug)]
struct RndvExpect {
    req: ReqId,
    len: u32,
    src_rank: u16,
    tag: u16,
}

/// The unit stopped responding within the firmware's wait budget: its
/// command FIFO never drained, or a response never surfaced. The caller
/// must quarantine the unit instead of hanging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AlpuWedged;

/// An ALPU plus its clock-domain bookkeeping and response stashes.
pub struct AlpuPort {
    alpu: Alpu,
    clock: Clock,
    synced_to: Time,
    /// StartAcks popped while looking for a match response.
    stash_start_ack: VecDeque<u32>,
    /// Match responses popped while looking for a StartAck.
    stash_match: VecDeque<Response>,
    /// Fault injector for this unit (bit flips on probe delivery, command
    /// stalls on command delivery). `None` = healthy hardware, no RNG
    /// draws at all.
    faults: Option<FaultPlan>,
    /// Probes delivered to the unit whose responses the firmware has not
    /// yet consumed. On a quarantine these become *orphans*: work items
    /// that must fall back to software instead of popping a response.
    probes_in_flight: u64,
    /// Cycles spent spinning on a full command FIFO (satellite stat: the
    /// old code spun silently and unboundedly).
    overflow_spins: u64,
    /// Cycles spent spinning on a full probe (header-copy) FIFO.
    probe_spins: u64,
    /// Probes abandoned because the probe FIFO never drained within the
    /// spin budget (each one wedges + quarantines the unit).
    probe_drops: u64,
}

impl AlpuPort {
    /// How many unit cycles the firmware will wait on the hardware before
    /// declaring it wedged ([`AlpuWedged`]). 4096 cycles ≈ 8.2 µs at
    /// 500 MHz: an order of magnitude above any legitimate wait in this
    /// model (worst observed: one insert batch draining, < 1 µs), and
    /// *below* the top of the injected stall range
    /// ([`mpiq_dessim::fault::STALL_MAX_CYCLES`] = 8192), so long stalls
    /// are detected rather than silently absorbed.
    const SPIN_BUDGET: u64 = 4096;

    fn new(
        cells: usize,
        block: usize,
        kind: AlpuKind,
        mhz: u64,
        probe_fifo: u32,
        faults: Option<FaultPlan>,
    ) -> AlpuPort {
        let mut cfg = AlpuConfig::new(cells, block, kind);
        if probe_fifo > 0 {
            cfg.header_fifo_depth = probe_fifo as usize;
        }
        AlpuPort {
            alpu: Alpu::new(cfg),
            clock: Clock::from_mhz(mhz),
            synced_to: Time::ZERO,
            stash_start_ack: VecDeque::new(),
            stash_match: VecDeque::new(),
            faults,
            probes_in_flight: 0,
            overflow_spins: 0,
            probe_spins: 0,
            probe_drops: 0,
        }
    }

    /// Advance the unit's clock domain up to `now`.
    pub fn sync(&mut self, now: Time) {
        if now <= self.synced_to {
            return;
        }
        let cycles = self.clock.cycles_in(now - self.synced_to);
        self.alpu.advance(cycles);
        self.synced_to += self.clock.cycles(cycles);
    }

    /// Push a header probe (hardware copy path) at time `now`. The fault
    /// plan may flip a stored match bit first (a particle strike between
    /// probes); the unit's parity checker latches the error for the
    /// firmware to discover when it reads the response.
    pub fn push_probe(&mut self, probe: Probe, now: Time) -> Result<(), AlpuWedged> {
        self.sync(now);
        if let Some(plan) = &mut self.faults {
            if let Some(flip) = plan.roll_flip() {
                self.alpu.inject_bit_flip(flip.cell_sel, flip.bit);
            }
        }
        // The default FIFO is deep enough in practice; on overflow the
        // hardware would backpressure the copy path. Spin the unit
        // forward until space frees — bounded and counted: a unit that
        // can't drain its FIFO ([`NicConfig::alpu_probe_fifo`]) within
        // the budget drops the probe and is declared wedged. Ticks land
        // on the unit's own clock edges, so time advances from the last
        // synced cycle boundary — never from the (possibly mid-cycle)
        // `now`.
        let mut spins = 0u64;
        while self.alpu.push_header(probe).is_err() {
            if spins >= Self::SPIN_BUDGET {
                self.probe_spins += spins;
                self.probe_drops += 1;
                return Err(AlpuWedged);
            }
            spins += 1;
            self.alpu.tick();
            self.synced_to += self.clock.period();
        }
        self.probe_spins += spins;
        self.probes_in_flight += 1;
        Ok(())
    }

    /// Bounded pop of the next *match* response at/after `now`; returns
    /// the response and the time it was available. StartAcks encountered
    /// on the way are stashed. [`AlpuWedged`] once the spin budget is
    /// exhausted (e.g. the unit is sitting out an injected stall).
    fn pop_match_response(&mut self, now: Time) -> Result<(Response, Time), AlpuWedged> {
        if let Some(r) = self.stash_match.pop_front() {
            self.probes_in_flight -= 1;
            return Ok((r, now));
        }
        self.sync(now);
        let mut spins = 0u64;
        loop {
            match self.alpu.pop_response() {
                Some(Response::StartAck { free }) => self.stash_start_ack.push_back(free),
                // A response found without spinning was ready at `now`;
                // one found by spinning becomes visible at the clock edge.
                Some(r) => {
                    self.probes_in_flight -= 1;
                    return Ok((r, self.synced_to.max(now)));
                }
                None => {
                    if spins >= Self::SPIN_BUDGET {
                        return Err(AlpuWedged);
                    }
                    spins += 1;
                    self.alpu.tick();
                    self.synced_to += self.clock.period();
                }
            }
        }
    }

    /// Bounded pop of a StartAck at/after `now`. Match responses
    /// encountered on the way are stashed for their owners.
    fn pop_start_ack(&mut self, now: Time) -> Result<(u32, Time), AlpuWedged> {
        if let Some(free) = self.stash_start_ack.pop_front() {
            return Ok((free, now));
        }
        self.sync(now);
        let mut spins = 0u64;
        loop {
            match self.alpu.pop_response() {
                Some(Response::StartAck { free }) => {
                    return Ok((free, self.synced_to.max(now)))
                }
                Some(r) => self.stash_match.push_back(r),
                None => {
                    if spins >= Self::SPIN_BUDGET {
                        return Err(AlpuWedged);
                    }
                    spins += 1;
                    self.alpu.tick();
                    self.synced_to += self.clock.period();
                }
            }
        }
    }

    /// Is the unit safe to open an insert session against? (§IV-C race:
    /// a failure computed before the inserts must not be paired with the
    /// post-insert tail.)
    fn probe_quiescent(&mut self, now: Time) -> bool {
        self.sync(now);
        self.stash_match.is_empty() && self.alpu.probe_quiescent()
    }

    /// Push a command, spinning the unit forward if its FIFO is full —
    /// bounded and counted (the old code spun silently forever). Returns
    /// when the write landed: `now` if the FIFO had room, else the clock
    /// edge that freed a slot. The fault plan may stall the unit's
    /// command pipeline first. [`AlpuWedged`] surfaces a unit that never
    /// frees a slot within the budget.
    fn push_command(&mut self, cmd: Command, now: Time) -> Result<Time, AlpuWedged> {
        self.sync(now);
        if let Some(plan) = &mut self.faults {
            if let Some(cycles) = plan.roll_stall() {
                self.alpu.inject_stall(cycles);
            }
        }
        let mut spins = 0u64;
        while self.alpu.push_command(cmd).is_err() {
            if spins >= Self::SPIN_BUDGET {
                self.overflow_spins += spins;
                return Err(AlpuWedged);
            }
            spins += 1;
            self.alpu.tick();
            self.synced_to += self.clock.period();
        }
        self.overflow_spins += spins;
        Ok(self.synced_to.max(now))
    }

    /// Side-channel reset (the RESET pin, not the RESET command): wipe
    /// the array, FIFOs, stashes, and any in-progress operation. Used by
    /// the quarantine path, where pushing a command into a wedged FIFO
    /// is exactly what doesn't work.
    fn reset_hard(&mut self) {
        self.alpu.hard_reset();
        self.stash_start_ack.clear();
        self.stash_match.clear();
    }

    /// Read-only access for assertions and diagnostics.
    pub fn alpu(&self) -> &Alpu {
        &self.alpu
    }
}

/// Firmware statistics relevant to the experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct FwStats {
    /// Posted-queue entries visited by software search.
    pub posted_entries_traversed: u64,
    /// Unexpected-queue entries visited by software search.
    pub unexpected_entries_traversed: u64,
    /// Headers resolved by the posted ALPU.
    pub posted_alpu_hits: u64,
    /// Receives resolved by the unexpected ALPU.
    pub unexpected_alpu_hits: u64,
    /// Messages that arrived with no matching receive.
    pub unexpected_arrivals: u64,
    /// ALPU insert-session count.
    pub insert_sessions: u64,
    /// Receives cancelled while ALPU-resident (tombstoned).
    pub ghosted_cancels: u64,
    /// Hardware matches that landed on tombstones and were re-matched in
    /// software.
    pub ghost_rematches: u64,
    /// Full RESET+rebuild purges forced by tombstone buildup.
    pub alpu_purges: u64,
    /// Probed headers resolved by a full software walk because their unit
    /// was quarantined (or their response died with it).
    pub alpu_fallbacks: u64,
    /// Hard resets forced by a wedged or corrupted unit (quarantines).
    pub alpu_resets: u64,
    /// Quarantined units brought back into service after cooldown.
    pub alpu_reengagements: u64,
    /// Parity errors detected when reading responses from a unit whose
    /// stored match words were corrupted.
    pub alpu_parity_errors: u64,
    /// Cycles spent spinning on a full ALPU command FIFO (bounded; a
    /// budget overrun quarantines the unit instead of hanging).
    pub alpu_overflow_spins: u64,
    /// Cycles spent spinning on a full ALPU probe (header-copy) FIFO.
    pub alpu_probe_spins: u64,
    /// Probes dropped because the probe FIFO never drained within the
    /// spin budget (the unit is wedged and quarantined).
    pub alpu_probe_drops: u64,
    /// High-water mark of the unexpected queue (entries).
    pub unexpected_highwater: u64,
    /// High-water mark of staged eager payload bytes.
    pub eager_bytes_highwater: u64,
    /// Unmatched eager arrivals admitted header-only because the staging
    /// pool ([`NicConfig::eager_buffer_bytes`]) was exhausted.
    pub truncated_admits: u64,
    /// Match-eligible arrivals refused at the wire because the unexpected
    /// queue was at [`NicConfig::max_unexpected`] (go-back-N retransmits
    /// them later — this is backpressure, not loss).
    pub admission_refused: u64,
    /// Eager sends demoted to the rendezvous path for lack of credit.
    pub credit_stalls: u64,
    /// Eager credits spent (one per credited eager send).
    pub credits_spent: u64,
    /// Eager credits granted back to senders as staged messages were
    /// consumed.
    pub grants_issued: u64,
    /// Credit grants lost to injected firmware leaks (`leak=P`).
    pub grants_leaked: u64,
    /// Rendezvous clear-to-sends lost to injected firmware leaks.
    pub cts_leaked: u64,
    /// Sends held back behind an in-flight rendezvous to the same peer
    /// (deadlock avoidance while the admission bound is armed).
    pub sends_deferred: u64,
    /// Peer nodes declared dead (crash-stop detection or a link past its
    /// retry budget with a fault schedule armed).
    pub peers_failed: u64,
    /// Operations finished with a typed `rank_failed` completion instead
    /// of hanging on a dead peer.
    pub ops_rank_failed: u64,
    /// ALPUs permanently retired by a scheduled hardware death (never
    /// re-engaged; matching pinned to the software path).
    pub alpus_killed: u64,
    /// Late rendezvous control frames from an already-declared-dead peer,
    /// dropped because their parked state was failed at detection time.
    pub stale_rndv_dropped: u64,
    /// Dead peers un-declared because they restarted under a new
    /// incarnation epoch (the sticky death cleared; traffic may resume).
    pub peers_revived: u64,
    /// Collectives accepted for NIC-side offload.
    pub coll_offloaded: u64,
    /// Collective offloads declined back to the host (`cancelled`
    /// completion; the host replays the identical step plan itself).
    pub coll_declined: u64,
    /// Collective step frames injected by the NIC engine.
    pub coll_steps_sent: u64,
    /// Collective step frames harvested from the unexpected queue by the
    /// NIC engine.
    pub coll_steps_recv: u64,
    /// Offloaded collectives finished with a typed `rank_failed`
    /// completion because a step peer died mid-plan.
    pub coll_rank_failed: u64,
}

/// Match-path latency histograms, one per entry source (§VI's latency
/// breakdown). Always recorded — a [`Histogram::record`] is a handful of
/// integer ops — and published to the metrics registry only when the
/// harness enabled it.
#[derive(Clone, Debug, Default)]
pub struct FwHists {
    /// Posted-queue matches resolved by the ALPU (response wait + §IV-D
    /// retrieval reads).
    pub posted_alpu_hit: Histogram,
    /// Posted-queue software searches through the hash-bin index.
    pub posted_hash: Histogram,
    /// Posted-queue software searches over the linear list (whole list in
    /// the baseline, tail after an ALPU miss, full redo after a ghost
    /// re-match).
    pub posted_linear: Histogram,
    /// Receive postings resolved by the unexpected ALPU.
    pub unexpected_alpu_hit: Histogram,
    /// Unexpected-queue linear software searches.
    pub unexpected_linear: Histogram,
}

/// One NIC-resident collective in flight: the shared step plan
/// ([`crate::coll::steps`]) plus a cursor. Steps run strictly in plan
/// order; a `Recv` step that no arrived frame satisfies parks the
/// instance until a collective frame arrives or the step's peer is
/// declared dead.
struct CollInstance {
    /// The host request answered by the single end-of-plan completion.
    req: ReqId,
    /// The shared step plan, identical to the host fallback's.
    steps: Vec<crate::coll::CollStep>,
    /// Next step to run.
    idx: usize,
    /// First dead peer encountered mid-plan: steps naming a dead peer
    /// are skipped and the end completion is typed `rank_failed` with
    /// this rank as its source. Never set for agreement instances —
    /// there, dead peers are the *payload*, not an error.
    failed: Option<u16>,
    /// True for [`crate::coll::CollOp::Agree`] instances: the failed-set
    /// mask below rides in every sent frame's `payload_len`, arriving
    /// frames OR theirs in, and the end completion reports the mask in
    /// `len` instead of typing a failure.
    agree: bool,
    /// Accumulated failed-rank bitmask (agreement instances only):
    /// seeded from the request's `len`, grown by every received mask and
    /// every dead peer met mid-plan (in step order, matching the host
    /// fallback's discovery order byte for byte).
    mask: u16,
}

/// The firmware: all NIC-resident MPI state plus the hardware ports.
pub struct Firmware {
    cfg: NicConfig,
    node: NodeId,
    posted: NicQueue<RecvEntry>,
    unexpected: NicQueue<UnexpEntry>,
    send_park: Vec<SendEntry>,
    rndv_expect: HashMap<(NodeId, u64), RndvExpect>,
    /// Sender-side eager credit pools, one per destination node, lazily
    /// seeded with [`NicConfig::eager_credits`]. Empty (and never
    /// touched) when credit flow control is unconfigured.
    credits: HashMap<NodeId, u32>,
    /// Receiver-side credit grants awaiting pickup by the NIC, which
    /// hands them to the link layer for piggybacking on ACKs.
    pending_grants: Vec<(NodeId, u32)>,
    /// Bytes of eager payload currently staged for unmatched arrivals
    /// (tracked only when [`NicConfig::eager_buffer_bytes`] is nonzero).
    eager_bytes_used: u64,
    /// Fault stream for firmware-level credit-grant / clear-to-send
    /// leaks (`leak=P`) — losses the link layer cannot recover, used to
    /// induce genuine deadlocks for the watchdog.
    leak_plan: Option<FaultPlan>,
    /// Sends held back because a rendezvous handshake to the same peer is
    /// still in flight (RTS sent, data not yet shipped). Only used when
    /// `max_unexpected` is armed: the receiver may then *refuse* frames,
    /// and a refused frame sequenced between a clear-to-send and its data
    /// would head-of-line-block the data forever. Serializing per peer
    /// keeps every obligation frame immediately deliverable. FIFO order
    /// per peer preserves MPI ordering.
    deferred_sends: std::collections::VecDeque<PendingSend>,
    /// Outstanding rendezvous handshakes per peer (RTS sent, data not yet
    /// queued to the wire).
    rndv_inflight: HashMap<NodeId, u32>,
    wire_seq: u64,
    host_seq: u64,
    dma_rx: Dma,
    dma_tx: Dma,
    /// Posted-receive ALPU, if configured.
    pub posted_alpu: Option<AlpuPort>,
    /// Unexpected-message ALPU, if configured.
    pub unexpected_alpu: Option<AlpuPort>,
    /// Hash index over the posted queue (hash matching strategy only).
    posted_index: Option<PostedIndex>,
    /// Live tombstones in the posted ALPU (see [`RecvEntry::ghost`]).
    posted_ghosts: usize,
    /// Posted ALPU quarantine: `Some(t)` = offline until an update item
    /// at/after `t` re-engages it. While quarantined every header takes
    /// the software path.
    posted_quarantined_until: Option<Time>,
    /// Same for the unexpected ALPU.
    unexpected_quarantined_until: Option<Time>,
    /// Probed headers whose responses were wiped by a posted-ALPU
    /// quarantine. Work items consume these (oldest-first, matching the
    /// work FIFO) and fall back to software instead of popping.
    posted_orphans: u64,
    /// Peer nodes declared dead. Operations naming these peers fail with
    /// a typed `rank_failed` completion at post time; state already
    /// parked on them was failed when the peer entered the set. A
    /// `BTreeSet` so any iteration is deterministic.
    dead_peers: BTreeSet<NodeId>,
    /// NIC-resident collectives in flight (offloaded step plans).
    coll: Vec<CollInstance>,
    /// Scheduled permanent ALPU death: both units are quarantined with
    /// the cooldown pinned to `Time::MAX`, so the re-engage check in
    /// `do_update` never fires and matching stays in software forever.
    alpus_dead: bool,
    stats: FwStats,
    hists: FwHists,
    /// Structured trace events buffered during a work item and drained by
    /// the NIC component into the simulation trace ring. Empty (and all
    /// pushes skipped) unless the NIC turned telemetry on, so untraced
    /// runs allocate nothing.
    telemetry: bool,
    events: Vec<(Time, TraceEvent)>,
}

impl Firmware {
    /// Build the firmware for `node` under `cfg`.
    pub fn new(node: NodeId, cfg: NicConfig) -> Firmware {
        // Each unit gets its own fault stream: site 0 is the fabric, so
        // node n's posted unit is site 2n+1 and its unexpected unit 2n+2.
        let mk = |setup: Option<crate::config::AlpuSetup>, kind, lane: u64| {
            setup.map(|s| {
                let plan = cfg
                    .faults
                    .alpu_active()
                    .then(|| FaultPlan::new(cfg.faults, 1 + 2 * node as u64 + lane));
                AlpuPort::new(
                    s.total_cells,
                    s.block_size,
                    kind,
                    cfg.alpu_mhz,
                    cfg.alpu_probe_fifo,
                    plan,
                )
            })
        };
        // Firmware-level leak faults get their own stream, disjoint from
        // the fabric (site 0) and ALPU (sites 2n+1, 2n+2) sites.
        let leak_plan = cfg
            .faults
            .leak_active()
            .then(|| FaultPlan::new(cfg.faults, 0x8000_0000 + node as u64));
        let posted_index = match cfg.sw_match {
            SwMatch::LinearList => None,
            SwMatch::HashBins { bins } => {
                assert!(
                    cfg.posted_alpu.is_none(),
                    "hash matching and the posted-receive ALPU are mutually exclusive"
                );
                Some(PostedIndex::new(bins))
            }
        };
        Firmware {
            node,
            posted: NicQueue::new(layout::POSTED_BASE, cfg.entry_bytes),
            unexpected: NicQueue::new(layout::UNEXP_BASE, cfg.entry_bytes),
            send_park: Vec::new(),
            rndv_expect: HashMap::new(),
            credits: HashMap::new(),
            pending_grants: Vec::new(),
            eager_bytes_used: 0,
            leak_plan,
            deferred_sends: std::collections::VecDeque::new(),
            rndv_inflight: HashMap::new(),
            wire_seq: 0,
            host_seq: 0,
            dma_rx: Dma::new(cfg.dma_bytes_per_ns, cfg.dma_setup),
            dma_tx: Dma::new(cfg.dma_bytes_per_ns, cfg.dma_setup),
            posted_alpu: mk(cfg.posted_alpu, AlpuKind::PostedReceive, 0),
            unexpected_alpu: mk(cfg.unexpected_alpu, AlpuKind::Unexpected, 1),
            posted_index,
            posted_ghosts: 0,
            posted_quarantined_until: None,
            unexpected_quarantined_until: None,
            posted_orphans: 0,
            dead_peers: BTreeSet::new(),
            coll: Vec::new(),
            alpus_dead: false,
            stats: FwStats::default(),
            hists: FwHists::default(),
            telemetry: false,
            events: Vec::new(),
            cfg,
        }
    }

    /// Turn structured event collection on or off (the NIC mirrors the
    /// simulation's tracing state here each event).
    pub fn set_telemetry(&mut self, on: bool) {
        self.telemetry = on;
    }

    /// Drain the buffered trace events (oldest first).
    pub fn take_events(&mut self) -> Vec<(Time, TraceEvent)> {
        std::mem::take(&mut self.events)
    }

    /// Match-path latency histograms.
    pub fn hists(&self) -> &FwHists {
        &self.hists
    }

    #[inline]
    fn ev(&mut self, at: Time, what: TraceEvent) {
        if self.telemetry {
            self.events.push((at, what));
        }
    }

    /// Statistics snapshot (folds in the per-port spin counters).
    pub fn stats(&self) -> FwStats {
        let mut s = self.stats;
        for port in [&self.posted_alpu, &self.unexpected_alpu].into_iter().flatten() {
            s.alpu_overflow_spins += port.overflow_spins;
            s.alpu_probe_spins += port.probe_spins;
            s.alpu_probe_drops += port.probe_drops;
        }
        s
    }

    /// Drain the credit grants queued for the link layer. Each entry is
    /// `(peer, credits)`; the NIC piggybacks them on ACKs to `peer`.
    pub fn take_pending_grants(&mut self) -> Vec<(NodeId, u32)> {
        std::mem::take(&mut self.pending_grants)
    }

    /// Credits returned by `peer` arrived on the link layer; refill the
    /// sender-side pool so parked eager traffic can flow again.
    pub fn credit_returned(&mut self, peer: NodeId, n: u32) {
        if self.cfg.eager_credits > 0 {
            let pool = self.credits.entry(peer).or_insert(self.cfg.eager_credits);
            *pool += n;
        }
    }

    /// The NIC refused a match-eligible arrival at the wire because the
    /// unexpected queue is at its bound (diagnostics only; the refusal
    /// itself happens in the NIC component before the link layer).
    pub fn note_admission_refused(&mut self) {
        self.stats.admission_refused += 1;
    }

    /// Bytes of eager payload currently staged (diagnostics).
    pub fn eager_bytes_used(&self) -> u64 {
        self.eager_bytes_used
    }

    /// Sender-side credits currently available toward `peer` (diagnostics;
    /// `None` when the pool is still at its unseeded default).
    pub fn credits_toward(&self, peer: NodeId) -> Option<u32> {
        self.credits.get(&peer).copied()
    }

    /// Spend one eager credit toward `dst_node`, or report starvation.
    fn take_credit(&mut self, dst_node: NodeId) -> bool {
        let pool = self.credits.entry(dst_node).or_insert(self.cfg.eager_credits);
        if *pool == 0 {
            self.stats.credit_stalls += 1;
            false
        } else {
            *pool -= 1;
            self.stats.credits_spent += 1;
            true
        }
    }

    /// Queue one credit grant back to `peer` (a staged eager message was
    /// consumed). The injected leak models a firmware bug the link layer
    /// cannot see: the grant simply never happens.
    fn grant_credit(&mut self, peer: NodeId) {
        if self.leak_plan.as_mut().is_some_and(|p| p.roll_leak()) {
            self.stats.grants_leaked += 1;
            return;
        }
        self.stats.grants_issued += 1;
        self.pending_grants.push((peer, 1));
    }

    /// Would `h` match a currently posted receive? Read-only, costs no
    /// simulated time: this models the hardware header-copy path (Fig. 1)
    /// inspecting the posted list at wire speed. The NIC's admission
    /// filter consults it when the unexpected queue sits at its bound — a
    /// frame destined for a posted receive never stages, so refusing it
    /// would deadlock the very receives that could drain the queue.
    pub fn would_match_posted(&self, h: &MsgHeader) -> bool {
        let word = self.header_word(h);
        self.posted.iter().any(|item| {
            !item.val.ghost
                && mpiq_alpu::match_types::masked_eq(item.val.word, word, item.val.mask)
        })
    }

    /// Posted-queue length (diagnostics/benchmarks).
    pub fn posted_len(&self) -> usize {
        self.posted.len()
    }

    /// Unexpected-queue length (diagnostics/benchmarks).
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }

    /// Rendezvous sends parked awaiting a clear-to-send (diagnostics).
    pub fn sends_parked(&self) -> usize {
        self.send_park.len()
    }

    /// Sends held behind an in-flight rendezvous handshake (diagnostics).
    pub fn deferred_len(&self) -> usize {
        self.deferred_sends.len()
    }

    /// Matched rendezvous receives awaiting their data (diagnostics).
    pub fn rndv_expected(&self) -> usize {
        self.rndv_expect.len()
    }

    /// Is the posted-receive ALPU currently worth probing? Always, at the
    /// default `engage_threshold` of 0; with a nonzero threshold this is
    /// the §VI-B optimization ("not use the ALPU until the list is at
    /// least 5 entries long"): headers bypass the unit while it holds
    /// nothing and the queue is short, eliminating the interaction
    /// penalty.
    pub fn posted_engaged(&self) -> bool {
        if self.posted_quarantined_until.is_some() {
            return false; // degraded mode: software matching only
        }
        match (&self.posted_alpu, self.cfg.posted_alpu) {
            (Some(_), Some(s)) => {
                self.posted.alpu_prefix() > 0 || self.posted.len() >= s.engage_threshold
            }
            _ => false,
        }
    }

    /// Same engagement rule for the unexpected-message ALPU.
    fn unexpected_engaged(&self) -> bool {
        if self.unexpected_quarantined_until.is_some() {
            return false;
        }
        match (&self.unexpected_alpu, self.cfg.unexpected_alpu) {
            (Some(_), Some(s)) => {
                self.unexpected.alpu_prefix() > 0 || self.unexpected.len() >= s.engage_threshold
            }
            _ => false,
        }
    }

    /// Is the posted ALPU currently quarantined? (diagnostics/tests)
    pub fn posted_quarantined(&self) -> bool {
        self.posted_quarantined_until.is_some()
    }

    /// Is the unexpected ALPU currently quarantined? (diagnostics/tests)
    pub fn unexpected_quarantined(&self) -> bool {
        self.unexpected_quarantined_until.is_some()
    }

    /// Advance both ALPU clock domains to `now` (test/diagnostic hook:
    /// lets in-flight insert commands drain so quiescent-state invariants
    /// can be checked).
    pub fn sync_hardware(&mut self, now: Time) {
        if let Some(p) = &mut self.posted_alpu {
            p.sync(now);
        }
        if let Some(p) = &mut self.unexpected_alpu {
            p.sync(now);
        }
    }

    /// Node hosting a global rank (block distribution).
    fn node_of(&self, rank: u32) -> NodeId {
        rank / self.cfg.ranks_per_node
    }

    /// Local process id of a global rank on its node.
    fn pid_of(&self, rank: u32) -> u16 {
        (rank % self.cfg.ranks_per_node) as u16
    }

    /// Effective matching context: the user context with the destination
    /// process's local id folded into the high bits, so co-located
    /// processes' queues cannot cross-match (the footnote-1 extension).
    fn eff_ctx(&self, context: u16, dst_rank: u32) -> u16 {
        if self.cfg.ranks_per_node <= 1 {
            return context;
        }
        debug_assert!(context < 256, "contexts limited to 8 bits with multi-process NICs");
        debug_assert!(self.cfg.ranks_per_node <= 8, "at most 8 processes per NIC");
        context | (self.pid_of(dst_rank) << 8)
    }

    /// The match word an incoming header probes with.
    fn header_word(&self, h: &MsgHeader) -> MatchWord {
        MatchWord::mpi(self.eff_ctx(h.context, h.dst_rank), h.src_rank, h.tag)
    }

    /// Hardware path: an incoming header is copied to the posted-receive
    /// ALPU's header FIFO the moment it arrives (Fig. 1), independent of
    /// when the processor gets to it. Returns whether a copy was
    /// delivered (the processor "can disable the delivery of duplicate
    /// information ... until it is initialized", §IV-C).
    pub fn header_arrival(&mut self, msg: &Message, now: Time) -> bool {
        if !matches!(msg.header.kind, MsgKind::Eager | MsgKind::RndvRequest) {
            return false; // protocol messages don't probe the match queues
        }
        if !self.posted_engaged() {
            return false;
        }
        let probe = Probe::exact(self.header_word(&msg.header));
        let port = self.posted_alpu.as_mut().expect("engaged implies present");
        match port.push_probe(probe, now) {
            Ok(()) => true,
            Err(AlpuWedged) => {
                // The copy path backpressured past the budget: the unit is
                // wedged. Quarantine it; this header goes software-only.
                self.quarantine_posted(now);
                false
            }
        }
    }

    /// Process one work item starting at `now` on `core`; returns the
    /// finish time and the external effects.
    pub fn process(&mut self, item: WorkItem, now: Time, core: &mut Core) -> (Time, Effects) {
        let mut fx = Effects::default();
        let end = match item {
            WorkItem::Rx { msg, probed } => {
                // A collective frame (internal context, partition-bit
                // tag) that lands in the unexpected queue may be exactly
                // what a parked NIC-resident collective is waiting on.
                let coll_frame = msg.header.context == crate::coll::COLL_CTX
                    && msg.header.tag & 0x8000 != 0;
                let mut end = self.do_rx(msg, probed, now, core, &mut fx);
                if coll_frame && !self.coll.is_empty() {
                    end = self.coll_poll(end, core, &mut fx);
                }
                end
            }
            WorkItem::Host(req) => self.do_host(req, now, core, &mut fx),
            WorkItem::AlpuUpdate => self.do_update(now, core, &mut fx),
        };
        (end, fx)
    }

    /// Would an insert session do anything right now? §IV-B: "the software
    /// ... should attempt to conglomerate insertions" — while the NIC has
    /// other work pending (`idle == false`), wait for at least
    /// `insert_batch_min` stragglers; an idle NIC flushes any tail.
    pub fn update_needed(&self, idle: bool, now: Time) -> bool {
        // A quarantine whose cooldown has expired needs an update item to
        // re-engage the unit.
        if self.posted_quarantined_until.is_some_and(|q| now >= q)
            || self.unexpected_quarantined_until.is_some_and(|q| now >= q)
        {
            return true;
        }
        if self.purge_needed() {
            return true;
        }
        let posted = self.posted_quarantined_until.is_none()
            && match (&self.posted_alpu, self.cfg.posted_alpu) {
                (Some(p), Some(s)) => {
                    self.posted.tail_len() > 0
                        && p.alpu.free() > 0
                        && self.posted.len() >= s.engage_threshold
                        && (idle || self.posted.tail_len() >= s.insert_batch_min)
                }
                _ => false,
            };
        let unexp = self.unexpected_quarantined_until.is_none()
            && match (&self.unexpected_alpu, self.cfg.unexpected_alpu) {
                (Some(p), Some(s)) => {
                    self.unexpected.tail_len() > 0
                        && p.alpu.free() > 0
                        && self.unexpected.len() >= s.engage_threshold
                        && (idle || self.unexpected.tail_len() >= s.insert_batch_min)
                }
                _ => false,
            };
        posted || unexp
    }

    // ------------------------------------------------------------------
    // Rx path
    // ------------------------------------------------------------------

    fn do_rx(
        &mut self,
        msg: Message,
        probed: bool,
        now: Time,
        core: &mut Core,
        fx: &mut Effects,
    ) -> Time {
        // Poll + header pickup from the rx ring.
        let rxslot = layout::RXBUF_BASE + (msg.header.seq % 64) * 128;
        let t = now
            + core
                .run(
                    &TraceBuilder::new().int(10).load(rxslot).load(rxslot + 64).build(),
                    now,
                )
                .elapsed;
        match msg.header.kind {
            MsgKind::Eager | MsgKind::RndvRequest => {
                self.rx_match_eligible(msg, probed, t, core, fx)
            }
            MsgKind::RndvReply { token } => self.rx_rndv_reply(msg, token, t, core, fx),
            MsgKind::RndvData { token } => self.rx_rndv_data(msg, token, t, core, fx),
            MsgKind::Ack { .. } | MsgKind::Nack { .. } => {
                unreachable!("link control frames are consumed by the NIC's link layer")
            }
        }
    }

    /// Eager or rendezvous-request header: match against the posted
    /// receive queue (hardware first if present, then the software tail).
    fn rx_match_eligible(
        &mut self,
        msg: Message,
        probed: bool,
        now: Time,
        core: &mut Core,
        fx: &mut Effects,
    ) -> Time {
        let h = msg.header;
        let probe_word = self.header_word(&h);
        let mut t = now;

        let mut matched: Option<Key> = None;
        let mut software_from = 0usize;
        // Set when the correct match is an ALPU-resident entry the
        // hardware did not delete (ghost-hit re-match): consume it
        // logically, leave a tombstone.
        let mut ghost_consume: Option<Key> = None;

        // The hardware response for this header, if one was read and can
        // be trusted. `None` with `probed == true` means the unit failed
        // under us (quarantine) — degrade to a full software walk.
        let mut hw_resp: Option<Response> = None;
        let mut hw_dur = Time::ZERO;
        if probed {
            if self.posted_orphans > 0 {
                // This header was probed before a quarantine wiped the
                // unit; its response no longer exists. One status read
                // discovers the unit is offline, then software takes over.
                self.posted_orphans -= 1;
                self.stats.alpu_fallbacks += 1;
                t += core
                    .run(&TraceBuilder::new().bus_read().int(4).build(), t)
                    .elapsed;
            } else {
                let resp_start = t;
                let port = self
                    .posted_alpu
                    .as_mut()
                    .expect("probed headers imply an ALPU");
                // Read the response the hardware computed for this header
                // (§IV-D: one response per header, in order).
                match port.pop_match_response(t) {
                    Ok((resp, t_resp)) => {
                        let poisoned = port.alpu.parity_error();
                        t = t_resp;
                        // §IV-D: the processor "should first retrieve the
                        // copy of the data provided to it and then
                        // retrieve the response" — four uncached
                        // local-bus reads (header copy, then status+tag).
                        t += core
                            .run(
                                &TraceBuilder::new()
                                    .bus_read()
                                    .bus_read()
                                    .bus_read()
                                    .bus_read()
                                    .int(4)
                                    .build(),
                                t,
                            )
                            .elapsed;
                        if poisoned {
                            // The status word carries the parity alarm:
                            // stored match bits were corrupted, so no
                            // response from this unit can be trusted.
                            self.quarantine_posted(t);
                            self.stats.alpu_fallbacks += 1;
                        } else {
                            hw_dur = t - resp_start;
                            self.ev(
                                resp_start,
                                TraceEvent::AlpuResponse {
                                    unit: QueueKind::Posted,
                                    hit: matches!(resp, Response::MatchSuccess { .. }),
                                    dur: hw_dur,
                                },
                            );
                            hw_resp = Some(resp);
                        }
                    }
                    Err(AlpuWedged) => {
                        // No response within the wait budget: the unit is
                        // stalled or dead. Quarantine consumes this very
                        // probe's orphan slot too.
                        self.quarantine_posted(t);
                        debug_assert!(self.posted_orphans > 0);
                        self.posted_orphans -= 1;
                        self.stats.alpu_fallbacks += 1;
                        t += core
                            .run(&TraceBuilder::new().bus_read().int(4).build(), t)
                            .elapsed;
                    }
                }
            }
        }
        if let Some(resp) = hw_resp {
            match resp {
                Response::MatchSuccess { tag } => {
                    let key = tag as Key;
                    let pos = self
                        .posted
                        .iter()
                        .position(|it| it.key == key)
                        .expect("ALPU cookie references a live entry");
                    if self.posted.get(pos).val.ghost {
                        // The hardware matched a tombstone (cancelled or
                        // already-consumed entry it still held). Reclaim
                        // it and redo the match in software over the FULL
                        // queue — the hardware's next candidate is
                        // unknowable without a DELETE command.
                        self.stats.ghost_rematches += 1;
                        self.posted_ghosts -= 1;
                        let item = self.posted.remove_key(key);
                        t += core
                            .run(&TraceBuilder::new().load(item.addr).int(12).build(), t)
                            .elapsed;
                        let mut visited = Vec::new();
                        let hit = self.posted.find_from(
                            0,
                            |e| {
                                !e.ghost
                                    && mpiq_alpu::match_types::masked_eq(
                                        e.word, probe_word, e.mask,
                                    )
                            },
                            &mut visited,
                        );
                        self.stats.posted_entries_traversed += visited.len() as u64;
                        let search_start = t;
                        let mut tb = TraceBuilder::new();
                        for addr in &visited {
                            tb = tb.load_chain(*addr).int(12);
                        }
                        t += core.run(&tb.build(), t).elapsed;
                        self.hists.posted_linear.record(t - search_start);
                        self.ev(
                            search_start,
                            TraceEvent::SwSearch {
                                queue: QueueKind::Posted,
                                source: SearchSource::Linear,
                                entries: visited.len() as u32,
                                dur: t - search_start,
                            },
                        );
                        match hit {
                            Some((pos, zkey)) => {
                                if self.posted.get(pos).in_alpu {
                                    // Consumed logically but still in the
                                    // hardware: becomes a ghost itself.
                                    ghost_consume = Some(zkey);
                                }
                                matched = Some(zkey);
                            }
                            None => {
                                matched = None;
                                software_from = usize::MAX; // already searched everything
                            }
                        }
                    } else {
                        matched = Some(key);
                        self.stats.posted_alpu_hits += 1;
                        self.hists.posted_alpu_hit.record(hw_dur);
                    }
                }
                Response::MatchFailure => {
                    software_from = self.posted.alpu_prefix();
                }
                Response::StartAck { .. } => unreachable!("stashed by pop_match_response"),
            }
        }

        if matched.is_none() && software_from != usize::MAX {
            debug_assert!(
                hw_resp.is_some() || software_from == 0,
                "a degraded match must search the whole list"
            );
            let (hit, visited, hash_overhead) = match &self.posted_index {
                Some(index) => {
                    // Hash strategy: bin walk + mandatory wildcard walk.
                    let p = index.probe(probe_word);
                    (p.hit, p.visited, 10u32)
                }
                None => {
                    // Linear list (whole list in the baseline, tail only
                    // after an ALPU miss).
                    let mut visited = Vec::new();
                    let hit = self.posted.find_from(
                        software_from,
                        |e| {
                            !e.ghost
                                && mpiq_alpu::match_types::masked_eq(e.word, probe_word, e.mask)
                        },
                        &mut visited,
                    );
                    (hit.map(|(_, key)| key), visited, 0)
                }
            };
            self.stats.posted_entries_traversed += visited.len() as u64;
            let search_start = t;
            let mut tb = TraceBuilder::new().int(hash_overhead);
            for addr in &visited {
                tb = tb.load_chain(*addr).int(12);
            }
            t += core.run(&tb.build(), t).elapsed;
            let source = if self.posted_index.is_some() {
                self.hists.posted_hash.record(t - search_start);
                SearchSource::HashIndex
            } else {
                self.hists.posted_linear.record(t - search_start);
                SearchSource::Linear
            };
            self.ev(
                search_start,
                TraceEvent::SwSearch {
                    queue: QueueKind::Posted,
                    source,
                    entries: visited.len() as u32,
                    dur: t - search_start,
                },
            );
            matched = hit;
        }

        match matched {
            Some(key) => {
                // Direct access to the entry + unlink. A ghost-consume
                // keeps the entry as a tombstone (its hardware copy is
                // still live); everything else unlinks for real.
                let item = if ghost_consume == Some(key) {
                    let pos = self
                        .posted
                        .iter()
                        .position(|it| it.key == key)
                        .expect("ghost target is live");
                    let copy = self.posted.get(pos).clone();
                    self.posted_mark_ghost(key);
                    copy
                } else {
                    self.posted.remove_key(key)
                };
                self.ev(
                    t,
                    TraceEvent::QueueOp {
                        queue: QueueKind::Posted,
                        op: if ghost_consume == Some(key) {
                            QueueOpKind::Ghost
                        } else {
                            QueueOpKind::Remove
                        },
                        depth: self.posted.len() as u32,
                    },
                );
                t += core
                    .run(
                        &TraceBuilder::new()
                            .load(item.addr)
                            .int(8)
                            .store(item.addr)
                            .build(),
                        t,
                    )
                    .elapsed;
                if let Some(index) = &mut self.posted_index {
                    // Hash maintenance on every successful match: scan the
                    // bin to unlink, then write the bin header back.
                    let rm = index.remove(key);
                    let mut tb = TraceBuilder::new().int(10);
                    for addr in rm.iter().take(8) {
                        tb = tb.load(*addr);
                    }
                    let bin = layout::HASHBIN_BASE
                        + (index.bin_index(probe_word) as u64) * 64;
                    tb = tb.store(bin);
                    t += core.run(&tb.build(), t).elapsed;
                }
                // If the entry was ALPU-resident the hardware already
                // deleted its copy at match time. Hardware occupancy can
                // transiently trail the software prefix by the number of
                // still-unread MATCH SUCCESS responses (back-to-back
                // probes resolve in hardware before firmware catches up);
                // the two reconverge at quiesce (`check_invariants`).
                let entry = item.val;
                match h.kind {
                    MsgKind::Eager => {
                        let comp = Completion {
                            req: entry.req,
                            source: h.src_rank,
                            tag: h.tag,
                            // Truncate to the posted buffer, like MPI does.
                            len: h.payload_len.min(entry.len),
                            cancelled: false,
                            overflow: false,
                            rank_failed: false,
                        };
                        if h.payload_len > 0 {
                            // DMA payload to the user buffer.
                            let (start, done) = self.dma_rx.transfer(h.payload_len as u64, t);
                            self.ev(
                                start,
                                TraceEvent::Dma {
                                    dir: DmaDir::Rx,
                                    bytes: h.payload_len as u64,
                                    dur: done - start,
                                },
                            );
                            fx.completions.push((done + self.cfg.completion_cost, comp));
                        } else {
                            fx.completions.push((t + self.cfg.completion_cost, comp));
                        }
                        // Matched on arrival: the message never staged in
                        // NIC memory, so its credit returns immediately.
                        if self.cfg.eager_credits > 0
                            && h.payload_len > 0
                            && h.src_node != self.node
                        {
                            self.grant_credit(h.src_node);
                        }
                        t += core.run(&TraceBuilder::new().int(10).build(), t).elapsed;
                    }
                    MsgKind::RndvRequest => {
                        // Clear-to-send back to the sender; data will
                        // arrive as RndvData carrying our token.
                        self.rndv_expect.insert(
                            (h.src_node, h.seq),
                            RndvExpect {
                                req: entry.req,
                                len: h.payload_len,
                                src_rank: h.src_rank,
                                tag: h.tag,
                            },
                        );
                        t += core.run(&TraceBuilder::new().int(14).build(), t).elapsed;
                        let reply = self.make_msg(
                            h.src_rank as u32,
                            entry.req.rank,
                            h.context,
                            h.tag,
                            0,
                            MsgKind::RndvReply { token: h.seq },
                        );
                        // Injected firmware leak: the clear-to-send is
                        // built but never queued — the sender parks
                        // forever. The link layer can't recover what was
                        // never transmitted; only the watchdog sees it.
                        if self.leak_plan.as_mut().is_some_and(|p| p.roll_leak()) {
                            self.stats.cts_leaked += 1;
                        } else {
                            let at = self.inject(reply.wire_bytes(), t);
                            fx.tx.push((at, reply));
                        }
                    }
                    _ => unreachable!(),
                }
            }
            None => {
                // Unexpected: append to the unexpected queue; eager
                // payloads are buffered in NIC memory by the Rx DMA —
                // unless the staging pool is exhausted, in which case
                // only the envelope is kept (header-only admit) and the
                // eventual receive reports `overflow`.
                self.stats.unexpected_arrivals += 1;
                let staged = h.kind == MsgKind::Eager && h.payload_len > 0;
                let truncated = staged
                    && self.cfg.eager_buffer_bytes > 0
                    && self.eager_bytes_used + h.payload_len as u64
                        > self.cfg.eager_buffer_bytes;
                if truncated {
                    self.stats.truncated_admits += 1;
                } else if staged && self.cfg.eager_buffer_bytes > 0 {
                    self.eager_bytes_used += h.payload_len as u64;
                    self.stats.eager_bytes_highwater =
                        self.stats.eager_bytes_highwater.max(self.eager_bytes_used);
                }
                let (_, addr) = self.unexpected.push(UnexpEntry { header: h, truncated });
                self.stats.unexpected_highwater = self
                    .stats
                    .unexpected_highwater
                    .max(self.unexpected.len() as u64);
                self.ev(
                    t,
                    TraceEvent::QueueOp {
                        queue: QueueKind::Unexpected,
                        op: QueueOpKind::Push,
                        depth: self.unexpected.len() as u32,
                    },
                );
                t += core
                    .run(
                        &TraceBuilder::new()
                            .int(10)
                            .store(addr)
                            .store(addr + 32)
                            .build(),
                        t,
                    )
                    .elapsed;
                if staged && !truncated {
                    let (start, done) = self.dma_rx.transfer(h.payload_len as u64, t);
                    self.ev(
                        start,
                        TraceEvent::Dma {
                            dir: DmaDir::Rx,
                            bytes: h.payload_len as u64,
                            dur: done - start,
                        },
                    );
                }
            }
        }
        t
    }

    fn rx_rndv_reply(
        &mut self,
        msg: Message,
        token: u64,
        now: Time,
        core: &mut Core,
        fx: &mut Effects,
    ) -> Time {
        // Find the parked send (short list scan).
        let mut tb = TraceBuilder::new().int(8);
        let pos = self
            .send_park
            .iter()
            .position(|s| s.token == token && s.dst / self.cfg.ranks_per_node == msg.header.src_node);
        for entry in self.send_park.iter().take(pos.unwrap_or(0) + 1) {
            tb = tb.load_chain(entry.addr).int(6);
        }
        let mut t = now + core.run(&tb.build(), now).elapsed;
        let Some(pos) = pos else {
            // A clear-to-send whose parked send we already failed when
            // its peer was declared dead (a link can die asymmetrically:
            // the reply squeaked through after detection). Drop it.
            assert!(
                self.dead_peers.contains(&msg.header.src_node),
                "rndv reply for unknown send"
            );
            self.stats.stale_rndv_dropped += 1;
            return t;
        };
        let park = self.send_park.remove(pos);
        // DMA the payload from host memory and ship it.
        let (_, dma_done) = self.dma_tx.transfer(park.len as u64, t);
        t += core.run(&TraceBuilder::new().int(10).build(), t).elapsed;
        let data = Message::new(
            MsgHeader {
                src_node: self.node,
                dst_node: self.node_of(park.dst),
                dst_rank: park.dst,
                context: park.context,
                src_rank: park.req.rank as u16,
                tag: park.tag,
                payload_len: park.len,
                kind: MsgKind::RndvData { token },
                seq: self.next_seq(),
            },
            Message::test_payload(park.len as usize, token as u8),
        );
        let at = dma_done.max(t);
        fx.tx.push((at, data));
        // Local send completion once the data left.
        fx.completions.push((
            at + self.cfg.completion_cost,
            Completion {
                req: park.req,
                source: park.req.rank as u16,
                tag: park.tag,
                len: park.len,
                cancelled: false,
                overflow: false,
                rank_failed: false,
            },
        ));
        // The data frame is queued (it sequences ahead of anything we
        // send from here on): the handshake to this peer is over, release
        // sends held behind it — until one re-enters rendezvous, which
        // re-arms the gate.
        let peer = msg.header.src_node;
        if self.cfg.max_unexpected > 0 {
            if let Some(n) = self.rndv_inflight.get_mut(&peer) {
                *n = n.saturating_sub(1);
            }
            t = self.release_deferred(peer, t, core, fx);
        }
        t
    }

    /// Re-issue sends deferred behind a now-finished rendezvous to
    /// `peer`, in FIFO order, stopping when one starts a new handshake
    /// (the gate re-arms) or none remain.
    fn release_deferred(
        &mut self,
        peer: NodeId,
        mut t: Time,
        core: &mut Core,
        fx: &mut Effects,
    ) -> Time {
        while self.rndv_inflight.get(&peer).copied().unwrap_or(0) == 0 {
            let Some(pos) = self
                .deferred_sends
                .iter()
                .position(|p| self.node_of(p.dst) == peer)
            else {
                break;
            };
            let p = self.deferred_sends.remove(pos).expect("position valid");
            t = self.send_now(p.req, p.dst, p.context, p.tag, p.len, t, core, fx);
        }
        t
    }

    fn rx_rndv_data(
        &mut self,
        msg: Message,
        token: u64,
        now: Time,
        core: &mut Core,
        fx: &mut Effects,
    ) -> Time {
        let mut t = now + core.run(&TraceBuilder::new().int(12).build(), now).elapsed;
        let Some(exp) = self.rndv_expect.remove(&(msg.header.src_node, token)) else {
            // Data for an expectation we failed when the sender was
            // declared dead — the frame outlived the declaration. Drop it.
            assert!(
                self.dead_peers.contains(&msg.header.src_node),
                "rndv data for unknown token"
            );
            self.stats.stale_rndv_dropped += 1;
            return t;
        };
        let (_, done) = self.dma_rx.transfer(exp.len as u64, t);
        t += core.run(&TraceBuilder::new().int(6).build(), t).elapsed;
        fx.completions.push((
            done + self.cfg.completion_cost,
            Completion {
                req: exp.req,
                source: exp.src_rank,
                tag: exp.tag,
                len: exp.len,
                cancelled: false,
                overflow: false,
                rank_failed: false,
            },
        ));
        t
    }

    // ------------------------------------------------------------------
    // Host request path
    // ------------------------------------------------------------------

    fn do_host(
        &mut self,
        req: HostRequest,
        now: Time,
        core: &mut Core,
        fx: &mut Effects,
    ) -> Time {
        // Pick the request out of the mailbox.
        let slot = layout::MAILBOX_BASE + (self.host_seq % 16) * 64;
        self.host_seq += 1;
        let t = now
            + core
                .run(&TraceBuilder::new().int(8).load(slot).build(), now)
                .elapsed;
        match req {
            HostRequest::CancelRecv { target } => self.do_cancel(target, t, core, fx),
            HostRequest::Probe {
                req,
                src,
                context,
                tag,
            } => self.do_probe(req, src, context, tag, t, core, fx),
            HostRequest::PostSend {
                req,
                dst,
                context,
                tag,
                len,
            } => self.do_post_send(req, dst, context, tag, len, t, core, fx),
            HostRequest::PostRecv {
                req,
                src,
                context,
                tag,
                len,
            } => self.do_post_recv(req, src, context, tag, len, t, core, fx),
            HostRequest::Collective {
                req,
                op,
                root,
                len,
                instance,
                n,
            } => self.do_collective(req, op, root, len, instance, n, t, core, fx),
        }
    }

    // ------------------------------------------------------------------
    // NIC-offloaded collectives
    // ------------------------------------------------------------------

    /// Accept (or decline) a whole-collective offload. A declined
    /// request answers immediately with `cancelled = true` and the host
    /// replays the identical step plan itself — so the wire pattern is
    /// the same either way and mixed offload/fallback ranks interoperate.
    ///
    /// Decline conditions: offload not configured, multi-process nodes
    /// (the engine matches on the bare context), payloads past the eager
    /// threshold (rendezvous steps would need host buffers), overload
    /// protection armed (credits and staging accounting belong to the
    /// host path), or degraded/dead ALPUs (quarantine recovery already
    /// owns the unexpected queue).
    #[allow(clippy::too_many_arguments)]
    fn do_collective(
        &mut self,
        req: ReqId,
        op: crate::coll::CollOp,
        root: u32,
        len: u32,
        instance: u16,
        n: u32,
        now: Time,
        core: &mut Core,
        fx: &mut Effects,
    ) -> Time {
        let t = now + core.run(&TraceBuilder::new().int(12).build(), now).elapsed;
        let decline = !self.cfg.coll_offload
            || self.cfg.ranks_per_node > 1
            || len > self.cfg.eager_threshold
            || self.cfg.overload_active()
            || self.posted_quarantined()
            || self.unexpected_quarantined()
            || self.alpus_dead;
        if decline {
            self.stats.coll_declined += 1;
            fx.completions.push((
                t + self.cfg.completion_cost,
                Completion {
                    req,
                    source: req.rank as u16,
                    tag: 0,
                    len: 0,
                    cancelled: true,
                    overflow: false,
                    rank_failed: false,
                },
            ));
            return t;
        }
        self.stats.coll_offloaded += 1;
        let agree = op == crate::coll::CollOp::Agree;
        // Agreement seeds only from the host's view (carried in `len`);
        // peers this NIC already declared dead are discovered *in step
        // order* (each skipped step ORs its bit in), exactly as the host
        // fallback discovers them through typed per-step failures — so
        // both paths stamp identical masks on identical frames.
        let mask = if agree { len as u16 } else { 0 };
        self.coll.push(CollInstance {
            req,
            steps: crate::coll::steps(op, req.rank, n, root, len, instance),
            idx: 0,
            failed: None,
            agree,
            mask,
        });
        self.coll_poll(t, core, fx)
    }

    /// Are any offloaded collectives in flight? (diagnostics/tests)
    pub fn coll_pending(&self) -> bool {
        !self.coll.is_empty()
    }

    /// Drive every NIC-resident collective as far as its plan allows,
    /// emitting the single end-of-plan completion for each instance that
    /// finishes. Called when an instance is created, when a collective
    /// frame arrives, and when a peer is declared dead.
    fn coll_poll(&mut self, now: Time, core: &mut Core, fx: &mut Effects) -> Time {
        let mut t = now;
        let mut i = 0;
        while i < self.coll.len() {
            t = self.coll_advance(i, t, core, fx);
            if self.coll[i].idx >= self.coll[i].steps.len() {
                let inst = self.coll.swap_remove(i);
                if inst.failed.is_some() {
                    self.stats.coll_rank_failed += 1;
                }
                fx.completions.push((
                    t + self.cfg.completion_cost,
                    Completion {
                        req: inst.req,
                        source: inst.failed.unwrap_or(inst.req.rank as u16),
                        tag: 0,
                        // Agreement returns its accumulated failed-set
                        // mask as the completion length — failures are
                        // the collective's *output*, never an error.
                        len: if inst.agree { inst.mask as u32 } else { 0 },
                        cancelled: false,
                        overflow: false,
                        rank_failed: inst.failed.is_some(),
                    },
                ));
                // `swap_remove` moved the former tail into slot `i`:
                // re-examine it before moving on.
            } else {
                i += 1;
            }
        }
        t
    }

    /// Run instance `i`'s steps in plan order until one parks (a `Recv`
    /// whose frame has not arrived) or the plan ends. `Send` steps inject
    /// the frame straight from NIC memory — no host DMA, no per-step
    /// completion: that is the offload. `Recv` steps harvest from the
    /// unexpected queue through [`Self::match_unexpected`] (keeping the
    /// unexpected ALPU's shadow in sync); harvest is tried *before* the
    /// dead-peer check so a frame sent before its sender died is still
    /// consumed, exactly as `do_post_recv` orders it.
    fn coll_advance(&mut self, i: usize, mut t: Time, core: &mut Core, fx: &mut Effects) -> Time {
        loop {
            let (req, step) = {
                let inst = &self.coll[i];
                match inst.steps.get(inst.idx) {
                    Some(s) => (inst.req, *s),
                    None => return t,
                }
            };
            let peer = self.node_of(step.peer);
            match step.dir {
                crate::coll::Dir::Send => {
                    if peer != self.node && self.dead_peers.contains(&peer) {
                        let inst = &mut self.coll[i];
                        if inst.agree {
                            inst.mask |= 1 << step.peer.min(15);
                        } else {
                            inst.failed.get_or_insert(step.peer as u16);
                        }
                        inst.idx += 1;
                        continue;
                    }
                    // Agreement frames carry the *current* mask, not the
                    // plan's static length — the mask is the data plane.
                    let len =
                        if self.coll[i].agree { self.coll[i].mask as u32 } else { step.len };
                    let msg = self.make_msg(
                        step.peer,
                        req.rank,
                        crate::coll::COLL_CTX,
                        step.tag,
                        len,
                        MsgKind::Eager,
                    );
                    let at = self.inject(msg.wire_bytes(), t);
                    fx.tx.push((at, msg));
                    self.stats.coll_steps_sent += 1;
                    t += core.run(&TraceBuilder::new().int(6).bus_write().build(), t).elapsed;
                    self.coll[i].idx += 1;
                }
                crate::coll::Dir::Recv => {
                    let probe = Probe::recv(
                        self.eff_ctx(crate::coll::COLL_CTX, req.rank),
                        Some(step.peer as u16),
                        Some(step.tag),
                    );
                    let (t2, matched) = self.match_unexpected(probe, t, core);
                    t = t2;
                    match matched {
                        Some(key) => {
                            let item = self.unexpected.remove_key(key);
                            self.ev(
                                t,
                                TraceEvent::QueueOp {
                                    queue: QueueKind::Unexpected,
                                    op: QueueOpKind::Remove,
                                    depth: self.unexpected.len() as u32,
                                },
                            );
                            let h = item.val.header;
                            t += core
                                .run(
                                    &TraceBuilder::new()
                                        .load(item.addr)
                                        .int(10)
                                        .store(item.addr)
                                        .build(),
                                    t,
                                )
                                .elapsed;
                            // The payload is combined in NIC memory — no
                            // host DMA — but the staged bytes and the
                            // sender's credit are released exactly as a
                            // host receive would release them. (Offload
                            // is declined while overload protection is
                            // armed, so these branches are dormant; they
                            // keep the accounting honest regardless.)
                            if h.payload_len > 0
                                && !item.val.truncated
                                && self.cfg.eager_buffer_bytes > 0
                            {
                                self.eager_bytes_used = self
                                    .eager_bytes_used
                                    .saturating_sub(h.payload_len as u64);
                            }
                            if self.cfg.eager_credits > 0
                                && h.payload_len > 0
                                && h.src_node != self.node
                            {
                                self.grant_credit(h.src_node);
                            }
                            self.stats.coll_steps_recv += 1;
                            let inst = &mut self.coll[i];
                            if inst.agree {
                                inst.mask |= h.payload_len as u16;
                            }
                            inst.idx += 1;
                        }
                        None => {
                            if peer != self.node && self.dead_peers.contains(&peer) {
                                let inst = &mut self.coll[i];
                                if inst.agree {
                                    inst.mask |= 1 << step.peer.min(15);
                                } else {
                                    inst.failed.get_or_insert(step.peer as u16);
                                }
                                inst.idx += 1;
                                continue;
                            }
                            // Park: the frame is still in flight.
                            return t;
                        }
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn do_post_send(
        &mut self,
        req: ReqId,
        dst: NodeId,
        context: u16,
        tag: u16,
        len: u32,
        now: Time,
        core: &mut Core,
        fx: &mut Effects,
    ) -> Time {
        let t = now + core.run(&TraceBuilder::new().int(12).build(), now).elapsed;
        // Deadlock avoidance under the admission bound: while a
        // rendezvous handshake to this peer is still in flight (RTS out,
        // data not yet shipped), any further frame we sequence to that
        // peer could be refused at the receiver and head-of-line-block
        // the rendezvous data behind it in the go-back-N window. Hold the
        // send back; it is released the moment the data frame is queued.
        // FIFO per peer, so MPI ordering is untouched; unarmed
        // configurations never reach this path.
        let peer = self.node_of(dst);
        // ULFM-style typed failure at post time: the peer is already
        // declared dead, so this send can never complete — finish it now
        // instead of parking it forever.
        if peer != self.node && self.dead_peers.contains(&peer) {
            self.stats.ops_rank_failed += 1;
            fx.completions.push((
                t + self.cfg.completion_cost,
                Completion {
                    req,
                    source: dst as u16,
                    tag,
                    len,
                    cancelled: false,
                    overflow: false,
                    rank_failed: true,
                },
            ));
            return t;
        }
        if self.cfg.max_unexpected > 0
            && peer != self.node
            && (self.rndv_inflight.get(&peer).copied().unwrap_or(0) > 0
                || self.deferred_sends.iter().any(|p| self.node_of(p.dst) == peer))
        {
            self.stats.sends_deferred += 1;
            self.deferred_sends.push_back(PendingSend {
                req,
                dst,
                context,
                tag,
                len,
            });
            return t;
        }
        self.send_now(req, dst, context, tag, len, t, core, fx)
    }

    /// The actual send path (eager or rendezvous), past the deferral
    /// gate. `t` already includes the dispatch bookkeeping cost.
    #[allow(clippy::too_many_arguments)]
    fn send_now(
        &mut self,
        req: ReqId,
        dst: NodeId,
        context: u16,
        tag: u16,
        len: u32,
        mut t: Time,
        core: &mut Core,
        fx: &mut Effects,
    ) -> Time {
        // Credit flow control: each nonzero-payload eager message to a
        // remote node spends one credit; at zero credit the send demotes
        // to the rendezvous path below, staging the payload on *this*
        // side until the receiver matches. Zero-payload messages (barrier
        // tokens and other control traffic) are exempt so synchronization
        // can never starve behind bulk data.
        let eager = len <= self.cfg.eager_threshold
            && (len == 0
                || self.cfg.eager_credits == 0
                || self.node_of(dst) == self.node
                || self.take_credit(self.node_of(dst)));
        if eager {
            // Eager: DMA payload from host, send header+payload.
            let msg = self.make_msg(dst, req.rank, context, tag, len, MsgKind::Eager);
            let at = if len > 0 {
                let (_, done) = self.dma_tx.transfer(len as u64, t);
                done
            } else {
                self.inject(msg.wire_bytes(), t)
            };
            fx.completions.push((
                at + self.cfg.completion_cost,
                Completion {
                    req,
                    source: req.rank as u16,
                    tag,
                    len,
                    cancelled: false,
                    overflow: false,
                    rank_failed: false,
                },
            ));
            fx.tx.push((at, msg));
            t += core.run(&TraceBuilder::new().int(6).bus_write().build(), t).elapsed;
        } else {
            // Rendezvous: header-only request; park the send.
            if self.cfg.max_unexpected > 0 && self.node_of(dst) != self.node {
                *self.rndv_inflight.entry(self.node_of(dst)).or_insert(0) += 1;
            }
            let msg = self.make_msg(dst, req.rank, context, tag, len, MsgKind::RndvRequest);
            let token = msg.header.seq;
            let addr = layout::SENDQ_BASE + (self.send_park.len() as u64) * 64;
            self.send_park.push(SendEntry {
                req,
                dst,
                context,
                tag,
                len,
                token,
                addr,
            });
            t += core
                .run(&TraceBuilder::new().int(8).store(addr).build(), t)
                .elapsed;
            let at = self.inject(msg.wire_bytes(), t);
            fx.tx.push((at, msg));
        }
        t
    }

    /// Probe the unexpected queue for `probe` — hardware first when the
    /// unexpected ALPU is engaged, software walk otherwise (or after a
    /// miss/fallback) — charging the full §IV-D retrieval and search
    /// costs. Returns the finish time and the matched key, if any. This
    /// is the matching core both `do_post_recv` and the collective
    /// engine's harvest path go through: routing *every* consumer here
    /// keeps the ALPU's hardware shadow in sync with the software queue
    /// (a hardware match deletes its cell, so the software removal must
    /// always be paired with the probe that triggered it).
    fn match_unexpected(
        &mut self,
        probe: Probe,
        now: Time,
        core: &mut Core,
    ) -> (Time, Option<Key>) {
        let mut t = now;
        let mut matched: Option<Key> = None;
        let mut software_from = 0usize;
        let mut hw_dur = Time::ZERO;

        if self.unexpected_engaged() {
            let resp_start = t;
            let port = self
                .unexpected_alpu
                .as_mut()
                .expect("engaged implies present");
            // Hardware copy of the new receive probes the unexpected
            // unit. This exchange is synchronous within the work item, so
            // a failure needs no orphan bookkeeping: quarantine and walk
            // the whole queue in software right here.
            let mut hw_resp: Option<Response> = None;
            let mut wedged = false;
            match port.push_probe(probe, t) {
                Err(AlpuWedged) => wedged = true,
                Ok(()) => match port.pop_match_response(t) {
                    Err(AlpuWedged) => wedged = true,
                    Ok((resp, t_resp)) => {
                        let poisoned = port.alpu.parity_error();
                        t = t_resp;
                        // Same §IV-D response-retrieval sequence as Rx.
                        t += core
                            .run(
                                &TraceBuilder::new()
                                    .bus_read()
                                    .bus_read()
                                    .bus_read()
                                    .bus_read()
                                    .int(4)
                                    .build(),
                                t,
                            )
                            .elapsed;
                        if poisoned {
                            wedged = true;
                        } else {
                            hw_dur = t - resp_start;
                            hw_resp = Some(resp);
                        }
                    }
                },
            }
            if wedged {
                self.quarantine_unexpected(t);
                self.stats.alpu_fallbacks += 1;
                t += core
                    .run(&TraceBuilder::new().bus_read().int(4).build(), t)
                    .elapsed;
            }
            if let Some(resp) = hw_resp {
                self.ev(
                    resp_start,
                    TraceEvent::AlpuResponse {
                        unit: QueueKind::Unexpected,
                        hit: matches!(resp, Response::MatchSuccess { .. }),
                        dur: hw_dur,
                    },
                );
            }
            match hw_resp {
                Some(Response::MatchSuccess { tag }) => {
                    matched = Some(tag as Key);
                    self.stats.unexpected_alpu_hits += 1;
                    self.hists.unexpected_alpu_hit.record(hw_dur);
                }
                Some(Response::MatchFailure) => {
                    software_from = self.unexpected.alpu_prefix()
                }
                Some(Response::StartAck { .. }) => unreachable!(),
                None => {} // degraded: software_from stays 0 (full walk)
            }
        }

        if matched.is_none() {
            let mut visited = Vec::new();
            let k = self.cfg.ranks_per_node;
            let hit = self.unexpected.find_from(
                software_from,
                |e| {
                    let h = &e.header;
                    let ectx = if k <= 1 {
                        h.context
                    } else {
                        h.context | (((h.dst_rank % k) as u16) << 8)
                    };
                    mpiq_alpu::match_types::masked_eq(
                        MatchWord::mpi(ectx, h.src_rank, h.tag),
                        probe.word,
                        probe.mask,
                    )
                },
                &mut visited,
            );
            self.stats.unexpected_entries_traversed += visited.len() as u64;
            let search_start = t;
            let mut tb = TraceBuilder::new();
            for addr in &visited {
                tb = tb.load_chain(*addr).int(12);
            }
            t += core.run(&tb.build(), t).elapsed;
            self.hists.unexpected_linear.record(t - search_start);
            self.ev(
                search_start,
                TraceEvent::SwSearch {
                    queue: QueueKind::Unexpected,
                    source: SearchSource::Linear,
                    entries: visited.len() as u32,
                    dur: t - search_start,
                },
            );
            matched = hit.map(|(_, key)| key);
        }
        (t, matched)
    }

    #[allow(clippy::too_many_arguments)]
    fn do_post_recv(
        &mut self,
        req: ReqId,
        src: Option<u16>,
        context: u16,
        tag: Option<u16>,
        len: u32,
        now: Time,
        core: &mut Core,
        fx: &mut Effects,
    ) -> Time {
        let probe = Probe::recv(self.eff_ctx(context, req.rank), src, tag);
        let (mut t, matched) = self.match_unexpected(probe, now, core);

        match matched {
            Some(key) => {
                let item = self.unexpected.remove_key(key);
                self.ev(
                    t,
                    TraceEvent::QueueOp {
                        queue: QueueKind::Unexpected,
                        op: QueueOpKind::Remove,
                        depth: self.unexpected.len() as u32,
                    },
                );
                let h = item.val.header;
                let truncated = item.val.truncated;
                t += core
                    .run(
                        &TraceBuilder::new()
                            .load(item.addr)
                            .int(10)
                            .store(item.addr)
                            .build(),
                        t,
                    )
                    .elapsed;
                match h.kind {
                    MsgKind::Eager => {
                        // Buffered payload → user buffer. A truncated
                        // admit has no payload to deliver: the envelope
                        // completes with `overflow` and zero bytes
                        // (`MPI_ERR_TRUNCATE`-like).
                        let comp = Completion {
                            req,
                            source: h.src_rank,
                            tag: h.tag,
                            len: if truncated { 0 } else { h.payload_len.min(len) },
                            cancelled: false,
                            overflow: truncated,
                            rank_failed: false,
                        };
                        if h.payload_len > 0 && !truncated {
                            if self.cfg.eager_buffer_bytes > 0 {
                                self.eager_bytes_used = self
                                    .eager_bytes_used
                                    .saturating_sub(h.payload_len as u64);
                            }
                            let (start, done) = self.dma_rx.transfer(h.payload_len as u64, t);
                            self.ev(
                                start,
                                TraceEvent::Dma {
                                    dir: DmaDir::Rx,
                                    bytes: h.payload_len as u64,
                                    dur: done - start,
                                },
                            );
                            fx.completions.push((done + self.cfg.completion_cost, comp));
                        } else {
                            fx.completions.push((t + self.cfg.completion_cost, comp));
                        }
                        // The staged message is gone: return its credit.
                        if self.cfg.eager_credits > 0
                            && h.payload_len > 0
                            && h.src_node != self.node
                        {
                            self.grant_credit(h.src_node);
                        }
                    }
                    MsgKind::RndvRequest => {
                        self.rndv_expect.insert(
                            (h.src_node, h.seq),
                            RndvExpect {
                                req,
                                len: h.payload_len,
                                src_rank: h.src_rank,
                                tag: h.tag,
                            },
                        );
                        let reply = self.make_msg(
                            h.src_rank as u32,
                            req.rank,
                            h.context,
                            h.tag,
                            0,
                            MsgKind::RndvReply { token: h.seq },
                        );
                        // Same injected-leak site as the matched-on-arrival
                        // clear-to-send.
                        if self.leak_plan.as_mut().is_some_and(|p| p.roll_leak()) {
                            self.stats.cts_leaked += 1;
                        } else {
                            let at = self.inject(reply.wire_bytes(), t);
                            fx.tx.push((at, reply));
                        }
                    }
                    _ => unreachable!("only match-eligible headers are queued"),
                }
            }
            None => {
                // Nothing already arrived: a receive pinned to a rank on
                // a dead node can never match — fail it typed, now,
                // instead of posting an obligation nothing will satisfy.
                // (A match above is still honored: the message was sent
                // before the failure, which ULFM lets us deliver.)
                if let Some(s) = src {
                    let peer = self.node_of(s as u32);
                    if peer != self.node && self.dead_peers.contains(&peer) {
                        self.stats.ops_rank_failed += 1;
                        fx.completions.push((
                            t + self.cfg.completion_cost,
                            Completion {
                                req,
                                source: s,
                                tag: tag.unwrap_or(0),
                                len: 0,
                                cancelled: false,
                                overflow: false,
                                rank_failed: true,
                            },
                        ));
                        return t;
                    }
                }
                // Post it: append to the posted-receive queue.
                let (key, addr) = self.posted.push(RecvEntry {
                    req,
                    word: probe.word,
                    mask: probe.mask,
                    len,
                    ghost: false,
                });
                self.ev(
                    t,
                    TraceEvent::QueueOp {
                        queue: QueueKind::Posted,
                        op: QueueOpKind::Push,
                        depth: self.posted.len() as u32,
                    },
                );
                t += core
                    .run(
                        &TraceBuilder::new()
                            .int(10)
                            .store(addr)
                            .store(addr + 32)
                            .build(),
                        t,
                    )
                    .elapsed;
                if let Some(index) = &mut self.posted_index {
                    // The insertion cost the paper calls prohibitive
                    // (§II): hash the triplet, read-modify-write the bin
                    // header, link the entry in.
                    index.insert(key, addr, probe.word, probe.mask);
                    let bin =
                        layout::HASHBIN_BASE + (index.bin_index(probe.word) as u64) * 64;
                    t += core
                        .run(
                            &TraceBuilder::new()
                                .int(24)
                                .load_chain(bin)
                                .store(bin)
                                .store(addr + 48)
                                .build(),
                            t,
                        )
                        .elapsed;
                }
            }
        }
        t
    }

    /// `MPI_Iprobe`: peek the unexpected queue without consuming. The
    /// unexpected ALPU cannot help here — its matches *delete* the
    /// matched cell (the delete is baked into the pipeline, §III-B) — so
    /// probing is always a software walk, ALPU or not. The completion's
    /// `cancelled` flag carries `flag == false`.
    #[allow(clippy::too_many_arguments)]
    fn do_probe(
        &mut self,
        req: ReqId,
        src: Option<u16>,
        context: u16,
        tag: Option<u16>,
        now: Time,
        core: &mut Core,
        fx: &mut Effects,
    ) -> Time {
        let probe = Probe::recv(self.eff_ctx(context, req.rank), src, tag);
        let mut visited = Vec::new();
        let k = self.cfg.ranks_per_node;
        let hit = self.unexpected.find_from(
            0,
            |e| {
                let h = &e.header;
                let ectx = if k <= 1 {
                    h.context
                } else {
                    h.context | (((h.dst_rank % k) as u16) << 8)
                };
                mpiq_alpu::match_types::masked_eq(
                    MatchWord::mpi(ectx, h.src_rank, h.tag),
                    probe.word,
                    probe.mask,
                )
            },
            &mut visited,
        );
        self.stats.unexpected_entries_traversed += visited.len() as u64;
        let mut tb = TraceBuilder::new().int(8);
        for addr in &visited {
            tb = tb.load_chain(*addr).int(12);
        }
        let t = now + core.run(&tb.build(), now).elapsed;
        self.hists.unexpected_linear.record(t - now);
        self.ev(
            now,
            TraceEvent::SwSearch {
                queue: QueueKind::Unexpected,
                source: SearchSource::Linear,
                entries: visited.len() as u32,
                dur: t - now,
            },
        );
        let comp = match hit {
            Some((pos, _)) => {
                let h = self.unexpected.get(pos).val.header;
                Completion {
                    req,
                    source: h.src_rank,
                    tag: h.tag,
                    len: h.payload_len,
                    cancelled: false,
                    overflow: false,
                    rank_failed: false,
                }
            }
            None => Completion {
                req,
                source: 0,
                tag: 0,
                len: 0,
                cancelled: true, // flag == false: nothing waiting
                overflow: false,
                rank_failed: false,
            },
        };
        fx.completions.push((t + self.cfg.completion_cost, comp));
        t
    }

    /// Tombstone an ALPU-resident posted receive (see [`RecvEntry::ghost`]).
    fn posted_mark_ghost(&mut self, key: Key) {
        self.posted.update_key(key, |e| e.ghost = true);
        self.posted_ghosts += 1;
    }

    /// Live tombstone count (diagnostics).
    pub fn posted_ghost_count(&self) -> usize {
        self.posted_ghosts
    }

    /// `MPI_Cancel` on a posted receive (§II's wildcard-workaround
    /// ingredient). Entries still in software unlink immediately;
    /// ALPU-resident entries become tombstones because Table I offers no
    /// DELETE command — they are reclaimed when the hardware matches
    /// them.
    fn do_cancel(
        &mut self,
        target: ReqId,
        now: Time,
        core: &mut Core,
        fx: &mut Effects,
    ) -> Time {
        let mut visited = Vec::new();
        let hit = self
            .posted
            .find_from(0, |e| !e.ghost && e.req == target, &mut visited);
        let mut tb = TraceBuilder::new().int(8);
        for addr in &visited {
            tb = tb.load_chain(*addr).int(10);
        }
        let mut t = now + core.run(&tb.build(), now).elapsed;
        let Some((pos, key)) = hit else {
            // Already matched (or never existed): the normal completion
            // stands; the cancel is a no-op.
            return t;
        };
        let item = self.posted.get(pos);
        let tag = item.val.word.tag();
        let in_alpu = item.in_alpu;
        let addr = item.addr;
        if in_alpu {
            self.posted_mark_ghost(key);
            self.stats.ghosted_cancels += 1;
            t += core.run(&TraceBuilder::new().int(6).store(addr).build(), t).elapsed;
        } else {
            self.posted.remove_key(key);
            if let Some(index) = &mut self.posted_index {
                let rm = index.remove(key);
                let mut tb = TraceBuilder::new().int(10);
                for a in rm.iter().take(8) {
                    tb = tb.load(*a);
                }
                t += core.run(&tb.build(), t).elapsed;
            }
            t += core.run(&TraceBuilder::new().int(6).store(addr).build(), t).elapsed;
        }
        fx.completions.push((
            t + self.cfg.completion_cost,
            Completion {
                req: target,
                source: 0,
                tag,
                len: 0,
                cancelled: true,
                overflow: false,
                rank_failed: false,
            },
        ));
        t
    }

    // ------------------------------------------------------------------
    // Component fault domain: dead peers, dead hardware
    // ------------------------------------------------------------------

    /// Has `peer` been declared dead?
    pub fn peer_dead(&self, peer: NodeId) -> bool {
        self.dead_peers.contains(&peer)
    }

    /// Number of peers currently declared dead (diagnostics).
    pub fn dead_peer_count(&self) -> usize {
        self.dead_peers.len()
    }

    /// Declare `peer` dead and fail — with typed `rank_failed`
    /// completions — every operation that can now never finish: posted
    /// receives pinned to a rank on `peer`, parked and deferred sends
    /// toward it, and matched rendezvous receives awaiting its data.
    ///
    /// Deliberately *kept*: unexpected-queue entries that already
    /// arrived from `peer` — ULFM lets a receive posted after the
    /// failure still match a message sent before it — and wildcard
    /// receives, which any live rank can still satisfy.
    ///
    /// The cleanup walk costs no simulated firmware time: it models the
    /// asynchronous work a real NIC would run off the critical path.
    /// NIC-resident collectives parked on the dead peer are the
    /// exception: skipping their dead steps un-parks the rest of the
    /// plan, and those live steps charge normal engine time on `core`.
    pub fn fail_peer(&mut self, peer: NodeId, now: Time, core: &mut Core, fx: &mut Effects) {
        if peer == self.node || !self.dead_peers.insert(peer) {
            return;
        }
        self.stats.peers_failed += 1;
        let at = now + self.cfg.completion_cost;
        let k = self.cfg.ranks_per_node;

        // Posted receives whose source is pinned to a rank on the dead
        // node. ALPU-resident copies become tombstones, exactly as
        // `MPI_Cancel` leaves them (no DELETE command, Table I).
        let victims: Vec<(Key, ReqId, u16, u16, bool)> = self
            .posted
            .iter()
            .filter(|it| {
                !it.val.ghost
                    && it.val.mask.0 & mpiq_alpu::MaskWord::ANY_SOURCE.0 == 0
                    && it.val.word.source() as u32 / k == peer
            })
            .map(|it| {
                (
                    it.key,
                    it.val.req,
                    it.val.word.source(),
                    it.val.word.tag(),
                    it.in_alpu,
                )
            })
            .collect();
        for (key, req, src, tag, in_alpu) in victims {
            if in_alpu {
                self.posted_mark_ghost(key);
            } else {
                self.posted.remove_key(key);
                if let Some(index) = &mut self.posted_index {
                    index.remove(key);
                }
            }
            self.ev(
                now,
                TraceEvent::QueueOp {
                    queue: QueueKind::Posted,
                    op: if in_alpu {
                        QueueOpKind::Ghost
                    } else {
                        QueueOpKind::Remove
                    },
                    depth: self.posted.len() as u32,
                },
            );
            self.stats.ops_rank_failed += 1;
            fx.completions.push((
                at,
                Completion {
                    req,
                    source: src,
                    tag,
                    len: 0,
                    cancelled: false,
                    overflow: false,
                    rank_failed: true,
                },
            ));
        }

        // Rendezvous sends parked on a clear-to-send that will never come.
        let mut parked: Vec<SendEntry> = Vec::new();
        self.send_park.retain(|s| {
            if s.dst / k == peer {
                parked.push(*s);
                false
            } else {
                true
            }
        });
        // Sends still held behind one of those handshakes.
        let mut deferred: Vec<PendingSend> = Vec::new();
        self.deferred_sends.retain(|p| {
            if p.dst / k == peer {
                deferred.push(*p);
                false
            } else {
                true
            }
        });
        for (req, dst, tag, len) in parked
            .into_iter()
            .map(|s| (s.req, s.dst, s.tag, s.len))
            .chain(deferred.into_iter().map(|p| (p.req, p.dst, p.tag, p.len)))
        {
            self.stats.ops_rank_failed += 1;
            fx.completions.push((
                at,
                Completion {
                    req,
                    source: dst as u16,
                    tag,
                    len,
                    cancelled: false,
                    overflow: false,
                    rank_failed: true,
                },
            ));
        }

        // Matched rendezvous receives whose data frame died with the
        // sender. Keys are sorted before removal so the completion order
        // never depends on hash-map iteration.
        let mut stale: Vec<(NodeId, u64)> = self
            .rndv_expect
            .keys()
            .filter(|(n, _)| *n == peer)
            .copied()
            .collect();
        stale.sort_unstable();
        for key in stale {
            let exp = self.rndv_expect.remove(&key).expect("key just listed");
            self.stats.ops_rank_failed += 1;
            fx.completions.push((
                at,
                Completion {
                    req: exp.req,
                    source: exp.src_rank,
                    tag: exp.tag,
                    len: 0,
                    cancelled: false,
                    overflow: false,
                    rank_failed: true,
                },
            ));
        }
        self.rndv_inflight.remove(&peer);

        // Offloaded collectives parked on (or about to step toward) the
        // dead peer: skip the doomed steps and drive the rest of each
        // plan, so the surviving tree keeps making progress and every
        // instance still ends in exactly one (typed) completion.
        if !self.coll.is_empty() {
            self.coll_poll(now, core, fx);
        }
    }

    /// `peer` restarted under a new incarnation: clear the sticky death
    /// so fresh operations toward it flow again, and forget every piece
    /// of sender-side state keyed to its previous life — the credit pool
    /// (re-seeded at full on next use; the reborn NIC's staging is empty)
    /// and any rendezvous-in-flight count. Operations failed at detection
    /// time stay failed: recovery is the application's job (`agree` /
    /// `shrink` / retry), not a silent un-failing. Returns whether the
    /// peer had actually been declared dead.
    pub fn revive_peer(&mut self, peer: NodeId) -> bool {
        if peer == self.node || !self.dead_peers.remove(&peer) {
            return false;
        }
        self.credits.remove(&peer);
        self.rndv_inflight.remove(&peer);
        self.stats.peers_revived += 1;
        true
    }

    /// Scheduled permanent ALPU death: quarantine both units (RESET-pin
    /// wipe; orphaned probes fall back to software) and pin the cooldown
    /// to `Time::MAX`, so the update-item re-engage check never fires. Matching continues on the software queues —
    /// degraded, never wrong, and never trusted to hardware again.
    pub fn kill_alpus(&mut self, now: Time) {
        if self.alpus_dead {
            return;
        }
        self.alpus_dead = true;
        if self.posted_alpu.is_some() {
            if self.posted_quarantined_until.is_none() {
                self.quarantine_posted(now);
            }
            self.posted_quarantined_until = Some(Time::MAX);
            self.stats.alpus_killed += 1;
        }
        if self.unexpected_alpu.is_some() {
            if self.unexpected_quarantined_until.is_none() {
                self.quarantine_unexpected(now);
            }
            self.unexpected_quarantined_until = Some(Time::MAX);
            self.stats.alpus_killed += 1;
        }
    }

    /// Have the ALPUs been permanently retired by a scheduled death?
    pub fn alpus_dead(&self) -> bool {
        self.alpus_dead
    }

    // ------------------------------------------------------------------
    // ALPU insert sessions (§IV-C)
    // ------------------------------------------------------------------

    /// Tombstones the hardware can never reclaim on its own (cancelled
    /// receives that nothing will match) eventually poison the unit:
    /// Table I has no DELETE command. Past a quarter of the capacity,
    /// firmware pays for a RESET + full rebuild.
    fn purge_needed(&self) -> bool {
        match (&self.posted_alpu, self.cfg.posted_alpu) {
            (Some(_), Some(s)) => self.posted_ghosts > s.total_cells / 4,
            _ => false,
        }
    }

    /// Cooldown before a quarantined unit is trusted again. Long enough
    /// that a persistently stalled unit isn't thrashed in and out of
    /// service; short relative to any benchmark so degradation stays
    /// graceful, not permanent.
    const QUARANTINE_COOLDOWN: Time = Time::from_us(10);

    /// Take the posted ALPU out of service: RESET-pin wipe, orphan the
    /// in-flight probes (their work items fall back to software), drop
    /// tombstones (they lived only in the hardware), and start the
    /// cooldown clock. The software queue — the source of truth — is
    /// untouched; matching continues degraded but correct.
    fn quarantine_posted(&mut self, now: Time) {
        let port = self.posted_alpu.as_mut().expect("quarantine implies ALPU");
        if port.alpu.parity_error() {
            self.stats.alpu_parity_errors += 1;
        }
        self.posted_orphans += port.probes_in_flight;
        port.probes_in_flight = 0;
        port.reset_hard();
        // With the unit wiped, tombstoned entries are unreachable garbage.
        let dead: Vec<Key> = self
            .posted
            .iter()
            .filter(|it| it.val.ghost)
            .map(|it| it.key)
            .collect();
        for key in dead {
            self.posted.remove_key(key);
        }
        self.posted_ghosts = 0;
        self.posted.clear_alpu_marks();
        self.posted_quarantined_until = Some(now + Self::QUARANTINE_COOLDOWN);
        self.stats.alpu_resets += 1;
        self.ev(
            now,
            TraceEvent::Quarantine {
                unit: QueueKind::Posted,
                engaged: false,
            },
        );
    }

    /// Same recovery for the unexpected ALPU (simpler: its exchanges are
    /// synchronous, so there are no orphans, and it holds no tombstones).
    fn quarantine_unexpected(&mut self, now: Time) {
        let port = self
            .unexpected_alpu
            .as_mut()
            .expect("quarantine implies ALPU");
        if port.alpu.parity_error() {
            self.stats.alpu_parity_errors += 1;
        }
        port.probes_in_flight = 0;
        port.reset_hard();
        self.unexpected.clear_alpu_marks();
        self.unexpected_quarantined_until = Some(now + Self::QUARANTINE_COOLDOWN);
        self.stats.alpu_resets += 1;
        self.ev(
            now,
            TraceEvent::Quarantine {
                unit: QueueKind::Unexpected,
                engaged: false,
            },
        );
    }

    /// RESET the posted ALPU and drop tombstones; the subsequent insert
    /// session (same update item) re-fills it from the live queue.
    fn purge_posted(&mut self, now: Time, core: &mut Core) -> Time {
        let port = self.posted_alpu.as_mut().expect("purge implies ALPU");
        if !port.probe_quiescent(now) {
            return now; // retry on a later update
        }
        let mut t = match port.push_command(Command::Reset, now) {
            Ok(t) => t,
            Err(AlpuWedged) => {
                // Can't even push RESET: quarantine does the same cleanup
                // through the reset pin.
                self.quarantine_posted(now);
                return now;
            }
        };
        t += core.run(&TraceBuilder::new().int(6).bus_write().build(), t).elapsed;
        let port = self.posted_alpu.as_mut().expect("still present");
        port.sync(t + Time::from_ns(20));
        // Tombstones are gone for good; live entries all become tail.
        let dead: Vec<Key> = self
            .posted
            .iter()
            .filter(|it| it.val.ghost)
            .map(|it| it.key)
            .collect();
        let mut tb = TraceBuilder::new().int(8);
        for key in dead {
            let item = self.posted.remove_key(key);
            tb = tb.store(item.addr);
        }
        self.posted.clear_alpu_marks();
        self.posted_ghosts = 0;
        self.stats.alpu_purges += 1;
        t + core.run(&tb.build(), t).elapsed
    }

    fn do_update(&mut self, now: Time, core: &mut Core, _fx: &mut Effects) -> Time {
        let mut t = now;
        // Re-engage quarantined units whose cooldown has expired. The
        // RESET already emptied them; lifting the quarantine lets the
        // insert sessions below refill them and probes flow again.
        if self.posted_quarantined_until.is_some_and(|q| now >= q) {
            self.posted_quarantined_until = None;
            self.stats.alpu_reengagements += 1;
            t += core.run(&TraceBuilder::new().int(8).bus_write().build(), t).elapsed;
            self.ev(
                t,
                TraceEvent::Quarantine {
                    unit: QueueKind::Posted,
                    engaged: true,
                },
            );
        }
        if self.unexpected_quarantined_until.is_some_and(|q| now >= q) {
            self.unexpected_quarantined_until = None;
            self.stats.alpu_reengagements += 1;
            t += core.run(&TraceBuilder::new().int(8).bus_write().build(), t).elapsed;
            self.ev(
                t,
                TraceEvent::Quarantine {
                    unit: QueueKind::Unexpected,
                    engaged: true,
                },
            );
        }
        if self.purge_needed() {
            let purge_start = t;
            let ghosts = self.posted_ghosts as u32;
            t = self.purge_posted(t, core);
            if t > purge_start {
                self.ev(
                    purge_start,
                    TraceEvent::AlpuCommand {
                        unit: QueueKind::Posted,
                        kind: AlpuCmdKind::Reset,
                        dur: t - purge_start,
                        entries: ghosts,
                    },
                );
            }
        }
        if self.posted_quarantined_until.is_none() {
            if let (Some(setup), Some(_)) = (self.cfg.posted_alpu, self.posted_alpu.as_ref()) {
                if self.posted.len() >= setup.engage_threshold && self.posted.tail_len() > 0 {
                    let (session_start, tail_before) = (t, self.posted.tail_len());
                    let (t2, wedged) = Self::insert_session_posted(
                        &mut self.posted,
                        self.posted_alpu.as_mut().expect("checked"),
                        &mut self.stats,
                        t,
                        core,
                    );
                    t = t2;
                    let inserted = tail_before.saturating_sub(self.posted.tail_len());
                    if inserted > 0 {
                        self.ev(
                            session_start,
                            TraceEvent::AlpuCommand {
                                unit: QueueKind::Posted,
                                kind: AlpuCmdKind::InsertSession,
                                dur: t - session_start,
                                entries: inserted as u32,
                            },
                        );
                    }
                    if wedged {
                        self.quarantine_posted(t);
                    }
                }
            }
        }
        if self.unexpected_quarantined_until.is_none() {
            if let (Some(setup), Some(_)) =
                (self.cfg.unexpected_alpu, self.unexpected_alpu.as_ref())
            {
                if self.unexpected.len() >= setup.engage_threshold
                    && self.unexpected.tail_len() > 0
                {
                    let (session_start, tail_before) = (t, self.unexpected.tail_len());
                    let (t2, wedged) = Self::insert_session_unexpected(
                        &mut self.unexpected,
                        self.unexpected_alpu.as_mut().expect("checked"),
                        &mut self.stats,
                        self.cfg.ranks_per_node,
                        t,
                        core,
                    );
                    t = t2;
                    let inserted = tail_before.saturating_sub(self.unexpected.tail_len());
                    if inserted > 0 {
                        self.ev(
                            session_start,
                            TraceEvent::AlpuCommand {
                                unit: QueueKind::Unexpected,
                                kind: AlpuCmdKind::InsertSession,
                                dur: t - session_start,
                                entries: inserted as u32,
                            },
                        );
                    }
                    if wedged {
                        self.quarantine_unexpected(t);
                    }
                }
            }
        }
        t
    }

    /// Both sessions return `(end_time, wedged)`; `wedged == true` means
    /// a hardware interaction blew its wait budget and the caller must
    /// quarantine the unit (the session aborts immediately; queue marks
    /// are cleaned up by the quarantine).
    fn insert_session_posted(
        queue: &mut NicQueue<RecvEntry>,
        port: &mut AlpuPort,
        stats: &mut FwStats,
        now: Time,
        core: &mut Core,
    ) -> (Time, bool) {
        // §IV-C: never insert across an in-flight probe — a MATCH FAILURE
        // computed before these inserts must pair with the pre-insert
        // tail. Defer the session; the NIC re-schedules an update once the
        // pending probe work drains.
        if !port.probe_quiescent(now) {
            return (
                now + core.run(&TraceBuilder::new().int(4).build(), now).elapsed,
                false,
            );
        }
        let mut t = now + core.run(&TraceBuilder::new().int(6).bus_write().build(), now).elapsed;
        t = match port.push_command(Command::StartInsert, t) {
            Ok(t) => t,
            Err(AlpuWedged) => return (t, true),
        };
        let free = match port.pop_start_ack(t) {
            Ok((free, t_ack)) => {
                t = t_ack;
                free
            }
            Err(AlpuWedged) => return (t, true),
        };
        t += core.run(&TraceBuilder::new().bus_read().build(), t).elapsed;
        // Abort if a probe slipped in while we waited for the ack:
        // nothing has been inserted yet, so a just-computed failure still
        // pairs with the current tail. Retry the session later.
        let abort = !port.stash_match.is_empty()
            || port.alpu.responses_pending() > 0
            || port.alpu.headers_pending() > 0
            || free == 0;
        if abort {
            t = match port.push_command(Command::StopInsert, t) {
                Ok(t) => t,
                Err(AlpuWedged) => return (t, true),
            };
            return (
                t + core.run(&TraceBuilder::new().bus_write().build(), t).elapsed,
                false,
            );
        }
        stats.insert_sessions += 1;
        let batch = queue.take_for_alpu(free as usize);
        let cmds: Vec<(u64, Command)> = batch
            .iter()
            .map(|(key, addr, e)| {
                (
                    *addr,
                    Command::Insert(Entry {
                        word: e.word,
                        mask: e.mask,
                        tag: *key as Tag,
                    }),
                )
            })
            .collect();
        for (addr, cmd) in cmds {
            // Read the entry, then two posted bus writes per insert
            // (match+mask words, tag).
            t += core
                .run(
                    &TraceBuilder::new().load(addr).int(4).bus_write().bus_write().build(),
                    t,
                )
                .elapsed;
            t = match port.push_command(cmd, t) {
                Ok(t) => t,
                Err(AlpuWedged) => return (t, true),
            };
        }
        t = match port.push_command(Command::StopInsert, t) {
            Ok(t) => t,
            Err(AlpuWedged) => return (t, true),
        };
        (
            t + core.run(&TraceBuilder::new().bus_write().build(), t).elapsed,
            false,
        )
    }

    fn insert_session_unexpected(
        queue: &mut NicQueue<UnexpEntry>,
        port: &mut AlpuPort,
        stats: &mut FwStats,
        ranks_per_node: u32,
        now: Time,
        core: &mut Core,
    ) -> (Time, bool) {
        // §IV-C: never insert across an in-flight probe — a MATCH FAILURE
        // computed before these inserts must pair with the pre-insert
        // tail. Defer the session; the NIC re-schedules an update once the
        // pending probe work drains.
        if !port.probe_quiescent(now) {
            return (
                now + core.run(&TraceBuilder::new().int(4).build(), now).elapsed,
                false,
            );
        }
        let mut t = now + core.run(&TraceBuilder::new().int(6).bus_write().build(), now).elapsed;
        t = match port.push_command(Command::StartInsert, t) {
            Ok(t) => t,
            Err(AlpuWedged) => return (t, true),
        };
        let free = match port.pop_start_ack(t) {
            Ok((free, t_ack)) => {
                t = t_ack;
                free
            }
            Err(AlpuWedged) => return (t, true),
        };
        t += core.run(&TraceBuilder::new().bus_read().build(), t).elapsed;
        // Abort if a probe slipped in while we waited for the ack:
        // nothing has been inserted yet, so a just-computed failure still
        // pairs with the current tail. Retry the session later.
        let abort = !port.stash_match.is_empty()
            || port.alpu.responses_pending() > 0
            || port.alpu.headers_pending() > 0
            || free == 0;
        if abort {
            t = match port.push_command(Command::StopInsert, t) {
                Ok(t) => t,
                Err(AlpuWedged) => return (t, true),
            };
            return (
                t + core.run(&TraceBuilder::new().bus_write().build(), t).elapsed,
                false,
            );
        }
        stats.insert_sessions += 1;
        let batch = queue.take_for_alpu(free as usize);
        let cmds: Vec<(u64, Command)> = batch
            .iter()
            .map(|(key, addr, e)| {
                let h = &e.header;
                let ectx = if ranks_per_node <= 1 {
                    h.context
                } else {
                    h.context | (((h.dst_rank % ranks_per_node) as u16) << 8)
                };
                (
                    *addr,
                    Command::Insert(Entry::mpi_header(
                        ectx,
                        h.src_rank,
                        h.tag,
                        *key as Tag,
                    )),
                )
            })
            .collect();
        for (addr, cmd) in cmds {
            t += core
                .run(
                    &TraceBuilder::new().load(addr).int(4).bus_write().bus_write().build(),
                    t,
                )
                .elapsed;
            t = match port.push_command(cmd, t) {
                Ok(t) => t,
                Err(AlpuWedged) => return (t, true),
            };
        }
        t = match port.push_command(Command::StopInsert, t) {
            Ok(t) => t,
            Err(AlpuWedged) => return (t, true),
        };
        (
            t + core.run(&TraceBuilder::new().bus_write().build(), t).elapsed,
            false,
        )
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn next_seq(&mut self) -> u64 {
        let s = self.wire_seq;
        self.wire_seq += 1;
        s
    }

    fn make_msg(
        &mut self,
        dst_rank: u32,
        src_rank: u32,
        context: u16,
        tag: u16,
        len: u32,
        kind: MsgKind,
    ) -> Message {
        let seq = self.next_seq();
        Message::new(
            MsgHeader {
                src_node: self.node,
                dst_node: self.node_of(dst_rank),
                dst_rank,
                context,
                src_rank: src_rank as u16,
                tag,
                payload_len: len,
                kind,
                seq,
            },
            match kind {
                MsgKind::Eager => Message::test_payload(len as usize, seq as u8),
                _ => bytes::Bytes::new(),
            },
        )
    }

    /// Serialize a header-only (or already-DMAed) message through the Tx
    /// engine so per-destination ordering is preserved even when payload
    /// DMAs of earlier messages are still draining.
    fn inject(&mut self, wire_bytes: u64, t: Time) -> Time {
        let (_, done) = self.dma_tx.transfer(wire_bytes.min(Message::HEADER_BYTES), t);
        done
    }
}

/// Check the software/hardware shadowing invariants. Only meaningful when
/// the ALPUs are quiescent (no insert commands in flight).
pub fn check_invariants(fw: &Firmware) {
    assert!(fw.posted.check_prefix_invariant());
    assert!(fw.unexpected.check_prefix_invariant());
    if let Some(p) = &fw.posted_alpu {
        assert_eq!(p.alpu.occupied(), fw.posted.alpu_prefix());
        if fw.posted_quarantined() {
            assert_eq!(p.alpu.occupied(), 0, "a quarantined unit is empty");
        }
    }
    if let Some(p) = &fw.unexpected_alpu {
        assert_eq!(p.alpu.occupied(), fw.unexpected.alpu_prefix());
        if fw.unexpected_quarantined() {
            assert_eq!(p.alpu.occupied(), 0, "a quarantined unit is empty");
        }
    }
}
