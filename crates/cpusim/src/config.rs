//! Core configurations — Table III of the paper, as code.

use mpiq_dessim::{Clock, Time};
use mpiq_memsim::MemSystemConfig;

/// Microarchitectural parameters of one modeled core.
///
/// Field names follow Table III. Parameters the timing model abstracts away
/// (fetch-queue depth, commit width) are retained for documentation and for
/// deriving effective issue bandwidth.
#[derive(Clone, Copy, Debug)]
pub struct CoreConfig {
    /// Fetch queue depth (Table III; folded into issue bandwidth).
    pub fetch_q: u32,
    /// Maximum uops issued per cycle.
    pub issue_width: u32,
    /// Maximum uops committed per cycle.
    pub commit_width: u32,
    /// Register-update-unit (in-flight window) size.
    pub ruu_size: u32,
    /// Number of integer ALUs.
    pub int_units: u32,
    /// Number of cache ports (loads/stores issued per cycle).
    pub mem_ports: u32,
    /// Core clock.
    pub clock: Clock,
    /// Memory system (caches + DRAM) this core loads/stores through.
    pub mem: MemSystemConfig,
    /// One local-bus transaction (NIC local bus: 20 ns in §V-B).
    pub bus_latency: Time,
}

impl CoreConfig {
    /// The NIC's embedded processor (Table III, "NIC Processor" column —
    /// PowerPC 440 class): 500 MHz, 4-issue with 2 integer units, RUU 16,
    /// one memory port, 32 KB 64-way L1, no L2.
    pub fn nic_ppc440() -> CoreConfig {
        CoreConfig {
            fetch_q: 2,
            issue_width: 4,
            commit_width: 4,
            ruu_size: 16,
            int_units: 2,
            mem_ports: 1,
            clock: Clock::from_mhz(500),
            mem: MemSystemConfig::nic(),
            bus_latency: Time::from_ns(20),
        }
    }

    /// The host processor (Table III, "CPU" column — Opteron class):
    /// 2 GHz, 8-issue with 4 integer units, RUU 64, 3 memory ports,
    /// 64 KB 2-way L1, 512 KB L2.
    pub fn host_opteron() -> CoreConfig {
        CoreConfig {
            fetch_q: 4,
            issue_width: 8,
            commit_width: 4,
            ruu_size: 64,
            int_units: 4,
            mem_ports: 3,
            clock: Clock::from_hz(2_000_000_000),
            mem: MemSystemConfig::host(),
            bus_latency: Time::from_ns(20),
        }
    }

    /// Effective integer issue bandwidth per cycle: bounded by both the
    /// issue width and the number of integer units.
    pub fn int_width(&self) -> u32 {
        self.issue_width.min(self.int_units).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_values() {
        let nic = CoreConfig::nic_ppc440();
        assert_eq!(nic.clock.period(), Time::from_ps(2000));
        assert_eq!(nic.int_width(), 2);
        assert_eq!(nic.ruu_size, 16);
        assert_eq!(nic.mem_ports, 1);

        let host = CoreConfig::host_opteron();
        assert_eq!(host.clock.period(), Time::from_ps(500));
        assert_eq!(host.int_width(), 4);
        assert_eq!(host.ruu_size, 64);
        assert!(host.mem.l2.is_some());
        assert!(nic.mem.l2.is_none());
    }
}
