//! A set-associative, write-back, write-allocate cache with true-LRU
//! replacement.
//!
//! The model is tag-only: it answers "hit or miss, and did we evict a dirty
//! line" and keeps hit/miss statistics. Latency numbers live in the
//! processor model (`mpiq-cpusim`'s load-to-use) and in
//! [`crate::hierarchy::MemSystem`], which charges DRAM time on misses.

/// Geometry and identity of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line (block) size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set). Use `size/line` for fully associative.
    pub assoc: u64,
    /// Load-to-use latency in core cycles on a hit.
    pub hit_cycles: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.assoc),
            "cache lines ({lines}) not divisible by associativity ({})",
            self.assoc
        );
        lines / self.assoc
    }

    /// NIC processor L1 from Table III: 32 KB, 64-way, 64 B lines.
    ///
    /// The unusual 64-way associativity is straight from the paper; it makes
    /// the L1 behave nearly fully-associatively so the queue-traversal knee
    /// tracks *capacity*, not conflicts.
    pub fn nic_l1() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            assoc: 64,
            hit_cycles: 2,
        }
    }

    /// Host CPU L1 from Table III: 64 KB, 2-way, 64 B lines.
    pub fn host_l1() -> CacheConfig {
        CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 64,
            assoc: 2,
            hit_cycles: 2,
        }
    }

    /// Host CPU L2 from Table III: 512 KB (8-way, 64 B lines assumed).
    pub fn host_l2() -> CacheConfig {
        CacheConfig {
            size_bytes: 512 * 1024,
            line_bytes: 64,
            assoc: 8,
            hit_cycles: 10,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotone use stamp; smallest = least recently used.
    stamp: u64,
}

/// Result of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// Base address of a dirty line written back to make room, if any.
    pub writeback: Option<u64>,
}

/// One cache level.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// Build an empty (all-invalid) cache.
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.sets();
        Cache {
            cfg,
            sets: vec![vec![Line::default(); cfg.assoc as usize]; sets as usize],
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    #[inline]
    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line_bytes;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    /// Access one address. Write accesses mark the line dirty
    /// (write-allocate: a write miss fetches the line first).
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.tick += 1;
        let (set_idx, tag) = self.index(addr);
        let num_sets = self.sets.len() as u64;
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = self.tick;
            line.dirty |= is_write;
            self.hits += 1;
            return CacheOutcome {
                hit: true,
                writeback: None,
            };
        }

        self.misses += 1;
        // Victim: an invalid way if one exists, else true LRU.
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| (l.valid, l.stamp))
            .map(|(i, _)| i)
            .expect("associativity >= 1");
        let old = set[victim];
        let writeback = if old.valid && old.dirty {
            self.writebacks += 1;
            // Reconstruct the victim's base address from tag + set index.
            let line_no = old.tag * num_sets + set_idx as u64;
            Some(line_no * self.cfg.line_bytes)
        } else {
            None
        };
        set[victim] = Line {
            tag,
            valid: true,
            dirty: is_write,
            stamp: self.tick,
        };
        CacheOutcome {
            hit: false,
            writeback,
        }
    }

    /// Probe without touching replacement state or statistics.
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidate everything (e.g. between measurement phases, or on RESET).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set.iter_mut() {
                *line = Line::default();
            }
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Reset statistics but keep cache contents (warm-cache measurement).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16B lines = 128 B.
        Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            assoc: 2,
            hit_cycles: 1,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(tiny().config().sets(), 4);
        assert_eq!(CacheConfig::nic_l1().sets(), 8);
        assert_eq!(CacheConfig::host_l1().sets(), 512);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x40, false).hit);
        assert!(c.access(0x40, false).hit);
        assert!(c.access(0x4F, false).hit, "same line, different offset");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds lines with addr % (4*16) == 0: 0x000, 0x040, 0x080...
        c.access(0x000, false);
        c.access(0x040, false);
        c.access(0x000, false); // touch 0x000 so 0x040 is LRU
        c.access(0x080, false); // evicts 0x040
        assert!(c.contains(0x000));
        assert!(!c.contains(0x040));
        assert!(c.contains(0x080));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x040, false);
        let out = c.access(0x080, false); // evicts dirty 0x000
        assert_eq!(out.writeback, Some(0x000));
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x040, false);
        let out = c.access(0x080, false);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, true); // now dirty via write hit
        c.access(0x040, false);
        let out = c.access(0x080, false);
        assert_eq!(out.writeback, Some(0x000));
    }

    #[test]
    fn working_set_within_capacity_never_misses_after_warmup() {
        let mut c = Cache::new(CacheConfig::nic_l1());
        let lines = 32 * 1024 / 64;
        for i in 0..lines {
            c.access(i * 64, false);
        }
        c.reset_stats();
        for _ in 0..3 {
            for i in 0..lines {
                assert!(c.access(i * 64, false).hit);
            }
        }
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_with_lru_streaming() {
        // Classic LRU pathology: streaming over capacity+1 lines in a
        // fully-associative LRU cache misses every time.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            assoc: 16, // fully associative: 16 lines, 1 set
            hit_cycles: 1,
        });
        let lines = 17;
        for round in 0..4 {
            for i in 0..lines {
                let out = c.access(i * 64, false);
                if round > 0 {
                    assert!(!out.hit, "streaming over capacity must thrash LRU");
                }
            }
        }
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0x0, true);
        c.flush();
        assert!(!c.contains(0x0));
        assert!(!c.access(0x0, false).hit);
        // Flushed dirty lines do not write back on next eviction.
        assert_eq!(c.writebacks(), 0);
    }
}
