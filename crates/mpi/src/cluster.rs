//! Cluster assembly: hosts + NICs + fabric, ready to run.

use crate::app::{AppProgram, PORT_COMPLETION};
use crate::host::Host;
use mpiq_dessim::prelude::*;
use mpiq_dessim::watchdog::{Diagnosis, StallKind};
use mpiq_dessim::FaultConfig;
use mpiq_net::{Fabric, NetConfig, PORT_FROM_NIC};
use mpiq_nic::{host_comp_port, Nic, NicConfig, PORT_HOST_REQ, PORT_NET_RX, PORT_NET_TX};

/// Everything needed to build a simulated cluster.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// NIC configuration (same on every node).
    pub nic: NicConfig,
    /// Network parameters.
    pub net: NetConfig,
    /// RNG seed (determinism).
    pub seed: u64,
    /// Host CPU cost per dispatched request.
    pub host_dispatch: Time,
    /// Trace-ring capacity; 0 (the default) leaves tracing disabled so
    /// instrumented code paths stay no-ops.
    pub trace_capacity: usize,
    /// Enable the latency-histogram / counter registry.
    pub metrics: bool,
}

impl ClusterConfig {
    /// Defaults around a given NIC configuration.
    pub fn new(nic: NicConfig) -> ClusterConfig {
        ClusterConfig {
            nic,
            net: NetConfig::default(),
            seed: 42,
            host_dispatch: Time::from_ns(40),
            trace_capacity: 0,
            metrics: false,
        }
    }

    /// Turn on structured tracing (ring of `capacity` records) and the
    /// metrics registry; used by `--trace-out` / `--metrics` harnesses.
    pub fn with_observability(mut self, trace_capacity: usize) -> ClusterConfig {
        self.trace_capacity = trace_capacity;
        self.metrics = true;
        self
    }

    /// Arm deterministic fault injection everywhere it applies: the
    /// fabric (drops/duplicates/corruption) and every NIC's ALPUs (bit
    /// flips, command stalls). Network-side faults force the NICs' link
    /// reliability layer on.
    pub fn with_faults(mut self, faults: FaultConfig) -> ClusterConfig {
        self.nic = self.nic.with_faults(faults);
        self
    }
}

/// A built cluster: run it, then inspect NICs and statistics.
pub struct Cluster {
    /// The underlying simulation (exposed for advanced drivers).
    pub sim: Simulation,
    nics: Vec<ComponentId>,
    hosts: Vec<ComponentId>,
}

impl Cluster {
    /// Build a cluster with one program per rank. When the NIC config
    /// sets `ranks_per_node > 1`, consecutive ranks share a node's NIC
    /// (block distribution), exercising the paper's footnote-1
    /// multi-process extension.
    pub fn new(cfg: ClusterConfig, programs: Vec<Box<dyn AppProgram>>) -> Cluster {
        let n = programs.len() as u32;
        assert!(n > 0, "cluster needs at least one rank");
        let k = cfg.nic.ranks_per_node.max(1);
        let nodes = n.div_ceil(k);
        let mut sim = Simulation::new(cfg.seed);
        if cfg.trace_capacity > 0 {
            sim.enable_tracing(cfg.trace_capacity);
        }
        if cfg.metrics {
            sim.enable_metrics();
        }
        let fabric = sim.add_component(
            "net",
            Fabric::with_faults(cfg.net, nodes, cfg.nic.faults),
        );
        let mut nics = Vec::new();
        let mut node_nics = Vec::new();
        for node in 0..nodes {
            let nic = sim.add_component(&format!("nic{node}"), Nic::new(node, cfg.nic));
            sim.connect(nic, PORT_NET_TX, fabric, PORT_FROM_NIC, Time::ZERO);
            sim.connect(fabric, Fabric::out_port(node), nic, PORT_NET_RX, Time::ZERO);
            node_nics.push(nic);
        }
        let mut hosts = Vec::new();
        for (rank, program) in programs.into_iter().enumerate() {
            let rank = rank as u32;
            let nic = node_nics[(rank / k) as usize];
            let host = sim.add_component(
                &format!("host{rank}"),
                Host::new(rank, n, nic, cfg.host_dispatch, cfg.nic.bus_latency, program),
            );
            // Completion path: one bus transaction back to this process's
            // host, on its per-process port.
            sim.connect(
                nic,
                host_comp_port(rank % k),
                host,
                PORT_COMPLETION,
                cfg.nic.bus_latency,
            );
            // (Requests travel via direct sends from the host; the port
            // constant is referenced here to document the pairing.)
            let _ = PORT_HOST_REQ;
            nics.push(nic);
            hosts.push(host);
        }
        Cluster { sim, nics, hosts }
    }

    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.nics.len() as u32
    }

    /// Run to completion; returns the number of events processed.
    pub fn run(&mut self) -> u64 {
        let n = self.sim.run();
        // Sanity: every program should have finished (deadlock detector).
        for (rank, &h) in self.hosts.iter().enumerate() {
            let host: &Host = self.sim.component(h).expect("host downcast");
            assert!(
                host.done(),
                "rank {rank} did not finish: deadlock or missing completion \
                 (events processed: {n}, time: {})",
                self.sim.now()
            );
        }
        n
    }

    /// Have all programs called `finish`?
    pub fn all_done(&self) -> bool {
        self.hosts.iter().all(|&h| {
            self.sim
                .component::<Host>(h)
                .expect("host downcast")
                .done()
        })
    }

    /// Run under a watchdog: like [`Cluster::run`], but a stall produces
    /// a typed [`Diagnosis`] instead of a hang or a bare assertion.
    ///
    /// Two stall modes are distinguished:
    ///
    /// * The simulation *quiesces* (event heap drains) before every rank
    ///   finishes — a true deadlock: some progress obligation (a credit
    ///   grant, a clear-to-send, a frame past its retry budget) is gone
    ///   for good. → [`StallKind::QuiescentDeadlock`].
    /// * Virtual time reaches `deadline` with events still pending — the
    ///   run is alive but not converging. → [`StallKind::DeadlineExceeded`].
    ///
    /// The diagnosis carries every component's self-reported health:
    /// queue depths, parked sends, outstanding rendezvous, in-flight
    /// retransmit windows, dead peers, unfinished ranks.
    pub fn run_watched(&mut self, deadline: Time) -> Result<u64, Box<Diagnosis>> {
        let n = self.sim.run_until(deadline);
        if self.all_done() {
            return Ok(n);
        }
        let kind = if self.sim.is_idle() {
            StallKind::QuiescentDeadlock
        } else {
            StallKind::DeadlineExceeded
        };
        Err(Box::new(self.sim.diagnose(kind)))
    }

    /// Inspect the NIC serving a rank, after (or between) runs.
    pub fn nic(&self, rank: u32) -> &Nic {
        self.sim
            .component(self.nics[rank as usize])
            .expect("nic downcast")
    }

    /// Final simulated time.
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// Global statistics registry.
    pub fn stats(&self) -> &mpiq_dessim::Stats {
        self.sim.stats()
    }
}
