//! Differential testing: the cycle-level ALPU engine must be
//! observationally equivalent to the golden ordered-list model under
//! arbitrary command/probe sequences.
//!
//! Strategy: generate a random script of insert batches, probes, and
//! resets; drive the engine through its real command/response protocol
//! (START INSERT → INSERTs → STOP INSERT, headers through the header
//! FIFO), apply the same operations to a [`GoldenList`], and compare every
//! response and the final surviving entries.

use mpiq_alpu::{
    Alpu, AlpuConfig, AlpuKind, Command, Entry, GoldenList, MatchWord, Probe, Response,
};
use proptest::prelude::*;

/// A compact, generatable description of an entry.
#[derive(Clone, Copy, Debug)]
struct EntrySpec {
    ctx: u16,
    src: Option<u16>,
    tag: Option<u16>,
}

#[derive(Clone, Copy, Debug)]
struct ProbeSpec {
    ctx: u16,
    src: u16,
    tag: u16,
    /// For the unexpected variant: wildcards on the probe side.
    any_src: bool,
    any_tag: bool,
}

#[derive(Clone, Debug)]
enum Action {
    InsertBatch(Vec<EntrySpec>),
    Probe(ProbeSpec),
    Reset,
}

fn entry_spec() -> impl Strategy<Value = EntrySpec> {
    (
        0u16..3,
        prop_oneof![Just(None), (0u16..6).prop_map(Some)],
        prop_oneof![Just(None), (0u16..6).prop_map(Some)],
    )
        .prop_map(|(ctx, src, tag)| EntrySpec { ctx, src, tag })
}

fn probe_spec() -> impl Strategy<Value = ProbeSpec> {
    (0u16..3, 0u16..6, 0u16..6, any::<bool>(), any::<bool>()).prop_map(
        |(ctx, src, tag, any_src, any_tag)| ProbeSpec {
            ctx,
            src,
            tag,
            any_src,
            any_tag,
        },
    )
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => prop::collection::vec(entry_spec(), 1..12).prop_map(Action::InsertBatch),
        8 => probe_spec().prop_map(Action::Probe),
        1 => Just(Action::Reset),
    ]
}

fn make_entry(kind: AlpuKind, s: EntrySpec, cookie: u32) -> Entry {
    match kind {
        AlpuKind::PostedReceive => Entry::mpi_recv(s.ctx, s.src, s.tag, cookie),
        // Unexpected entries are explicit headers: resolve wildcards to 0.
        AlpuKind::Unexpected => {
            Entry::mpi_header(s.ctx, s.src.unwrap_or(0), s.tag.unwrap_or(0), cookie)
        }
    }
}

fn make_probe(kind: AlpuKind, s: ProbeSpec) -> Probe {
    match kind {
        // Headers probing the posted-receive unit are always explicit.
        AlpuKind::PostedReceive => Probe::exact(MatchWord::mpi(s.ctx, s.src, s.tag)),
        AlpuKind::Unexpected => Probe::recv(
            s.ctx,
            (!s.any_src).then_some(s.src),
            (!s.any_tag).then_some(s.tag),
        ),
    }
}

/// Pump the engine until idle, panicking if it wedges.
fn quiesce(a: &mut Alpu) {
    a.run_to_idle(1_000_000);
}

fn run_script(kind: AlpuKind, total: usize, block: usize, script: Vec<Action>) {
    let mut engine = Alpu::new(AlpuConfig::new(total, block, kind));
    let mut golden = GoldenList::new(total, kind);
    let mut cookie = 0u32;

    for (step, act) in script.into_iter().enumerate() {
        match act {
            Action::InsertBatch(specs) => {
                engine.push_command(Command::StartInsert).unwrap();
                quiesce_insert_ack(&mut engine, &golden, step);
                // Respect the advertised free count, like real firmware.
                let free = engine.free();
                for s in specs.into_iter().take(free) {
                    let e = make_entry(kind, s, cookie);
                    cookie += 1;
                    engine.push_command(Command::Insert(e)).unwrap();
                    assert!(golden.insert(e), "golden full but engine had space");
                }
                engine.push_command(Command::StopInsert).unwrap();
                quiesce(&mut engine);
            }
            Action::Probe(s) => {
                let p = make_probe(kind, s);
                engine.push_header(p).unwrap();
                quiesce(&mut engine);
                let got = engine.pop_response();
                let want = golden.probe(p);
                match (got, want) {
                    (Some(Response::MatchSuccess { tag }), Some(w)) => {
                        assert_eq!(tag, w, "step {step}: wrong winner")
                    }
                    (Some(Response::MatchFailure), None) => {}
                    other => panic!("step {step}: engine/golden diverge: {other:?}"),
                }
            }
            Action::Reset => {
                engine.push_command(Command::Reset).unwrap();
                quiesce(&mut engine);
                golden.reset();
            }
        }
        assert_eq!(
            engine.occupied(),
            golden.len(),
            "step {step}: occupancy diverged"
        );
        assert_eq!(engine.pop_response(), None, "step {step}: stray response");
    }

    // Final state: identical surviving entries in identical priority order.
    let engine_entries = engine.array().entries_oldest_first();
    assert_eq!(engine_entries.as_slice(), golden.entries());
}

/// Wait for the StartAck; nothing else may arrive while quiesced.
fn quiesce_insert_ack(a: &mut Alpu, golden: &GoldenList, step: usize) {
    a.advance(64);
    match a.pop_response() {
        Some(Response::StartAck { free }) => {
            assert_eq!(free as usize, golden.free(), "step {step}: free count")
        }
        other => panic!("step {step}: expected StartAck, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn posted_engine_equals_golden(script in prop::collection::vec(action(), 1..40)) {
        run_script(AlpuKind::PostedReceive, 32, 8, script);
    }

    #[test]
    fn unexpected_engine_equals_golden(script in prop::collection::vec(action(), 1..40)) {
        run_script(AlpuKind::Unexpected, 32, 8, script);
    }

    #[test]
    fn posted_engine_equals_golden_small_blocks(script in prop::collection::vec(action(), 1..40)) {
        run_script(AlpuKind::PostedReceive, 16, 2, script);
    }

    #[test]
    fn posted_engine_equals_golden_single_block(script in prop::collection::vec(action(), 1..30)) {
        run_script(AlpuKind::PostedReceive, 16, 16, script);
    }

    #[test]
    fn engine_capacity_never_exceeded(script in prop::collection::vec(action(), 1..60)) {
        let mut engine = Alpu::new(AlpuConfig::new(16, 4, AlpuKind::PostedReceive));
        let mut cookie = 0u32;
        for act in script {
            match act {
                Action::InsertBatch(specs) => {
                    engine.push_command(Command::StartInsert).unwrap();
                    engine.advance(64);
                    let free = match engine.pop_response() {
                        Some(Response::StartAck { free }) => free as usize,
                        other => panic!("expected StartAck, got {other:?}"),
                    };
                    prop_assert_eq!(free, engine.free());
                    for s in specs.into_iter().take(free) {
                        let e = make_entry(AlpuKind::PostedReceive, s, cookie);
                        cookie += 1;
                        engine.push_command(Command::Insert(e)).unwrap();
                    }
                    engine.push_command(Command::StopInsert).unwrap();
                    engine.run_to_idle(1_000_000);
                }
                Action::Probe(s) => {
                    engine
                        .push_header(make_probe(AlpuKind::PostedReceive, s))
                        .unwrap();
                    engine.run_to_idle(1_000_000);
                    engine.pop_response();
                }
                Action::Reset => {
                    engine.push_command(Command::Reset).unwrap();
                    engine.run_to_idle(1_000_000);
                }
            }
            prop_assert!(engine.occupied() <= 16);
        }
    }
}
