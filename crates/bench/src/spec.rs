//! The typed execution contract: [`RunSpec`] in, [`RunResult`] out.
//!
//! Historically every bench bin parsed its own flags straight into local
//! variables and the simulation sweep lived inline in `main`, so the only
//! way to run an experiment was to exec the bin. This module promotes the
//! string-flag surface (`cli::Common` + per-bin [`Flag`] tables) into a
//! typed, serializable pair:
//!
//! * [`RunSpec`] — *what to simulate*: the bench kind plus its typed
//!   parameters, the seed, the raw fault spec, and the execution knobs.
//!   Built from a parsed command line ([`RunSpec::from_cli`]) or from a
//!   JSON document ([`RunSpec::from_json`]); serializes canonically
//!   ([`RunSpec::to_json`]) so a spec can cross a socket.
//! * [`RunResult`] — *what came out*: the CSV header, one row per sweep
//!   point (verbatim CSV cells plus typed JSON fields), free-form text
//!   for the table-style harnesses, stderr summary notes, and acceptance
//!   failures. Round-trips through JSON byte-exactly for the fields the
//!   bins consume.
//!
//! Everything is serialized with the crate's hand-rolled JSON helpers
//! (`report::json_str` / `jsonlint::parse`) — no serde, per the std-only
//! shim policy.
//!
//! The cache key ([`RunSpec::cache_key`]) deliberately **excludes**
//! the `threads` / `sweep_threads` worker counts: within one engine
//! the determinism contract guarantees byte-identical output at any
//! parallelism, so specs differing only in worker count share one
//! cached result. It **includes** the engine the thread count selects
//! ([`RunSpec::engine`]) — the `threads == 0` hub engine and the
//! `threads >= 1` sharded engine are each deterministic but *not*
//! bit-identical to one another — and the code version, because
//! simulated numbers are only reproducible for a fixed build. Benches
//! whose rows embed wall-clock measurements are not cacheable at all
//! ([`BenchSpec::cacheable`]).
//!
//! Presentation-only flags (`--plot`, `--out`, `--trace-out`,
//! `--metrics`, `--check`, `--tolerance`, the soak curve modes) are not
//! part of the spec: they shape what a *client* does with the result,
//! not what the simulation computes.
//!
//! `table4`, `table5`, and `jsonlint` are not specable: they run no
//! simulation (static FPGA tables and a file validator), so there is
//! nothing to memoize.

use crate::cli::{Cli, Flag};
use crate::jsonlint::{self, Json};
use crate::report::{json_f64, json_str};
use crate::NicVariant;
use crate::Scenario;

/// Every specable bench, in presentation order.
pub const BENCHES: &[&str] = &[
    "fig5",
    "fig6",
    "gap",
    "breakeven",
    "soak",
    "scaling",
    "collectives",
    "appstudy",
    "ablation_block",
    "ablation_hash",
    "ablation_prefetch",
    "ablation_threshold",
    "ablation_wildcard",
];

/// A complete, self-contained description of one experiment run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSpec {
    /// Which bench, with its typed parameters.
    pub bench: BenchSpec,
    /// `--seed`; `None` = the bench's own default seed policy.
    pub seed: Option<u64>,
    /// `--faults SPEC`, carried verbatim (the spec string is the
    /// canonical form; `FaultConfig` has `FromStr` but no `Display`).
    pub faults: Option<String>,
    /// Engine parallelism (`--threads`); output-invariant.
    pub threads: usize,
    /// Sweep-point fan-out (`--sweep-threads`); output-invariant.
    pub sweep_threads: usize,
}

/// Typed parameters of each bench — one variant per specable bin.
#[derive(Clone, Debug, PartialEq)]
pub enum BenchSpec {
    /// Fig. 5: latency vs posted-queue depth and traversal fraction.
    Fig5 {
        configs: Vec<NicVariant>,
        max_queue: usize,
        step: usize,
        fractions: Vec<f64>,
        sizes: Vec<u32>,
    },
    /// Fig. 6: latency vs unexpected-queue depth (always all variants).
    Fig6 { max_queue: usize, step: usize, sizes: Vec<u32> },
    /// Receiver-side gap vs posted-queue depth.
    Gap { burst: usize },
    /// §VI-B break-even fine sweep.
    Breakeven { max_queue: usize },
    /// Overload soak matrix (scenario × seed).
    Soak {
        scenarios: Vec<String>,
        seeds: u64,
        senders: u32,
        msgs: u32,
        size: u32,
        credits: u32,
        max_unexpected: u32,
        eager_buffer: u64,
        alpu: bool,
        deadline_ms: u64,
        mtbf_us: u64,
        mttr_us: u64,
        node_mttr_us: u64,
        check_determinism: bool,
    },
    /// Sharded-engine wall-clock scaling.
    Scaling {
        senders: u32,
        msgs: u32,
        size: u32,
        thread_counts: Vec<usize>,
        scenarios: Vec<String>,
    },
    /// NIC-offloaded vs host-driven collectives.
    Collectives {
        ranks: Vec<u32>,
        ops: Vec<String>,
        topos: Vec<String>,
        modes: Vec<String>,
        len: u32,
        iters: u32,
    },
    /// Application queue-characterization study (fixed patterns).
    Appstudy,
    /// ALPU block-size design space (static model, no cluster).
    AblationBlock,
    /// Linear list vs hash-binned matching vs ALPU.
    AblationHash,
    /// Next-line prefetch vs the ALPU at the cache cliff.
    AblationPrefetch,
    /// §VI-B engagement-threshold sweep.
    AblationThreshold,
    /// `MPI_ANY_SOURCE` vs post-all-and-cancel.
    AblationWildcard,
}

impl BenchSpec {
    /// The bench name as spelled in [`BENCHES`] and on the wire.
    pub fn name(&self) -> &'static str {
        match self {
            BenchSpec::Fig5 { .. } => "fig5",
            BenchSpec::Fig6 { .. } => "fig6",
            BenchSpec::Gap { .. } => "gap",
            BenchSpec::Breakeven { .. } => "breakeven",
            BenchSpec::Soak { .. } => "soak",
            BenchSpec::Scaling { .. } => "scaling",
            BenchSpec::Collectives { .. } => "collectives",
            BenchSpec::Appstudy => "appstudy",
            BenchSpec::AblationBlock => "ablation_block",
            BenchSpec::AblationHash => "ablation_hash",
            BenchSpec::AblationPrefetch => "ablation_prefetch",
            BenchSpec::AblationThreshold => "ablation_threshold",
            BenchSpec::AblationWildcard => "ablation_wildcard",
        }
    }

    /// Whether a result may be memoized: true when every output byte
    /// is reproducible from (spec, seed, code version). Scaling exists
    /// to measure wall-clock (`wall_ms`, `events_per_sec`, `speedup`)
    /// and collectives rows carry a `wall_ms` cell; replaying those
    /// from a cache would serve timings from a different run — or a
    /// different machine — so the server re-executes them every time.
    pub fn cacheable(&self) -> bool {
        !matches!(self, BenchSpec::Scaling { .. } | BenchSpec::Collectives { .. })
    }

    /// The bench's parameters as a canonical single-line JSON object.
    fn params_json(&self) -> String {
        fn list<T, F: Fn(&T) -> String>(items: &[T], f: F) -> String {
            let cells: Vec<String> = items.iter().map(f).collect();
            format!("[{}]", cells.join(","))
        }
        match self {
            BenchSpec::Fig5 { configs, max_queue, step, fractions, sizes } => format!(
                "{{\"configs\":{},\"max_queue\":{max_queue},\"step\":{step},\
                 \"fractions\":{},\"sizes\":{}}}",
                list(configs, |v| json_str(v.label())),
                list(fractions, |f| json_f64(*f)),
                list(sizes, |s| s.to_string()),
            ),
            BenchSpec::Fig6 { max_queue, step, sizes } => format!(
                "{{\"max_queue\":{max_queue},\"step\":{step},\"sizes\":{}}}",
                list(sizes, |s| s.to_string()),
            ),
            BenchSpec::Gap { burst } => format!("{{\"burst\":{burst}}}"),
            BenchSpec::Breakeven { max_queue } => format!("{{\"max_queue\":{max_queue}}}"),
            BenchSpec::Soak {
                scenarios,
                seeds,
                senders,
                msgs,
                size,
                credits,
                max_unexpected,
                eager_buffer,
                alpu,
                deadline_ms,
                mtbf_us,
                mttr_us,
                node_mttr_us,
                check_determinism,
            } => format!(
                "{{\"scenarios\":{},\"seeds\":{seeds},\"senders\":{senders},\
                 \"msgs\":{msgs},\"size\":{size},\"credits\":{credits},\
                 \"max_unexpected\":{max_unexpected},\"eager_buffer\":{eager_buffer},\
                 \"alpu\":{alpu},\"deadline_ms\":{deadline_ms},\"mtbf_us\":{mtbf_us},\
                 \"mttr_us\":{mttr_us},\"node_mttr_us\":{node_mttr_us},\
                 \"check_determinism\":{check_determinism}}}",
                list(scenarios, |s| json_str(s)),
            ),
            BenchSpec::Scaling { senders, msgs, size, thread_counts, scenarios } => format!(
                "{{\"senders\":{senders},\"msgs\":{msgs},\"size\":{size},\
                 \"thread_counts\":{},\"scenarios\":{}}}",
                list(thread_counts, |t| t.to_string()),
                list(scenarios, |s| json_str(s)),
            ),
            BenchSpec::Collectives { ranks, ops, topos, modes, len, iters } => format!(
                "{{\"ranks\":{},\"ops\":{},\"topos\":{},\"modes\":{},\
                 \"len\":{len},\"iters\":{iters}}}",
                list(ranks, |r| r.to_string()),
                list(ops, |s| json_str(s)),
                list(topos, |s| json_str(s)),
                list(modes, |s| json_str(s)),
            ),
            BenchSpec::Appstudy
            | BenchSpec::AblationBlock
            | BenchSpec::AblationHash
            | BenchSpec::AblationPrefetch
            | BenchSpec::AblationThreshold
            | BenchSpec::AblationWildcard => "{}".to_string(),
        }
    }
}

impl RunSpec {
    /// Canonical single-line JSON. Fixed key order, no whitespace —
    /// parsing and re-serializing any spec reproduces the bytes.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bench\":{},\"params\":{},\"seed\":{},\"faults\":{},\
             \"threads\":{},\"sweep_threads\":{}}}",
            json_str(self.bench.name()),
            self.bench.params_json(),
            match self.seed {
                Some(s) => s.to_string(),
                None => "null".to_string(),
            },
            match &self.faults {
                Some(f) => json_str(f),
                None => "null".to_string(),
            },
            self.threads,
            self.sweep_threads,
        )
    }

    /// Which engine `threads` selects for this spec — a cache-key
    /// discriminant. `threads == 0` runs the legacy single-threaded hub
    /// engine, `threads >= 1` the sharded engine; each is
    /// deterministic, but their outputs are not bit-identical to one
    /// another (different window schedules break same-time ties
    /// differently), so cached bytes must never cross that line.
    /// Pinned for the benches the knob cannot steer: collectives maps
    /// `threads == 0` to 4 sharded workers, scaling times its own
    /// `thread_counts` (all >= 1), and ablation_block evaluates a
    /// static hardware model with no engine at all.
    pub fn engine(&self) -> &'static str {
        match &self.bench {
            BenchSpec::Collectives { .. } | BenchSpec::Scaling { .. } => "sharded",
            BenchSpec::AblationBlock => "none",
            _ if self.threads == 0 => "hub",
            _ => "sharded",
        }
    }

    /// The memoization key for this spec under a given build.
    ///
    /// Includes the bench, its parameters, the seed, the fault spec,
    /// and the engine discriminant ([`RunSpec::engine`]) — everything
    /// the simulated output depends on — plus `code_version`, because
    /// results are only reproducible per build. Excludes the
    /// `threads` / `sweep_threads` *counts*: within one engine the
    /// determinism contract makes output identical at any parallelism,
    /// so worker count must not split the cache.
    pub fn cache_key(&self, code_version: &str) -> String {
        format!(
            "{{\"bench\":{},\"params\":{},\"seed\":{},\"faults\":{},\
             \"engine\":{},\"code_version\":{}}}",
            json_str(self.bench.name()),
            self.bench.params_json(),
            match self.seed {
                Some(s) => s.to_string(),
                None => "null".to_string(),
            },
            match &self.faults {
                Some(f) => json_str(f),
                None => "null".to_string(),
            },
            json_str(self.engine()),
            json_str(code_version),
        )
    }

    /// Parse a spec out of its JSON text.
    pub fn from_json(text: &str) -> Result<RunSpec, String> {
        let doc = jsonlint::parse(text).map_err(|e| format!("spec is not valid JSON: {e}"))?;
        RunSpec::from_json_value(&doc)
    }

    /// Parse a spec out of an already-parsed JSON document.
    pub fn from_json_value(doc: &Json) -> Result<RunSpec, String> {
        let bench_name = str_field(doc, "bench")?;
        let params = doc.get("params").ok_or("spec has no `params` object")?;
        let bench = parse_bench(&bench_name, params)?;
        let seed = match doc.get("seed") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("`seed` must be an unsigned integer")?),
        };
        let faults = match doc.get("faults") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_str().ok_or("`faults` must be a string")?.to_string()),
        };
        Ok(RunSpec {
            bench,
            seed,
            faults,
            threads: opt_count_field(doc, "threads")?,
            sweep_threads: opt_count_field(doc, "sweep_threads")?,
        })
    }

    /// Build the spec from a parsed command line for bench `name`.
    ///
    /// Reads exactly the simulation-defining flags (plus positionals for
    /// `gap` / `breakeven`); presentation flags are left to the bin.
    pub fn from_cli(name: &str, cli: &Cli) -> Result<RunSpec, String> {
        let bench = match name {
            "fig5" => {
                let config = cli.get_str("config").unwrap_or("all").to_string();
                let configs: Vec<NicVariant> = match config.as_str() {
                    "all" => NicVariant::ALL.to_vec(),
                    s => vec![s.parse()?],
                };
                BenchSpec::Fig5 {
                    configs,
                    max_queue: cli.get("max-queue", 500),
                    step: cli.get("step", 25),
                    fractions: cli.get_list("fractions", vec![0.0, 0.25, 0.5, 0.75, 1.0]),
                    sizes: cli.get_list("sizes", vec![0, 1024, 8192]),
                }
            }
            "fig6" => BenchSpec::Fig6 {
                max_queue: cli.get("max-queue", 400),
                step: cli.get("step", 20),
                sizes: cli.get_list("sizes", vec![64, 1024]),
            },
            "gap" => BenchSpec::Gap {
                burst: match cli.positionals().first() {
                    Some(s) => s.parse().map_err(|e| format!("BURST {s:?}: {e}"))?,
                    None => 64,
                },
            },
            "breakeven" => BenchSpec::Breakeven {
                max_queue: match cli.positionals().first() {
                    Some(s) => s.parse().map_err(|e| format!("MAX_QUEUE {s:?}: {e}"))?,
                    None => 16,
                },
            },
            "soak" => {
                let scenarios: Vec<String> = match cli.get_str("scenario").unwrap_or("all") {
                    "all" => Scenario::ALL.iter().map(|s| s.name().to_string()).collect(),
                    v => {
                        Scenario::parse(v).ok_or_else(|| format!("unknown scenario `{v}`"))?;
                        vec![v.to_string()]
                    }
                };
                BenchSpec::Soak {
                    scenarios,
                    seeds: cli.get("seeds", 4),
                    senders: cli.get("senders", 16),
                    msgs: cli.get("msgs", 8),
                    size: cli.get("size", 512),
                    credits: cli.get("credits", 4),
                    max_unexpected: cli.get("max-unexpected", 32),
                    eager_buffer: cli.get("eager-buffer", 16u64 << 10),
                    alpu: cli.has("alpu"),
                    deadline_ms: cli.get("deadline-ms", 500),
                    mtbf_us: cli.get("mtbf-us", 150),
                    mttr_us: cli.get("mttr-us", 50),
                    node_mttr_us: cli.get("node-mttr-us", 0),
                    check_determinism: cli.has("check-determinism"),
                }
            }
            "scaling" => BenchSpec::Scaling {
                senders: cli.get("senders", 16),
                msgs: cli.get("msgs", 64),
                size: cli.get("size", 512),
                thread_counts: cli.get_list("thread-counts", vec![1, 2, 4]),
                scenarios: cli
                    .get_list("scenarios", vec!["incast".to_string(), "hetero".to_string()]),
            },
            "collectives" => BenchSpec::Collectives {
                ranks: cli.get_list("ranks", vec![64, 128]),
                ops: cli.get_list("ops", vec!["barrier".to_string(), "allreduce".to_string()]),
                topos: cli.get_list("topos", vec!["hub".to_string(), "fattree".to_string()]),
                modes: cli.get_list("modes", vec!["offload".to_string(), "host".to_string()]),
                len: cli.get("len", 64),
                iters: cli.get("iters", 4),
            },
            "appstudy" => BenchSpec::Appstudy,
            "ablation_block" => BenchSpec::AblationBlock,
            "ablation_hash" => BenchSpec::AblationHash,
            "ablation_prefetch" => BenchSpec::AblationPrefetch,
            "ablation_threshold" => BenchSpec::AblationThreshold,
            "ablation_wildcard" => BenchSpec::AblationWildcard,
            other => return Err(format!("`{other}` is not a specable bench")),
        };
        Ok(RunSpec {
            bench,
            seed: cli.common.seed,
            faults: cli.common_raw("faults").map(str::to_string),
            threads: cli.common.threads,
            sweep_threads: cli.common.sweep_threads,
        })
    }
}

/// The bin-specific flag table for bench `name` — moved here from the
/// bins so the spec, the parser, and `--help` share one declaration.
pub fn flags(name: &str) -> &'static [Flag] {
    match name {
        "fig5" => &[
            Flag { name: "plot", value: None, help: "render an ascii projection of the curves" },
            Flag {
                name: "config",
                value: Some("NAME"),
                help: "all|baseline|alpu128|alpu256 (default all)",
            },
            Flag { name: "max-queue", value: Some("N"), help: "deepest posted queue (default 500)" },
            Flag { name: "step", value: Some("N"), help: "queue-length stride (default 25)" },
            Flag {
                name: "fractions",
                value: Some("LIST"),
                help: "traversal fractions (default 0,0.25,0.5,0.75,1.0)",
            },
            Flag { name: "sizes", value: Some("LIST"), help: "payload bytes (default 0,1024,8192)" },
        ],
        "fig6" => &[
            Flag { name: "plot", value: None, help: "render an ascii projection of the curves" },
            Flag {
                name: "max-queue",
                value: Some("N"),
                help: "deepest unexpected queue (default 400)",
            },
            Flag { name: "step", value: Some("N"), help: "queue-length stride (default 20)" },
            Flag { name: "sizes", value: Some("LIST"), help: "payload bytes (default 64,1024)" },
        ],
        "gap" | "breakeven" | "appstudy" | "ablation_block" | "ablation_hash"
        | "ablation_prefetch" | "ablation_threshold" | "ablation_wildcard" => &[],
        "soak" => &[
            Flag {
                name: "scenario",
                value: Some("NAME"),
                help: "incast|hot-receiver|credit-starve|chaos|all (default all)",
            },
            Flag { name: "seeds", value: Some("N"), help: "run seeds 1..=N (default 4)" },
            Flag { name: "senders", value: Some("N"), help: "fan-in (default 16)" },
            Flag { name: "msgs", value: Some("N"), help: "messages per sender (default 8)" },
            Flag { name: "size", value: Some("B"), help: "message payload bytes (default 512)" },
            Flag { name: "credits", value: Some("N"), help: "eager credits per peer (default 4)" },
            Flag {
                name: "max-unexpected",
                value: Some("N"),
                help: "unexpected-queue bound (default 32)",
            },
            Flag {
                name: "eager-buffer",
                value: Some("B"),
                help: "eager buffer bytes (default 16384)",
            },
            Flag { name: "alpu", value: None, help: "enable the ALPU NIC variant" },
            Flag { name: "deadline-ms", value: Some("T"), help: "watchdog deadline (default 500)" },
            Flag {
                name: "check-determinism",
                value: None,
                help: "re-run every point and demand bit-identical stats",
            },
            Flag {
                name: "curve",
                value: None,
                help: "sweep incast fan-in and plot the degradation curve",
            },
            Flag {
                name: "mtbf-us",
                value: Some("T"),
                help: "chaos: mean microseconds between link flaps (default 150)",
            },
            Flag {
                name: "mttr-us",
                value: Some("T"),
                help: "chaos: mean microseconds a flapped link stays down (default 50)",
            },
            Flag {
                name: "chaos-curve",
                value: None,
                help: "sweep the chaos MTBF and plot availability/goodput",
            },
            Flag {
                name: "recovery-curve",
                value: None,
                help: "sweep the crashed node's MTTR and plot availability and \
                       crash-to-recovered time",
            },
            Flag {
                name: "node-mttr-us",
                value: Some("T"),
                help: "chaos: restart the crashed node T microseconds after its \
                       crash and run the recovery handshake (0 = crash-stop forever, \
                       the default; must be >= 400 so the storm horizon is over)",
            },
            Flag {
                name: "check",
                value: Some("PATH"),
                help: "baseline JSON from a previous --out; fail when any run's \
                       recovery_ns/runtime_ns drifts past --tolerance",
            },
            Flag {
                name: "tolerance",
                value: Some("PCT"),
                help: "allowed drift in percent for --check (default 10)",
            },
        ],
        "scaling" => &[
            Flag {
                name: "senders",
                value: Some("N"),
                help: "incast fan-in; ranks = N + 1 (default 16)",
            },
            Flag { name: "msgs", value: Some("N"), help: "messages per sender (default 64)" },
            Flag { name: "size", value: Some("B"), help: "message payload bytes (default 512)" },
            Flag {
                name: "thread-counts",
                value: Some("LIST"),
                help: "worker-thread counts to time (default 1,2,4)",
            },
            Flag {
                name: "scenarios",
                value: Some("LIST"),
                help: "wire profiles to run: incast, hetero (default both)",
            },
            Flag {
                name: "check",
                value: Some("PATH"),
                help: "baseline BENCH_scaling.json; fail on events/sec regression",
            },
            Flag {
                name: "tolerance",
                value: Some("PCT"),
                help: "allowed events/sec drop vs the baseline, percent (default 25)",
            },
        ],
        "collectives" => &[
            Flag {
                name: "ranks",
                value: Some("LIST"),
                help: "rank counts to sweep (default 64,128)",
            },
            Flag {
                name: "ops",
                value: Some("LIST"),
                help: "collectives to run: barrier, bcast, allreduce (default barrier,allreduce)",
            },
            Flag {
                name: "topos",
                value: Some("LIST"),
                help: "fabrics to run: hub, fattree (default both)",
            },
            Flag {
                name: "modes",
                value: Some("LIST"),
                help: "collective engines: offload, host (default both)",
            },
            Flag {
                name: "len",
                value: Some("B"),
                help: "bcast/allreduce payload bytes (default 64)",
            },
            Flag {
                name: "iters",
                value: Some("N"),
                help: "collectives per rank per cell (default 4)",
            },
            Flag {
                name: "check",
                value: Some("PATH"),
                help: "baseline BENCH_collectives.json; fail when sim_ns_per_op drifts past --tolerance",
            },
            Flag {
                name: "tolerance",
                value: Some("PCT"),
                help: "allowed sim_ns_per_op drift vs the baseline, percent, both directions (default 10)",
            },
        ],
        other => panic!("no flag table for bench `{other}`"),
    }
}

fn parse_bench(name: &str, params: &Json) -> Result<BenchSpec, String> {
    Ok(match name {
        "fig5" => BenchSpec::Fig5 {
            configs: str_list(params, "configs")?
                .iter()
                .map(|s| s.parse())
                .collect::<Result<Vec<NicVariant>, String>>()?,
            max_queue: usize_field(params, "max_queue")?,
            step: usize_field(params, "step")?,
            fractions: f64_list(params, "fractions")?,
            sizes: u32_list(params, "sizes")?,
        },
        "fig6" => BenchSpec::Fig6 {
            max_queue: usize_field(params, "max_queue")?,
            step: usize_field(params, "step")?,
            sizes: u32_list(params, "sizes")?,
        },
        "gap" => BenchSpec::Gap { burst: usize_field(params, "burst")? },
        "breakeven" => BenchSpec::Breakeven { max_queue: usize_field(params, "max_queue")? },
        "soak" => {
            let scenarios = str_list(params, "scenarios")?;
            for s in &scenarios {
                Scenario::parse(s).ok_or_else(|| format!("unknown scenario `{s}`"))?;
            }
            BenchSpec::Soak {
                scenarios,
                seeds: u64_field(params, "seeds")?,
                senders: u32_field(params, "senders")?,
                msgs: u32_field(params, "msgs")?,
                size: u32_field(params, "size")?,
                credits: u32_field(params, "credits")?,
                max_unexpected: u32_field(params, "max_unexpected")?,
                eager_buffer: u64_field(params, "eager_buffer")?,
                alpu: bool_field(params, "alpu")?,
                deadline_ms: u64_field(params, "deadline_ms")?,
                mtbf_us: u64_field(params, "mtbf_us")?,
                mttr_us: u64_field(params, "mttr_us")?,
                node_mttr_us: u64_field(params, "node_mttr_us")?,
                check_determinism: bool_field(params, "check_determinism")?,
            }
        }
        "scaling" => BenchSpec::Scaling {
            senders: u32_field(params, "senders")?,
            msgs: u32_field(params, "msgs")?,
            size: u32_field(params, "size")?,
            thread_counts: usize_list(params, "thread_counts")?,
            scenarios: str_list(params, "scenarios")?,
        },
        "collectives" => BenchSpec::Collectives {
            ranks: u32_list(params, "ranks")?,
            ops: str_list(params, "ops")?,
            topos: str_list(params, "topos")?,
            modes: str_list(params, "modes")?,
            len: u32_field(params, "len")?,
            iters: u32_field(params, "iters")?,
        },
        "appstudy" => BenchSpec::Appstudy,
        "ablation_block" => BenchSpec::AblationBlock,
        "ablation_hash" => BenchSpec::AblationHash,
        "ablation_prefetch" => BenchSpec::AblationPrefetch,
        "ablation_threshold" => BenchSpec::AblationThreshold,
        "ablation_wildcard" => BenchSpec::AblationWildcard,
        other => return Err(format!("unknown bench `{other}`")),
    })
}

// --- small typed accessors over the jsonlint DOM ---------------------

fn str_field(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("`{key}` must be a string"))
}

fn bool_field(doc: &Json, key: &str) -> Result<bool, String> {
    match doc.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("`{key}` must be a boolean")),
    }
}

fn u64_field(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("`{key}` must be an unsigned integer"))
}

fn usize_field(doc: &Json, key: &str) -> Result<usize, String> {
    u64_field(doc, key).map(|v| v as usize)
}

/// A thread-count field: absent (or null) means the default 0, but a
/// malformed value is a typed error — `threads` selects the engine, so
/// a client typo must be rejected, never silently coerced.
fn opt_count_field(doc: &Json, key: &str) -> Result<usize, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(0),
        Some(_) => usize_field(doc, key),
    }
}

fn u32_field(doc: &Json, key: &str) -> Result<u32, String> {
    let v = u64_field(doc, key)?;
    u32::try_from(v).map_err(|_| format!("`{key}` does not fit in 32 bits"))
}

fn arr_field<'j>(doc: &'j Json, key: &str) -> Result<&'j [Json], String> {
    doc.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("`{key}` must be an array"))
}

fn str_list(doc: &Json, key: &str) -> Result<Vec<String>, String> {
    arr_field(doc, key)?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("`{key}` must hold strings"))
        })
        .collect()
}

fn f64_list(doc: &Json, key: &str) -> Result<Vec<f64>, String> {
    arr_field(doc, key)?
        .iter()
        .map(|v| v.as_f64().ok_or_else(|| format!("`{key}` must hold numbers")))
        .collect()
}

fn u32_list(doc: &Json, key: &str) -> Result<Vec<u32>, String> {
    arr_field(doc, key)?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("`{key}` must hold unsigned 32-bit integers"))
        })
        .collect()
}

fn usize_list(doc: &Json, key: &str) -> Result<Vec<usize>, String> {
    arr_field(doc, key)?
        .iter()
        .map(|v| {
            v.as_u64()
                .map(|n| n as usize)
                .ok_or_else(|| format!("`{key}` must hold unsigned integers"))
        })
        .collect()
}

/// Render a [`Json`] value back to canonical text. Numbers go through
/// `f64` `Display` — the same renderer the emitters use — so fragments
/// produced by this crate round-trip byte-exactly.
pub fn render_json(v: &Json) -> String {
    match v {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => json_f64(*n),
        Json::Str(s) => json_str(s),
        Json::Arr(items) => {
            let cells: Vec<String> = items.iter().map(render_json).collect();
            format!("[{}]", cells.join(","))
        }
        Json::Obj(members) => {
            let cells: Vec<String> =
                members.iter().map(|(k, v)| format!("{}:{}", json_str(k), render_json(v))).collect();
            format!("{{{}}}", cells.join(","))
        }
    }
}

// --- results ---------------------------------------------------------

/// One sweep-point row of a result: the verbatim CSV cells the bin
/// prints, plus the typed fields as `(key, rendered JSON fragment)`
/// pairs in output order (the same shape as `report::JsonRow`).
#[derive(Clone, Debug, PartialEq)]
pub struct ResultRow {
    /// Comma-joined CSV cells, exactly as printed to stdout.
    pub csv: String,
    /// Typed fields; values are already-rendered JSON fragments.
    pub fields: Vec<(String, String)>,
}

impl ResultRow {
    /// A field as a number (parses the stored fragment).
    pub fn num(&self, key: &str) -> Option<f64> {
        self.field_json(key).and_then(|j| j.as_f64())
    }

    /// A field as a string (parses the stored fragment).
    pub fn text(&self, key: &str) -> Option<String> {
        self.field_json(key).and_then(|j| j.as_str().map(str::to_string))
    }

    fn field_json(&self, key: &str) -> Option<Json> {
        let frag = self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)?;
        jsonlint::parse(frag).ok()
    }
}

/// Everything a bench run produces, shaped for both local printing and
/// the wire.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct RunResult {
    /// The bench that produced this.
    pub bench: String,
    /// The CSV header line (empty for table-style benches).
    pub header: String,
    /// One row per sweep point.
    pub rows: Vec<ResultRow>,
    /// Free-form stdout for the table-style harnesses (appstudy, the
    /// ablations); printed verbatim.
    pub text: String,
    /// Summary lines the bin relays to stderr.
    pub notes: Vec<String>,
    /// Acceptance-claim violations; a non-empty list makes the bin
    /// exit 1 (e.g. the collectives offload claim).
    pub failures: Vec<String>,
}

impl RunResult {
    /// Single-line JSON for the wire.
    pub fn to_json(&self) -> String {
        let mut rows = Vec::with_capacity(self.rows.len());
        for r in &self.rows {
            let fields: Vec<String> =
                r.fields.iter().map(|(k, v)| format!("{}:{v}", json_str(k))).collect();
            rows.push(format!(
                "{{\"csv\":{},\"fields\":{{{}}}}}",
                json_str(&r.csv),
                fields.join(",")
            ));
        }
        let notes: Vec<String> = self.notes.iter().map(|n| json_str(n)).collect();
        let failures: Vec<String> = self.failures.iter().map(|f| json_str(f)).collect();
        format!(
            "{{\"bench\":{},\"header\":{},\"rows\":[{}],\"text\":{},\
             \"notes\":[{}],\"failures\":[{}]}}",
            json_str(&self.bench),
            json_str(&self.header),
            rows.join(","),
            json_str(&self.text),
            notes.join(","),
            failures.join(","),
        )
    }

    /// Parse a result back from its JSON text.
    pub fn from_json(text: &str) -> Result<RunResult, String> {
        let doc = jsonlint::parse(text).map_err(|e| format!("result is not valid JSON: {e}"))?;
        let rows = arr_field(&doc, "rows")?
            .iter()
            .map(|r| {
                let csv = str_field(r, "csv")?;
                let fields = match r.get("fields") {
                    Some(Json::Obj(members)) => members
                        .iter()
                        .map(|(k, v)| (k.clone(), render_json(v)))
                        .collect(),
                    _ => return Err("row has no `fields` object".to_string()),
                };
                Ok(ResultRow { csv, fields })
            })
            .collect::<Result<Vec<ResultRow>, String>>()?;
        Ok(RunResult {
            bench: str_field(&doc, "bench")?,
            header: str_field(&doc, "header")?,
            rows,
            text: str_field(&doc, "text")?,
            notes: str_list(&doc, "notes")?,
            failures: str_list(&doc, "failures")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_json_is_canonical_and_valid() {
        let spec = RunSpec {
            bench: BenchSpec::Fig5 {
                configs: vec![NicVariant::Alpu128],
                max_queue: 100,
                step: 50,
                fractions: vec![0.0, 1.0],
                sizes: vec![0],
            },
            seed: Some(7),
            faults: Some("seed=1,drop=0.01".to_string()),
            threads: 2,
            sweep_threads: 4,
        };
        let text = spec.to_json();
        jsonlint::validate(&text).expect("spec JSON must be valid");
        let back = RunSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), text, "serialization must be canonical");
    }

    #[test]
    fn result_json_roundtrips_fields_byte_exactly() {
        let result = RunResult {
            bench: "fig5".to_string(),
            header: "a,b".to_string(),
            rows: vec![ResultRow {
                csv: "x,1.5000".to_string(),
                fields: vec![
                    ("config".to_string(), json_str("alpu\"128")),
                    ("latency_us".to_string(), json_f64(1.5)),
                    ("count".to_string(), "12345".to_string()),
                    ("nan".to_string(), json_f64(f64::NAN)),
                ],
            }],
            text: "line one\nline two\n".to_string(),
            notes: vec!["note".to_string()],
            failures: vec![],
        };
        let text = result.to_json();
        jsonlint::validate(&text).expect("result JSON must be valid");
        let back = RunResult::from_json(&text).unwrap();
        assert_eq!(back, result);
        assert_eq!(back.to_json(), text);
        assert_eq!(back.rows[0].num("latency_us"), Some(1.5));
        assert_eq!(back.rows[0].text("config").as_deref(), Some("alpu\"128"));
        assert_eq!(back.rows[0].num("nan"), None, "non-finite landed as null");
    }

    #[test]
    fn malformed_thread_counts_are_typed_errors() {
        let ok = RunSpec::from_json("{\"bench\":\"gap\",\"params\":{\"burst\":4}}").unwrap();
        assert_eq!((ok.threads, ok.sweep_threads), (0, 0), "missing counts default to 0");
        for bad in [
            "{\"bench\":\"gap\",\"params\":{\"burst\":4},\"threads\":\"two\"}",
            "{\"bench\":\"gap\",\"params\":{\"burst\":4},\"threads\":-1}",
            "{\"bench\":\"gap\",\"params\":{\"burst\":4},\"sweep_threads\":1.5}",
        ] {
            let err = RunSpec::from_json(bad).unwrap_err();
            assert!(err.contains("threads"), "error must name the flag: {err}");
        }
    }

    #[test]
    fn cache_key_carries_the_engine_but_not_the_worker_count() {
        let mut spec = RunSpec {
            bench: BenchSpec::Gap { burst: 4 },
            seed: None,
            faults: None,
            threads: 0,
            sweep_threads: 0,
        };
        let hub = spec.cache_key("v1");
        assert!(hub.contains("\"engine\":\"hub\""), "{hub}");
        spec.threads = 1;
        let sharded = spec.cache_key("v1");
        assert_ne!(hub, sharded, "hub and sharded bytes must not share a cache slot");
        spec.threads = 8;
        spec.sweep_threads = 4;
        assert_eq!(sharded, spec.cache_key("v1"), "worker counts must not split the cache");
    }

    #[test]
    fn wall_clock_benches_are_not_cacheable() {
        assert!(!BenchSpec::Scaling {
            senders: 16,
            msgs: 8,
            size: 64,
            thread_counts: vec![1],
            scenarios: vec!["incast".to_string()],
        }
        .cacheable());
        assert!(!BenchSpec::Collectives {
            ranks: vec![4],
            ops: vec!["barrier".to_string()],
            topos: vec!["hub".to_string()],
            modes: vec!["host".to_string()],
            len: 0,
            iters: 1,
        }
        .cacheable());
        assert!(BenchSpec::Gap { burst: 4 }.cacheable());
        assert!(BenchSpec::Appstudy.cacheable());
    }

    #[test]
    fn render_json_reproduces_our_fragments() {
        for frag in ["123", "1.5", "0.25", "-0.5", "null", "true", "\"a b\"", "[1,2.5]"] {
            let doc = jsonlint::parse(frag).unwrap();
            assert_eq!(render_json(&doc), frag);
        }
    }
}
