//! End-to-end delivery oracle under deterministic fault injection.
//!
//! Every test here runs the same mixed workload — eager, rendezvous and
//! wildcard traffic over four ranks — through a lossy fabric and/or
//! faulty ALPUs, and checks the properties the reliability layer and the
//! ALPU quarantine machinery are supposed to guarantee:
//!
//! * **exactly-once, MPI-ordered delivery**: every rank's script runs to
//!   completion ([`Cluster::run`] panics on deadlock or a missing
//!   completion), every queue drains, and the shadow-list invariants
//!   hold on every NIC;
//! * **determinism**: the same fault seed reproduces a bit-identical
//!   statistics dump and final simulated time;
//! * **zero cost when disabled**: an inactive [`FaultConfig`] leaves the
//!   simulation byte-identical to one that never heard of faults;
//! * **graceful degradation**: forced ALPU corruption mid-run produces
//!   quarantine → software fallback → re-engagement, visibly counted,
//!   with the run still completing correctly.

use mpiq::dessim::{FaultConfig, FaultSchedule, Time};
use mpiq::mpi::script::mark_log;
use mpiq::mpi::{AppProgram, Cluster, ClusterConfig, Script};
use mpiq::nic::firmware::check_invariants;
use mpiq::nic::NicConfig;

fn boxed(s: Script) -> Box<dyn AppProgram> {
    Box::new(s)
}

const RANKS: u32 = 4;
/// Eager messages per peer per phase.
const EAGER_PER_PEER: usize = 6;

/// A four-rank workload mixing the protocol paths: eager messages
/// (≤ 2048 B), one rendezvous transfer per peer (8192 B), wildcard
/// receives (`MPI_ANY_SOURCE`), and a second phase after a settle gap so
/// quarantined ALPUs get traffic after their cooldown expires.
fn mixed_workload() -> Vec<Box<dyn AppProgram>> {
    let mut programs = Vec::new();
    for me in 0..RANKS {
        let mut b = Script::builder();
        for phase in 0..2u16 {
            let mut pending = Vec::new();
            // Post receives first: specific-source eager recvs, one
            // rendezvous recv per peer, and a batch of wildcard recvs.
            for src in (0..RANKS).filter(|&s| s != me) {
                for i in 0..EAGER_PER_PEER as u16 {
                    let tag = 1000 * (phase + 1) + 10 * src as u16 + i;
                    pending.push(b.irecv(Some(src as u16), Some(tag), 512));
                }
                pending.push(b.irecv(Some(src as u16), Some(99 + phase), 8192));
            }
            for _ in 0..RANKS - 1 {
                // Wildcard: any source, fixed tag — exercises the paths
                // an ALPU cannot shortcut and a hash-bin scheme walks a
                // side list for.
                pending.push(b.irecv(None, Some(7 + phase), 256));
            }
            // Now the sends mirroring those receives.
            for dst in (0..RANKS).filter(|&d| d != me) {
                for i in 0..EAGER_PER_PEER as u16 {
                    let tag = 1000 * (phase + 1) + 10 * me as u16 + i;
                    pending.push(b.isend(dst, tag, 512));
                }
                pending.push(b.isend(dst, 99 + phase, 8192));
            }
            // One wildcard-feeder send per peer (each rank receives
            // RANKS-1 wildcards and sends one to each other rank).
            for dst in (0..RANKS).filter(|&d| d != me) {
                pending.push(b.isend(dst, 7 + phase, 256));
            }
            b.wait_all(pending);
            b.barrier();
            // Settle: lets retransmit timers fire, ALPU insert sessions
            // drain, and quarantine cooldowns expire before phase 2.
            b.sleep(Time::from_us(50));
        }
        b.mark(me);
        programs.push(boxed(b.build(mark_log())));
    }
    programs
}

/// Build, run, and oracle-check one cluster; returns it for inspection.
fn run_checked(nic: NicConfig, faults: Option<FaultConfig>) -> Cluster {
    let mut builder = ClusterConfig::builder(nic);
    if let Some(f) = faults {
        builder = builder.faults(f);
    }
    let mut c = Cluster::new(builder.build(), mixed_workload());
    c.run(); // panics on deadlock / missing completion
    for rank in 0..RANKS {
        let fw = c.nic(rank).firmware();
        check_invariants(fw);
        assert_eq!(
            fw.posted_len(),
            0,
            "rank {rank}: posted receives left unmatched"
        );
        assert_eq!(
            fw.unexpected_len(),
            0,
            "rank {rank}: unexpected messages never consumed \
             (duplicate delivery or lost completion)"
        );
    }
    c
}

/// The fault schedule the acceptance criteria name: 1% drop plus
/// duplication and corruption, and a whiff of ALPU trouble.
fn lossy(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        drop_p: 0.01,
        dup_p: 0.005,
        corrupt_p: 0.005,
        flip_p: 0.001,
        stall_p: 0.001,
        ..FaultConfig::none()
    }
}

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 0xDEADBEEF];

#[test]
fn delivery_oracle_baseline_under_faults() {
    let mut injected = 0;
    for seed in SEEDS {
        let c = run_checked(NicConfig::baseline(), Some(lossy(seed)));
        injected += c.stats().sum_prefix("net.faults.");
    }
    // The schedule must actually bite across the seed set, or this
    // oracle is vacuously green.
    assert!(injected > 0, "fault plan injected nothing across 8 seeds");
}

#[test]
fn delivery_oracle_alpu128_under_faults() {
    let mut injected = 0;
    for seed in SEEDS {
        let c = run_checked(NicConfig::with_alpus(128), Some(lossy(seed)));
        injected += c.stats().sum_prefix("net.faults.");
    }
    assert!(injected > 0, "fault plan injected nothing across 8 seeds");
}

#[test]
fn delivery_oracle_alpu256_under_faults() {
    let mut injected = 0;
    for seed in SEEDS {
        let c = run_checked(NicConfig::with_alpus(256), Some(lossy(seed)));
        injected += c.stats().sum_prefix("net.faults.");
    }
    assert!(injected > 0, "fault plan injected nothing across 8 seeds");
}

/// Same seed twice ⇒ byte-identical statistics JSON and final time.
#[test]
fn same_seed_is_bit_identical() {
    for nic in [NicConfig::baseline(), NicConfig::with_alpus(128)] {
        let a = run_checked(nic, Some(lossy(42)));
        let b = run_checked(nic, Some(lossy(42)));
        assert_eq!(a.now(), b.now(), "final simulated time diverged");
        assert_eq!(
            a.stats().to_json(),
            b.stats().to_json(),
            "statistics diverged between identical-seed runs"
        );
    }
}

/// Different seeds must produce *different* fault schedules (otherwise
/// the seed isn't feeding the plan at all). Compare injected-fault
/// totals across the seed set: at least two must differ.
#[test]
fn different_seeds_give_different_schedules() {
    let totals: Vec<u64> = SEEDS
        .iter()
        .map(|&s| {
            run_checked(NicConfig::baseline(), Some(lossy(s)))
                .stats()
                .sum_prefix("net.faults.")
        })
        .collect();
    assert!(
        totals.iter().any(|&t| t != totals[0]),
        "all 8 seeds produced identical fault totals: {totals:?}"
    );
}

/// `FaultConfig::none()` must be indistinguishable from never touching
/// the fault API: no link layer, no RNG draws, identical stats dump.
#[test]
fn inactive_faults_are_zero_cost() {
    for nic in [NicConfig::baseline(), NicConfig::with_alpus(128)] {
        let plain = run_checked(nic, None);
        let armed = run_checked(nic, Some(FaultConfig::none()));
        assert_eq!(plain.now(), armed.now());
        assert_eq!(
            plain.stats().to_json(),
            armed.stats().to_json(),
            "an inactive fault config perturbed the simulation"
        );
        // And no reliability-layer traffic exists to account for.
        assert_eq!(armed.stats().sum_prefix("nic0.link."), 0);
    }
}

/// Component-level fault schedule (flap storm + node crash + ALPU
/// death) on the sharded engine: the statistics dump and final time must
/// be byte-identical at 1, 2, 4, and 8 worker threads. All fault
/// decisions are pure functions of `(schedule, time)` evaluated locally
/// per component, so no fault information ever crosses a shard boundary
/// — that is the property this pins.
#[test]
fn scheduled_faults_deterministic_across_thread_counts() {
    // Pinned-source-only workload (no wildcards, no barriers): every
    // operation doomed by the crash fails typed, so survivors always
    // finish and the run quiesces at every thread count.
    fn chaos_workload() -> Vec<Box<dyn AppProgram>> {
        let mut programs = Vec::new();
        for me in 0..RANKS {
            let mut b = Script::builder();
            for phase in 0..3u16 {
                let mut pending = Vec::new();
                for peer in (0..RANKS).filter(|&p| p != me) {
                    for i in 0..4u16 {
                        let tag = 1000 * (phase + 1) + 10 * peer as u16 + i;
                        pending.push(b.irecv(Some(peer as u16), Some(tag), 512));
                        let tag = 1000 * (phase + 1) + 10 * me as u16 + i;
                        pending.push(b.isend(peer, tag, 512));
                    }
                    pending.push(b.irecv(Some(peer as u16), Some(99 + phase), 8192));
                    pending.push(b.isend(peer, 99 + phase, 8192));
                }
                b.wait_all(pending);
                b.sleep(Time::from_us(120));
            }
            b.mark(me);
            programs.push(boxed(b.build(mark_log())));
        }
        programs
    }
    fn chaos_schedule() -> FaultSchedule {
        let mut sched = FaultSchedule::generate(
            9,
            RANKS,
            Time::from_us(150),
            Time::from_us(50),
            Time::from_ms(2),
        );
        for ev in "crash@300us:node=3;alpu@80us:nic=1"
            .parse::<FaultSchedule>()
            .expect("spec grammar")
            .events()
        {
            sched.push(ev.0, ev.1.clone());
        }
        sched
    }
    let run = |threads: usize| {
        let cfg = ClusterConfig::builder(NicConfig::with_alpus(128))
            .fault_schedule(chaos_schedule())
            .parallelism(threads)
            .build();
        let mut c = Cluster::new(cfg, chaos_workload());
        c.run_watched(Time::from_ms(100))
            .unwrap_or_else(|d| panic!("{threads} threads: stalled: {d}"));
        (c.now(), c.stats().to_json())
    };
    let (t1, json1) = run(1);
    assert!(
        json1.contains("fault."),
        "the chaos schedule never produced a component fault"
    );
    for threads in [2, 4, 8] {
        let (t, json) = run(threads);
        assert_eq!(t1, t, "final time diverged at {threads} threads");
        assert_eq!(
            json1, json,
            "statistics diverged between 1 and {threads} threads"
        );
    }
}

/// Forced ALPU corruption mid-benchmark: quarantine, software fallback,
/// and re-engagement all happen, are all counted, and the run still
/// completes with exactly-once delivery.
#[test]
fn forced_corruption_degrades_gracefully() {
    let faults = FaultConfig {
        seed: 7,
        flip_p: 0.10,
        stall_p: 0.10,
        ..FaultConfig::none()
    };
    let c = run_checked(NicConfig::with_alpus(128), Some(faults));
    let (mut resets, mut fallbacks, mut reengaged) = (0, 0, 0);
    for rank in 0..RANKS {
        let fw = c.nic(rank).firmware().stats();
        resets += fw.alpu_resets;
        fallbacks += fw.alpu_fallbacks;
        reengaged += fw.alpu_reengagements;
    }
    assert!(resets > 0, "no ALPU was ever quarantined at 10% fault rates");
    assert!(fallbacks > 0, "quarantine never forced a software match");
    assert!(
        reengaged > 0,
        "no quarantined ALPU re-engaged after cooldown"
    );
}
