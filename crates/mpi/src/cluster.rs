//! Cluster assembly: hosts + NICs + fabric, ready to run.
//!
//! Two execution engines build from the same [`ClusterConfig`]:
//!
//! * **Single** (`parallelism == 0`, the default): the historical layout —
//!   one [`Simulation`], a hub [`Fabric`] crossbar, every component on the
//!   calling thread. Golden outputs from earlier revisions are preserved
//!   bit for bit.
//! * **Sharded** (`parallelism >= 1`): one shard per *node* holding that
//!   node's [`FabricPort`], NIC, and hosts, run by the partitioned
//!   executor with `parallelism` worker threads. The fabric wires are the
//!   only cross-shard edges; their (possibly heterogeneous) latencies
//!   feed the window planner's per-edge lookahead. Results are
//!   bit-identical for any `parallelism >= 1`
//!   (that is what `tests/parallel_determinism.rs` pins), but are *not*
//!   a replay of the hub engine: the distributed fabric breaks
//!   same-picosecond ties per receiver, the hub globally.

use crate::app::{AppProgram, PORT_COMPLETION};
use crate::host::Host;
use mpiq_dessim::prelude::*;
use mpiq_dessim::watchdog::{Diagnosis, StallKind};
use mpiq_dessim::{FaultConfig, FaultSchedule, Metrics, ShardId, ShardedSim, Stats, WindowPolicy};
use mpiq_net::{
    Fabric, FabricPort, NetConfig, Switch, TopoPlan, Topology, PORT_FP_INJECT, PORT_FP_WIRE,
    PORT_FROM_NIC, PORT_SW_IN,
};
use mpiq_nic::{host_comp_port, Nic, NicConfig, PORT_HOST_REQ, PORT_NET_RX, PORT_NET_TX};
use std::sync::Arc;

/// Per-NIC flow-control bounds, set as one unit via
/// [`ClusterConfigBuilder::flow_control`]. The zero value (the default)
/// disables every bound — the historical unbounded behavior.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowControl {
    /// Eager credits granted to each peer; `0` = no credit flow control.
    pub eager_credits: u32,
    /// Unexpected-queue cap; arrivals beyond it are refused at the wire.
    /// `0` = unbounded.
    pub max_unexpected: u32,
    /// Eager staging pool in bytes; exhausted = header-only admits.
    /// `0` = unbounded.
    pub eager_buffer_bytes: u64,
}

/// Everything needed to build a simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// NIC configuration (same on every node).
    pub nic: NicConfig,
    /// Network parameters.
    pub net: NetConfig,
    /// RNG seed (determinism).
    pub seed: u64,
    /// Host CPU cost per dispatched request.
    pub host_dispatch: Time,
    /// Trace-ring capacity; 0 (the default) leaves tracing disabled so
    /// instrumented code paths stay no-ops.
    pub trace_capacity: usize,
    /// Enable the latency-histogram / counter registry.
    pub metrics: bool,
    /// Execution engine: `0` runs the hub-fabric engine on the calling
    /// thread; `n >= 1` runs the sharded engine (one shard per node) on
    /// `n` worker threads. Any `n >= 1` produces identical output.
    pub parallelism: usize,
    /// Window planning on the sharded engine (ignored by the hub
    /// engine): adaptive per-edge lookahead by default, or the global
    /// conservative window as a baseline. For a fixed policy, results
    /// are identical at every `parallelism >= 1`.
    pub window_policy: WindowPolicy,
    /// Component-level fault timeline (node crashes, link flaps,
    /// partitions, ALPU deaths), shared by every component that consults
    /// it. `None` (the default) keeps every fault-domain code path a
    /// single flag check. Set via
    /// [`ClusterConfigBuilder::fault_schedule`].
    pub fault_schedule: Option<Arc<FaultSchedule>>,
    /// Fabric shape. [`Topology::Hub`] (the default) is the historical
    /// single crossbar. Any switched topology (fat tree, dragonfly,
    /// torus) always runs on the sharded engine — one shard per edge
    /// switch, trunks the only cross-shard edges — with
    /// `max(1, parallelism)` worker threads.
    pub topology: Topology,
}

impl ClusterConfig {
    /// Defaults around a given NIC configuration.
    pub fn new(nic: NicConfig) -> ClusterConfig {
        ClusterConfig {
            nic,
            net: NetConfig::default(),
            seed: 42,
            host_dispatch: Time::from_ns(40),
            trace_capacity: 0,
            metrics: false,
            parallelism: 0,
            window_policy: WindowPolicy::default(),
            fault_schedule: None,
            topology: Topology::Hub,
        }
    }

    /// Start a typed builder around a NIC configuration — the one place
    /// to dial faults, observability, flow control, and parallelism.
    pub fn builder(nic: NicConfig) -> ClusterConfigBuilder {
        ClusterConfigBuilder {
            cfg: ClusterConfig::new(nic),
        }
    }

}

/// Builder for [`ClusterConfig`]. Every method is optional; `build`
/// returns the config with whatever was dialed in.
///
/// ```
/// # use mpiq_mpi::cluster::{ClusterConfig, FlowControl};
/// # use mpiq_nic::NicConfig;
/// let cfg = ClusterConfig::builder(NicConfig::baseline())
///     .seed(7)
///     .observability(4096)
///     .flow_control(FlowControl {
///         eager_credits: 4,
///         max_unexpected: 32,
///         eager_buffer_bytes: 16 << 10,
///     })
///     .parallelism(4)
///     .build();
/// assert_eq!(cfg.parallelism, 4);
/// assert!(cfg.metrics);
/// ```
#[derive(Clone, Debug)]
pub struct ClusterConfigBuilder {
    cfg: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Network parameters (wire latency, bandwidth).
    pub fn net(mut self, net: NetConfig) -> Self {
        self.cfg.net = net;
        self
    }

    /// RNG seed for the whole cluster.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Host CPU cost per dispatched request.
    pub fn host_dispatch(mut self, cost: Time) -> Self {
        self.cfg.host_dispatch = cost;
        self
    }

    /// Arm deterministic fault injection (fabric drops/duplicates/
    /// corruption, ALPU bit flips and stalls). Network-side faults force
    /// the link reliability layer on.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.cfg.nic = self.cfg.nic.with_faults(faults);
        self
    }

    /// Turn on structured tracing (ring of `capacity` records per
    /// engine shard) and the metrics registry.
    pub fn observability(mut self, trace_capacity: usize) -> Self {
        self.cfg.trace_capacity = trace_capacity;
        self.cfg.metrics = true;
        self
    }

    /// Set all three per-NIC overload bounds at once.
    pub fn flow_control(mut self, fc: FlowControl) -> Self {
        self.cfg.nic.eager_credits = fc.eager_credits;
        self.cfg.nic.max_unexpected = fc.max_unexpected;
        self.cfg.nic.eager_buffer_bytes = fc.eager_buffer_bytes;
        self
    }

    /// Select the execution engine: `0` = hub fabric on the calling
    /// thread (default); `n >= 1` = sharded engine on `n` worker
    /// threads (same results for every `n`).
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.cfg.parallelism = threads;
        self
    }

    /// Window planning policy for the sharded engine (no effect on the
    /// hub engine). Defaults to adaptive per-edge lookahead; the global
    /// window remains available as a perf baseline.
    pub fn window_policy(mut self, policy: WindowPolicy) -> Self {
        self.cfg.window_policy = policy;
        self
    }

    /// Select the fabric shape. The default [`Topology::Hub`] keeps the
    /// historical crossbar; a switched topology routes every frame
    /// through [`Switch`] components (per-hop serialization, output
    /// queueing, link contention) and always runs on the sharded engine.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.cfg.topology = topology;
        self
    }

    /// Tune the NIC failure detector: how long a peer may stay silent
    /// before keepalive probing starts (`keepalive`), and how many
    /// unanswered retransmits declare it dead (`retry_budget`). The
    /// defaults are aggressive so tests converge quickly; deployments
    /// facing long-but-survivable link outages want a *lenient* detector
    /// (longer keepalive, bigger budget) so a slow-but-alive peer is not
    /// falsely declared dead — see `tests/recovery.rs`.
    pub fn failure_detector(mut self, keepalive: Time, retry_budget: u32) -> Self {
        self.cfg.nic = self.cfg.nic.with_failure_detector(keepalive, retry_budget);
        self
    }

    /// Arm the component-level fault timeline: scheduled node crashes,
    /// link flaps, network partitions, and ALPU deaths. An empty
    /// schedule is the same as never calling this. A non-empty schedule
    /// forces the link reliability layer on — flapping links drop frames,
    /// and peer-death detection rides the keepalive machinery.
    pub fn fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        if !schedule.is_empty() {
            self.cfg.nic.reliability = true;
            self.cfg.fault_schedule = Some(Arc::new(schedule));
        }
        self
    }

    /// Finish.
    pub fn build(self) -> ClusterConfig {
        self.cfg
    }
}

/// The execution engine carrying a built cluster.
enum Engine {
    Single(Simulation),
    Sharded(ShardedSim),
}

/// A built cluster: run it, then inspect NICs and statistics.
pub struct Cluster {
    engine: Engine,
    nics: Vec<ComponentId>,
    hosts: Vec<ComponentId>,
    /// Node count (not rank count) — the fault schedule and partition
    /// diagnosis are node-granular.
    nodes: u32,
    /// The armed fault timeline, if any; consulted by the watchdog to
    /// tell partition-induced quiescence from a leak deadlock.
    schedule: Option<Arc<FaultSchedule>>,
}

impl Cluster {
    /// Build a cluster with one program per rank. When the NIC config
    /// sets `ranks_per_node > 1`, consecutive ranks share a node's NIC
    /// (block distribution), exercising the paper's footnote-1
    /// multi-process extension. `cfg.parallelism` selects the engine —
    /// see the module docs.
    pub fn new(cfg: ClusterConfig, programs: Vec<Box<dyn AppProgram>>) -> Cluster {
        let recovery = programs.iter().map(|_| None).collect();
        Cluster::with_recovery(cfg, programs, recovery)
    }

    /// Like [`Cluster::new`], but with a recovery program staged per
    /// rank (`None` = nothing to run after a restart). When the fault
    /// schedule restarts a rank's node, its host boots the staged
    /// program from scratch — pre-crash program state is gone, matching
    /// the crash-stop model. Ranks whose nodes never restart never
    /// consume their entry.
    pub fn with_recovery(
        cfg: ClusterConfig,
        programs: Vec<Box<dyn AppProgram>>,
        recovery: Vec<Option<Box<dyn AppProgram>>>,
    ) -> Cluster {
        let n = programs.len() as u32;
        assert!(n > 0, "cluster needs at least one rank");
        assert_eq!(
            programs.len(),
            recovery.len(),
            "one recovery slot (possibly None) per rank"
        );
        let k = cfg.nic.ranks_per_node.max(1);
        let nodes = n.div_ceil(k);
        if let Some(plan) = cfg.topology.plan(nodes) {
            Cluster::new_sharded_topo(cfg, programs, recovery, n, k, nodes, plan)
        } else if cfg.parallelism == 0 {
            Cluster::new_single(cfg, programs, recovery, n, k, nodes)
        } else {
            Cluster::new_sharded(cfg, programs, recovery, n, k, nodes)
        }
    }

    /// Build one rank's host with its fault timeline applied: every
    /// scheduled crash of its node, plus restarts (booting the staged
    /// recovery program at the first one).
    fn faulted_host(
        cfg: &ClusterConfig,
        rank: u32,
        n: u32,
        nic: ComponentId,
        program: Box<dyn AppProgram>,
        recovery: Option<Box<dyn AppProgram>>,
        node: u32,
    ) -> Host {
        let mut host = Host::new(rank, n, nic, cfg.host_dispatch, cfg.nic.bus_latency, program);
        if let Some(s) = cfg.fault_schedule.as_ref() {
            for t in s.crash_times(node) {
                host = host.with_crash_at(t);
            }
            let restarts = s.restart_times(node);
            if !restarts.is_empty() {
                host = host.with_restarts(restarts, recovery);
            }
        }
        host
    }

    fn new_single(
        cfg: ClusterConfig,
        programs: Vec<Box<dyn AppProgram>>,
        recovery: Vec<Option<Box<dyn AppProgram>>>,
        n: u32,
        k: u32,
        nodes: u32,
    ) -> Cluster {
        let mut sim = Simulation::new(cfg.seed);
        if cfg.trace_capacity > 0 {
            sim.enable_tracing(cfg.trace_capacity);
        }
        if cfg.metrics {
            sim.enable_metrics();
        }
        let fabric = sim.add_component(
            "net",
            Fabric::with_faults(cfg.net, nodes, cfg.nic.faults)
                .with_schedule(cfg.fault_schedule.clone()),
        );
        let mut node_nics = Vec::new();
        for node in 0..nodes {
            let nic = sim.add_component(
                &format!("nic{node}"),
                Nic::new(node, cfg.nic).with_schedule(cfg.fault_schedule.clone()),
            );
            sim.connect(nic, PORT_NET_TX, fabric, PORT_FROM_NIC, Time::ZERO);
            sim.connect(fabric, Fabric::out_port(node), nic, PORT_NET_RX, Time::ZERO);
            node_nics.push(nic);
        }
        let mut nics = Vec::new();
        let mut hosts = Vec::new();
        for (rank, (program, recovery)) in programs.into_iter().zip(recovery).enumerate() {
            let rank = rank as u32;
            let node = rank / k;
            let nic = node_nics[node as usize];
            let host = Cluster::faulted_host(&cfg, rank, n, nic, program, recovery, node);
            let host = sim.add_component(&format!("host{rank}"), host);
            // Completion path: one bus transaction back to this process's
            // host, on its per-process port.
            sim.connect(
                nic,
                host_comp_port(rank % k),
                host,
                PORT_COMPLETION,
                cfg.nic.bus_latency,
            );
            // (Requests travel via direct sends from the host; the port
            // constant is referenced here to document the pairing.)
            let _ = PORT_HOST_REQ;
            nics.push(nic);
            hosts.push(host);
        }
        Cluster {
            engine: Engine::Single(sim),
            nics,
            hosts,
            nodes,
            schedule: cfg.fault_schedule,
        }
    }

    /// One shard per node: `{FabricPort, Nic, that node's Hosts}`. The
    /// host→NIC request path (direct sends) and NIC→host completion
    /// links are intra-shard; only the port-to-port fabric wires cross
    /// shards, at the per-pair latency from `cfg.net` — the edges the
    /// window planner derives its lookahead from.
    fn new_sharded(
        cfg: ClusterConfig,
        programs: Vec<Box<dyn AppProgram>>,
        recovery: Vec<Option<Box<dyn AppProgram>>>,
        n: u32,
        k: u32,
        nodes: u32,
    ) -> Cluster {
        let mut sim = ShardedSim::new(cfg.seed, nodes as usize);
        sim.set_threads(cfg.parallelism);
        sim.set_window_policy(cfg.window_policy);
        if cfg.trace_capacity > 0 {
            sim.enable_tracing(cfg.trace_capacity);
        }
        if cfg.metrics {
            sim.enable_metrics();
        }
        let mut programs = programs.into_iter().zip(recovery);
        let mut node_nics = Vec::new();
        let mut ports = Vec::new();
        let mut nics = Vec::new();
        let mut hosts = Vec::new();
        for node in 0..nodes {
            let shard = ShardId(node);
            let nic = sim.add_component(
                shard,
                &format!("nic{node}"),
                Nic::new(node, cfg.nic).with_schedule(cfg.fault_schedule.clone()),
            );
            let port = sim.add_component(
                shard,
                &format!("net{node}"),
                FabricPort::with_faults(cfg.net, nodes, node, nic, PORT_NET_RX, cfg.nic.faults)
                    .with_schedule(cfg.fault_schedule.clone()),
            );
            sim.connect(nic, PORT_NET_TX, port, PORT_FP_INJECT, Time::ZERO);
            node_nics.push(nic);
            ports.push(port);
            for local in 0..k {
                let rank = node * k + local;
                if rank >= n {
                    break;
                }
                let (program, recovery) = programs.next().expect("one program per rank");
                let host = Cluster::faulted_host(&cfg, rank, n, nic, program, recovery, node);
                let host = sim.add_component(shard, &format!("host{rank}"), host);
                sim.connect(
                    nic,
                    host_comp_port(rank % k),
                    host,
                    PORT_COMPLETION,
                    cfg.nic.bus_latency,
                );
                nics.push(nic);
                hosts.push(host);
            }
        }
        mpiq_net::wire_ports(&mut sim, &ports, &cfg.net);
        Cluster {
            engine: Engine::Sharded(sim),
            nics,
            hosts,
            nodes,
            schedule: cfg.fault_schedule,
        }
    }

    /// The switched-fabric engine: [`Switch`] components routed by a
    /// [`TopoPlan`], one shard per *edge switch* (its attached nodes —
    /// `FabricPort`, NIC, hosts — live with it; core switches are
    /// round-robined). Ports run in uplink mode, so wiring is
    /// O(nodes + trunks) instead of the all-to-all O(nodes²):
    ///
    /// * node uplink → edge switch [`PORT_SW_IN`], at wire latency;
    /// * trunk `i` of each switch → neighbor's [`PORT_SW_IN`], at wire
    ///   latency (each direction its own link) — the only cross-shard
    ///   edges, feeding the window planner's per-edge lookahead;
    /// * switch node port → node's [`PORT_FP_WIRE`], at wire latency
    ///   (the receiving port charges downlink serialization).
    ///
    /// Scheduled (src, dst) link faults keep hub semantics: the *source*
    /// port refuses the frame, blackholing the pair end-to-end no matter
    /// how many switches sit between.
    fn new_sharded_topo(
        cfg: ClusterConfig,
        programs: Vec<Box<dyn AppProgram>>,
        recovery: Vec<Option<Box<dyn AppProgram>>>,
        n: u32,
        k: u32,
        nodes: u32,
        plan: TopoPlan,
    ) -> Cluster {
        let plan = Arc::new(plan);
        let mut sim = ShardedSim::new(cfg.seed, plan.shards as usize);
        sim.set_threads(cfg.parallelism.max(1));
        sim.set_window_policy(cfg.window_policy);
        if cfg.trace_capacity > 0 {
            sim.enable_tracing(cfg.trace_capacity);
        }
        if cfg.metrics {
            sim.enable_metrics();
        }
        let sw: Vec<ComponentId> = (0..plan.switches())
            .map(|s| {
                sim.add_component(
                    ShardId(plan.shard_of_switch[s]),
                    &format!("sw{s}"),
                    Switch::new(s, plan.clone(), cfg.net),
                )
            })
            .collect();
        let mut programs = programs.into_iter().zip(recovery);
        let mut nics = Vec::new();
        let mut hosts = Vec::new();
        let mut ports = Vec::new();
        for node in 0..nodes {
            let edge = plan.attach[node as usize];
            let shard = ShardId(plan.shard_of_switch[edge]);
            let nic = sim.add_component(
                shard,
                &format!("nic{node}"),
                Nic::new(node, cfg.nic).with_schedule(cfg.fault_schedule.clone()),
            );
            let port = sim.add_component(
                shard,
                &format!("net{node}"),
                FabricPort::with_faults(cfg.net, nodes, node, nic, PORT_NET_RX, cfg.nic.faults)
                    .with_schedule(cfg.fault_schedule.clone())
                    .with_uplink(),
            );
            sim.connect(nic, PORT_NET_TX, port, PORT_FP_INJECT, Time::ZERO);
            sim.connect(
                port,
                FabricPort::uplink_port(),
                sw[edge],
                PORT_SW_IN,
                cfg.net.wire_latency,
            );
            ports.push(port);
            for local in 0..k {
                let rank = node * k + local;
                if rank >= n {
                    break;
                }
                let (program, recovery) = programs.next().expect("one program per rank");
                let host = Cluster::faulted_host(&cfg, rank, n, nic, program, recovery, node);
                let host = sim.add_component(shard, &format!("host{rank}"), host);
                sim.connect(
                    nic,
                    host_comp_port(rank % k),
                    host,
                    PORT_COMPLETION,
                    cfg.nic.bus_latency,
                );
                nics.push(nic);
                hosts.push(host);
            }
        }
        for (a, ns) in plan.neighbors.iter().enumerate() {
            for (i, &b) in ns.iter().enumerate() {
                sim.connect(
                    sw[a],
                    Switch::trunk_port(&plan, a, i),
                    sw[b],
                    PORT_SW_IN,
                    cfg.net.wire_latency,
                );
            }
        }
        for (s, att) in plan.attached.iter().enumerate() {
            for (j, &v) in att.iter().enumerate() {
                sim.connect(
                    sw[s],
                    Switch::node_port(&plan, s, j),
                    ports[v as usize],
                    PORT_FP_WIRE,
                    cfg.net.wire_latency,
                );
            }
        }
        Cluster {
            engine: Engine::Sharded(sim),
            nics,
            hosts,
            nodes,
            schedule: cfg.fault_schedule,
        }
    }

    /// Is this cluster on the sharded (partitioned-executor) engine?
    pub fn is_sharded(&self) -> bool {
        matches!(self.engine, Engine::Sharded(_))
    }

    /// The underlying single-threaded [`Simulation`], for advanced
    /// drivers that poke at engine internals. `None` on the sharded
    /// engine — use the engine-neutral accessors instead.
    pub fn sim(&self) -> Option<&Simulation> {
        match &self.engine {
            Engine::Single(sim) => Some(sim),
            Engine::Sharded(_) => None,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.nics.len() as u32
    }

    /// Run to completion; returns the number of events processed. Ranks
    /// the fault schedule crash-stops are exempt from the finish check —
    /// a crashed rank *can't* finish, and that is not a deadlock.
    pub fn run(&mut self) -> u64 {
        let n = match &mut self.engine {
            Engine::Single(sim) => sim.run(),
            Engine::Sharded(sim) => sim.run(),
        };
        // Sanity: every surviving program should have finished (deadlock
        // detector).
        for (rank, &h) in self.hosts.iter().enumerate() {
            let (done, crashed, now) = match &self.engine {
                Engine::Single(sim) => {
                    let host = sim.component::<Host>(h).expect("host downcast");
                    (host.done(), host.crashed(), sim.now())
                }
                Engine::Sharded(sim) => {
                    let host = sim.component::<Host>(h).expect("host downcast");
                    (host.done(), host.crashed(), sim.now())
                }
            };
            assert!(
                done || crashed,
                "rank {rank} did not finish: deadlock or missing completion \
                 (events processed: {n}, time: {now})",
            );
        }
        n
    }

    /// Have all programs called `finish` (or crash-stopped — a crashed
    /// rank never finishes and is not waited on)?
    pub fn all_done(&self) -> bool {
        self.hosts.iter().all(|&h| {
            let host: &Host = match &self.engine {
                Engine::Single(sim) => sim.component(h).expect("host downcast"),
                Engine::Sharded(sim) => sim.component(h).expect("host downcast"),
            };
            host.done() || host.crashed()
        })
    }

    /// Run under a watchdog: like [`Cluster::run`], but a stall produces
    /// a typed [`Diagnosis`] instead of a hang or a bare assertion.
    ///
    /// Two stall modes are distinguished:
    ///
    /// * The simulation *quiesces* (event heap drains) before every rank
    ///   finishes — a true deadlock: some progress obligation (a credit
    ///   grant, a clear-to-send, a frame past its retry budget) is gone
    ///   for good. → [`StallKind::QuiescentDeadlock`].
    /// * Virtual time reaches `deadline` with events still pending — the
    ///   run is alive but not converging. → [`StallKind::DeadlineExceeded`].
    ///
    /// The diagnosis carries every component's self-reported health:
    /// queue depths, parked sends, outstanding rendezvous, in-flight
    /// retransmit windows, dead peers, unfinished ranks.
    pub fn run_watched(&mut self, deadline: Time) -> Result<u64, Box<Diagnosis>> {
        let n = match &mut self.engine {
            Engine::Single(sim) => sim.run_until(deadline),
            Engine::Sharded(sim) => sim.run_until(deadline),
        };
        if self.all_done() {
            return Ok(n);
        }
        let idle = match &self.engine {
            Engine::Single(sim) => sim.is_idle(),
            Engine::Sharded(sim) => sim.is_idle(),
        };
        // A stall while the schedule holds the fabric in more than one
        // connected group is a partition symptom, not a leak: name the
        // groups so the operator knows which side each rank is on.
        let now = self.now();
        let partition = self.schedule.as_ref().and_then(|s| {
            let groups = s.groups_at(self.nodes, now);
            (groups.len() > 1).then_some(groups)
        });
        let kind = match partition {
            Some(groups) => StallKind::Partitioned { groups },
            None if idle => StallKind::QuiescentDeadlock,
            None => StallKind::DeadlineExceeded,
        };
        let diagnosis = match &self.engine {
            Engine::Single(sim) => sim.diagnose(kind),
            Engine::Sharded(sim) => sim.diagnose(kind),
        };
        Err(Box::new(diagnosis))
    }

    /// Inspect a rank's host, after (or between) runs — e.g.
    /// [`Host::completions`], the host-round-trip count NIC collective
    /// offload exists to shrink.
    pub fn host(&self, rank: u32) -> &Host {
        let id = self.hosts[rank as usize];
        match &self.engine {
            Engine::Single(sim) => sim.component(id).expect("host downcast"),
            Engine::Sharded(sim) => sim.component(id).expect("host downcast"),
        }
    }

    /// Inspect the NIC serving a rank, after (or between) runs.
    pub fn nic(&self, rank: u32) -> &Nic {
        let id = self.nics[rank as usize];
        match &self.engine {
            Engine::Single(sim) => sim.component(id).expect("nic downcast"),
            Engine::Sharded(sim) => sim.component(id).expect("nic downcast"),
        }
    }

    /// Final simulated time.
    pub fn now(&self) -> Time {
        match &self.engine {
            Engine::Single(sim) => sim.now(),
            Engine::Sharded(sim) => sim.now(),
        }
    }

    /// The cluster's statistics, merged across engine shards in shard
    /// order (single-engine clusters have exactly one "shard"). Owned:
    /// the sharded engine assembles it on demand.
    pub fn stats(&self) -> Stats {
        match &self.engine {
            Engine::Single(sim) => sim.stats().clone(),
            Engine::Sharded(sim) => sim.stats_merged(),
        }
    }

    /// The metrics registry, merged across engine shards.
    pub fn metrics(&self) -> Metrics {
        match &self.engine {
            Engine::Single(sim) => sim.metrics().clone(),
            Engine::Sharded(sim) => sim.metrics_merged(),
        }
    }

    /// Chrome-trace JSON for the whole run (canonical record order on
    /// either engine).
    pub fn chrome_trace(&self) -> String {
        match &self.engine {
            Engine::Single(sim) => mpiq_dessim::chrome_trace(sim),
            Engine::Sharded(sim) => mpiq_dessim::chrome_trace_sharded(sim),
        }
    }

    /// Trace records currently retained.
    pub fn trace_record_count(&self) -> usize {
        match &self.engine {
            Engine::Single(sim) => sim.trace().records().count(),
            Engine::Sharded(sim) => sim.trace_record_count(),
        }
    }

    /// Trace records evicted by ring capacity.
    pub fn trace_dropped(&self) -> u64 {
        match &self.engine {
            Engine::Single(sim) => sim.trace().dropped(),
            Engine::Sharded(sim) => sim.trace_dropped(),
        }
    }
}
