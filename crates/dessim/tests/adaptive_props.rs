//! Properties of the adaptive per-edge lookahead planner under random
//! topologies and schedules.
//!
//! The engine enforces its safety invariant internally: the tray
//! exchange at every barrier asserts that no cross-shard event arrives
//! below the destination shard's execution floor — i.e. no shard ever
//! executed past the bound its incident edges allow. These tests drive
//! that assert with randomized component graphs (random shard
//! placement, random positive edge latencies, random fan-out cascades):
//! a planner that ever over-advances a shard panics with a "lookahead"
//! violation instead of silently reordering events.
//!
//! On top of not-panicking, the observable results are pinned:
//!
//! * per-policy determinism — the adaptive planner produces
//!   byte-identical delivery logs at 1, 2, and 4 worker threads;
//! * policy independence — the set of (time, payload) deliveries at
//!   every node matches the global-window engine's (order within a
//!   timestamp may differ between policies, so the comparison sorts).

use mpiq_dessim::{
    Component, Ctx, Event, InPort, OutPort, Payload, ShardId, ShardedSim, SimRng, Time,
    WindowPolicy,
};
use proptest::prelude::*;

/// Logs every delivery and forwards the cascade to all out-links until
/// the hop budget runs out.
struct Relay {
    fanout: u16,
    log: Vec<(Time, u64)>,
}

impl Component for Relay {
    fn on_event(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        let hops = *ev.payload.downcast::<u64>().unwrap();
        self.log.push((ctx.now(), hops));
        if hops > 0 {
            for p in 0..self.fanout {
                ctx.emit(OutPort(p), Payload::new(hops - 1));
            }
        }
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// A randomly generated cascade topology, reproducible from one seed.
struct Topo {
    nshards: usize,
    /// Per node: home shard.
    shard_of: Vec<usize>,
    /// Directed links `(src, dst, latency)`; `src`'s ports are assigned
    /// in list order.
    links: Vec<(usize, usize, Time)>,
    /// Per node: initial injection time.
    start: Vec<Time>,
}

impl Topo {
    fn random(seed: u64) -> Topo {
        let mut rng = SimRng::new(seed);
        let nshards = 2 + rng.gen_range(3) as usize; // 2..=4
        let nodes = 4 + rng.gen_range(5) as usize; // 4..=8
        let shard_of: Vec<usize> =
            (0..nodes).map(|_| rng.gen_range(nshards as u64) as usize).collect();
        let mut links = Vec::new();
        for src in 0..nodes {
            let fanout = rng.gen_range(3); // 0..=2 out-links
            for _ in 0..fanout {
                let dst = rng.gen_range(nodes as u64) as usize;
                // Latencies span 10 ns .. ~2 us: some edges are two
                // orders of magnitude shorter than others, so per-edge
                // bounds genuinely differ across shard pairs. Ragged
                // values keep most timestamps distinct.
                let lat = Time::from_ps(10_000 + rng.gen_range(2_000_000) * 13);
                links.push((src, dst, lat));
            }
        }
        let start = (0..nodes).map(|n| Time::from_ns(1 + 7 * n as u64)).collect();
        Topo { nshards, shard_of, links, start }
    }

    /// Build, run, and collect every node's delivery log.
    fn run(&self, policy: WindowPolicy, threads: usize) -> Vec<Vec<(Time, u64)>> {
        let mut sim = ShardedSim::new(5, self.nshards);
        sim.set_threads(threads);
        sim.set_window_policy(policy);
        let fanout_of = |n: usize| self.links.iter().filter(|(s, _, _)| *s == n).count() as u16;
        let ids: Vec<_> = (0..self.shard_of.len())
            .map(|n| {
                sim.add_component(
                    ShardId(self.shard_of[n] as u32),
                    &format!("relay{n}"),
                    Relay { fanout: fanout_of(n), log: Vec::new() },
                )
            })
            .collect();
        let mut next_port = vec![0u16; ids.len()];
        for &(src, dst, lat) in &self.links {
            sim.connect(ids[src], OutPort(next_port[src]), ids[dst], InPort(0), lat);
            next_port[src] += 1;
        }
        for (n, &id) in ids.iter().enumerate() {
            sim.post(id, InPort(0), Payload::new(3u64), self.start[n]);
        }
        sim.run();
        ids.iter()
            .map(|&id| sim.component::<Relay>(id).expect("relay present").log.clone())
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random cascades: the adaptive planner must (a) never trip the
    /// lookahead-safety assert, (b) be thread-count invariant, and
    /// (c) deliver the same (time, payload) multiset per node as the
    /// global-window engine.
    #[test]
    fn adaptive_planner_respects_per_edge_bounds(seed in any::<u64>()) {
        let topo = Topo::random(seed);
        let reference = topo.run(WindowPolicy::PerEdge, 1);

        // Cascades with no links still inject one event per node.
        let total: usize = reference.iter().map(Vec::len).sum();
        prop_assert!(total >= topo.shard_of.len());

        for threads in [2usize, 4] {
            let got = topo.run(WindowPolicy::PerEdge, threads);
            prop_assert_eq!(
                &got, &reference,
                "adaptive logs diverged at {} threads (seed {})", threads, seed
            );
        }

        let mut global = topo.run(WindowPolicy::Global, 1);
        let mut sorted_ref = reference.clone();
        for log in global.iter_mut().chain(sorted_ref.iter_mut()) {
            log.sort_unstable();
        }
        prop_assert_eq!(
            global, sorted_ref,
            "adaptive and global delivered different event sets (seed {})", seed
        );
    }
}
