//! Ablation: next-line prefetching as the "fewer hardware resources"
//! alternative (§VII: "techniques to traverse queues quickly with fewer
//! hardware resources").
//!
//! A next-line prefetcher on the NIC's L1 looks like it should soften the
//! out-of-cache traversal cliff (the queue walk is nearly sequential in
//! memory) — and it does shave fixed cold-start costs — but at the cliff
//! it *loses*: prefetch traffic competes for the same DRAM banks the
//! demand pointer-chase is serialized on, and the extra lines pollute an
//! L1 already at capacity. It also cannot touch the in-cache 15 ns/entry
//! issue-bound cost. The measurement argues the paper's §VII question has
//! no easy cache-side answer; the ALPU's flat curve stands alone.
//!
//! ```text
//! cargo run -p mpiq-bench --bin ablation_prefetch -- [--server ADDR]
//! ```

use mpiq_bench::cli::Cli;
use mpiq_bench::service;
use mpiq_bench::spec::{flags, RunSpec};

fn main() {
    let cli = Cli::parse(
        "ablation_prefetch",
        "next-line prefetch vs the ALPU at the cache cliff (§VII)",
        flags("ablation_prefetch"),
    );
    let spec = RunSpec::from_cli("ablation_prefetch", &cli).unwrap_or_else(|e| {
        eprintln!("ablation_prefetch: {e}");
        std::process::exit(2);
    });
    let result = service::run_for_cli("ablation_prefetch", cli.common.server.as_deref(), &spec)
        .unwrap_or_else(|e| {
            eprintln!("ablation_prefetch: {e}");
            std::process::exit(1);
        });
    let ok = service::emit(&result, cli.common.out.as_deref().map(std::path::Path::new))
        .expect("write json");
    if !ok {
        std::process::exit(1);
    }
}
