//! Wire messages: headers and payloads.

use bytes::Bytes;

/// Physical node identifier (one NIC + host per node).
pub type NodeId = u32;

/// Protocol-level message kinds for the MPI transport.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgKind {
    /// Self-contained message: header + full payload (short messages).
    Eager,
    /// Rendezvous request: header only; payload stays at the sender until
    /// the receiver matches and replies.
    RndvRequest,
    /// Receiver's clear-to-send for a rendezvous. `token` echoes the
    /// request's `seq` so the sender can find the parked send.
    RndvReply {
        /// The `seq` of the original request being acknowledged.
        token: u64,
    },
    /// The bulk data of a rendezvous transfer. `token` echoes the request
    /// `seq` so the receiver can find the matched receive.
    RndvData {
        /// The `seq` of the original request.
        token: u64,
    },
    /// Link-level cumulative acknowledgement: every frame from the sending
    /// node with link sequence `<= cum` has been accepted. Carries no MPI
    /// envelope content and never enters the matching path.
    Ack {
        /// Highest link sequence accepted in order.
        cum: u64,
    },
    /// Link-level negative acknowledgement: the receiver saw a gap and is
    /// waiting for link sequence `expect`. Asks the peer to go back and
    /// retransmit from there.
    Nack {
        /// The link sequence the receiver needs next.
        expect: u64,
    },
}

impl MsgKind {
    /// True for link-layer control frames (ACK/NACK), which are consumed
    /// by the reliability layer and never reach MPI matching.
    pub fn is_link_control(&self) -> bool {
        matches!(self, MsgKind::Ack { .. } | MsgKind::Nack { .. })
    }
}

/// Link-layer state stamped on each wire message by the sending NIC's
/// reliability layer (when enabled) and mutated by fabric fault injection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinkState {
    /// Per-(src,dst) link sequence number, assigned at transmit time.
    /// `0` means unsequenced: reliability disabled, or a control frame.
    pub seq: u64,
    /// Whether the frame's CRC checked out at the receiver. Fault
    /// injection clears this to model in-flight corruption; receivers must
    /// discard frames with `crc_ok == false`.
    pub crc_ok: bool,
    /// Eager flow-control credits granted to the *receiving* NIC of this
    /// frame (credits flow opposite to the eager data they authorize).
    /// Piggybacked on ACK frames by the reliability layer; `0` everywhere
    /// when credit flow control is unconfigured.
    pub credit: u32,
    /// The sending node's incarnation epoch, stamped by the reliability
    /// layer. `0` from boot; bumped each time the node restarts after a
    /// crash. Receivers fence go-back-N state keyed to an older epoch and
    /// drop frames *from* an older epoch — the reincarnation guard.
    pub incarnation: u32,
}

impl Default for LinkState {
    fn default() -> LinkState {
        LinkState {
            seq: 0,
            crc_ok: true,
            credit: 0,
            incarnation: 0,
        }
    }
}

/// The MPI envelope carried by every message. The matching-relevant
/// triplet is {`context`, `src_rank`, `tag`}; the rest is addressing and
/// protocol state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MsgHeader {
    /// Sending node.
    pub src_node: NodeId,
    /// Destination node.
    pub dst_node: NodeId,
    /// Destination process's global rank (multi-process-per-node support:
    /// the receiving NIC derives the local process id from it).
    pub dst_rank: u32,
    /// Communicator context id.
    pub context: u16,
    /// Sender's rank within the communicator.
    pub src_rank: u16,
    /// User tag.
    pub tag: u16,
    /// Payload bytes carried (for `Eager`/`RndvData`) or advertised
    /// (for `RndvRequest`).
    pub payload_len: u32,
    /// Protocol kind.
    pub kind: MsgKind,
    /// Sender-local sequence number; unique per source node.
    pub seq: u64,
}

/// A message on the wire: envelope plus (possibly empty) payload bytes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Message {
    /// The envelope.
    pub header: MsgHeader,
    /// Payload contents. Cheap to clone (refcounted).
    pub payload: Bytes,
    /// Link-layer state (sequence number + CRC verdict).
    pub link: LinkState,
}

impl Message {
    /// Build a message with pristine link state (unsequenced, CRC good).
    pub fn new(header: MsgHeader, payload: Bytes) -> Message {
        Message {
            header,
            payload,
            link: LinkState::default(),
        }
    }

    /// Total bytes on the wire: a fixed header size plus the payload.
    pub fn wire_bytes(&self) -> u64 {
        Self::HEADER_BYTES + self.payload.len() as u64
    }

    /// Modeled header size on the wire.
    pub const HEADER_BYTES: u64 = 32;

    /// Build a deterministic test payload of `len` bytes.
    pub fn test_payload(len: usize, seed: u8) -> Bytes {
        Bytes::from((0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_includes_header() {
        let m = Message::new(
            MsgHeader {
                src_node: 0,
                dst_node: 1,
                dst_rank: 1,
                context: 0,
                src_rank: 0,
                tag: 0,
                payload_len: 100,
                kind: MsgKind::Eager,
                seq: 0,
            },
            Message::test_payload(100, 7),
        );
        assert_eq!(m.wire_bytes(), 132);
        assert_eq!(m.link, LinkState::default());
        assert!(m.link.crc_ok);
    }

    #[test]
    fn link_control_kinds() {
        assert!(MsgKind::Ack { cum: 3 }.is_link_control());
        assert!(MsgKind::Nack { expect: 1 }.is_link_control());
        assert!(!MsgKind::Eager.is_link_control());
        assert!(!MsgKind::RndvData { token: 0 }.is_link_control());
    }

    #[test]
    fn test_payload_is_deterministic() {
        assert_eq!(Message::test_payload(64, 3), Message::test_payload(64, 3));
        assert_ne!(Message::test_payload(64, 3), Message::test_payload(64, 4));
    }
}
