//! The §VI-B break-even ablation: at what posted-queue length does the
//! ALPU overhead pay for itself? The paper reports a break-even of about
//! 5 entries and an ~80 ns zero-length penalty, suggesting "the MPI
//! library could be optimized to not use the ALPU until the list is at
//! least 5 entries long".
//!
//! ```text
//! cargo run -p mpiq-bench --bin breakeven -- [MAX_QUEUE]
//! ```

use mpiq_bench::cli::Cli;
use mpiq_bench::{preposted_latency_cfg, run_parallel, NicVariant, PrepostedPoint};

fn main() {
    let cli = Cli::parse(
        "breakeven",
        "§VI-B break-even: queue length where the ALPU pays for itself (positional: MAX_QUEUE)",
        &[],
    );
    let max: usize = cli
        .positionals()
        .first()
        .map(|s| s.parse().expect("MAX_QUEUE: usize"))
        .unwrap_or(16);
    let engine_threads = cli.common.threads;
    let points: Vec<(NicVariant, usize)> = (0..=max)
        .flat_map(|q| {
            [
                (NicVariant::Baseline, q),
                (NicVariant::Alpu128, q),
                (NicVariant::Alpu256, q),
            ]
        })
        .collect();
    let rows = run_parallel(points.clone(), cli.common.sweep_threads, move |&(v, q)| {
        preposted_latency_cfg(
            v.config(),
            PrepostedPoint {
                queue_len: q,
                fraction: 1.0,
                msg_size: 0,
            },
            engine_threads,
        )
        .latency
    });

    println!("queue_len,baseline_us,alpu128_us,alpu256_us,alpu128_delta_ns");
    let mut breakeven = None;
    for q in 0..=max {
        let get = |v: NicVariant| {
            points
                .iter()
                .zip(&rows)
                .find(|((pv, pq), _)| *pv == v && *pq == q)
                .map(|(_, &t)| t)
                .expect("present")
        };
        let b = get(NicVariant::Baseline);
        let a128 = get(NicVariant::Alpu128);
        let a256 = get(NicVariant::Alpu256);
        let delta_ns = a128.as_ns_f64() - b.as_ns_f64();
        println!(
            "{q},{:.4},{:.4},{:.4},{:.1}",
            b.as_us_f64(),
            a128.as_us_f64(),
            a256.as_us_f64(),
            delta_ns
        );
        if breakeven.is_none() && delta_ns <= 0.0 {
            breakeven = Some(q);
        }
    }
    eprintln!(
        "breakeven: ALPU-128 pays for itself at queue length {:?} (paper: ~5); \
         zero-length penalty {:.0} ns (paper: ~80)",
        breakeven,
        rows[1].as_ns_f64() - rows[0].as_ns_f64()
    );
}
