//! Ablation: linear list vs hash-binned matching vs ALPU (§II).
//!
//! The paper rejects hash tables because insertion cost is "prohibitive
//! ... especially noticeable in the zero-length ping-pong latency test"
//! and because wildcards complicate everything. This harness quantifies
//! all three effects with a post-in-loop ping-pong:
//!
//! 1. exact-depth sweep — where hashing helps;
//! 2. zero-depth row — where hashing hurts (insert overhead in the loop);
//! 3. wildcard-depth sweep — where hashing collapses back to a scan and
//!    the ALPU does not.
//!
//! ```text
//! cargo run -p mpiq-bench --bin ablation_hash -- [--server ADDR]
//! ```

use mpiq_bench::cli::Cli;
use mpiq_bench::service;
use mpiq_bench::spec::{flags, RunSpec};

fn main() {
    let cli = Cli::parse(
        "ablation_hash",
        "linear list vs hash-binned matching vs ALPU",
        flags("ablation_hash"),
    );
    let spec = RunSpec::from_cli("ablation_hash", &cli).unwrap_or_else(|e| {
        eprintln!("ablation_hash: {e}");
        std::process::exit(2);
    });
    let result = service::run_for_cli("ablation_hash", cli.common.server.as_deref(), &spec)
        .unwrap_or_else(|e| {
            eprintln!("ablation_hash: {e}");
            std::process::exit(1);
        });
    let ok = service::emit(&result, cli.common.out.as_deref().map(std::path::Path::new))
        .expect("write json");
    if !ok {
        std::process::exit(1);
    }
}
