//! The sharded engine's determinism contract, enforced end to end:
//! running any workload at any worker-thread count must produce
//! byte-identical statistics (and traces, when armed). A parallel
//! simulator whose results depend on the OS scheduler is not a
//! simulator; these tests make that a hard regression gate.

use mpiq::dessim::{
    Component, Ctx, Event, FaultConfig, InPort, OutPort, Payload, ShardId,
    ShardedSim, SimRng, Time,
};
use mpiq::net::WireProfile;
use mpiq_bench::{
    preposted_latency_cfg, run_soak, traced_preposted, traced_unexpected, unexpected_latency_cfg,
    NicVariant, PrepostedPoint, Scenario, SoakConfig, UnexpectedPoint,
};
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 4];

/// Fig. 5 points are bit-identical across thread counts: the full
/// measured result (latency, traversal and cache counters) must match
/// the one-thread run exactly, for several sweep points.
#[test]
fn fig5_points_identical_across_threads() {
    for v in NicVariant::ALL {
        for queue_len in [0usize, 60, 250] {
            let p = PrepostedPoint {
                queue_len,
                fraction: 1.0,
                msg_size: 64,
            };
            let base = preposted_latency_cfg(v.config(), p, THREADS[0]);
            for &t in &THREADS[1..] {
                let got = preposted_latency_cfg(v.config(), p, t);
                assert_eq!(
                    (got.latency, got.sw_traversed, got.rx_l1_misses),
                    (base.latency, base.sw_traversed, base.rx_l1_misses),
                    "{} q={queue_len}: diverged at {t} threads",
                    v.label()
                );
            }
        }
    }
}

/// Same for Fig. 6 (unexpected-queue benchmark).
#[test]
fn fig6_points_identical_across_threads() {
    for v in NicVariant::ALL {
        for queue_len in [0usize, 80, 200] {
            let p = UnexpectedPoint {
                queue_len,
                msg_size: 64,
            };
            let base = unexpected_latency_cfg(v.config(), p, THREADS[0]);
            for &t in &THREADS[1..] {
                let got = unexpected_latency_cfg(v.config(), p, t);
                assert_eq!(
                    (got.latency, got.sw_traversed),
                    (base.latency, base.sw_traversed),
                    "{} q={queue_len}: diverged at {t} threads",
                    v.label()
                );
            }
        }
    }
}

/// The incast soak — the densest cross-shard traffic in the repo, with
/// flow control, retransmits, and fault injection armed — must dump
/// byte-identical statistics at every thread count for every seed.
#[test]
fn soak_incast_stats_byte_identical_across_threads_and_seeds() {
    for seed in [1u64, 2, 3, 4] {
        for faults in [None, "seed=9,drop=0.02,corrupt=0.01".parse::<FaultConfig>().ok()] {
            let run = |threads: usize| {
                let mut cfg = SoakConfig::new(Scenario::Incast, seed);
                cfg.senders = 8;
                cfg.msgs = 4;
                cfg.faults = faults;
                cfg.parallelism = threads;
                run_soak(&cfg).expect("soak must drain")
            };
            let base = run(THREADS[0]);
            for &t in &THREADS[1..] {
                let got = run(t);
                assert_eq!(
                    got.stats_json, base.stats_json,
                    "seed {seed} faults={} : stats diverged at {t} threads",
                    faults.is_some()
                );
                assert_eq!(got.events, base.events, "seed {seed}: event count diverged");
                assert_eq!(got.runtime, base.runtime, "seed {seed}: virtual time diverged");
            }
        }
    }
}

/// A heterogeneous wire profile — one 10 ns edge among 1 µs edges — is
/// the worst case for window planning: the adaptive planner gives every
/// shard pair its own lookahead, so the short edge must not perturb
/// scheduling anywhere else, and the tiny windows it forces on its two
/// endpoints must still exchange cross-shard events safely. The full
/// incast soak over that profile must dump byte-identical statistics at
/// 1, 2, 4, and 8 worker threads.
#[test]
fn hetero_latency_soak_byte_identical_across_threads() {
    let run = |threads: usize| {
        let mut cfg = SoakConfig::new(Scenario::Incast, 3);
        cfg.senders = 8;
        cfg.msgs = 4;
        cfg.net.wire_latency = Time::from_us(1);
        cfg.net.profile = WireProfile::ShortPair {
            a: 1,
            b: 2,
            short: Time::from_ns(10),
        };
        cfg.parallelism = threads;
        run_soak(&cfg).expect("soak must drain")
    };
    let base = run(1);
    for t in [2usize, 4, 8] {
        let got = run(t);
        assert_eq!(got.stats_json, base.stats_json, "hetero stats diverged at {t} threads");
        assert_eq!(got.events, base.events, "hetero event count diverged at {t} threads");
        assert_eq!(got.runtime, base.runtime, "hetero virtual time diverged at {t} threads");
    }
}

/// With tracing armed, the rendered Chrome trace and the metrics dump
/// are byte-identical too — observability must not perturb or leak
/// thread-count dependence.
#[test]
fn armed_traces_byte_identical_across_threads() {
    let p5 = PrepostedPoint {
        queue_len: 40,
        fraction: 1.0,
        msg_size: 64,
    };
    let base = traced_preposted(NicVariant::Alpu128.config(), p5, 1 << 16, THREADS[0]);
    for &t in &THREADS[1..] {
        let got = traced_preposted(NicVariant::Alpu128.config(), p5, 1 << 16, t);
        assert_eq!(got.chrome_json, base.chrome_json, "fig5 trace diverged at {t} threads");
        assert_eq!(got.metrics_text, base.metrics_text, "fig5 metrics diverged at {t} threads");
        assert_eq!(got.records, base.records);
        assert_eq!(got.dropped, base.dropped);
    }

    let p6 = UnexpectedPoint {
        queue_len: 40,
        msg_size: 64,
    };
    let base = traced_unexpected(NicVariant::Alpu128.config(), p6, 1 << 16, THREADS[0]);
    for &t in &THREADS[1..] {
        let got = traced_unexpected(NicVariant::Alpu128.config(), p6, 1 << 16, t);
        assert_eq!(got.chrome_json, base.chrome_json, "fig6 trace diverged at {t} threads");
        assert_eq!(got.metrics_text, base.metrics_text, "fig6 metrics diverged at {t} threads");
    }
}

// ---------------------------------------------------------------------------
// Property: shard assignment is a pure execution detail.
//
// A set of sender components stream timestamped messages to one sink
// over wired links. Links have identical latency whether they stay
// inside a shard or cross between shards, so the *delivery schedule* is
// fixed by the workload alone. The property: the sink observes the same
// (time, payload) sequence — events in delivery order at every barrier —
// no matter how components are scattered across shards and no matter
// how many worker threads run them.
// ---------------------------------------------------------------------------

/// Emits `(sender_id << 32) | n` every `period`, `count` times.
struct Sender {
    count: u64,
    period: Time,
    id: u64,
}

impl Component for Sender {
    fn on_event(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        let n = *ev.payload.downcast::<u64>().unwrap();
        ctx.emit(OutPort(0), Payload::new((self.id << 32) | n));
        if n + 1 < self.count {
            ctx.send_to(ctx.me(), InPort(0), Payload::new(n + 1), self.period);
        }
    }
}

/// Records every delivery as (time, payload) in arrival order.
#[derive(Default)]
struct Sink {
    log: Vec<(Time, u64)>,
}

impl Component for Sink {
    fn on_event(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        let n = *ev.payload.downcast::<u64>().unwrap();
        self.log.push((ctx.now(), n));
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Run `senders` streams into one sink under the given shard assignment
/// and thread count; return the sink's arrival log.
fn run_assignment(
    nshards: usize,
    assignment: &[usize],
    sink_shard: usize,
    threads: usize,
) -> Vec<(Time, u64)> {
    let mut sim = ShardedSim::new(11, nshards);
    sim.set_threads(threads);
    let sink = sim.add_component(ShardId(sink_shard as u32), "sink", Sink::default());
    for (s, &shard) in assignment.iter().enumerate() {
        let id = sim.add_component(
            ShardId(shard as u32),
            &format!("sender{s}"),
            Sender {
                count: 6,
                // Distinct periods give every delivery a distinct
                // timestamp, so arrival order is semantically forced.
                period: Time::from_ns(101 + 13 * s as u64),
                id: s as u64 + 1,
            },
        );
        sim.connect(id, OutPort(0), sink, InPort(0), Time::from_ns(50 + s as u64));
        sim.post(id, InPort(0), Payload::new(0u64), Time::from_ns(s as u64));
    }
    sim.run();
    let sink = sim.component::<Sink>(sink).expect("sink present");
    sink.log.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_shard_assignments_preserve_event_order(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let nshards = 2 + rng.gen_range(3) as usize; // 2..=4
        let senders = 3 + rng.gen_range(4) as usize; // 3..=6
        let sink_shard = rng.gen_range(nshards as u64) as usize;

        // Reference: everything co-located on the sink's shard, one thread.
        let reference = run_assignment(
            nshards,
            &vec![sink_shard; senders],
            sink_shard,
            1,
        );
        // Deliveries all have distinct timestamps and arrive in time order.
        prop_assert_eq!(reference.len(), senders * 6);
        for w in reference.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "arrivals must be strictly time-ordered: {:?}", w);
        }

        // Any random scattering across shards, at any thread count,
        // observes the identical arrival sequence.
        for _ in 0..3 {
            let assignment: Vec<usize> =
                (0..senders).map(|_| rng.gen_range(nshards as u64) as usize).collect();
            for threads in [1usize, 2, 4] {
                let got = run_assignment(nshards, &assignment, sink_shard, threads);
                prop_assert_eq!(
                    &got,
                    &reference,
                    "assignment {:?} at {} threads reordered events",
                    assignment,
                    threads
                );
            }
        }
    }
}

/// The engine used above really is the partitioned one: a sanity pin so
/// the property test cannot silently degrade to single-shard runs.
#[test]
fn assignment_harness_exercises_cross_shard_links() {
    let log = run_assignment(3, &[1, 2, 0], 0, 2);
    assert_eq!(log.len(), 18);
}
