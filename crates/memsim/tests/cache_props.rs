//! Property tests on the cache model: residency and capacity laws that
//! must hold for any access sequence.

use mpiq_memsim::{Cache, CacheConfig};
use proptest::prelude::*;

fn count_resident(c: &Cache, lines: &[u64]) -> usize {
    lines.iter().filter(|&&l| c.contains(l)).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any access, the accessed line is resident; the total resident
    /// population never exceeds capacity; hits + misses == accesses.
    #[test]
    fn residency_and_capacity_laws(
        accesses in prop::collection::vec((0u64..64, any::<bool>()), 1..300)
    ) {
        let cfg = CacheConfig {
            size_bytes: 512,
            line_bytes: 32,
            assoc: 4,
            hit_cycles: 1,
        };
        let mut c = Cache::new(cfg);
        let all_lines: Vec<u64> = (0..64).map(|i| i * 32).collect();
        for &(line, write) in &accesses {
            let addr = line * 32;
            c.access(addr, write);
            prop_assert!(c.contains(addr), "just-accessed line must be resident");
            let resident = count_resident(&c, &all_lines);
            prop_assert!(
                resident <= (cfg.size_bytes / cfg.line_bytes) as usize,
                "resident {resident} exceeds capacity"
            );
        }
        prop_assert_eq!(c.hits() + c.misses(), accesses.len() as u64);
    }

    /// A working set no larger than one set's associativity never misses
    /// after the first touch, regardless of access order (true LRU has no
    /// anomalies within a set).
    #[test]
    fn within_set_working_set_never_thrashes(
        order in prop::collection::vec(0usize..4, 1..200)
    ) {
        let cfg = CacheConfig {
            size_bytes: 512,
            line_bytes: 32,
            assoc: 4,
            hit_cycles: 1,
        };
        let sets = cfg.sets();
        let mut c = Cache::new(cfg);
        // Four lines, all mapping to set 0.
        let lines: Vec<u64> = (0..4).map(|i| i * 32 * sets).collect();
        for &l in &lines {
            c.access(l, false);
        }
        c.reset_stats();
        for &i in &order {
            prop_assert!(c.access(lines[i], false).hit);
        }
        prop_assert_eq!(c.misses(), 0);
    }

    /// Writebacks only ever happen for previously written lines.
    #[test]
    fn writebacks_require_prior_writes(
        accesses in prop::collection::vec((0u64..64, any::<bool>()), 1..300)
    ) {
        let cfg = CacheConfig {
            size_bytes: 256,
            line_bytes: 32,
            assoc: 2,
            hit_cycles: 1,
        };
        let mut c = Cache::new(cfg);
        let mut ever_written = std::collections::HashSet::new();
        for &(line, write) in &accesses {
            let addr = line * 32;
            if write {
                ever_written.insert(addr);
            }
            let out = c.access(addr, write);
            if let Some(wb) = out.writeback {
                prop_assert!(
                    ever_written.contains(&wb),
                    "writeback of never-written line {wb:#x}"
                );
            }
        }
    }
}
