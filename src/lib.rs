//! `mpiq` — facade crate for the MPI queue-processing acceleration study.
//!
//! Re-exports every subsystem crate under one roof so examples,
//! integration tests, and downstream users can depend on a single package.
//!
//! See the workspace `README.md` for an overview and `DESIGN.md` for the
//! system inventory and per-experiment index.

pub use mpiq_alpu as alpu;
pub use mpiq_cpusim as cpusim;
pub use mpiq_dessim as dessim;
pub use mpiq_fpga as fpga;
pub use mpiq_memsim as memsim;
pub use mpiq_mpi as mpi;
pub use mpiq_net as net;
pub use mpiq_nic as nic;
pub use mpiq_portals as portals;
