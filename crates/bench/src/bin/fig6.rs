//! Regenerates Figure 6: message latency (including receive-posting time)
//! vs. unexpected-queue length for the three NIC configurations.
//!
//! ```text
//! cargo run --release -p mpiq-bench --bin fig6 -- [--max-queue 400] [--step 20]
//!     [--sizes 64,1024] [--plot] [--threads 0] [--sweep-threads 0]
//!     [--out results/fig6.json]
//!     [--faults seed=N,drop=P[,dup=P,corrupt=P,flip=P,stall=P]]
//!     [--trace-out trace.json] [--metrics]
//! ```
//!
//! `--threads` selects the execution engine for each simulated cluster
//! (0 = single-threaded hub engine, n >= 1 = sharded engine on n worker
//! threads; output is identical either way). `--sweep-threads` fans the
//! independent sweep points out across OS threads (0 = all cores).
//!
//! With `--faults`, every point runs under the given deterministic fault
//! schedule and the rows carry extra injection/recovery columns; without
//! it, the output is byte-identical to the pre-fault harness.
//!
//! `--trace-out PATH` runs one instrumented exchange (alpu128, deepest
//! queue) and writes a Chrome `chrome://tracing` timeline to PATH;
//! `--metrics` dumps its latency histograms to stderr. The CSV on
//! stdout is unaffected by either flag.

use mpiq_bench::cli::{Cli, Flag};
use mpiq_bench::report::{json_f64, json_str, write_json, CsvRow, JsonRow};
use mpiq_bench::{
    run_parallel, unexpected_latency_cfg, FaultCounters, NicVariant, UnexpectedPoint,
};

struct Row {
    config: String,
    queue_len: usize,
    msg_size: u32,
    latency_us: f64,
    sw_traversed: u64,
    faults: Option<FaultCounters>,
}

impl JsonRow for Row {
    fn fields(&self) -> Vec<(&'static str, String)> {
        let mut f = vec![
            ("config", json_str(&self.config)),
            ("queue_len", self.queue_len.to_string()),
            ("msg_size", self.msg_size.to_string()),
            ("latency_us", json_f64(self.latency_us)),
            ("sw_traversed", self.sw_traversed.to_string()),
        ];
        if let Some(fc) = &self.faults {
            f.extend(fc.json_fields());
        }
        f
    }
}

impl CsvRow for Row {
    fn csv(&self) -> String {
        let base = format!(
            "{},{},{},{:.4},{}",
            self.config, self.queue_len, self.msg_size, self.latency_us, self.sw_traversed
        );
        match &self.faults {
            Some(fc) => format!("{base},{}", fc.csv()),
            None => base,
        }
    }
}

const FLAGS: &[Flag] = &[
    Flag { name: "plot", value: None, help: "render an ascii projection of the curves" },
    Flag { name: "max-queue", value: Some("N"), help: "deepest unexpected queue (default 400)" },
    Flag { name: "step", value: Some("N"), help: "queue-length stride (default 20)" },
    Flag { name: "sizes", value: Some("LIST"), help: "payload bytes (default 64,1024)" },
];

fn main() {
    let cli = Cli::parse("fig6", "Fig. 6: latency vs. unexpected-queue depth", FLAGS);
    let max_queue: usize = cli.get("max-queue", 400);
    let step: usize = cli.get("step", 20);
    let sizes: Vec<u32> = cli.get_list("sizes", vec![64, 1024]);
    let engine_threads = cli.common.threads;
    let faults = cli.common.faults;

    let mut points = Vec::new();
    for v in NicVariant::ALL {
        for &size in &sizes {
            for q in (0..=max_queue).step_by(step) {
                points.push((
                    v,
                    UnexpectedPoint {
                        queue_len: q,
                        msg_size: size,
                    },
                ));
            }
        }
    }
    eprintln!("fig6: {} points, engine threads {}", points.len(), engine_threads);

    let rows: Vec<Row> = run_parallel(points, cli.common.sweep_threads, move |&(v, p)| {
        let mut cfg = v.config();
        if let Some(f) = faults {
            cfg = cfg.with_faults(f);
        }
        let r = unexpected_latency_cfg(cfg, p, engine_threads);
        Row {
            config: v.label().to_string(),
            queue_len: p.queue_len,
            msg_size: p.msg_size,
            latency_us: r.latency.as_us_f64(),
            sw_traversed: r.sw_traversed,
            faults: faults.map(|_| r.faults),
        }
    });

    let mut header = "config,queue_len,msg_size,latency_us,sw_traversed".to_string();
    if faults.is_some() {
        header = format!("{header},{}", FaultCounters::CSV_HEADER);
    }
    println!("{header}");
    for r in &rows {
        println!("{}", r.csv());
    }
    if let Some(path) = &cli.common.out {
        write_json(std::path::Path::new(path), &rows).expect("write json");
        eprintln!("fig6: wrote {path}");
    }

    if cli.has("plot") {
        let mut series = Vec::new();
        for (v, glyph) in NicVariant::ALL.iter().zip(['B', 'a', 'A']) {
            series.push(mpiq_bench::ascii_plot::Series {
                label: v.label().to_string(),
                glyph,
                points: rows
                    .iter()
                    .filter(|r| r.config == v.label() && r.msg_size == sizes[0])
                    .map(|r| (r.queue_len as f64, r.latency_us))
                    .collect(),
            });
        }
        eprintln!(
            "
Fig. 6: latency vs unexpected-queue length ({} B messages)
{}",
            sizes[0],
            mpiq_bench::ascii_plot::render(&series, 72, 20, "unexpected queue length", "latency (us)")
        );
    }

    if cli.common.trace_out.is_some() || cli.common.metrics {
        let mut cfg = NicVariant::Alpu128.config();
        if let Some(f) = faults {
            cfg = cfg.with_faults(f);
        }
        let run = mpiq_bench::traced_unexpected(
            cfg,
            UnexpectedPoint {
                queue_len: max_queue,
                msg_size: sizes[0],
            },
            1 << 20,
            engine_threads,
        );
        if run.dropped > 0 {
            eprintln!("fig6: trace ring overflowed, {} records dropped", run.dropped);
        }
        if let Some(path) = &cli.common.trace_out {
            std::fs::write(path, &run.chrome_json).expect("write trace");
            eprintln!("fig6: wrote {} trace records to {path}", run.records);
        }
        if cli.common.metrics {
            eprintln!("{}", run.metrics_text);
        }
    }

    // Crossover summary: first queue length where the ALPU clearly wins.
    for alpu in [NicVariant::Alpu128, NicVariant::Alpu256] {
        let size = sizes[0];
        let crossover = (0..=max_queue).step_by(step).find(|&q| {
            let base = rows
                .iter()
                .find(|r| r.config == "baseline" && r.queue_len == q && r.msg_size == size);
            let a = rows
                .iter()
                .find(|r| r.config == alpu.label() && r.queue_len == q && r.msg_size == size);
            matches!((base, a), (Some(b), Some(a)) if a.latency_us + 0.2 < b.latency_us)
        });
        eprintln!(
            "fig6[{}]: clear advantage starts at queue length {:?} (paper: ~70)",
            alpu.label(),
            crossover
        );
    }
}
