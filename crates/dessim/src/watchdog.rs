//! Stall diagnosis: turn hangs into typed reports.
//!
//! A distributed protocol that loses a message it cannot recover (a
//! leaked credit grant, a clear-to-send that was never sent, a peer whose
//! retry budget ran out) does not crash — it goes *quiet*. The event heap
//! drains, `run()` returns, and the only symptom is an assertion about an
//! unfinished rank with no clue where the progress obligation died.
//!
//! This module gives components a voice in that moment. Each component
//! may implement [`Component::health`](crate::Component::health) to
//! report whether it still holds obligations (parked sends, nonempty
//! queues, live retransmit windows) along with gauges and notes. A
//! watched harness (e.g. `Cluster::run_watched` in `mpiq-mpi`) collects
//! the reports into a [`Diagnosis`] when a run stalls — either by
//! *quiescing* with obligations outstanding (a true deadlock) or by
//! blowing through a progress deadline (livelock or runaway work).

use crate::time::Time;
use std::fmt;

/// A component's self-reported health snapshot.
///
/// `busy` is the load-bearing bit: a component that still holds
/// unfinished obligations must report `busy = true`, because the
/// watchdog's quiescent-deadlock verdict is "the heap is empty yet
/// somebody is still busy".
#[derive(Clone, Debug, Default)]
pub struct Health {
    /// The component still holds unfinished obligations.
    pub busy: bool,
    /// Numeric state worth seeing in a stall dump (queue depths,
    /// outstanding credits, in-flight window sizes).
    pub gauges: Vec<(&'static str, u64)>,
    /// Free-form observations (dead peers, quarantined units).
    pub notes: Vec<String>,
}

impl Health {
    /// An idle report (no obligations).
    pub fn idle() -> Health {
        Health::default()
    }

    /// A busy report (unfinished obligations).
    pub fn busy() -> Health {
        Health {
            busy: true,
            ..Health::default()
        }
    }

    /// Attach a gauge.
    pub fn gauge(mut self, name: &'static str, value: u64) -> Health {
        self.gauges.push((name, value));
        self
    }

    /// Attach a note.
    pub fn note(mut self, note: impl Into<String>) -> Health {
        self.notes.push(note.into());
        self
    }
}

/// How a watched run stalled.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StallKind {
    /// The event heap drained while components still held obligations:
    /// nothing will ever run again, so the missing message is gone for
    /// good. A true deadlock.
    QuiescentDeadlock,
    /// The progress deadline passed with events still pending: the
    /// simulation is alive but not converging (livelock, runaway
    /// retransmission, or simply an undersized deadline).
    DeadlineExceeded,
    /// The stall coincides with an armed fault schedule holding the
    /// cluster split into these connectivity groups (each sorted,
    /// ordered by smallest member). Distinct from [`QuiescentDeadlock`]:
    /// the obligations are not *lost*, they are unreachable across the
    /// partition — the protocol is a hostage, not a leaker.
    ///
    /// [`QuiescentDeadlock`]: StallKind::QuiescentDeadlock
    Partitioned { groups: Vec<Vec<u32>> },
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallKind::QuiescentDeadlock => write!(f, "quiescent deadlock"),
            StallKind::DeadlineExceeded => write!(f, "deadline exceeded"),
            StallKind::Partitioned { groups } => {
                let gs: Vec<String> = groups
                    .iter()
                    .map(|g| {
                        let ns: Vec<String> = g.iter().map(u32::to_string).collect();
                        format!("{{{}}}", ns.join(","))
                    })
                    .collect();
                write!(f, "network partition: groups {}", gs.join(" | "))
            }
        }
    }
}

/// The typed stall report a watched run returns instead of hanging or
/// panicking bare.
#[derive(Clone, Debug)]
pub struct Diagnosis {
    /// What kind of stall this is.
    pub kind: StallKind,
    /// Virtual time when the stall was detected.
    pub at: Time,
    /// Events delivered before the stall.
    pub events_processed: u64,
    /// `(component name, health)` for every component that reported one,
    /// in registration order.
    pub components: Vec<(String, Health)>,
}

impl Diagnosis {
    /// Names of the components still holding obligations.
    pub fn stuck(&self) -> Vec<&str> {
        self.components
            .iter()
            .filter(|(_, h)| h.busy)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// All notes mentioning `needle` (e.g. a peer id) across components.
    pub fn notes_containing(&self, needle: &str) -> Vec<&str> {
        self.components
            .iter()
            .flat_map(|(_, h)| h.notes.iter())
            .filter(|n| n.contains(needle))
            .map(|s| s.as_str())
            .collect()
    }
}

impl fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} at t={} after {} events; stuck: [{}]",
            self.kind,
            self.at,
            self.events_processed,
            self.stuck().join(", "),
        )?;
        for (name, h) in &self.components {
            if !h.busy && h.notes.is_empty() {
                continue; // idle and silent: not part of the story
            }
            write!(f, "  {name}: {}", if h.busy { "BUSY" } else { "idle" })?;
            for (g, v) in &h.gauges {
                write!(f, " {g}={v}")?;
            }
            writeln!(f)?;
            for note in &h.notes {
                writeln!(f, "    - {note}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnosis_renders_stuck_components_and_notes() {
        let d = Diagnosis {
            kind: StallKind::QuiescentDeadlock,
            at: Time::from_us(3),
            events_processed: 42,
            components: vec![
                ("nic0".into(), Health::busy().gauge("unexpected", 7)),
                ("nic1".into(), Health::idle()),
                (
                    "host1".into(),
                    Health::busy().note("rank 1 not finished"),
                ),
            ],
        };
        assert_eq!(d.stuck(), vec!["nic0", "host1"]);
        let s = d.to_string();
        assert!(s.contains("quiescent deadlock"));
        assert!(s.contains("unexpected=7"));
        assert!(s.contains("rank 1 not finished"));
        assert!(!s.contains("nic1"), "idle, note-less components are elided");
        assert_eq!(d.notes_containing("rank 1"), vec!["rank 1 not finished"]);
    }

    #[test]
    fn partitioned_diagnosis_names_the_groups() {
        let d = Diagnosis {
            kind: StallKind::Partitioned {
                groups: vec![vec![0, 1], vec![2, 3]],
            },
            at: Time::from_us(9),
            events_processed: 100,
            components: vec![("nic2".into(), Health::busy())],
        };
        let s = d.to_string();
        assert!(s.contains("network partition"), "{s}");
        assert!(s.contains("{0,1} | {2,3}"), "{s}");
        assert_ne!(d.kind, StallKind::QuiescentDeadlock);
    }

    #[test]
    fn health_builder_composes() {
        let h = Health::busy().gauge("a", 1).gauge("b", 2).note("x");
        assert!(h.busy);
        assert_eq!(h.gauges, vec![("a", 1), ("b", 2)]);
        assert_eq!(h.notes, vec!["x".to_string()]);
    }
}
