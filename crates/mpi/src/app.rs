//! The application programming model.
//!
//! An [`AppProgram`] is a state machine the host component polls: once at
//! startup and once per completion event. It issues non-blocking
//! operations through the [`Mpi`] handle and inspects completions with
//! [`Mpi::test`]. Blocking-style programs are built on top in
//! [`crate::script`].

use crate::types::MpiStatus;
use mpiq_dessim::{ComponentId, Ctx, InPort, Payload, Time};
use mpiq_nic::{HostRequest, ReqId, PORT_HOST_REQ};
use std::collections::HashMap;

/// A non-blocking request handle (`MPI_Request`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Request(pub(crate) ReqId);

/// An application running on one rank.
///
/// Programs must be [`Send`]: they live inside [`Host`](crate::Host)
/// components, which the partitioned executor moves onto worker threads.
pub trait AppProgram: Send + 'static {
    /// Advance as far as possible. Called once at start and again after
    /// every completion delivered to this rank. Call [`Mpi::finish`] when
    /// the program is done.
    fn step(&mut self, mpi: &mut Mpi<'_, '_>);
}

/// Host-side MPI state shared between the component and the API handle.
pub(crate) struct HostState {
    pub rank: u32,
    pub size: u32,
    pub nic: ComponentId,
    pub next_seq: u64,
    pub completed: HashMap<ReqId, MpiStatus>,
    pub done: bool,
    /// Cost of dispatching one request from the host CPU.
    pub dispatch_cost: Time,
    /// Host→NIC request delivery latency (one local-bus transaction).
    pub bus_latency: Time,
    /// Requests issued during the current `step` call (serializes their
    /// dispatch).
    pub issued_this_step: u64,
}

/// The MPI API handle passed to programs (`MPI_Comm_rank`,
/// `MPI_Comm_size`, `MPI_Isend`, `MPI_Irecv`, `MPI_Test` layer).
pub struct Mpi<'a, 'b> {
    pub(crate) st: &'a mut HostState,
    pub(crate) ctx: &'a mut Ctx<'b>,
}

impl Mpi<'_, '_> {
    /// This process's rank (`MPI_Comm_rank` on `MPI_COMM_WORLD`).
    pub fn rank(&self) -> u32 {
        self.st.rank
    }

    /// World size (`MPI_Comm_size`).
    pub fn size(&self) -> u32 {
        self.st.size
    }

    /// Current simulated time (`MPI_Wtime`).
    pub fn now(&self) -> Time {
        self.ctx.now()
    }

    /// Non-blocking send on an explicit context (used by collectives).
    pub fn isend_ctx(&mut self, dst: u32, context: u16, tag: u16, len: u32) -> Request {
        let req = self.alloc_req();
        self.dispatch(HostRequest::PostSend {
            req: req.0,
            dst,
            context,
            tag,
            len,
        });
        req
    }

    /// Non-blocking receive on an explicit context.
    pub fn irecv_ctx(
        &mut self,
        src: Option<u16>,
        context: u16,
        tag: Option<u16>,
        len: u32,
    ) -> Request {
        let req = self.alloc_req();
        self.dispatch(HostRequest::PostRecv {
            req: req.0,
            src,
            context,
            tag,
            len,
        });
        req
    }

    /// `MPI_Isend` on `MPI_COMM_WORLD`.
    pub fn isend(&mut self, dst: u32, tag: u16, len: u32) -> Request {
        self.isend_ctx(dst, crate::types::CTX_WORLD, tag, len)
    }

    /// `MPI_Irecv` on `MPI_COMM_WORLD`. `src`/`tag` of `None` are
    /// `MPI_ANY_SOURCE`/`MPI_ANY_TAG`.
    pub fn irecv(&mut self, src: Option<u16>, tag: Option<u16>, len: u32) -> Request {
        self.irecv_ctx(src, crate::types::CTX_WORLD, tag, len)
    }

    /// Offer a whole collective to the NIC (`MPI_Ibarrier` /
    /// `MPI_Ibcast` / `MPI_Iallreduce` with NIC offload). The NIC either
    /// runs the shared step plan itself and answers with one completion
    /// at the end, or declines immediately (`cancelled == true` status)
    /// — the caller must then replay the identical plan host-side (see
    /// [`crate::script`]'s `Op::Coll` fallback).
    pub fn icoll(&mut self, op: mpiq_nic::CollOp, root: u32, len: u32, instance: u16) -> Request {
        let req = self.alloc_req();
        self.dispatch(HostRequest::Collective {
            req: req.0,
            op,
            root,
            len,
            instance,
            n: self.st.size,
        });
        req
    }

    /// `MPI_Iprobe`: asynchronously ask whether a matching message is
    /// waiting on the unexpected queue. The returned request completes
    /// with `cancelled == false` and the message's envelope if one is
    /// waiting, or `cancelled == true` if not (`flag == false`).
    pub fn iprobe(&mut self, src: Option<u16>, tag: Option<u16>) -> Request {
        let req = self.alloc_req();
        self.dispatch(HostRequest::Probe {
            req: req.0,
            src,
            context: crate::types::CTX_WORLD,
            tag,
        });
        req
    }

    /// `MPI_Cancel` on a receive request. If it is still posted it will
    /// complete with `cancelled = true`; if it already matched, the
    /// normal completion stands.
    pub fn cancel(&mut self, req: Request) {
        self.dispatch(HostRequest::CancelRecv { target: req.0 });
    }

    /// `MPI_Test`: has the request completed?
    pub fn test(&self, req: Request) -> bool {
        self.st.completed.contains_key(&req.0)
    }

    /// Status of a completed request (`None` while in flight).
    pub fn status(&self, req: Request) -> Option<MpiStatus> {
        self.st.completed.get(&req.0).copied()
    }

    /// Mark the program finished (`MPI_Finalize`). The host stops
    /// stepping it.
    pub fn finish(&mut self) {
        self.st.done = true;
    }

    /// Ask to be stepped again after `delay` even if nothing completes
    /// (the timer behind `Op::Sleep`).
    pub fn wake_after(&mut self, delay: Time) {
        self.ctx
            .wake_me(PORT_TIMER, mpiq_dessim::Payload::empty(), delay);
    }

    fn alloc_req(&mut self) -> Request {
        let id = ReqId {
            rank: self.st.rank,
            seq: self.st.next_seq,
        };
        self.st.next_seq += 1;
        Request(id)
    }

    fn dispatch(&mut self, req: HostRequest) {
        // Serialize dispatches issued within one step: the host CPU writes
        // request records one after another.
        let delay =
            self.st.bus_latency + self.st.dispatch_cost * self.st.issued_this_step;
        self.st.issued_this_step += 1;
        self.ctx
            .send_to(self.st.nic, PORT_HOST_REQ, Payload::new(req), delay);
    }
}

/// Port on which the host receives completions from its NIC.
pub const PORT_COMPLETION: InPort = InPort(0);

/// Port on which the host receives its own timer wake-ups.
pub const PORT_TIMER: InPort = InPort(1);
