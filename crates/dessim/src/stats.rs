//! A global statistics registry.
//!
//! Experiments read hardware-internal counters (cache misses, FIFO
//! occupancy highwater marks, ALPU match counts) after — or between —
//! simulation phases. Components publish into a flat string-keyed counter
//! space; the convention is dotted paths like `"nic0.l1.miss"`.

use std::collections::BTreeMap;

/// Counter registry. Uses a `BTreeMap` so that dumps are deterministically
/// ordered.
#[derive(Default, Debug, Clone)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
}

impl Stats {
    /// Empty registry.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Add `v` to counter `key`, creating it at zero if absent.
    pub fn add(&mut self, key: &str, v: u64) {
        if let Some(c) = self.counters.get_mut(key) {
            *c += v;
        } else {
            self.counters.insert(key.to_string(), v);
        }
    }

    /// Increment by one.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Overwrite a counter (for gauges like "current occupancy").
    pub fn set(&mut self, key: &str, v: u64) {
        self.counters.insert(key.to_string(), v);
    }

    /// Track a maximum (highwater gauges).
    pub fn set_max(&mut self, key: &str, v: u64) {
        let e = self.counters.entry(key.to_string()).or_insert(0);
        *e = (*e).max(v);
    }

    /// Read a counter; absent counters read zero.
    pub fn get(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sum all counters whose key starts with `prefix` (e.g. every node's
    /// L1 misses via prefix `"nic"` + suffix filtering by the caller).
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Iterate `(key, value)` in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Remove every counter (between measurement phases).
    pub fn clear(&mut self) {
        self.counters.clear();
    }

    /// Fold another registry into this one by summing matching keys.
    ///
    /// Used by the partitioned executor to combine per-shard registries
    /// into one dump. Summing is correct for the additive counters and —
    /// because each gauge key is written by exactly one component and
    /// every component lives in exactly one shard (keys carry the
    /// component's name, e.g. `nic3.`) — gauges merge as `v + 0 = v`.
    pub fn merge_from(&mut self, other: &Stats) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Render every counter as a JSON object with deterministically sorted
    /// keys. Two registries with equal contents produce byte-identical
    /// output, which is what determinism checks diff.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_incr_get() {
        let mut s = Stats::new();
        s.incr("a.b");
        s.add("a.b", 4);
        assert_eq!(s.get("a.b"), 5);
        assert_eq!(s.get("missing"), 0);
    }

    #[test]
    fn set_and_set_max() {
        let mut s = Stats::new();
        s.set("g", 10);
        s.set("g", 3);
        assert_eq!(s.get("g"), 3);
        s.set_max("m", 5);
        s.set_max("m", 2);
        s.set_max("m", 9);
        assert_eq!(s.get("m"), 9);
    }

    #[test]
    fn prefix_sum_and_ordered_iter() {
        let mut s = Stats::new();
        s.add("nic0.l1.miss", 2);
        s.add("nic1.l1.miss", 3);
        s.add("cpu0.l1.miss", 7);
        assert_eq!(s.sum_prefix("nic"), 5);
        let keys: Vec<&str> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["cpu0.l1.miss", "nic0.l1.miss", "nic1.l1.miss"]);
    }

    #[test]
    fn json_dump_is_sorted_and_stable() {
        let mut s = Stats::new();
        s.add("b", 2);
        s.add("a", 1);
        assert_eq!(s.to_json(), r#"{"a":1,"b":2}"#);
        assert_eq!(Stats::new().to_json(), "{}");
    }

    #[test]
    fn clear_resets() {
        let mut s = Stats::new();
        s.incr("x");
        s.clear();
        assert_eq!(s.get("x"), 0);
    }
}
