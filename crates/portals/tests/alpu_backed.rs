//! Demonstrates the paper's "beyond MPI" claim (§III-A, §VI-A fn. 7):
//! the ALPU's ordered masked matching serves a Portals match list
//! exactly. Use-once match entries map to ALPU cells one-to-one — same
//! ordering, same ignore-bit semantics, same delete-on-match — so the
//! hardware evaluated for MPI queues would accelerate a Portals
//! implementation unchanged.

use mpiq_alpu::{Alpu, AlpuConfig, AlpuKind, Command, Entry, Probe, Response};
use mpiq_portals::md::MdOptions;
use mpiq_portals::me::{MatchEntry, MatchList, MeOptions};
use mpiq_portals::ni::{Network, ProcessId};
use proptest::prelude::*;

fn quiesce_ack(a: &mut Alpu) {
    a.advance(64);
    assert!(matches!(a.pop_response(), Some(Response::StartAck { .. })));
}

/// Load a match list's entries into an ALPU, cookie = handle index.
fn load_alpu(list: &MatchList) -> Alpu {
    let mut a = Alpu::new(AlpuConfig::new(64, 8, AlpuKind::PostedReceive));
    a.push_command(Command::StartInsert).unwrap();
    quiesce_ack(&mut a);
    for (h, me) in list.iter() {
        a.push_command(Command::Insert(Entry::with_mask(
            me.match_bits,
            me.ignore_bits,
            h.0,
        )))
        .unwrap();
        a.advance(2); // the command FIFO is shallow; let inserts drain
    }
    a.push_command(Command::StopInsert).unwrap();
    a.run_to_idle(100_000);
    a
}

fn probe(a: &mut Alpu, bits: u64) -> Option<u32> {
    a.push_header(Probe::with_mask(bits, 0)).unwrap();
    a.run_to_idle(100_000);
    match a.pop_response() {
        Some(Response::MatchSuccess { tag }) => Some(tag),
        Some(Response::MatchFailure) => None,
        other => panic!("unexpected {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Walking the software match list and probing the ALPU make the same
    /// decisions on the same probe stream — including the unlink-on-match
    /// mutation between probes.
    #[test]
    fn alpu_serves_a_portals_match_list(
        mes in prop::collection::vec((0u64..1u64<<20, 0u64..1u64<<20), 1..24),
        probes in prop::collection::vec(0u64..1u64<<20, 1..24),
    ) {
        let mut list = MatchList::default();
        for &(bits, ignore) in &mes {
            list.attach(MatchEntry {
                source: None,
                match_bits: bits,
                ignore_bits: ignore,
                options: MeOptions::default(), // use_once, like MPI receives
                md: mpiq_portals::MdHandle(0),
            });
        }
        let mut alpu = load_alpu(&list);
        let me_id = ProcessId { nid: 0, pid: 0 };
        for &bits in &probes {
            let sw = list.first_match(me_id, bits, false);
            let hw = probe(&mut alpu, bits);
            prop_assert_eq!(sw.map(|h| h.0), hw, "probe {:#x} diverged", bits);
            if let Some(h) = sw {
                list.unlink(h); // use-once: mirror the ALPU's delete
            }
        }
        prop_assert_eq!(list.len(), alpu.occupied());
    }
}

#[test]
fn mpi_style_protocol_over_portals() {
    // Sketch of MPI-over-Portals: receives become use-once MEs whose
    // match bits encode {context, source, tag} with ignore bits for
    // wildcards; sends become puts. Exactly the construction of the
    // paper's reference [23].
    let mut net = Network::new();
    let sender = net.add(ProcessId { nid: 0, pid: 0 });
    let recvr = net.add(ProcessId { nid: 1, pid: 0 });
    let word = |ctx: u16, src: u16, tag: u16| mpiq_alpu::MatchWord::mpi(ctx, src, tag).0;

    // "Post" two receives: one exact, one ANY_SOURCE (older).
    let md_any = net.ni_mut(recvr).md_bind(32, MdOptions::default());
    let md_exact = net.ni_mut(recvr).md_bind(32, MdOptions::default());
    net.ni_mut(recvr).me_attach(
        0,
        MatchEntry {
            source: None,
            match_bits: word(1, 0, 9),
            ignore_bits: mpiq_alpu::MaskWord::ANY_SOURCE.0,
            options: MeOptions::default(),
            md: md_any,
        },
    );
    net.ni_mut(recvr).me_attach(
        0,
        MatchEntry {
            source: None,
            match_bits: word(1, 0, 9),
            ignore_bits: 0,
            options: MeOptions::default(),
            md: md_exact,
        },
    );
    // A message from rank 0 tag 9: the OLDER wildcard receive must win
    // (MPI ordering), not the more specific one.
    assert!(net.put(
        sender,
        recvr,
        0,
        word(1, 0, 9),
        0,
        bytes::Bytes::from_static(b"payload")
    ));
    assert_eq!(&net.ni(recvr).md_bytes(md_any).unwrap()[..7], b"payload");
    assert_eq!(net.ni(recvr).md_bytes(md_exact).unwrap()[..7], [0u8; 7]);
}
