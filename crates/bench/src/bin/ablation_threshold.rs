//! Ablation: the §VI-B engagement heuristic.
//!
//! "It is entirely possible that the MPI library could be optimized to
//! not use the ALPU until the list is at least 5 entries long." This
//! harness implements exactly that knob (`AlpuSetup::engage_threshold`)
//! and sweeps it: with the threshold at 5, the zero-length penalty
//! disappears while the deep-queue win is retained.

use mpiq_bench::cli::Cli;
use mpiq_bench::{preposted_latency_cfg, run_parallel, PrepostedPoint};
use mpiq_nic::{AlpuSetup, NicConfig};

fn with_threshold(cells: usize, threshold: usize) -> NicConfig {
    let mut cfg = NicConfig::with_alpus(cells);
    let setup = AlpuSetup {
        engage_threshold: threshold,
        ..cfg.posted_alpu.expect("alpus configured")
    };
    cfg.posted_alpu = Some(setup);
    cfg.unexpected_alpu = Some(setup);
    cfg
}

fn main() {
    let cli = Cli::parse(
        "ablation_threshold",
        "§VI-B engagement heuristic: ALPU engage threshold sweep",
        &[],
    );
    let engine_threads = cli.common.threads;
    let thresholds = [0usize, 5, 10];
    let queues: Vec<usize> = (0..=16).chain([32, 64, 128].iter().copied()).collect();

    let mut configs: Vec<(String, NicConfig)> =
        vec![("baseline".to_string(), NicConfig::baseline())];
    for &t in &thresholds {
        configs.push((format!("alpu128(thr={t})"), with_threshold(128, t)));
    }

    print!("{:>8}", "queue");
    for (label, _) in &configs {
        print!("{label:>16}");
    }
    println!();

    let work: Vec<(usize, usize)> = queues
        .iter()
        .enumerate()
        .flat_map(|(qi, _)| (0..configs.len()).map(move |ci| (qi, ci)))
        .collect();
    let results = run_parallel(work.clone(), cli.common.sweep_threads, |&(qi, ci)| {
        preposted_latency_cfg(
            configs[ci].1,
            PrepostedPoint {
                queue_len: queues[qi],
                fraction: 1.0,
                msg_size: 0,
            },
            engine_threads,
        )
        .latency
        .as_us_f64()
    });

    for (qi, &q) in queues.iter().enumerate() {
        print!("{q:>8}");
        for ci in 0..configs.len() {
            let idx = work.iter().position(|&w| w == (qi, ci)).expect("present");
            print!("{:>16.3}", results[idx]);
        }
        println!();
    }

    // Summary: penalty at queue 0 per threshold.
    let base0 = results[work.iter().position(|&w| w == (0, 0)).unwrap()];
    for (ci, (label, _)) in configs.iter().enumerate().skip(1) {
        let v0 = results[work.iter().position(|&w| w == (0, ci)).unwrap()];
        eprintln!(
            "ablation_threshold: {label} zero-length penalty {:.0} ns",
            (v0 - base0) * 1000.0
        );
    }
}
