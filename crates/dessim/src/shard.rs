//! Sharded simulation state for conservative parallel execution.
//!
//! A [`ShardedSim`] partitions its components into *shards*: islands of
//! the component graph whose only inter-island edges are positive-latency
//! wired links (in the MPI cluster: one host+NIC island per node, with
//! the fabric links as the only cross-shard edges). Each shard owns a
//! private event heap, RNG stream, statistics, trace ring, and metrics
//! registry, so shards can execute concurrently with no shared mutable
//! state.
//!
//! Execution advances in *windows* planned at every barrier. Under the
//! default [`WindowPolicy::PerEdge`] each shard gets its own bound from
//! the per-edge safe-time table (see [`crate::window`]): the minimum
//! over its incident cross-shard edges of the peer's safe time plus
//! that edge's latency. Under [`WindowPolicy::Global`] — the original
//! algorithm, kept as a baseline — let `L` be the **lookahead** (the
//! minimum latency over all cross-shard links); if the earliest pending
//! event anywhere sits at time `t`, every shard shares the window
//! `[_, t + L)`. Either way shards execute their in-window events
//! freely and in parallel (no null messages, no rollback), then meet at
//! a barrier where buffered cross-shard events are exchanged and the
//! next windows are planned.
//!
//! The barrier itself is O(edges), not O(events): each source shard
//! keeps one *tray* per destination, trays record their minimum event
//! time as they fill, and the exchange just pointer-swaps each full
//! tray with the destination's empty mailbox buffer for that edge (the
//! emptied buffer returns to the sender — a per-edge free list, so
//! steady-state exchange allocates nothing). Arrived events are then
//! *batch-drained* inside the destination shard's next window: one
//! canonical-order sequence assignment, one sort, one bulk heap append,
//! executed in parallel across shards instead of serially at the
//! barrier. Direct (unwired) cross-shard sends are only safe along
//! pairs that also have a registered link; the barrier asserts every
//! arrival lands at or past its destination's window floor.
//!
//! **Determinism by construction.** The window schedule depends only on
//! heap contents; per-shard execution order depends only on each shard's
//! private `(time, seq)` heap; and the barrier exchange assigns arrival
//! sequence numbers in the canonical order above. None of these depend
//! on how many OS threads carry the shards, so every statistic, trace
//! record, and metric is bit-identical across worker-thread counts —
//! enforced by `tests/parallel_determinism.rs` at the workspace root.
//!
//! The executors themselves ([`Sequential`](crate::exec::Sequential) /
//! [`Partitioned`](crate::exec::Partitioned)) live in [`crate::exec`].

use crate::component::{Component, ComponentId, Ctx, Emission};
use crate::event::{Event, InPort, OutPort, Payload};
use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::scheduler::{Link, Scheduled};
use crate::stats::Stats;
use crate::time::Time;
use crate::trace::TraceRing;
use crate::window::WindowPolicy;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Identifies a shard within a [`ShardedSim`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ShardId(pub u32);

/// The immutable, thread-shared part of a sharded simulation: component
/// names, the shard each component lives in, the wiring table, and the
/// lookahead derived from it.
pub(crate) struct Topology {
    /// Global component id -> registered name.
    names: Vec<String>,
    /// Global component id -> (owning shard, index within the shard).
    owner: Vec<(u32, u32)>,
    /// Outgoing links indexed `[global component][out port]`.
    wiring: Vec<Vec<Option<Link>>>,
    /// Minimum latency over all cross-shard links; [`Time::MAX`] when no
    /// cross-shard link exists (single shard, or disconnected islands).
    lookahead: Time,
    /// Minimum link latency per ordered cross-shard pair
    /// `(src_shard, dst_shard)` — the shard graph the per-edge
    /// safe-time table relaxes over. `BTreeMap` keeps iteration
    /// deterministic.
    edges: BTreeMap<(u32, u32), Time>,
}

impl Topology {
    /// The cross-shard pair graph (ordered pairs, minimum latency each).
    pub(crate) fn edges(&self) -> impl Iterator<Item = ((u32, u32), Time)> + '_ {
        self.edges.iter().map(|(&k, &v)| (k, v))
    }
}

/// A cross-shard event buffered in a tray until the next barrier.
struct CrossEvent {
    time: Time,
    dst: ComponentId,
    port: InPort,
    payload: Payload,
}

/// One direction of one cross-shard edge's event buffer. The minimum
/// event time is tracked on push so the barrier can check the lookahead
/// invariant per *edge* instead of per *event*, and the buffer itself
/// ping-pongs between the sender's tray slot and the receiver's mailbox
/// slot — the per-edge free list that keeps steady-state exchange
/// allocation-free.
#[derive(Default)]
struct Tray {
    events: Vec<CrossEvent>,
    min_time: Option<Time>,
}

impl Tray {
    fn push(&mut self, ev: CrossEvent) {
        self.min_time = Some(match self.min_time {
            Some(m) => m.min(ev.time),
            None => ev.time,
        });
        self.events.push(ev);
    }

    fn reset(&mut self) {
        self.events.clear();
        self.min_time = None;
    }
}

/// One shard: a private slice of the component graph plus everything it
/// needs to execute events without touching other shards.
pub(crate) struct Shard {
    id: u32,
    components: Vec<Box<dyn Component>>,
    heap: BinaryHeap<Reverse<Scheduled>>,
    now: Time,
    seq: u64,
    rng: SimRng,
    stats: Stats,
    trace: TraceRing,
    metrics: Metrics,
    pub(crate) stop: bool,
    events_processed: u64,
    /// Outbound cross-shard events, one tray per destination shard,
    /// appended in emission order during a window and swapped into the
    /// destinations' mailboxes at the barrier.
    trays: Vec<Tray>,
    /// Inbound cross-shard events, one buffer per source shard, filled
    /// by the barrier swap and batch-drained at the start of this
    /// shard's next window.
    mailbox: Vec<Tray>,
    /// Minimum event time across all mailbox buffers ([`Time::MAX`]
    /// when they are empty) — lets `next_time` stay O(1).
    mailbox_min: Time,
    /// End of the last window this shard executed: no future arrival
    /// may land below it (asserted per edge at every barrier).
    pub(crate) floor: Time,
}

impl Shard {
    fn new(id: u32, rng: SimRng, nshards: usize) -> Shard {
        Shard {
            id,
            components: Vec::new(),
            heap: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            rng,
            stats: Stats::new(),
            trace: TraceRing::disabled(),
            metrics: Metrics::disabled(),
            stop: false,
            events_processed: 0,
            trays: (0..nshards).map(|_| Tray::default()).collect(),
            mailbox: (0..nshards).map(|_| Tray::default()).collect(),
            mailbox_min: Time::MAX,
            floor: Time::ZERO,
        }
    }

    /// Earliest pending event, counting undrained mailbox arrivals.
    pub(crate) fn next_time(&self) -> Option<Time> {
        let local = self.heap.peek().map(|Reverse(ev)| ev.time);
        match (local, self.mailbox_min) {
            (_, Time::MAX) => local,
            (Some(l), m) => Some(l.min(m)),
            (None, m) => Some(m),
        }
    }

    /// Move every mailbox arrival into the local heap: assign arrival
    /// sequence numbers in canonical order (source shard id, then
    /// emission order — identical at every thread count), then one sort
    /// and one bulk heap append. Runs inside the shard's own window, in
    /// parallel with other shards, instead of serially at the barrier.
    fn drain_mailbox(&mut self) {
        if self.mailbox_min == Time::MAX {
            return;
        }
        let mut seq = self.seq;
        let mut batch: Vec<Reverse<Scheduled>> = Vec::new();
        for tray in &mut self.mailbox {
            for ev in tray.events.drain(..) {
                batch.push(Reverse(Scheduled {
                    time: ev.time,
                    seq,
                    dst: ev.dst,
                    port: ev.port,
                    payload: ev.payload,
                }));
                seq += 1;
            }
            tray.min_time = None;
        }
        self.seq = seq;
        self.mailbox_min = Time::MAX;
        // Ascending (time, seq) order is a valid layout for the
        // min-heap, so `from` + `append` is a linear-time bulk insert.
        batch.sort_unstable_by_key(|Reverse(a)| (a.time, a.seq));
        let mut incoming = BinaryHeap::from(batch);
        self.heap.append(&mut incoming);
    }

    fn push_local(&mut self, time: Time, dst: ComponentId, port: InPort, payload: Payload) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled {
            time,
            seq,
            dst,
            port,
            payload,
        }));
    }

    /// Execute every pending event with `time < window_end`. Safe to run
    /// concurrently with other shards inside the same window: nothing
    /// here touches shared mutable state (cross-shard emissions go to
    /// local trays, and the mailbox drained here was filled at the
    /// previous barrier).
    pub(crate) fn run_window(&mut self, topo: &Topology, window_end: Time) -> u64 {
        // Nothing runnable this round: leave the shard untouched. The
        // floor stays put (this shard guarantees nothing beyond what it
        // has actually executed) and mailbox arrivals — all at or past
        // the bound — wait for a window that can run them. The decision
        // depends only on simulation state, never on thread count.
        match self.next_time() {
            Some(next) if next < window_end => {}
            _ => return 0,
        }
        debug_assert!(
            window_end >= self.floor,
            "window bounds must be monotone per shard: end={} < floor={}",
            window_end,
            self.floor
        );
        self.drain_mailbox();
        self.floor = self.floor.max(window_end);
        let mut delivered = 0u64;
        loop {
            match self.heap.peek() {
                Some(Reverse(head)) if head.time < window_end => {}
                _ => break,
            }
            let Reverse(ev) = self.heap.pop().expect("peeked above");
            debug_assert!(
                ev.time >= self.now,
                "time must be monotone within a shard: t={} < now={}",
                ev.time,
                self.now
            );
            self.now = ev.time;
            self.dispatch(topo, ev);
            delivered += 1;
        }
        self.events_processed += delivered;
        delivered
    }

    fn dispatch(&mut self, topo: &Topology, ev: Scheduled) {
        let (shard, local) = topo.owner[ev.dst.0 as usize];
        debug_assert_eq!(shard, self.id, "event routed to the wrong shard");
        let mut ctx = Ctx {
            now: self.now,
            me: ev.dst,
            emissions: Vec::new(),
            rng: &mut self.rng,
            stats: &mut self.stats,
            stop_requested: &mut self.stop,
            trace: &mut self.trace,
            metrics: &mut self.metrics,
        };
        let event = Event {
            time: ev.time,
            dst: ev.dst,
            port: ev.port,
            payload: ev.payload,
        };
        self.components[local as usize].on_event(event, &mut ctx);
        let emissions = ctx.emissions;
        self.commit(topo, ev.dst, emissions);
    }

    fn start_component(&mut self, topo: &Topology, local: u32, global: ComponentId) {
        let mut ctx = Ctx {
            now: self.now,
            me: global,
            emissions: Vec::new(),
            rng: &mut self.rng,
            stats: &mut self.stats,
            stop_requested: &mut self.stop,
            trace: &mut self.trace,
            metrics: &mut self.metrics,
        };
        self.components[local as usize].on_start(&mut ctx);
        let emissions = ctx.emissions;
        self.commit(topo, global, emissions);
    }

    fn commit(&mut self, topo: &Topology, src: ComponentId, emissions: Vec<Emission>) {
        for e in emissions {
            match e {
                Emission::Output {
                    port,
                    payload,
                    extra_delay,
                } => {
                    let link = topo.wiring[src.0 as usize]
                        .get(port.0 as usize)
                        .copied()
                        .flatten()
                        .unwrap_or_else(|| {
                            panic!(
                                "component `{}` emitted on unwired output port {:?}",
                                topo.names[src.0 as usize], port
                            )
                        });
                    let time = self.now + link.latency + extra_delay;
                    self.route(topo, time, link.dst, link.port, payload);
                }
                Emission::Direct {
                    dst,
                    port,
                    payload,
                    delay,
                } => {
                    let time = self.now + delay;
                    self.route(topo, time, dst, port, payload);
                }
            }
        }
    }

    fn route(&mut self, topo: &Topology, time: Time, dst: ComponentId, port: InPort, payload: Payload) {
        let (dst_shard, _) = topo.owner[dst.0 as usize];
        if dst_shard == self.id {
            self.push_local(time, dst, port, payload);
        } else {
            self.trays[dst_shard as usize].push(CrossEvent {
                time,
                dst,
                port,
                payload,
            });
        }
    }
}

/// A partitioned simulation: the sharded counterpart of
/// [`Simulation`](crate::Simulation), executed by an
/// [`ExecCore`](crate::exec::ExecCore).
///
/// Build it like a `Simulation` — register components (into explicit
/// shards), wire links, post initial events — then `run`. The number of
/// worker threads ([`ShardedSim::set_threads`]) affects wall-clock time
/// only; all observable output is bit-identical across thread counts.
pub struct ShardedSim {
    pub(crate) topo: Topology,
    pub(crate) shards: Vec<Shard>,
    threads: usize,
    started: bool,
    /// How window bounds are planned at each barrier (the per-shard
    /// floors live on the shards themselves).
    window_policy: WindowPolicy,
}

impl ShardedSim {
    /// Create a simulation partitioned into `nshards` shards. Each shard
    /// gets an independent RNG stream forked deterministically from
    /// `seed` (in shard-id order), so draws inside one shard never
    /// depend on activity in another.
    pub fn new(seed: u64, nshards: usize) -> ShardedSim {
        assert!(nshards > 0, "a sharded simulation needs at least one shard");
        let mut master = SimRng::new(seed);
        let shards = (0..nshards)
            .map(|id| Shard::new(id as u32, master.fork(), nshards))
            .collect();
        ShardedSim {
            topo: Topology {
                names: Vec::new(),
                owner: Vec::new(),
                wiring: Vec::new(),
                lookahead: Time::MAX,
                edges: BTreeMap::new(),
            },
            shards,
            threads: 1,
            started: false,
            window_policy: WindowPolicy::default(),
        }
    }

    /// How the executor plans window bounds (default:
    /// [`WindowPolicy::PerEdge`]). A pure performance knob *within* a
    /// policy: for a fixed policy, results are bit-identical at every
    /// thread count. Across policies the window schedule differs, which
    /// may legally reorder same-timestamp ties.
    pub fn window_policy(&self) -> WindowPolicy {
        self.window_policy
    }

    /// Select the window-planning policy for subsequent runs.
    pub fn set_window_policy(&mut self, policy: WindowPolicy) {
        self.window_policy = policy;
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads the next `run` will use (1 = the sequential core).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Select how many worker threads execute windows. Thread count is a
    /// pure performance knob: results are identical for any value.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Register a component into `shard`; the returned id is global
    /// (usable in wiring and direct sends regardless of shard).
    pub fn add_component<C: Component>(&mut self, shard: ShardId, name: &str, c: C) -> ComponentId {
        let s = shard.0 as usize;
        assert!(s < self.shards.len(), "unknown shard {shard:?}");
        let global = ComponentId(self.topo.names.len() as u32);
        let local = self.shards[s].components.len() as u32;
        self.shards[s].components.push(Box::new(c));
        self.topo.names.push(name.to_string());
        self.topo.owner.push((shard.0, local));
        self.topo.wiring.push(Vec::new());
        global
    }

    /// Wire `src.out_port` to `dst.in_port` with the given link latency.
    ///
    /// A link between components in *different* shards is a cross-shard
    /// edge: it must have positive latency (zero-latency edges admit no
    /// lookahead), and the minimum such latency becomes the global
    /// window width.
    pub fn connect(
        &mut self,
        src: ComponentId,
        out_port: OutPort,
        dst: ComponentId,
        in_port: InPort,
        latency: Time,
    ) {
        assert!(
            (dst.0 as usize) < self.topo.owner.len(),
            "connect: unknown destination component"
        );
        let (src_shard, _) = self.topo.owner[src.0 as usize];
        let (dst_shard, _) = self.topo.owner[dst.0 as usize];
        if src_shard != dst_shard {
            assert!(
                latency > Time::ZERO,
                "cross-shard link `{}` -> `{}` must have positive latency: \
                 zero-latency edges admit no conservative lookahead",
                self.topo.names[src.0 as usize],
                self.topo.names[dst.0 as usize],
            );
            self.topo.lookahead = self.topo.lookahead.min(latency);
            let pair = self
                .topo
                .edges
                .entry((src_shard, dst_shard))
                .or_insert(Time::MAX);
            *pair = (*pair).min(latency);
        }
        let ports = self
            .topo
            .wiring
            .get_mut(src.0 as usize)
            .expect("connect: unknown source component");
        let slot = out_port.0 as usize;
        if ports.len() <= slot {
            ports.resize(slot + 1, None);
        }
        ports[slot] = Some(Link {
            dst,
            port: in_port,
            latency,
        });
    }

    /// The conservative lookahead: minimum cross-shard link latency, or
    /// [`Time::MAX`] when no cross-shard link exists (windows then span
    /// the whole run).
    pub fn lookahead(&self) -> Time {
        self.topo.lookahead
    }

    /// Schedule an event `delay` after the owning shard's current time.
    pub fn post(&mut self, dst: ComponentId, port: InPort, payload: Payload, delay: Time) {
        let (shard, _) = self.topo.owner[dst.0 as usize];
        let sh = &mut self.shards[shard as usize];
        let time = sh.now + delay;
        sh.push_local(time, dst, port, payload);
    }

    /// Latest shard-local time (shards with no work lag behind the
    /// frontier; this reports the frontier).
    pub fn now(&self) -> Time {
        self.shards.iter().map(|s| s.now).max().unwrap_or(Time::ZERO)
    }

    /// Total events delivered across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    /// Registered name of a component.
    pub fn name_of(&self, id: ComponentId) -> &str {
        &self.topo.names[id.0 as usize]
    }

    /// Number of registered components (global ids are `0..count`).
    pub fn component_count(&self) -> usize {
        self.topo.names.len()
    }

    /// Keep the last `capacity` trace records *per shard*.
    pub fn enable_tracing(&mut self, capacity: usize) {
        for s in &mut self.shards {
            s.trace = TraceRing::with_capacity(capacity);
        }
    }

    /// Turn on every shard's metrics registry.
    pub fn enable_metrics(&mut self) {
        for s in &mut self.shards {
            s.metrics.enable();
        }
    }

    /// All shards' statistics merged into one registry (see
    /// [`Stats::merge_from`]), in shard-id order.
    pub fn stats_merged(&self) -> Stats {
        let mut out = Stats::new();
        for s in &self.shards {
            out.merge_from(&s.stats);
        }
        out
    }

    /// All shards' metrics merged into one registry, in shard-id order.
    pub fn metrics_merged(&self) -> Metrics {
        let mut out = Metrics::disabled();
        for s in &self.shards {
            out.merge_from(&s.metrics);
        }
        out
    }

    /// All shards' trace rings merged into canonical (time, shard,
    /// intra-shard) order.
    pub fn trace_merged(&self) -> TraceRing {
        TraceRing::merged(self.shards.iter().map(|s| s.trace.clone()).collect())
    }

    /// Trace records currently retained across all shards.
    pub fn trace_record_count(&self) -> usize {
        self.shards.iter().map(|s| s.trace.records().count()).sum()
    }

    /// Trace records evicted across all shards.
    pub fn trace_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.trace.dropped()).sum()
    }

    /// Render the merged trace with component names resolved.
    pub fn render_trace(&self) -> String {
        let names = &self.topo.names;
        let mut merged = self.trace_merged();
        merged.render(|id| names[id.0 as usize].clone())
    }

    /// Downcast a component to its concrete type, if it opted in via
    /// [`Component::as_any`].
    pub fn component<C: Component>(&self, id: ComponentId) -> Option<&C> {
        let (shard, local) = self.topo.owner[id.0 as usize];
        self.shards[shard as usize].components[local as usize]
            .as_any()?
            .downcast_ref()
    }

    /// Mutable variant of [`ShardedSim::component`].
    pub fn component_mut<C: Component>(&mut self, id: ComponentId) -> Option<&mut C> {
        let (shard, local) = self.topo.owner[id.0 as usize];
        self.shards[shard as usize].components[local as usize]
            .as_any_mut()?
            .downcast_mut()
    }

    /// Are all shard heaps and mailboxes empty?
    pub fn is_idle(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.heap.is_empty() && s.mailbox_min == Time::MAX)
    }

    /// Collect [`Component::health`] reports in global-id order.
    pub fn health_reports(&self) -> Vec<(String, crate::watchdog::Health)> {
        (0..self.topo.names.len())
            .filter_map(|i| {
                let (shard, local) = self.topo.owner[i];
                self.shards[shard as usize].components[local as usize]
                    .health()
                    .map(|h| (self.topo.names[i].clone(), h))
            })
            .collect()
    }

    /// Assemble a typed stall report (see [`crate::watchdog`]).
    pub fn diagnose(&self, kind: crate::watchdog::StallKind) -> crate::watchdog::Diagnosis {
        crate::watchdog::Diagnosis {
            kind,
            at: self.now(),
            events_processed: self.events_processed(),
            components: self.health_reports(),
        }
    }

    /// Did any component request a stop during the last run?
    pub fn stop_requested(&self) -> bool {
        self.shards.iter().any(|s| s.stop)
    }

    /// Run until every heap is empty or a component requested a stop
    /// (honored at the next window barrier). Returns events delivered.
    pub fn run(&mut self) -> u64 {
        self.run_until(Time::MAX)
    }

    /// Run events with `time <= horizon` under the configured executor
    /// ([`ShardedSim::set_threads`]). Returns events delivered by this
    /// call.
    pub fn run_until(&mut self, horizon: Time) -> u64 {
        use crate::exec::ExecCore;
        let before = self.events_processed();
        self.start_components();
        if self.threads <= 1 {
            crate::exec::Sequential.run(self, horizon);
        } else {
            crate::exec::Partitioned {
                threads: self.threads,
            }
            .run(self, horizon);
        }
        self.events_processed() - before
    }

    /// Run every component's `on_start` hook once, in global-id order,
    /// and exchange any cross-shard emissions they made. Serial: start
    /// hooks run before time begins and are not worth parallelizing.
    pub(crate) fn start_components(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for global in 0..self.topo.owner.len() {
            let (shard, local) = self.topo.owner[global];
            let Self { topo, shards, .. } = self;
            shards[shard as usize].start_component(topo, local, ComponentId(global as u32));
        }
        let mut refs: Vec<&mut Shard> = self.shards.iter_mut().collect();
        exchange_trays(&mut refs);
    }

    /// Plan the next global window: `[_, window_end)` where `window_end`
    /// caps at `min(earliest event + lookahead, horizon + 1)`. `None`
    /// when no event at or below the horizon remains, or when the
    /// earliest event sits at the top of the representable range (see
    /// below) and no finite window can be formed past it.
    pub(crate) fn plan_window(shards_next: Option<Time>, lookahead: Time, horizon: Time) -> Option<Time> {
        let next = shards_next?;
        if next > horizon {
            return None;
        }
        // The window bound is exclusive and u64::MAX doubles as the
        // worker pool's shutdown sentinel, so no window may end past
        // u64::MAX - 1 (a simulated time of u64::MAX - 1 ps is over 500
        // years). Events at or above that bound are unreachable: report
        // "no window" instead of planning one that makes no progress.
        if next.0 >= u64::MAX - 1 {
            return None;
        }
        // No cross-shard edges means unbounded lookahead: one window
        // spans everything up to the horizon. Explicit fast path — the
        // saturating add below would land on the same cap, but only by
        // accident of saturation.
        if lookahead == Time::MAX {
            let end = horizon.0.saturating_add(1).min(u64::MAX - 1);
            debug_assert!(end > next.0, "window must make progress");
            return Some(Time(end));
        }
        let end = next
            .0
            .saturating_add(lookahead.0)
            .min(horizon.0.saturating_add(1))
            .min(u64::MAX - 1);
        debug_assert!(end > next.0, "window must make progress");
        Some(Time(end))
    }
}

/// Exchange all buffered cross-shard events at a barrier by swapping
/// each non-empty tray with the destination's (empty) mailbox buffer
/// for that edge — O(1) per edge, no per-event work on the driver
/// thread. Destinations batch-drain their mailboxes inside their next
/// window in canonical order (destination shard, then source shard,
/// then emission order), so arrival sequence numbers — and therefore
/// same-timestamp tie-breaks — are identical at every thread count.
///
/// Each destination's `floor` is the end of the window it just
/// executed: every arrival must be at or past it, otherwise that shard
/// already simulated beyond the event's delivery time and the lookahead
/// invariant is broken (e.g. a too-short direct send across shards, or
/// one over a pair with no registered link). The check costs one
/// comparison per edge thanks to the tray-tracked minimum. It runs on
/// the driver thread on purpose: a panic inside a pooled worker would
/// park the other workers at the window barrier instead of surfacing.
pub(crate) fn exchange_trays(shards: &mut [&mut Shard]) {
    let n = shards.len();
    for dst in 0..n {
        for src in 0..n {
            if src == dst || shards[src].trays[dst].events.is_empty() {
                continue;
            }
            let floor = shards[dst].floor;
            let tray = std::mem::take(&mut shards[src].trays[dst]);
            let min = tray.min_time.expect("non-empty tray tracks its minimum");
            assert!(
                min >= floor,
                "cross-shard event into `{}` at t={} violates the lookahead \
                 window (floor {}): a cross-shard delay shorter than the \
                 registered minimum link latency was used",
                shards[dst].id,
                min,
                floor
            );
            shards[dst].mailbox_min = shards[dst].mailbox_min.min(min);
            if shards[dst].mailbox[src].events.is_empty() {
                // Swap: the full tray becomes the mailbox buffer, and
                // the emptied buffer returns to the sender for the next
                // window — the common, allocation-free path.
                let mut spare = std::mem::replace(&mut shards[dst].mailbox[src], tray);
                spare.reset();
                shards[src].trays[dst] = spare;
            } else {
                // The destination skipped its last window (no runnable
                // work below its bound), so arrivals accumulate: append
                // behind the earlier ones to preserve round order.
                let mut tray = tray;
                let slot = &mut shards[dst].mailbox[src];
                slot.min_time = match slot.min_time {
                    Some(m) => Some(m.min(min)),
                    None => Some(min),
                };
                slot.events.append(&mut tray.events);
                tray.reset();
                shards[src].trays[dst] = tray;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// Forwards a decrementing counter over its one output port.
    struct Fwd {
        log: Arc<Mutex<Vec<(Time, u32, u64)>>>,
        tag: u32,
    }
    impl Component for Fwd {
        fn on_event(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
            let n = *ev.payload.downcast::<u64>().unwrap();
            self.log.lock().unwrap().push((ctx.now(), self.tag, n));
            ctx.stats().incr(&format!("fwd{}.events", self.tag));
            if n > 0 {
                ctx.emit(OutPort(0), Payload::new(n - 1));
            }
        }
    }

    /// A ring of `shards` components, one per shard, each forwarding to
    /// the next with `latency`.
    fn build_ring(
        nshards: usize,
        latency: Time,
        threads: usize,
    ) -> (ShardedSim, Arc<Mutex<Vec<(Time, u32, u64)>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = ShardedSim::new(7, nshards);
        sim.set_threads(threads);
        let ids: Vec<ComponentId> = (0..nshards)
            .map(|s| {
                sim.add_component(
                    ShardId(s as u32),
                    &format!("fwd{s}"),
                    Fwd {
                        log: log.clone(),
                        tag: s as u32,
                    },
                )
            })
            .collect();
        for s in 0..nshards {
            sim.connect(ids[s], OutPort(0), ids[(s + 1) % nshards], InPort(0), latency);
        }
        (sim, log)
    }

    #[test]
    fn ring_routes_across_shards_with_latency() {
        let (mut sim, log) = build_ring(4, Time::from_ns(50), 1);
        sim.post(ComponentId(0), InPort(0), Payload::new(8u64), Time::ZERO);
        let n = sim.run();
        assert_eq!(n, 9);
        // 8 hops of 50 ns each after the t=0 start.
        assert_eq!(sim.now(), Time::from_ns(400));
        assert_eq!(log.lock().unwrap().len(), 9);
        assert_eq!(sim.lookahead(), Time::from_ns(50));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let run = |threads: usize| {
            let (mut sim, log) = build_ring(5, Time::from_ns(30), threads);
            for s in 0..5u32 {
                sim.post(
                    ComponentId(s),
                    InPort(0),
                    Payload::new(20u64 + s as u64),
                    Time::from_ns(s as u64),
                );
            }
            sim.run();
            let events = log.lock().unwrap().clone();
            (sim.stats_merged().to_json(), sim.events_processed(), events)
        };
        let base = run(1);
        for t in [2, 4, 8] {
            let got = run(t);
            assert_eq!(got.0, base.0, "stats diverged at {t} threads");
            assert_eq!(got.1, base.1, "event count diverged at {t} threads");
            // The shared log's *append order* is thread-dependent (that's
            // wall-clock interleaving, not simulation state); its sorted
            // contents must match exactly.
            let mut a = base.2.clone();
            let mut b = got.2.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "delivered events diverged at {t} threads");
        }
    }

    #[test]
    fn single_shard_runs_whole_horizon_in_one_window() {
        let mut sim = ShardedSim::new(1, 1);
        let log = Arc::new(Mutex::new(Vec::new()));
        let a = sim.add_component(ShardId(0), "a", Fwd { log: log.clone(), tag: 0 });
        sim.connect(a, OutPort(0), a, InPort(0), Time::from_ns(5));
        sim.post(a, InPort(0), Payload::new(3u64), Time::ZERO);
        assert_eq!(sim.lookahead(), Time::MAX);
        sim.run();
        assert_eq!(sim.events_processed(), 4);
        assert_eq!(sim.now(), Time::from_ns(15));
    }

    #[test]
    fn run_until_respects_horizon_and_resumes() {
        let (mut sim, _log) = build_ring(2, Time::from_ns(10), 2);
        sim.post(ComponentId(0), InPort(0), Payload::new(10u64), Time::ZERO);
        let first = sim.run_until(Time::from_ns(45));
        // Events at t = 0,10,20,30,40.
        assert_eq!(first, 5);
        assert_eq!(sim.now(), Time::from_ns(40));
        let rest = sim.run();
        assert_eq!(first + rest, 11);
    }

    #[test]
    #[should_panic(expected = "positive latency")]
    fn zero_latency_cross_shard_link_is_rejected() {
        let mut sim = ShardedSim::new(0, 2);
        let log = Arc::new(Mutex::new(Vec::new()));
        let a = sim.add_component(ShardId(0), "a", Fwd { log: log.clone(), tag: 0 });
        let b = sim.add_component(ShardId(1), "b", Fwd { log, tag: 1 });
        sim.connect(a, OutPort(0), b, InPort(0), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn short_direct_cross_send_is_caught_at_the_barrier() {
        // A component that direct-sends across shards with a delay
        // shorter than the registered lookahead: the barrier assert
        // must name the violation rather than silently reordering.
        struct Cheater {
            peer: ComponentId,
        }
        impl Component for Cheater {
            fn on_event(&mut self, _ev: Event, ctx: &mut Ctx<'_>) {
                ctx.send_to(self.peer, InPort(0), Payload::empty(), Time::from_ns(1));
                ctx.wake_me(InPort(1), Payload::empty(), Time::from_ns(500));
            }
        }
        struct Sink;
        impl Component for Sink {
            fn on_event(&mut self, _ev: Event, _ctx: &mut Ctx<'_>) {}
        }
        let mut sim = ShardedSim::new(0, 2);
        let b = sim.add_component(ShardId(1), "b", Sink);
        let a = sim.add_component(ShardId(0), "a", Cheater { peer: b });
        // Register legitimate 100 ns cross edges both ways, so each
        // shard's adaptive bound is finite (100 ns past the peer).
        sim.connect(a, OutPort(0), b, InPort(0), Time::from_ns(100));
        sim.connect(b, OutPort(0), a, InPort(0), Time::from_ns(100));
        // Seed activity on BOTH shards so b's first window runs to
        // t=100 ns — past the cheater's 1 ns delivery.
        sim.post(b, InPort(0), Payload::empty(), Time::ZERO);
        sim.post(a, InPort(0), Payload::empty(), Time::ZERO);
        sim.run();
    }

    #[test]
    fn adaptive_default_and_global_agree_on_semantic_order() {
        // Same ring workload under both window policies: the delivered
        // event sequence (sorted by time) and event count must agree —
        // window planning is a performance knob, not a semantics knob.
        let run = |policy: WindowPolicy| {
            let (mut sim, log) = build_ring(4, Time::from_ns(50), 2);
            sim.set_window_policy(policy);
            sim.post(ComponentId(0), InPort(0), Payload::new(12u64), Time::ZERO);
            sim.run();
            let mut events = log.lock().unwrap().clone();
            events.sort();
            (events, sim.events_processed(), sim.now())
        };
        assert_eq!(
            ShardedSim::new(0, 1).window_policy(),
            WindowPolicy::PerEdge,
            "adaptive lookahead is the default"
        );
        assert_eq!(run(WindowPolicy::PerEdge), run(WindowPolicy::Global));
    }

    #[test]
    fn heterogeneous_ring_results_identical_across_threads_and_policies() {
        // One 10 ns edge in a ring of 1 us edges — the shape adaptive
        // lookahead exists for. Every (policy, threads) combination must
        // deliver the same semantic event sequence.
        let run = |policy: WindowPolicy, threads: usize| {
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut sim = ShardedSim::new(3, 4);
            sim.set_window_policy(policy);
            sim.set_threads(threads);
            let ids: Vec<ComponentId> = (0..4)
                .map(|s| {
                    sim.add_component(
                        ShardId(s as u32),
                        &format!("fwd{s}"),
                        Fwd { log: log.clone(), tag: s as u32 },
                    )
                })
                .collect();
            for s in 0..4usize {
                let lat = if s == 0 { Time::from_ns(10) } else { Time::from_us(1) };
                sim.connect(ids[s], OutPort(0), ids[(s + 1) % 4], InPort(0), lat);
            }
            sim.post(ids[0], InPort(0), Payload::new(16u64), Time::ZERO);
            sim.post(ids[2], InPort(0), Payload::new(9u64), Time::from_ns(4));
            sim.run();
            let mut events = log.lock().unwrap().clone();
            events.sort();
            (events, sim.events_processed(), sim.stats_merged().to_json())
        };
        let base = run(WindowPolicy::PerEdge, 1);
        for threads in [2usize, 4, 8] {
            assert_eq!(run(WindowPolicy::PerEdge, threads), base, "diverged at {threads} threads");
        }
        let global = run(WindowPolicy::Global, 1);
        assert_eq!(global.0, base.0, "policies disagree on delivered events");
        assert_eq!(global.1, base.1, "policies disagree on event count");
    }

    // ----- plan_window edge cases (the `saturating_add` satellite) -----

    #[test]
    fn plan_window_no_cross_edges_takes_the_fast_path() {
        // Infinite lookahead (no cross-shard edges): one window to the
        // horizon, not a saturation accident.
        assert_eq!(
            ShardedSim::plan_window(Some(Time(5)), Time::MAX, Time::from_ns(80)),
            Some(Time(Time::from_ns(80).0 + 1))
        );
        // Infinite lookahead AND infinite horizon: the cap just below
        // the pool's shutdown sentinel.
        assert_eq!(
            ShardedSim::plan_window(Some(Time(5)), Time::MAX, Time::MAX),
            Some(Time(u64::MAX - 1))
        );
    }

    #[test]
    fn plan_window_rejects_events_at_the_top_of_the_range() {
        // A pending event at or above u64::MAX - 1 admits no window that
        // makes progress; plan_window must say "no window", not cap
        // silently at the horizon.
        assert_eq!(ShardedSim::plan_window(Some(Time(u64::MAX)), Time::MAX, Time::MAX), None);
        assert_eq!(
            ShardedSim::plan_window(Some(Time(u64::MAX - 1)), Time::from_ns(10), Time::MAX),
            None
        );
        // One below the cutoff still plans.
        assert_eq!(
            ShardedSim::plan_window(Some(Time(u64::MAX - 2)), Time::from_ns(10), Time::MAX),
            Some(Time(u64::MAX - 1))
        );
    }

    #[test]
    fn plan_window_basics_still_hold() {
        // Ordinary case: next + lookahead, capped by horizon + 1.
        assert_eq!(
            ShardedSim::plan_window(Some(Time(100)), Time(30), Time(1000)),
            Some(Time(130))
        );
        assert_eq!(
            ShardedSim::plan_window(Some(Time(990)), Time(30), Time(1000)),
            Some(Time(1001))
        );
        // Past the horizon, or no events at all: no window.
        assert_eq!(ShardedSim::plan_window(Some(Time(1001)), Time(30), Time(1000)), None);
        assert_eq!(ShardedSim::plan_window(None, Time(30), Time(1000)), None);
    }

    #[test]
    fn per_shard_rngs_are_deterministic_and_independent() {
        let draws = |nshards: usize| -> Vec<u64> {
            struct Draw {
                out: Arc<Mutex<Vec<u64>>>,
            }
            impl Component for Draw {
                fn on_event(&mut self, _ev: Event, ctx: &mut Ctx<'_>) {
                    let v = ctx.rng().next_u64();
                    self.out.lock().unwrap().push(v);
                }
            }
            let out = Arc::new(Mutex::new(Vec::new()));
            let mut sim = ShardedSim::new(42, nshards);
            for s in 0..nshards {
                let c = sim.add_component(
                    ShardId(s as u32),
                    &format!("d{s}"),
                    Draw { out: out.clone() },
                );
                sim.post(c, InPort(0), Payload::empty(), Time::from_ns(s as u64));
            }
            sim.run();
            let mut v = out.lock().unwrap().clone();
            v.sort_unstable();
            v
        };
        // Same shard count -> same draws; the first shard's draw is also
        // stable when more shards exist (streams are forked per shard).
        assert_eq!(draws(3), draws(3));
        assert_eq!(draws(1).len(), 1);
    }

    #[test]
    fn stats_merge_in_shard_order_and_sum() {
        let (mut sim, _log) = build_ring(3, Time::from_ns(10), 2);
        sim.post(ComponentId(0), InPort(0), Payload::new(6u64), Time::ZERO);
        sim.run();
        let stats = sim.stats_merged();
        let total: u64 = (0..3).map(|t| stats.get(&format!("fwd{t}.events"))).sum();
        assert_eq!(total, 7);
    }
}
