//! End-to-end exercise of the experiment server over a real TCP socket:
//! a cold fig5 sweep, a byte-identical warm hit that must be at least an
//! order of magnitude faster, progress streaming, and a lint pass over
//! every line the server says.

use mpiq_bench::jsonlint::{self, Json};
use mpiq_bench::service::{self, Server, ServiceConfig};
use mpiq_bench::spec::{BenchSpec, RunSpec};
use mpiq_bench::NicVariant;
use std::time::Instant;

fn start_server() -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        code_version: "e2e-test".to_string(),
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound").to_string();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

/// A fig5 sweep big enough that execution dominates the round trip:
/// 3 NIC configs x 21 queue depths.
fn fig5_spec() -> RunSpec {
    RunSpec {
        bench: BenchSpec::Fig5 {
            configs: NicVariant::ALL.to_vec(),
            max_queue: 200,
            step: 10,
            fractions: vec![1.0],
            sizes: vec![0],
        },
        seed: None,
        faults: None,
        threads: 0,
        sweep_threads: 0,
    }
}

#[test]
fn warm_fig5_sweep_is_a_byte_identical_order_of_magnitude_win() {
    let (addr, handle) = start_server();

    let mut progress_events = 0u64;
    let mut last = (0u64, 0u64);
    let cold_start = Instant::now();
    let cold = service::submit_with(&addr, &fig5_spec(), &mut |done, total| {
        progress_events += 1;
        last = (done, total);
    })
    .expect("cold run");
    let cold_wall = cold_start.elapsed();

    assert!(!cold.cached);
    assert_eq!(cold.runs_executed, 1);
    assert_eq!(cold.result.bench, "fig5");
    assert_eq!(cold.result.rows.len(), 3 * 21);
    // Progress arrived and ended on done == total (the final tick is
    // never throttled).
    assert!(progress_events >= 1, "no progress events for a 63-cell sweep");
    assert_eq!(last, (63, 63), "progress must end complete");

    // The warm hit: same spec, byte-identical payload, no re-execution,
    // and at least 10x faster than the cold run (the acceptance bar).
    let warm_start = Instant::now();
    let warm = service::submit(&addr, &fig5_spec()).expect("warm run");
    let warm_wall = warm_start.elapsed();

    assert!(warm.cached);
    assert_eq!(warm.runs_executed, 1, "cache hit must not re-run");
    assert_eq!(warm.payload, cold.payload, "cache hit must be byte-identical");
    assert_eq!(warm.result, cold.result);
    assert!(
        warm_wall.as_secs_f64() * 10.0 <= cold_wall.as_secs_f64(),
        "warm submission took {warm_wall:?}, cold took {cold_wall:?} — less than a 10x win"
    );

    // Every line of both transcripts is valid single-line JSON with a
    // recognized event tag.
    for line in cold.transcript.iter().chain(&warm.transcript) {
        let doc = jsonlint::parse(line).unwrap_or_else(|e| panic!("bad server JSON: {e}\n{line}"));
        if let Some(event) = doc.get("event").and_then(|j| j.as_str().map(str::to_string)) {
            assert!(
                ["accepted", "progress", "result"].contains(&event.as_str()),
                "unexpected event {event} in {line}"
            );
        } else {
            // The only non-event line is the result payload itself.
            assert!(doc.get("rows").is_some(), "unexpected line {line}");
        }
    }

    // The daemon agrees: one execution, one cache entry, and its own
    // metrics snapshot embedded in the status line.
    let status_line = service::status(&addr).expect("status");
    let doc = jsonlint::parse(&status_line).expect("status is valid JSON");
    assert_eq!(doc.get("runs_executed").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("cache_entries").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("code_version").and_then(Json::as_str), Some("e2e-test"));
    let counters = doc.get("metrics").and_then(|m| m.get("counters")).expect("metrics counters");
    assert_eq!(counters.get("service.cache.hit").and_then(Json::as_u64), Some(1));
    assert_eq!(counters.get("service.cache.miss").and_then(Json::as_u64), Some(1));

    service::shutdown(&addr).expect("shutdown");
    handle.join().expect("server thread exits");
}

#[test]
fn concurrent_identical_submissions_execute_once() {
    let (addr, handle) = start_server();
    let spec = RunSpec {
        bench: BenchSpec::Breakeven { max_queue: 6 },
        seed: None,
        faults: None,
        threads: 0,
        sweep_threads: 1,
    };

    // Race several clients on the same key; in-flight dedup means the
    // job runs once and every client gets the same bytes.
    let submissions: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let spec = spec.clone();
                scope.spawn(move || service::submit(&addr, &spec).expect("submit"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let payload = &submissions[0].payload;
    for s in &submissions {
        assert_eq!(&s.payload, payload, "all clients must see identical bytes");
        assert_eq!(s.runs_executed, 1, "the job must execute exactly once");
    }
    assert_eq!(submissions.iter().filter(|s| !s.cached).count(), 1, "exactly one cold submission");

    service::shutdown(&addr).expect("shutdown");
    handle.join().expect("server thread exits");
}
