//! Observability harness: one fully instrumented exchange, exported.
//!
//! The figure sweeps run thousands of points with tracing off (the
//! instrumented paths compile to single-branch no-ops, keeping the CSV
//! byte-identical). When a harness is asked for `--trace-out` or
//! `--metrics`, it runs *one representative point* through this module
//! with the trace ring and metrics registry enabled, then exports the
//! structured timeline as Chrome `chrome://tracing` JSON and the
//! histograms as text.

use crate::{PrepostedPoint, UnexpectedPoint};
use mpiq_dessim::Time;
use mpiq_mpi::script::mark_log;
use mpiq_mpi::{AppProgram, Cluster, ClusterConfig, Script};
use mpiq_nic::NicConfig;

/// Everything a traced run produces.
pub struct TracedRun {
    /// Chrome trace-event JSON (one self-contained document).
    pub chrome_json: String,
    /// Human-readable histogram / counter dump.
    pub metrics_text: String,
    /// Records captured in the trace ring.
    pub records: usize,
    /// Records lost to ring overflow (0 unless capacity was too small).
    pub dropped: u64,
}

/// Tag of the timed probe.
const PING_TAG: u16 = 7;
/// Tag of the reply.
const PONG_TAG: u16 = 8;
/// Filler receives that never match.
const FILLER_TAG: u16 = 10_000;

/// Run one pre-posted ping/pong point with tracing and metrics enabled.
/// Deterministic: equal inputs give byte-equal exports. `parallelism`
/// selects the engine exactly as [`ClusterConfig::parallelism`] does
/// (0 = hub engine; `n >= 1` = sharded engine on `n` threads, with
/// byte-identical exports for every such `n`).
pub fn traced_preposted(
    nic: NicConfig,
    p: PrepostedPoint,
    trace_capacity: usize,
    parallelism: usize,
) -> TracedRun {
    let depth = (((p.queue_len as f64) * p.fraction).floor() as usize).min(p.queue_len);
    let marks = mark_log();

    let post_queue =
        |b: &mut mpiq_mpi::script::ScriptBuilder, peer: u16, match_tag: u16| -> usize {
            for i in 0..depth {
                b.irecv(Some(peer), Some(FILLER_TAG + (i % 30_000) as u16), 0);
            }
            let matching = b.irecv(Some(peer), Some(match_tag), p.msg_size);
            for i in depth..p.queue_len {
                b.irecv(Some(peer), Some(FILLER_TAG + (i % 30_000) as u16), 0);
            }
            matching
        };

    let mut b0 = Script::builder();
    let pong = post_queue(&mut b0, 1, PONG_TAG);
    b0.barrier();
    b0.sleep(Time::from_us(400)); // let ALPU insert sessions drain
    b0.send(1, PING_TAG, p.msg_size);
    b0.wait(pong);
    let p0 = b0.build(marks);

    let mut b1 = Script::builder();
    let matching = post_queue(&mut b1, 0, PING_TAG);
    b1.barrier();
    b1.sleep(Time::from_us(400));
    b1.wait(matching);
    b1.send(0, PONG_TAG, p.msg_size);
    let p1 = b1.build(mark_log());

    let mut cluster = Cluster::new(
        ClusterConfig::builder(nic)
            .observability(trace_capacity)
            .parallelism(parallelism)
            .build(),
        vec![
            Box::new(p0) as Box<dyn AppProgram>,
            Box::new(p1) as Box<dyn AppProgram>,
        ],
    );
    cluster.run();

    export(cluster)
}

/// Run one unexpected-queue point (Fig. 6's benchmark) with tracing and
/// metrics enabled: park `queue_len` unexpected messages, then a single
/// timed ping/pong whose receive posting searches past them.
pub fn traced_unexpected(
    nic: NicConfig,
    p: UnexpectedPoint,
    trace_capacity: usize,
    parallelism: usize,
) -> TracedRun {
    let u = p.queue_len;

    let mut b0 = Script::builder();
    let mut filler_slots = Vec::new();
    for i in 0..u {
        filler_slots.push(b0.isend(1, FILLER_TAG + (i % 30_000) as u16, p.msg_size));
    }
    b0.wait_all(filler_slots);
    b0.barrier();
    b0.sleep(Time::from_us(500)); // ALPU insert sessions drain
    b0.send(1, PING_TAG, p.msg_size);
    b0.recv(Some(1), Some(PONG_TAG), 0);
    let p0 = b0.build(mark_log());

    let mut b1 = Script::builder();
    b1.barrier();
    b1.sleep(Time::from_us(500));
    b1.recv(Some(0), Some(PING_TAG), p.msg_size);
    b1.send(0, PONG_TAG, 0);
    let p1 = b1.build(mark_log());

    let mut cluster = Cluster::new(
        ClusterConfig::builder(nic)
            .observability(trace_capacity)
            .parallelism(parallelism)
            .build(),
        vec![
            Box::new(p0) as Box<dyn AppProgram>,
            Box::new(p1) as Box<dyn AppProgram>,
        ],
    );
    cluster.run();
    export(cluster)
}

fn export(cluster: Cluster) -> TracedRun {
    TracedRun {
        chrome_json: cluster.chrome_trace(),
        metrics_text: cluster.metrics().render(),
        records: cluster.trace_record_count(),
        dropped: cluster.trace_dropped(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonlint;
    use crate::NicVariant;

    fn small_point() -> PrepostedPoint {
        PrepostedPoint {
            queue_len: 8,
            fraction: 1.0,
            msg_size: 0,
        }
    }

    #[test]
    fn traced_run_captures_alpu_and_queue_events() {
        let run = traced_preposted(NicVariant::Alpu128.config(), small_point(), 1 << 16, 0);
        assert!(run.records > 0);
        assert_eq!(run.dropped, 0, "ring sized for the whole run");
        jsonlint::validate(&run.chrome_json).expect("valid JSON");
        // ALPU command/response duration events and queue-depth counters.
        assert!(run.chrome_json.contains("alpu[posted] response"), "trace");
        assert!(run.chrome_json.contains("insert_session"), "trace");
        assert!(run.chrome_json.contains("\"ph\":\"C\""), "counters");
        assert!(run.chrome_json.contains("posted.depth"), "queue depth");
        assert!(run.chrome_json.contains("\"ph\":\"X\""), "durations");
        // Histograms made it into the text dump.
        assert!(run.metrics_text.contains("match.posted"), "{}", run.metrics_text);
    }

    #[test]
    fn traced_unexpected_shows_unexpected_queue() {
        let run = traced_unexpected(
            NicVariant::Alpu128.config(),
            UnexpectedPoint {
                queue_len: 6,
                msg_size: 64,
            },
            1 << 16,
            0,
        );
        jsonlint::validate(&run.chrome_json).expect("valid JSON");
        assert!(run.chrome_json.contains("unexpected.depth"), "counters");
        assert!(run.metrics_text.contains("match.unexpected"), "{}", run.metrics_text);
    }

    #[test]
    fn traced_run_is_deterministic() {
        let a = traced_preposted(NicVariant::Alpu128.config(), small_point(), 1 << 14, 0);
        let b = traced_preposted(NicVariant::Alpu128.config(), small_point(), 1 << 14, 0);
        assert_eq!(a.chrome_json, b.chrome_json);
        assert_eq!(a.metrics_text, b.metrics_text);
    }
}
