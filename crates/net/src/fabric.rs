//! The crossbar fabric component.

use crate::message::{Message, NodeId};
use mpiq_dessim::fault::{FaultConfig, FaultPlan, FaultSchedule};
use mpiq_dessim::trace::{ComponentFaultKind, TraceEvent};
use mpiq_dessim::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Input port on the fabric where all NICs inject.
pub const PORT_FROM_NIC: InPort = InPort(0);

/// Output port index delivering to node `n` is `PORT_TO_NIC + n`.
pub const PORT_TO_NIC: u16 = 0;

/// Per-pair wire-latency shape overlaid on [`NetConfig::wire_latency`].
///
/// The sharded engine derives its conservative lookahead from link
/// latencies, so heterogeneous wires are first-class here: a single
/// short link in an otherwise long-haul topology is exactly the shape
/// that separates per-edge window planning from a global window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WireProfile {
    /// Every pair uses [`NetConfig::wire_latency`].
    #[default]
    Uniform,
    /// Nodes `a` and `b` are joined by a `short` wire (both directions);
    /// every other pair uses [`NetConfig::wire_latency`].
    ShortPair { a: NodeId, b: NodeId, short: Time },
}

/// Network parameters (Table III: 200 ns wire latency).
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Propagation latency for any message (see [`NetConfig::profile`]
    /// for per-pair overrides).
    pub wire_latency: Time,
    /// Link bandwidth in bytes per nanosecond (serialization).
    pub bytes_per_ns: u64,
    /// Per-pair latency overrides.
    pub profile: WireProfile,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            wire_latency: Time::from_ns(200),
            // Red Storm-class injection bandwidth, ~2 GB/s.
            bytes_per_ns: 2,
            profile: WireProfile::Uniform,
        }
    }
}

impl NetConfig {
    /// Wire latency between two nodes under the configured profile
    /// (symmetric; the diagonal also answers `wire_latency`).
    pub fn latency_between(&self, src: NodeId, dst: NodeId) -> Time {
        match self.profile {
            WireProfile::Uniform => self.wire_latency,
            WireProfile::ShortPair { a, b, short } => {
                if (src == a && dst == b) || (src == b && dst == a) {
                    short
                } else {
                    self.wire_latency
                }
            }
        }
    }
}

/// Fault-plan stream id for the fabric's injection site.
const FABRIC_FAULT_SITE: u64 = 0;

/// A full crossbar: every injected [`Message`] is delivered to its
/// destination's output port after wire latency plus serialization delay.
/// Each destination link serializes (per-destination busy window), which
/// models receive-side contention; per-(src,dst) ordering is preserved
/// because injections are timestamped in send order and the busy window is
/// FIFO.
///
/// With an active [`FaultConfig`], each injected message rolls (in fixed
/// order) a drop, duplication, and corruption verdict from a fabric-private
/// deterministic stream: dropped messages vanish (counted), duplicated
/// messages are delivered twice back-to-back, corrupted messages arrive
/// with `link.crc_ok == false`.
pub struct Fabric {
    cfg: NetConfig,
    nodes: u32,
    busy_until: Vec<Time>,
    faults: Option<FaultPlan>,
    /// Component-level fault timeline; `None` (the default) keeps the
    /// scheduled-fault path entirely out of the hot loop.
    schedule: Option<Arc<FaultSchedule>>,
    /// Last *observed* up/down state per undirected edge, for counting
    /// flap transitions edge-triggered on traffic (a deterministic
    /// function of local deliveries, so it holds at any thread count).
    edge_seen_down: BTreeMap<(u32, u32), bool>,
}

impl Fabric {
    /// A fault-free fabric connecting `nodes` NICs.
    pub fn new(cfg: NetConfig, nodes: u32) -> Fabric {
        Fabric::with_faults(cfg, nodes, FaultConfig::none())
    }

    /// A fabric with a (possibly empty) fault campaign.
    pub fn with_faults(cfg: NetConfig, nodes: u32, faults: FaultConfig) -> Fabric {
        Fabric {
            cfg,
            nodes,
            busy_until: vec![Time::ZERO; nodes as usize],
            faults: faults
                .net_active()
                .then(|| FaultPlan::new(faults, FABRIC_FAULT_SITE)),
            schedule: None,
            edge_seen_down: BTreeMap::new(),
        }
    }

    /// Arm a component-level fault timeline: edges the schedule marks
    /// down refuse (silently drop) every frame until they heal.
    pub fn with_schedule(mut self, schedule: Option<Arc<FaultSchedule>>) -> Fabric {
        self.schedule = schedule.filter(|s| !s.is_empty());
        self
    }

    /// Serialization time for a message of `bytes`, rounded up to the next
    /// picosecond so short frames are never undercharged to zero.
    fn serialize(&self, bytes: u64) -> Time {
        Time::from_ps((bytes * 1000).div_ceil(self.cfg.bytes_per_ns))
    }

    /// Output port for a destination node.
    pub fn out_port(dst: NodeId) -> OutPort {
        OutPort(PORT_TO_NIC + dst as u16)
    }

    /// The armed schedule, if any (used by `Cluster` diagnosis).
    pub fn schedule(&self) -> Option<&Arc<FaultSchedule>> {
        self.schedule.as_ref()
    }

    /// Occupy the destination link and deliver one copy of `msg`.
    fn deliver(&mut self, msg: Message, ctx: &mut Ctx<'_>) {
        let dst = msg.header.dst_node;
        let wire = self.cfg.latency_between(msg.header.src_node, dst);
        let ser = self.serialize(msg.wire_bytes());
        let start = ctx.now().max(self.busy_until[dst as usize]);
        let deliver = start + ser + wire;
        self.busy_until[dst as usize] = start + ser;
        ctx.stats().incr("net.messages");
        ctx.stats().add("net.bytes", msg.wire_bytes());
        ctx.emit_after(Self::out_port(dst), Payload::new(msg), deliver - ctx.now());
    }
}

/// Shared scheduled-edge check for the hub fabric and the per-node
/// [`crate::port::FabricPort`]s: look up the edge's state at `now`,
/// count/trace the transition if it differs from the last *observed*
/// state (edge-triggered on traffic — both telemetry sinks are no-ops
/// unless the harness enabled them), and say whether the frame must be
/// refused. Pure function of `(schedule, edge, now)` plus locally
/// observed traffic, so it is deterministic on both engines.
pub(crate) fn scheduled_edge_refuses(
    schedule: &Arc<FaultSchedule>,
    edge_seen_down: &mut BTreeMap<(u32, u32), bool>,
    src: u32,
    dst: u32,
    ctx: &mut Ctx<'_>,
) -> bool {
    let down = schedule.edge_down(src, dst, ctx.now());
    let key = (src.min(dst), src.max(dst));
    let seen = edge_seen_down.entry(key).or_insert(false);
    if *seen != down {
        *seen = down;
        ctx.metrics().add("fault.flap_transitions", 1);
        ctx.trace(TraceEvent::ComponentFault {
            kind: if down {
                ComponentFaultKind::LinkDown
            } else {
                ComponentFaultKind::LinkUp
            },
            node: key.0,
            peer: key.1,
        });
    }
    if down {
        ctx.stats().incr("net.sched.edge_drops");
    }
    down
}

impl Component for Fabric {
    fn on_event(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        let mut msg = *ev
            .payload
            .downcast::<Message>()
            .unwrap_or_else(|p| {
                panic!(
                    "fabric accepts Message payloads only; got {p:?} on port {:?} at t={}",
                    ev.port, ev.time
                )
            });
        let dst = msg.header.dst_node;
        assert!(
            dst < self.nodes,
            "message to unknown node {dst} (fabric has {} nodes): \
             {:?} seq={} from node {} at t={}",
            self.nodes,
            msg.header.kind,
            msg.header.seq,
            msg.header.src_node,
            ev.time
        );
        // Component-level faults outrank message-level ones: a frame on a
        // downed edge never reaches the wire-fault lottery at all.
        if let Some(sched) = self.schedule.clone() {
            if scheduled_edge_refuses(
                &sched,
                &mut self.edge_seen_down,
                msg.header.src_node,
                dst,
                ctx,
            ) {
                return;
            }
        }
        let mut duplicate = false;
        if let Some(plan) = &mut self.faults {
            let verdict = plan.roll_wire();
            if verdict.drop {
                ctx.stats().incr("net.faults.dropped");
                return;
            }
            if verdict.corrupt {
                ctx.stats().incr("net.faults.corrupted");
                msg.link.crc_ok = false;
            }
            duplicate = verdict.duplicate;
        }
        if duplicate {
            // The duplicate occupies its own serialization window behind
            // the original, like a retransmitted frame would.
            ctx.stats().incr("net.faults.duplicated");
            self.deliver(msg.clone(), ctx);
        }
        self.deliver(msg, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MsgHeader, MsgKind};
    use std::sync::Mutex;
    use std::sync::Arc;

    fn msg(dst: NodeId, len: u32, seq: u64) -> Message {
        Message::new(
            MsgHeader {
                src_node: 0,
                dst_node: dst,
                dst_rank: dst,
                context: 0,
                src_rank: 0,
                tag: 0,
                payload_len: len,
                kind: MsgKind::Eager,
                seq,
            },
            Message::test_payload(len as usize, 0),
        )
    }

    struct Sink {
        got: DeliveryLog,
    }
    impl Component for Sink {
        fn on_event(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
            let m = ev.payload.downcast::<Message>().unwrap();
            self.got.lock().unwrap().push((ctx.now(), m.header.seq, m.link.crc_ok));
        }
    }

    type DeliveryLog = Arc<Mutex<Vec<(Time, u64, bool)>>>;

    fn build(nodes: u32) -> (Simulation, ComponentId, Vec<DeliveryLog>) {
        build_faulty(nodes, FaultConfig::none())
    }

    fn build_faulty(
        nodes: u32,
        faults: FaultConfig,
    ) -> (Simulation, ComponentId, Vec<DeliveryLog>) {
        let mut sim = Simulation::new(7);
        let fab = sim.add_component(
            "net",
            Fabric::with_faults(NetConfig::default(), nodes, faults),
        );
        let mut logs = Vec::new();
        for n in 0..nodes {
            let log = Arc::new(Mutex::new(Vec::new()));
            let sink = sim.add_component(&format!("sink{n}"), Sink { got: log.clone() });
            sim.connect(fab, Fabric::out_port(n), sink, InPort(0), Time::ZERO);
            logs.push(log);
        }
        (sim, fab, logs)
    }

    #[test]
    fn zero_payload_message_takes_wire_latency_plus_header_time() {
        let (mut sim, fab, logs) = build(2);
        sim.post(fab, PORT_FROM_NIC, Payload::new(msg(1, 0, 1)), Time::ZERO);
        sim.run();
        let (t, seq, _) = logs[1].lock().unwrap()[0];
        assert_eq!(seq, 1);
        // 32 header bytes at 2 B/ns = 16 ns, + 200 ns wire.
        assert_eq!(t, Time::from_ns(216));
    }

    #[test]
    fn bandwidth_scales_with_length() {
        let (mut sim, fab, logs) = build(2);
        sim.post(fab, PORT_FROM_NIC, Payload::new(msg(1, 4096, 1)), Time::ZERO);
        sim.run();
        let (t, _, _) = logs[1].lock().unwrap()[0];
        assert_eq!(t, Time::from_ns(200 + (4096 + 32) / 2));
    }

    #[test]
    fn serialization_rounds_up_not_down() {
        // 7 B/ns does not divide the 32-byte header: 32000/7 ps = 4571.43,
        // which must round *up* to 4572 ps, not truncate to 4571.
        let cfg = NetConfig {
            wire_latency: Time::from_ns(200),
            bytes_per_ns: 7,
            ..NetConfig::default()
        };
        let mut sim = Simulation::new(7);
        let fab = sim.add_component("net", Fabric::new(cfg, 2));
        let log: DeliveryLog = Arc::new(Mutex::new(Vec::new()));
        let sink = sim.add_component("sink", Sink { got: log.clone() });
        sim.connect(fab, Fabric::out_port(1), sink, InPort(0), Time::ZERO);
        sim.post(fab, PORT_FROM_NIC, Payload::new(msg(1, 0, 0)), Time::ZERO);
        sim.run();
        let (t, _, _) = log.lock().unwrap()[0];
        assert_eq!(t, Time::from_ns(200) + Time::from_ps(4572));
    }

    #[test]
    fn sub_bandwidth_frame_still_charged_nonzero() {
        // A 1-byte frame on a 64 B/ns link is 15.625 ps of serialization;
        // the old truncating division charged 15 ps here but 0 ps for any
        // fabric fast enough to move the frame in under a picosecond.
        let fab = Fabric::new(
            NetConfig {
                wire_latency: Time::ZERO,
                bytes_per_ns: 64,
                ..NetConfig::default()
            },
            1,
        );
        assert_eq!(fab.serialize(1), Time::from_ps(16));
        let fast = Fabric::new(
            NetConfig {
                wire_latency: Time::ZERO,
                bytes_per_ns: 2048,
                ..NetConfig::default()
            },
            1,
        );
        assert!(fast.serialize(1) > Time::ZERO, "sub-ps frame charged zero");
    }

    #[test]
    fn same_destination_serializes_and_preserves_order() {
        let (mut sim, fab, logs) = build(2);
        for seq in 0..4 {
            sim.post(fab, PORT_FROM_NIC, Payload::new(msg(1, 1000, seq)), Time::ZERO);
        }
        sim.run();
        let got = logs[1].lock().unwrap();
        let seqs: Vec<u64> = got.iter().map(|&(_, s, _)| s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3], "ordering violated");
        // Each 1032-byte message serializes for 516 ns on the shared link.
        assert_eq!(got[0].0, Time::from_ns(716));
        assert_eq!(got[1].0, Time::from_ns(716 + 516));
    }

    #[test]
    fn different_destinations_do_not_contend() {
        let (mut sim, fab, logs) = build(3);
        sim.post(fab, PORT_FROM_NIC, Payload::new(msg(1, 1000, 0)), Time::ZERO);
        sim.post(fab, PORT_FROM_NIC, Payload::new(msg(2, 1000, 1)), Time::ZERO);
        sim.run();
        assert_eq!(logs[1].lock().unwrap()[0].0, Time::from_ns(716));
        assert_eq!(logs[2].lock().unwrap()[0].0, Time::from_ns(716));
    }

    #[test]
    fn drops_are_counted_and_deterministic() {
        let faults: FaultConfig = "seed=3,drop=0.2".parse().unwrap();
        let run = || {
            let (mut sim, fab, logs) = build_faulty(2, faults);
            for seq in 0..200 {
                sim.post(
                    fab,
                    PORT_FROM_NIC,
                    Payload::new(msg(1, 64, seq)),
                    Time::from_ns(seq * 1000),
                );
            }
            sim.run();
            let delivered: Vec<u64> = logs[1].lock().unwrap().iter().map(|&(_, s, _)| s).collect();
            (delivered, sim.stats().get("net.faults.dropped"))
        };
        let (d1, dropped1) = run();
        let (d2, dropped2) = run();
        assert_eq!(d1, d2, "same seed must drop the same messages");
        assert_eq!(dropped1, dropped2);
        assert!(dropped1 > 10 && dropped1 < 80, "dropped {dropped1} of 200");
        assert_eq!(d1.len() as u64 + dropped1, 200);
    }

    #[test]
    fn duplicates_deliver_twice_in_order() {
        let faults: FaultConfig = "seed=3,dup=1.0".parse().unwrap();
        let (mut sim, fab, logs) = build_faulty(2, faults);
        sim.post(fab, PORT_FROM_NIC, Payload::new(msg(1, 0, 9)), Time::ZERO);
        sim.run();
        let got = logs[1].lock().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].1, got[1].1), (9, 9));
        // Second copy queues behind the first on the destination link.
        assert!(got[1].0 > got[0].0);
        assert_eq!(sim.stats().get("net.faults.duplicated"), 1);
    }

    #[test]
    fn corruption_clears_crc_flag() {
        let faults: FaultConfig = "seed=3,corrupt=1.0".parse().unwrap();
        let (mut sim, fab, logs) = build_faulty(2, faults);
        sim.post(fab, PORT_FROM_NIC, Payload::new(msg(1, 0, 1)), Time::ZERO);
        sim.run();
        let got = logs[1].lock().unwrap();
        assert_eq!(got.len(), 1);
        assert!(!got[0].2, "frame should arrive with failed CRC");
        assert_eq!(sim.stats().get("net.faults.corrupted"), 1);
    }

    /// `latency_between` is symmetric for every profile — both directions
    /// of a `ShortPair` answer the short latency, and every other pair
    /// (including pairs sharing one endpoint with the short pair) answers
    /// `wire_latency` in both directions. The switched topologies reuse
    /// `wire_latency` per hop, so this is the invariant that keeps
    /// multi-hop paths symmetric too.
    #[test]
    fn latency_between_is_symmetric_for_all_profiles() {
        let uniform = NetConfig::default();
        let short = NetConfig {
            profile: WireProfile::ShortPair {
                a: 1,
                b: 3,
                short: Time::from_ns(10),
            },
            ..NetConfig::default()
        };
        for cfg in [uniform, short] {
            for s in 0..5u32 {
                for d in 0..5u32 {
                    assert_eq!(
                        cfg.latency_between(s, d),
                        cfg.latency_between(d, s),
                        "asymmetric wire {s}<->{d}"
                    );
                }
            }
        }
        assert_eq!(short.latency_between(3, 1), Time::from_ns(10));
        assert_eq!(short.latency_between(1, 3), Time::from_ns(10));
        // Sharing an endpoint with the short pair does not shorten a wire.
        assert_eq!(short.latency_between(1, 2), short.wire_latency);
        assert_eq!(short.latency_between(2, 1), short.wire_latency);
    }

    #[test]
    fn empty_fault_config_changes_nothing() {
        let (mut sim, fab, logs) = build_faulty(2, FaultConfig::none());
        sim.post(fab, PORT_FROM_NIC, Payload::new(msg(1, 0, 1)), Time::ZERO);
        sim.run();
        assert_eq!(logs[1].lock().unwrap()[0].0, Time::from_ns(216));
        assert_eq!(sim.stats().get("net.faults.dropped"), 0);
    }
}
