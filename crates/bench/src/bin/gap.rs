//! Message-rate (gap) sweep: the §I motivation made measurable. Prints
//! receiver-side gap vs posted-queue depth for the three evaluation
//! configurations.
//!
//! ```text
//! cargo run -p mpiq-bench --bin gap -- [BURST]
//! ```

use mpiq_bench::cli::Cli;
use mpiq_bench::gap::{message_gap, GapPoint};
use mpiq_bench::{run_parallel, NicVariant};

fn main() {
    let cli = Cli::parse(
        "gap",
        "receiver-side gap vs posted-queue depth (positional: BURST size)",
        &[],
    );
    let burst: usize = cli
        .positionals()
        .first()
        .map(|s| s.parse().expect("BURST: usize"))
        .unwrap_or(64);
    let engine_threads = cli.common.threads;
    let depths = [0usize, 50, 100, 200, 300, 400];
    let work: Vec<(NicVariant, usize)> = depths
        .iter()
        .flat_map(|&q| NicVariant::ALL.map(|v| (v, q)))
        .collect();
    let results = run_parallel(work.clone(), cli.common.sweep_threads, move |&(v, q)| {
        message_gap(
            v.config(),
            GapPoint {
                queue_len: q,
                burst,
                msg_size: 0,
            },
            engine_threads,
        )
    });

    println!("queue_len,baseline_gap_ns,alpu128_gap_ns,alpu256_gap_ns,baseline_rate_msgs_per_s,alpu256_rate_msgs_per_s");
    for &q in &depths {
        let get = |v: NicVariant| {
            work.iter()
                .zip(&results)
                .find(|((wv, wq), _)| *wv == v && *wq == q)
                .map(|(_, r)| r.gap)
                .expect("present")
        };
        let b = get(NicVariant::Baseline);
        let a128 = get(NicVariant::Alpu128);
        let a256 = get(NicVariant::Alpu256);
        let rate = |g: mpiq_dessim::Time| 1e9 / g.as_ns_f64();
        println!(
            "{q},{:.1},{:.1},{:.1},{:.0},{:.0}",
            b.as_ns_f64(),
            a128.as_ns_f64(),
            a256.as_ns_f64(),
            rate(b),
            rate(a256)
        );
    }
    eprintln!(
        "gap: time spent traversing queues raises gap / lowers message rate (§I); \
         the ALPU removes the queue-depth dependence within its capacity"
    );
}
