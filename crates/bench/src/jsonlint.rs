//! A minimal JSON validator and reader (recursive descent).
//!
//! The harnesses emit JSON by string formatting — fast and dependency
//! free, but easy to get subtly wrong (a stray `inf`, an unescaped
//! control character, a trailing comma). This module is the safety net:
//! CI and the golden-file tests run every emitted document through
//! [`validate`] before calling it a pass. It accepts exactly the JSON
//! grammar of RFC 8259 (UTF-8 input, no extensions).
//!
//! [`parse`] exposes the same grammar as a small DOM ([`Json`]) for the
//! few places that must *read* a document back — the scaling bench's
//! regression gate compares a fresh run against the committed
//! `BENCH_scaling.json` baseline through it. One parser serves both
//! entry points, so a document `validate` accepts is exactly a document
//! `parse` can load.

/// A parsed JSON value. Object keys keep their document order; duplicate
/// keys are kept as-is ([`Json::get`] answers the first).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integers from floats).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Validate `text` as a single JSON document. Returns `Err` with a byte
/// offset and message on the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    parse(text).map(|_| ())
}

/// Parse `text` as a single JSON document into a [`Json`] DOM. Accepts
/// and rejects exactly what [`validate`] does, with the same errors.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.ws();
    let doc = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(doc)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("byte {}: {msg}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn lit(&mut self, s: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{s}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.lit("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.lit("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.lit("null").map(|()| Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.ws();
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let value = self.value()?;
            members.push((key, value));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            match self.peek() {
                Some(c) if c.is_ascii_hexdigit() => {
                    code = code * 16 + (c as char).to_digit(16).unwrap();
                    self.i += 1;
                }
                _ => return Err(self.err("bad \\u escape")),
            }
        }
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/')) => {
                            out.push(c as char);
                            self.i += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.i += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.i += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.i += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.i += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            let mut code = self.hex4()?;
                            // A high surrogate may be completed by an
                            // immediately following `\uDC00`..`\uDFFF`;
                            // anything unpaired decodes to U+FFFD (the
                            // grammar accepts lone surrogates, but Rust
                            // strings cannot carry them).
                            if (0xd800..0xdc00).contains(&code)
                                && self.b[self.i..].starts_with(b"\\u")
                            {
                                let mark = self.i;
                                self.i += 2;
                                let low = self.hex4()?;
                                if (0xdc00..0xe000).contains(&low) {
                                    code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                } else {
                                    // Valid escape, but not a low
                                    // surrogate: leave it for the next
                                    // loop iteration.
                                    self.i = mark;
                                }
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"))
                }
                Some(_) => {
                    // Multi-byte UTF-8 is fine: the input is a &str, so
                    // copy the whole char.
                    let rest = std::str::from_utf8(&self.b[self.i..]).unwrap();
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn digits(&mut self) -> Result<(), String> {
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            Err(self.err("expected digit"))
        } else {
            Ok(())
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        // Integer part: `0` alone or a non-zero-led run.
        match self.peek() {
            Some(b'0') => {
                self.i += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zero"));
                }
            }
            Some(c) if c.is_ascii_digit() => self.digits()?,
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        let v: f64 = text
            .parse()
            .map_err(|e| self.err(&format!("unparseable number `{text}`: {e}")))?;
        Ok(Json::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::{parse, validate, Json};

    #[test]
    fn accepts_valid_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+3",
            "\"a\\u00e9\\n\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}",
            " [ 1 , 2 ] ",
            "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":0.003,\"dur\":0.007}]}",
        ] {
            assert!(validate(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "NaN",
            "inf",
            "01",
            "1.",
            "\"\u{1}\"",
            "\"unterminated",
            "{} extra",
            "'single'",
        ] {
            assert!(validate(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn error_reports_byte_offset() {
        let e = validate("[1, NaN]").unwrap_err();
        assert!(e.starts_with("byte 4:"), "{e}");
    }

    #[test]
    fn parse_builds_the_dom() {
        let doc = parse("{\"rows\":[{\"n\":3,\"rate\":1.5e3,\"name\":\"a b\"}],\"ok\":true}")
            .unwrap();
        let rows = doc.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(rows[0].get("rate").and_then(Json::as_f64), Some(1500.0));
        assert_eq!(rows[0].get("name").and_then(Json::as_str), Some("a b"));
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn parse_decodes_escapes() {
        assert_eq!(
            parse("\"a\\u00e9\\n\\t\\\"\\\\\"").unwrap(),
            Json::Str("a\u{e9}\n\t\"\\".to_string())
        );
        // Surrogate pair → one astral char; lone surrogate → U+FFFD.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1f600}".to_string())
        );
        assert_eq!(parse("\"\\ud800x\"").unwrap(), Json::Str("\u{fffd}x".to_string()));
    }

    #[test]
    fn parse_number_edge_cases() {
        assert_eq!(parse("-0.5e+3").unwrap().as_f64(), Some(-500.0));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
