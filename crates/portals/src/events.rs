//! Event queues: how Portals reports completions to software.

use crate::md::MdHandle;
use crate::ni::ProcessId;
use std::collections::VecDeque;

/// What happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A put deposited into a local MD.
    PutEnd,
    /// A get read from a local MD.
    GetEnd,
    /// The initiator's put finished sending.
    SendEnd,
    /// The initiator received the target's acknowledgement.
    Ack,
    /// The initiator's get reply arrived.
    ReplyEnd,
    /// A match entry / MD was unlinked.
    Unlink,
    /// An incoming operation matched nothing (dropped); Portals calls
    /// this out via the dropped counter, surfaced here as an event for
    /// testability.
    Dropped,
}

/// One event record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// The MD involved (if any).
    pub md: Option<MdHandle>,
    /// The peer process.
    pub initiator: ProcessId,
    /// Match bits of the operation.
    pub match_bits: u64,
    /// Offset within the MD where data landed / was read.
    pub offset: u64,
    /// Bytes transferred (after truncation).
    pub length: u64,
}

/// A bounded event queue.
#[derive(Debug)]
pub struct EventQueue {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl EventQueue {
    /// A queue holding up to `capacity` undelivered events.
    pub fn new(capacity: usize) -> EventQueue {
        EventQueue {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Append an event; full queues drop (and count) — the Portals
    /// overflow rule software must size against.
    pub fn post(&mut self, ev: Event) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push_back(ev);
    }

    /// Pop the oldest event.
    pub fn poll(&mut self) -> Option<Event> {
        self.events.pop_front()
    }

    /// Undelivered events.
    pub fn pending(&self) -> usize {
        self.events.len()
    }

    /// Events lost to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind) -> Event {
        Event {
            kind,
            md: None,
            initiator: ProcessId { nid: 0, pid: 0 },
            match_bits: 0,
            offset: 0,
            length: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = EventQueue::new(4);
        q.post(ev(EventKind::PutEnd));
        q.post(ev(EventKind::Ack));
        assert_eq!(q.poll().unwrap().kind, EventKind::PutEnd);
        assert_eq!(q.poll().unwrap().kind, EventKind::Ack);
        assert!(q.poll().is_none());
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut q = EventQueue::new(2);
        for _ in 0..5 {
            q.post(ev(EventKind::PutEnd));
        }
        assert_eq!(q.pending(), 2);
        assert_eq!(q.dropped(), 3);
    }
}
