//! Event tracing: a bounded ring of recent simulation activity.
//!
//! Debugging a distributed protocol deadlock needs to answer "what were
//! the last N things that happened, and when?". Components append
//! [`TraceRecord`]s through [`Ctx::trace`](crate::Ctx); the ring keeps the
//! most recent `capacity` records and renders them in time order.
//! Tracing is off (zero-capacity) by default and costs one branch when
//! disabled.

use crate::component::ComponentId;
use crate::time::Time;
use std::collections::VecDeque;

/// One traced happening.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// When it happened.
    pub time: Time,
    /// Which component reported it.
    pub who: ComponentId,
    /// Free-form description.
    pub what: String,
}

/// A bounded trace ring.
#[derive(Debug, Default)]
pub struct TraceRing {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl TraceRing {
    /// A disabled ring (capacity 0).
    pub fn disabled() -> TraceRing {
        TraceRing::default()
    }

    /// A ring keeping the last `capacity` records.
    pub fn with_capacity(capacity: usize) -> TraceRing {
        TraceRing {
            records: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Is tracing active?
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Append a record (dropping the oldest when full).
    pub fn push(&mut self, time: Time, who: ComponentId, what: impl Into<String>) {
        if self.capacity == 0 {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            time,
            who,
            what: what.into(),
        });
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the retained records, one per line.
    pub fn render(&self, name_of: impl Fn(ComponentId) -> String) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("... {} earlier records dropped ...\n", self.dropped));
        }
        for r in &self.records {
            out.push_str(&format!("{:>12} {:<12} {}\n", r.time.to_string(), name_of(r.who), r.what));
        }
        out
    }

    /// Clear everything (keeps the capacity).
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ring_drops_everything() {
        let mut r = TraceRing::disabled();
        r.push(Time::ZERO, ComponentId(0), "x");
        assert_eq!(r.records().count(), 0);
        assert!(!r.enabled());
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = TraceRing::with_capacity(3);
        for i in 0..5u64 {
            r.push(Time::from_ns(i), ComponentId(0), format!("e{i}"));
        }
        let whats: Vec<&str> = r.records().map(|x| x.what.as_str()).collect();
        assert_eq!(whats, vec!["e2", "e3", "e4"]);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn render_includes_drop_marker_and_names() {
        let mut r = TraceRing::with_capacity(1);
        r.push(Time::from_ns(1), ComponentId(7), "a");
        r.push(Time::from_ns(2), ComponentId(7), "b");
        let s = r.render(|id| format!("c{}", id.0));
        assert!(s.contains("1 earlier records dropped"));
        assert!(s.contains("c7"));
        assert!(s.contains('b'));
        assert!(!s.contains(" a\n"));
    }

    #[test]
    fn clear_resets() {
        let mut r = TraceRing::with_capacity(2);
        r.push(Time::ZERO, ComponentId(0), "x");
        r.clear();
        assert_eq!(r.records().count(), 0);
        assert_eq!(r.dropped(), 0);
    }
}
