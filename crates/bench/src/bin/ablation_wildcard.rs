//! The §II wildcard-workaround study: `MPI_ANY_SOURCE` vs "post a receive
//! from every possible source and then cancel those receives that are
//! unused" — quantifying why the paper calls the workaround "an
//! inefficient use of processing and memory resources", and what cancels
//! do to DELETE-less ALPU hardware.

use mpiq_bench::cli::Cli;
use mpiq_bench::wildcard::{wildcard_workaround, RecvStrategy, WildcardStudy};
use mpiq_bench::{run_parallel, NicVariant};

fn main() {
    let cli = Cli::parse(
        "ablation_wildcard",
        "MPI_ANY_SOURCE vs the post-all-and-cancel workaround (§II)",
        &[],
    );
    let engine_threads = cli.common.threads;
    let iters = 48u32;
    let sender_counts = [2u32, 4, 8, 12];
    let work: Vec<(NicVariant, RecvStrategy, u32)> = sender_counts
        .iter()
        .flat_map(|&s| {
            [NicVariant::Baseline, NicVariant::Alpu128]
                .into_iter()
                .flat_map(move |v| {
                    [RecvStrategy::AnySource, RecvStrategy::PostAllCancel]
                        .into_iter()
                        .map(move |st| (v, st, s))
                })
        })
        .collect();
    let results: Vec<WildcardStudy> = run_parallel(work.clone(), cli.common.sweep_threads, move |&(v, st, s)| {
        wildcard_workaround(v.config(), st, s, iters, engine_threads)
    });

    println!(
        "{:>8} {:>9} {:>15} | {:>10} {:>11} {:>9} {:>7}",
        "senders", "config", "strategy", "total_us", "traversed", "ghosts", "purges"
    );
    for (i, &(v, st, s)) in work.iter().enumerate() {
        let r = &results[i];
        println!(
            "{:>8} {:>9} {:>15} | {:>10.1} {:>11} {:>9} {:>7}",
            s,
            v.label(),
            match st {
                RecvStrategy::AnySource => "any_source",
                RecvStrategy::PostAllCancel => "post_all+cancel",
            },
            r.total.as_us_f64(),
            r.software_traversed,
            r.ghosted_cancels,
            r.purges
        );
    }
    eprintln!(
        "\nablation_wildcard: the workaround multiplies receiver-side work by \
         the source count and — on ALPU hardware with no DELETE command — \
         fills the unit with tombstones, forcing RESET+rebuild purges. \
         MPI_ANY_SOURCE costs none of that (§II)."
    );
}
