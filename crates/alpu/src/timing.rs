//! Pipeline timing (§V-D and Tables IV/V).
//!
//! The prototype pipeline has six stages — request fanout, per-cell match,
//! intra-block priority mux, inter-block priority mux, delete fanout,
//! delete — with the inter-block stage taking one *or two* cycles
//! "depending on the circuit parameters". The parameter in question is the
//! depth of the inter-block tree: every configuration in Tables IV/V with
//! more than 8 blocks reports a 7-cycle latency, and every configuration
//! with 8 or fewer blocks reports 6. Pipelining does not allow execution
//! overlap, so a new match is accepted every `match_latency` cycles;
//! inserts are accepted every other cycle.

/// Cycle-level timing parameters of one ALPU configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineTiming {
    /// Full match pipeline latency in cycles (6 or 7); also the match
    /// initiation interval, since execution does not overlap.
    pub match_latency: u64,
    /// Cycles between accepted inserts ("inserts ... on every other clock
    /// cycle").
    pub insert_interval: u64,
    /// Cycles to pop and decode one command from the command FIFO.
    pub command_cycles: u64,
}

impl PipelineTiming {
    /// Derive timing from the array geometry.
    pub fn for_geometry(total_cells: usize, block_size: usize) -> PipelineTiming {
        let blocks = total_cells / block_size;
        let match_latency = if blocks > 8 { 7 } else { 6 };
        PipelineTiming {
            match_latency,
            insert_interval: 2,
            command_cycles: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The latencies of Tables IV and V, keyed by (total cells, block size).
    #[test]
    fn reproduces_table_iv_and_v_latencies() {
        let expect = [
            ((256, 8), 7),
            ((256, 16), 7),
            ((256, 32), 6),
            ((128, 8), 7),
            ((128, 16), 6),
            ((128, 32), 6),
        ];
        for ((cells, block), lat) in expect {
            assert_eq!(
                PipelineTiming::for_geometry(cells, block).match_latency,
                lat,
                "cells={cells} block={block}"
            );
        }
    }

    #[test]
    fn insert_every_other_cycle() {
        assert_eq!(PipelineTiming::for_geometry(256, 16).insert_interval, 2);
    }
}
