//! Events and dynamically typed payloads.

use crate::component::ComponentId;
use crate::time::Time;
use std::any::Any;
use std::fmt;

/// An input port on a component. Pure label; meaning is component-defined.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct InPort(pub u16);

/// An output port on a component. Pure label; wired via
/// [`Simulation::connect`](crate::Simulation::connect).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct OutPort(pub u16);

/// A dynamically typed event payload.
///
/// Components in different crates exchange values without sharing a common
/// payload enum: the sender wraps any `'static` value, the receiver
/// [`downcast`](Payload::downcast)s it back. Wrong-type downcasts return the
/// payload so callers can try other types or fail loudly.
///
/// The two payload types that dominate event counts — unit "wake up"
/// markers and bare `u64`s — are stored inline, so the hot self-wakeup
/// path allocates nothing. Everything else is boxed as before; the
/// `downcast`/`is` semantics are identical across representations.
pub struct Payload(Repr);

enum Repr {
    /// `()` — pure wake-up events ([`Payload::empty`]).
    Empty,
    /// A bare `u64`, common for counters and cookies.
    U64(u64),
    /// Any other `Send + 'static` value.
    Boxed(Box<dyn Any + Send>),
}

impl Payload {
    /// Wrap a value. `()` and `u64` are stored inline (no allocation).
    ///
    /// Payloads must be [`Send`] so events can cross shard boundaries in
    /// the partitioned executor (see [`crate::shard`]).
    pub fn new<T: Send + 'static>(v: T) -> Payload {
        // Runtime type dispatch stands in for specialization: the checks
        // compile to TypeId comparisons and the common cases skip the box.
        let mut v = Some(v);
        let slot: &mut dyn Any = &mut v;
        if let Some(unit) = slot.downcast_mut::<Option<()>>() {
            unit.take();
            return Payload(Repr::Empty);
        }
        if let Some(word) = slot.downcast_mut::<Option<u64>>() {
            return Payload(Repr::U64(
                word.take().expect("Option wrapped a value two lines up; only this take() empties it"),
            ));
        }
        Payload(Repr::Boxed(Box::new(v.take().expect(
            "Option wrapped a value at fn entry; the downcast arms above return before taking",
        ))))
    }

    /// An empty payload for pure "wake up" events. Allocation-free.
    pub fn empty() -> Payload {
        Payload(Repr::Empty)
    }

    /// Recover the concrete value, or get `self` back on type mismatch.
    pub fn downcast<T: 'static>(self) -> Result<Box<T>, Payload> {
        match self.0 {
            // `Box<()>` is a zero-sized allocation: free.
            Repr::Empty => (Box::new(()) as Box<dyn Any>)
                .downcast::<T>()
                .map_err(|_| Payload(Repr::Empty)),
            Repr::U64(v) => (Box::new(v) as Box<dyn Any>)
                .downcast::<T>()
                .map_err(|_| Payload(Repr::U64(v))),
            Repr::Boxed(b) => b.downcast::<T>().map_err(|b| Payload(Repr::Boxed(b))),
        }
    }

    /// Borrow the concrete value if the type matches.
    pub fn downcast_ref<T: 'static>(&self) -> Option<&T> {
        match &self.0 {
            Repr::Empty => {
                static UNIT: () = ();
                (&UNIT as &dyn Any).downcast_ref::<T>()
            }
            Repr::U64(v) => (v as &dyn Any).downcast_ref::<T>(),
            Repr::Boxed(b) => b.downcast_ref::<T>(),
        }
    }

    /// Does this payload hold a `T`?
    pub fn is<T: 'static>(&self) -> bool {
        match &self.0 {
            Repr::Empty => std::any::TypeId::of::<T>() == std::any::TypeId::of::<()>(),
            Repr::U64(_) => std::any::TypeId::of::<T>() == std::any::TypeId::of::<u64>(),
            Repr::Boxed(b) => b.is::<T>(),
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Repr::Empty => write!(f, "Payload(())"),
            Repr::U64(v) => write!(f, "Payload({v}u64)"),
            Repr::Boxed(b) => write!(f, "Payload(<{:?}>)", (**b).type_id()),
        }
    }
}

/// A delivered event, handed to [`Component::on_event`](crate::Component::on_event).
#[derive(Debug)]
pub struct Event {
    /// Delivery time (equals `ctx.now()` during handling).
    pub time: Time,
    /// Receiving component.
    pub dst: ComponentId,
    /// Input port the event arrived on.
    pub port: InPort,
    /// The data.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        let p = Payload::new(17u32);
        assert!(p.is::<u32>());
        assert_eq!(p.downcast_ref::<u32>(), Some(&17));
        assert_eq!(*p.downcast::<u32>().unwrap(), 17);
    }

    #[test]
    fn payload_wrong_type_is_recoverable() {
        let p = Payload::new("hello");
        let p = p.downcast::<u32>().unwrap_err();
        assert_eq!(*p.downcast::<&str>().unwrap(), "hello");
    }

    #[test]
    fn empty_payload_is_unit() {
        assert!(Payload::empty().is::<()>());
    }
}
