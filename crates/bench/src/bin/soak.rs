//! Overload soak driver.
//!
//! Usage:
//!     soak [--scenario incast|hot-receiver|credit-starve|chaos|all]
//!          [--seeds N | --seed S] [--senders N] [--msgs N] [--size B]
//!          [--credits N] [--max-unexpected N] [--eager-buffer B]
//!          [--alpu] [--faults seed=N,drop=P,...] [--deadline-ms T]
//!          [--mtbf-us T] [--mttr-us T] [--check-determinism] [--threads N]
//!          [--out PATH] [--curve] [--chaos-curve]
//!
//! Runs each (scenario, seed) pair under the deadlock watchdog, prints
//! one CSV row per run, and exits nonzero with the watchdog's diagnosis
//! on a stall. `--check-determinism` repeats every run and demands a
//! bit-identical statistics dump. `--threads N` runs every simulation on
//! the sharded engine with N worker threads (0 = hub engine); output is
//! identical either way. `--curve` sweeps the incast fan-in and renders
//! the degradation curve (runtime and backpressure vs senders).
//! `--chaos-curve` sweeps the chaos scenario's link-flap MTBF and plots
//! availability and goodput against it.

use mpiq_bench::ascii_plot::{render, Series};
use mpiq_bench::cli::{Cli, Flag};
use mpiq_bench::report::{write_csv, write_json, CsvRow, JsonRow};
use mpiq_bench::report::{cells, json_str};
use mpiq_bench::{run_soak, Scenario, SoakConfig};
use mpiq_dessim::Time;
use std::io::Write as _;

struct Row {
    scenario: &'static str,
    seed: u64,
    cfg: SoakConfig,
    out: mpiq_bench::SoakOutcome,
}

const HEADER: &str = "scenario,seed,senders,msgs,runtime_ns,events,delivered,\
                      unexpected_hw,eager_bytes_hw,admission_refused,credit_stalls,\
                      truncated_admits,retransmits,grants_issued,ranks_crashed,\
                      peers_failed,ops_rank_failed,links_dead,nodes_restarted,\
                      peers_revived,epoch_fences,recovery_ns";

impl CsvRow for Row {
    fn csv(&self) -> String {
        format!(
            "{},{},{}",
            self.scenario,
            self.seed,
            cells(&[
                self.cfg.senders as u64,
                self.cfg.msgs as u64,
                self.out.runtime.ns(),
                self.out.events,
                self.out.delivered,
                self.out.unexpected_highwater,
                self.out.eager_bytes_highwater,
                self.out.admission_refused,
                self.out.credit_stalls,
                self.out.truncated_admits,
                self.out.retransmits,
                self.out.grants_issued,
                self.out.ranks_crashed,
                self.out.peers_failed,
                self.out.ops_rank_failed,
                self.out.links_dead,
                self.out.nodes_restarted,
                self.out.peers_revived,
                self.out.epoch_fences,
                self.out.recovery_ns,
            ])
        )
    }
}

impl JsonRow for Row {
    fn fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("scenario", json_str(self.scenario)),
            ("seed", self.seed.to_string()),
            ("senders", self.cfg.senders.to_string()),
            ("msgs", self.cfg.msgs.to_string()),
            ("runtime_ns", self.out.runtime.ns().to_string()),
            ("events", self.out.events.to_string()),
            ("delivered", self.out.delivered.to_string()),
            ("unexpected_hw", self.out.unexpected_highwater.to_string()),
            ("eager_bytes_hw", self.out.eager_bytes_highwater.to_string()),
            ("admission_refused", self.out.admission_refused.to_string()),
            ("credit_stalls", self.out.credit_stalls.to_string()),
            ("truncated_admits", self.out.truncated_admits.to_string()),
            ("retransmits", self.out.retransmits.to_string()),
            ("grants_issued", self.out.grants_issued.to_string()),
            ("ranks_crashed", self.out.ranks_crashed.to_string()),
            ("peers_failed", self.out.peers_failed.to_string()),
            ("ops_rank_failed", self.out.ops_rank_failed.to_string()),
            ("links_dead", self.out.links_dead.to_string()),
            ("nodes_restarted", self.out.nodes_restarted.to_string()),
            ("peers_revived", self.out.peers_revived.to_string()),
            ("epoch_fences", self.out.epoch_fences.to_string()),
            ("recovery_ns", self.out.recovery_ns.to_string()),
        ]
    }
}

const FLAGS: &[Flag] = &[
    Flag {
        name: "scenario",
        value: Some("NAME"),
        help: "incast|hot-receiver|credit-starve|chaos|all (default all)",
    },
    Flag { name: "seeds", value: Some("N"), help: "run seeds 1..=N (default 4)" },
    Flag { name: "senders", value: Some("N"), help: "fan-in (default 16)" },
    Flag { name: "msgs", value: Some("N"), help: "messages per sender (default 8)" },
    Flag { name: "size", value: Some("B"), help: "message payload bytes (default 512)" },
    Flag { name: "credits", value: Some("N"), help: "eager credits per peer (default 4)" },
    Flag { name: "max-unexpected", value: Some("N"), help: "unexpected-queue bound (default 32)" },
    Flag { name: "eager-buffer", value: Some("B"), help: "eager buffer bytes (default 16384)" },
    Flag { name: "alpu", value: None, help: "enable the ALPU NIC variant" },
    Flag { name: "deadline-ms", value: Some("T"), help: "watchdog deadline (default 500)" },
    Flag {
        name: "check-determinism",
        value: None,
        help: "re-run every point and demand bit-identical stats",
    },
    Flag { name: "curve", value: None, help: "sweep incast fan-in and plot the degradation curve" },
    Flag {
        name: "mtbf-us",
        value: Some("T"),
        help: "chaos: mean microseconds between link flaps (default 150)",
    },
    Flag {
        name: "mttr-us",
        value: Some("T"),
        help: "chaos: mean microseconds a flapped link stays down (default 50)",
    },
    Flag {
        name: "chaos-curve",
        value: None,
        help: "sweep the chaos MTBF and plot availability/goodput",
    },
    Flag {
        name: "recovery-curve",
        value: None,
        help: "sweep the crashed node's MTTR and plot availability and \
               crash-to-recovered time",
    },
    Flag {
        name: "node-mttr-us",
        value: Some("T"),
        help: "chaos: restart the crashed node T microseconds after its \
               crash and run the recovery handshake (0 = crash-stop forever, \
               the default; must be >= 400 so the storm horizon is over)",
    },
    Flag {
        name: "check",
        value: Some("PATH"),
        help: "baseline JSON from a previous --out; fail when any run's \
               recovery_ns/runtime_ns drifts past --tolerance",
    },
    Flag {
        name: "tolerance",
        value: Some("PCT"),
        help: "allowed drift in percent for --check (default 10)",
    },
];

/// Compare current rows against a tracked baseline (a previous `--out`
/// dump). Simulated time is deterministic, so `runtime_ns` — and
/// `recovery_ns` where restarts ran — drifting past the band in either
/// direction is a failure. Baseline rows without a matching
/// (scenario, seed) run are skipped; matching nothing is an error.
fn check_baseline(baseline: &str, rows: &[Row], tolerance_pct: f64) -> Result<Vec<String>, String> {
    use mpiq_bench::jsonlint::{self, Json};
    let doc = jsonlint::parse(baseline).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let base_rows = doc.as_array().ok_or("baseline is not a JSON array of rows")?;
    let mut failures = Vec::new();
    let mut matched = 0usize;
    for r in rows {
        let Some(base) = base_rows.iter().find(|b| {
            b.get("scenario").and_then(Json::as_str) == Some(r.scenario)
                && b.get("seed").and_then(Json::as_u64) == Some(r.seed)
                && b.get("senders").and_then(Json::as_u64) == Some(r.cfg.senders as u64)
        }) else {
            continue;
        };
        matched += 1;
        for (field, current) in [
            ("runtime_ns", r.out.runtime.ns()),
            ("recovery_ns", r.out.recovery_ns),
        ] {
            let Some(base_v) = base.get(field).and_then(Json::as_u64) else {
                continue;
            };
            if base_v == 0 && current == 0 {
                continue;
            }
            if base_v == 0 {
                failures.push(format!(
                    "{} seed {}: {field} went {current} vs baseline 0",
                    r.scenario, r.seed
                ));
                continue;
            }
            let drift = (current as f64 / base_v as f64 - 1.0) * 100.0;
            if drift.abs() > tolerance_pct {
                failures.push(format!(
                    "{} seed {}: {field} {current} drifts {drift:+.1}% from baseline \
                     {base_v} (tolerance ±{tolerance_pct}%)",
                    r.scenario, r.seed
                ));
            }
        }
    }
    if matched == 0 {
        return Err("no baseline row matches any current run — \
                    regenerate the baseline with --out"
            .to_string());
    }
    Ok(failures)
}

fn main() {
    let cli = Cli::parse("soak", "overload soak scenarios under the deadlock watchdog", FLAGS);
    let scenarios: Vec<Scenario> = match cli.get_str("scenario").unwrap_or("all") {
        "all" => Scenario::ALL.to_vec(),
        v => vec![Scenario::parse(v).unwrap_or_else(|| panic!("unknown scenario `{v}`"))],
    };
    let seeds: Vec<u64> = match cli.common.seed {
        Some(s) => vec![s],
        None => (1..=cli.get::<u64>("seeds", 4)).collect(),
    };
    let senders: u32 = cli.get("senders", 16);
    let msgs: u32 = cli.get("msgs", 8);
    let size: u32 = cli.get("size", 512);
    let credits: u32 = cli.get("credits", 4);
    let max_unexpected: u32 = cli.get("max-unexpected", 32);
    let eager_buffer: u64 = cli.get("eager-buffer", 16u64 << 10);
    let alpu = cli.has("alpu");
    let deadline_ms: u64 = cli.get("deadline-ms", 500);
    let mtbf_us: u64 = cli.get("mtbf-us", 150);
    let mttr_us: u64 = cli.get("mttr-us", 50);
    let node_mttr_us: u64 = cli.get("node-mttr-us", 0);
    let check_determinism = cli.has("check-determinism");
    let parallelism = cli.common.threads;

    if cli.has("curve") {
        incast_curve(msgs, size, credits, max_unexpected, eager_buffer, alpu, parallelism);
        return;
    }
    if cli.has("chaos-curve") {
        chaos_curve(senders, msgs, size, alpu, parallelism, mttr_us);
        return;
    }
    if cli.has("recovery-curve") {
        recovery_curve(senders, msgs, size, parallelism);
        return;
    }

    let mut rows = Vec::new();
    for &scenario in &scenarios {
        for &seed in &seeds {
            let mut cfg = SoakConfig::new(scenario, seed);
            cfg.senders = senders;
            cfg.msgs = msgs;
            cfg.msg_size = size;
            cfg.eager_credits = credits;
            cfg.max_unexpected = max_unexpected;
            cfg.eager_buffer_bytes = eager_buffer;
            cfg.alpu = alpu;
            cfg.faults = cli.common.faults;
            cfg.deadline = Time::from_ms(deadline_ms);
            cfg.parallelism = parallelism;
            cfg.mtbf = Time::from_us(mtbf_us);
            cfg.mttr = Time::from_us(mttr_us);
            if node_mttr_us > 0 && scenario == Scenario::Chaos {
                cfg.node_mttr = Some(Time::from_us(node_mttr_us));
            }
            let out = match run_soak(&cfg) {
                Ok(out) => out,
                Err(diag) => {
                    eprintln!("soak STALLED: {} seed {seed}\n{diag}", scenario.name());
                    std::process::exit(1);
                }
            };
            if check_determinism {
                let again = run_soak(&cfg).expect("determinism re-run stalled");
                assert_eq!(
                    out.stats_json,
                    again.stats_json,
                    "{} seed {seed}: same-seed runs diverged",
                    scenario.name()
                );
            }
            rows.push(Row {
                scenario: scenario.name(),
                seed,
                cfg,
                out,
            });
        }
    }

    write_csv(std::io::stdout().lock(), HEADER, &rows).expect("stdout");
    if let Some(path) = &cli.common.out {
        write_json(std::path::Path::new(path), &rows).expect("json out");
    }
    if let Some(path) = cli.get_str("check") {
        let tolerance: f64 = cli.get("tolerance", 10.0);
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        match check_baseline(&baseline, &rows, tolerance) {
            Ok(failures) if failures.is_empty() => {
                eprintln!("soak: all runs within ±{tolerance}% of {path}");
            }
            Ok(failures) => {
                for f in &failures {
                    eprintln!("soak DRIFT: {f}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("soak: baseline check failed: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!(
        "soak: {} run(s) complete; all queues drained, all bounds held{}",
        rows.len(),
        if check_determinism {
            ", determinism checked"
        } else {
            ""
        }
    );
}

/// Sweep the incast fan-in and plot how backpressure absorbs the load:
/// runtime grows with senders while the unexpected high-water stays
/// pinned at the bound.
fn incast_curve(
    msgs: u32,
    size: u32,
    credits: u32,
    max_unexpected: u32,
    eager_buffer: u64,
    alpu: bool,
    parallelism: usize,
) {
    let fanin = [2u32, 4, 8, 16, 32, 64];
    let mut runtime = Vec::new();
    let mut refused = Vec::new();
    let mut hw = Vec::new();
    println!("senders,runtime_us,admission_refused,unexpected_hw,retransmits");
    for &n in &fanin {
        let mut cfg = SoakConfig::new(Scenario::Incast, 1);
        cfg.senders = n;
        cfg.msgs = msgs;
        cfg.msg_size = size;
        cfg.eager_credits = credits;
        cfg.max_unexpected = max_unexpected;
        cfg.eager_buffer_bytes = eager_buffer;
        cfg.alpu = alpu;
        cfg.deadline = Time::from_ms(2_000);
        cfg.parallelism = parallelism;
        let out = run_soak(&cfg).unwrap_or_else(|d| panic!("incast {n} stalled:\n{d}"));
        println!(
            "{n},{:.1},{},{},{}",
            out.runtime.as_ns_f64() / 1e3,
            out.admission_refused,
            out.unexpected_highwater,
            out.retransmits
        );
        runtime.push((n as f64, out.runtime.as_ns_f64() / 1e3));
        refused.push((n as f64, out.admission_refused as f64));
        hw.push((n as f64, out.unexpected_highwater as f64));
    }
    let plot = render(
        &[
            Series {
                label: "runtime (us)".into(),
                glyph: '*',
                points: runtime,
            },
            Series {
                label: "admission refusals".into(),
                glyph: 'r',
                points: refused,
            },
            Series {
                label: format!("unexpected high-water (bound {max_unexpected})"),
                glyph: 'u',
                points: hw,
            },
        ],
        72,
        20,
        "senders (incast fan-in)",
        "",
    );
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{plot}");
    let _ = writeln!(
        err,
        "incast degrades by protocol: load sheds into admission refusals and \
         retransmits while the unexpected queue stays at its bound"
    );
}

/// Sweep the crashed node's MTTR with restarts armed: how long the node
/// stays down governs both how many operations fail typed while it is
/// gone (availability) and the crash-to-recovered span. Four seeded
/// storms per point; `recovery_us` reports the p50 and max across the
/// seeds — time-to-recovery is dominated by the scheduled MTTR plus the
/// keepalive declaration and the retry backoff ladder, so the spread is
/// the storm's contribution.
fn recovery_curve(senders: u32, msgs: u32, size: u32, parallelism: usize) {
    let mttrs_us = [400u64, 600, 800, 1200, 1600, 2400];
    const CURVE_SEEDS: [u64; 4] = [1, 2, 3, 5];
    let mut availability = Vec::new();
    let mut recovery = Vec::new();
    println!("node_mttr_us,availability,recovery_us_p50,recovery_us_max,ops_rank_failed,epoch_fences");
    for &mttr in &mttrs_us {
        let mut avail_sum = 0.0f64;
        let (mut failed, mut fences) = (0u64, 0u64);
        let mut spans_us: Vec<f64> = Vec::new();
        for &seed in &CURVE_SEEDS {
            let mut cfg = SoakConfig::new(Scenario::Chaos, seed);
            cfg.senders = senders;
            cfg.msgs = msgs;
            cfg.msg_size = size;
            cfg.parallelism = parallelism;
            cfg.deadline = Time::from_ms(2_000);
            cfg.node_mttr = Some(Time::from_us(mttr));
            let out = run_soak(&cfg)
                .unwrap_or_else(|d| panic!("recovery mttr={mttr}us seed={seed} stalled:\n{d}"));
            avail_sum += out.availability(cfg.planned_ops());
            spans_us.push(out.recovery_ns as f64 / 1e3);
            failed += out.ops_rank_failed;
            fences += out.epoch_fences;
        }
        spans_us.sort_by(|a, b| a.total_cmp(b));
        let p50 = spans_us[spans_us.len() / 2];
        let max = spans_us[spans_us.len() - 1];
        let avail = avail_sum / CURVE_SEEDS.len() as f64;
        println!("{mttr},{avail:.4},{p50:.1},{max:.1},{failed},{fences}");
        availability.push((mttr as f64, avail));
        recovery.push((mttr as f64, p50));
    }
    // Normalise the recovery span so both series share the [0, 1] axis.
    let rmax = recovery.iter().map(|&(_, r)| r).fold(f64::MIN, f64::max);
    let recovery_rel: Vec<(f64, f64)> = recovery.iter().map(|&(m, r)| (m, r / rmax)).collect();
    let plot = render(
        &[
            Series {
                label: "availability (fraction of ops ok)".into(),
                glyph: 'a',
                points: availability,
            },
            Series {
                label: format!("crash-to-recovered p50 (fraction of {rmax:.0} us)"),
                glyph: 'r',
                points: recovery_rel,
            },
        ],
        72,
        20,
        "node MTTR (us)",
        "",
    );
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{plot}");
    let _ = writeln!(
        err,
        "recovery time tracks the MTTR almost linearly (the detector and the \
         retry ladder add a near-constant tail); availability falls as the \
         node stays down longer, because the survivors' reconnect retries \
         keep paying typed failures until the rebirth"
    );
}

/// Sweep the chaos scenario's link-flap MTBF: stormier fabrics (smaller
/// MTBF) cost retransmits and — once outages outlast the retry budget —
/// typed failures. Availability = fraction of planned operations that
/// completed without a `RankFailed`; goodput = successful operations per
/// simulated millisecond.
fn chaos_curve(senders: u32, msgs: u32, size: u32, alpu: bool, parallelism: usize, mttr_us: u64) {
    // One storm realisation is noise — a single flap landing on or off a
    // round's critical path swings the runtime — so every point averages
    // four seeded storms at the same MTBF.
    let mtbfs_us = [25u64, 50, 100, 200, 400, 800];
    const CURVE_SEEDS: [u64; 4] = [1, 2, 3, 5];
    let mut availability = Vec::new();
    let mut goodput = Vec::new();
    println!("mtbf_us,availability,goodput_ops_per_ms,ops_rank_failed,links_dead,retransmits");
    for &mtbf in &mtbfs_us {
        let (mut avail_sum, mut gput_sum) = (0.0f64, 0.0f64);
        let (mut failed, mut dead, mut retx) = (0u64, 0u64, 0u64);
        for &seed in &CURVE_SEEDS {
            let mut cfg = SoakConfig::new(Scenario::Chaos, seed);
            cfg.senders = senders;
            // Dense rounds (small inter-round gaps) so outage windows
            // actually overlap live traffic; 8 sparse rounds mostly miss
            // the storm and the curve degenerates to noise.
            cfg.msgs = msgs.max(48);
            cfg.msg_size = size;
            cfg.alpu = alpu;
            cfg.parallelism = parallelism;
            cfg.deadline = Time::from_ms(2_000);
            cfg.mtbf = Time::from_us(mtbf);
            cfg.mttr = Time::from_us(mttr_us);
            let out = run_soak(&cfg)
                .unwrap_or_else(|d| panic!("chaos mtbf={mtbf}us seed={seed} stalled:\n{d}"));
            let planned = cfg.planned_ops();
            avail_sum += out.availability(planned);
            let ok_ops = planned.saturating_sub(out.ops_rank_failed) as f64;
            gput_sum += ok_ops / (out.runtime.as_ns_f64() / 1e6);
            failed += out.ops_rank_failed;
            dead += out.links_dead;
            retx += out.retransmits;
        }
        let n = CURVE_SEEDS.len() as f64;
        let (avail, gput) = (avail_sum / n, gput_sum / n);
        println!("{mtbf},{avail:.4},{gput:.2},{failed},{dead},{retx}");
        availability.push((mtbf as f64, avail));
        goodput.push((mtbf as f64, gput));
    }
    // Normalise goodput so both series share the [0, 1] axis.
    let gmax = goodput.iter().map(|&(_, g)| g).fold(f64::MIN, f64::max);
    let goodput_rel: Vec<(f64, f64)> =
        goodput.iter().map(|&(m, g)| (m, g / gmax)).collect();
    let plot = render(
        &[
            Series {
                label: "availability (fraction of ops ok)".into(),
                glyph: 'a',
                points: availability,
            },
            Series {
                label: "goodput (fraction of storm-free)".into(),
                glyph: 'g',
                points: goodput_rel,
            },
        ],
        72,
        20,
        "mean time between link flaps (us)",
        "",
    );
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{plot}");
    let _ = writeln!(
        err,
        "both curves climb with MTBF: retransmit delay leaves the critical \
         path (goodput), and fewer storm-delayed operations are still in \
         flight when the scheduled crash lands (availability). Sub-budget \
         outages alone never cost a typed failure — go-back-N absorbs them."
    );
}
