//! Message-rate (gap) measurement — the LogP/LogGP motivation of §I.
//!
//! "The second largest impact on application performance is gap
//! (effectively, the inverse of the message rate). [...] For networks
//! that use embedded processors to traverse these queues, time spent
//! traversing queues leads to an increase in gap."
//!
//! The sender streams a burst of back-to-back messages; every one of them
//! matches at the *back* of the receiver's pre-posted queue, so the
//! receiver's NIC pays a full traversal per message. Gap = burst drain
//! time at the receiver divided by the burst size.

use mpiq_dessim::Time;
use mpiq_mpi::script::mark_log;
use mpiq_mpi::{AppProgram, Cluster, ClusterConfig, Script};
use mpiq_nic::NicConfig;

/// One gap measurement point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GapPoint {
    /// Never-matching receives pre-posted ahead of the burst receives.
    pub queue_len: usize,
    /// Messages in the burst.
    pub burst: usize,
    /// Payload bytes per message.
    pub msg_size: u32,
}

/// Result of one gap measurement.
#[derive(Clone, Copy, Debug)]
pub struct GapResult {
    /// Mean inter-message service time at the receiver.
    pub gap: Time,
    /// Total burst drain time.
    pub drain: Time,
}

/// Measure the gap for one configuration. `parallelism` selects the
/// execution engine (0 = hub, `n >= 1` = sharded on `n` threads); the
/// result is identical either way.
pub fn message_gap(nic: NicConfig, p: GapPoint, parallelism: usize) -> GapResult {
    let marks = mark_log();

    // Rank 0: fire the whole burst, overlapped.
    let mut b0 = Script::builder();
    b0.barrier();
    b0.sleep(Time::from_us(400));
    let slots: Vec<usize> = (0..p.burst)
        .map(|i| b0.isend(1, i as u16, p.msg_size))
        .collect();
    b0.wait_all(slots);
    let p0 = b0.build(mark_log());

    // Rank 1: fillers first, then the burst receives — so every burst
    // message traverses the full filler prefix on the baseline.
    let mut b1 = Script::builder();
    for i in 0..p.queue_len {
        b1.irecv(Some(0), Some(20_000 + (i % 20_000) as u16), 0);
    }
    let slots: Vec<usize> = (0..p.burst)
        .map(|i| b1.irecv(Some(0), Some(i as u16), p.msg_size))
        .collect();
    b1.barrier();
    b1.sleep(Time::from_us(400));
    b1.mark(0);
    b1.wait_all(slots);
    b1.mark(1);
    let p1 = b1.build(marks.clone());

    let mut cluster = Cluster::new(
        ClusterConfig::builder(nic).parallelism(parallelism).build(),
        vec![
            Box::new(p0) as Box<dyn AppProgram>,
            Box::new(p1) as Box<dyn AppProgram>,
        ],
    );
    cluster.run();
    let m = marks.borrow();
    let drain = m[1].1 - m[0].1;
    GapResult {
        gap: drain / p.burst as u64,
        drain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gap(nic: NicConfig, q: usize) -> Time {
        message_gap(
            nic,
            GapPoint {
                queue_len: q,
                burst: 32,
                msg_size: 0,
            },
            0,
        )
        .gap
    }

    #[test]
    fn baseline_gap_grows_with_queue_depth() {
        let g0 = gap(NicConfig::baseline(), 0);
        let g300 = gap(NicConfig::baseline(), 300);
        // Each message pays ~300 entries of traversal: gap grows by
        // multiple microseconds.
        assert!(
            g300 > g0 + Time::from_us(3),
            "gap must grow with queue depth: {g0} -> {g300}"
        );
    }

    #[test]
    fn alpu_holds_gap_flat_within_capacity() {
        let g0 = gap(NicConfig::with_alpus(256), 0);
        let g200 = gap(NicConfig::with_alpus(256), 200);
        assert!(
            g200.saturating_sub(g0) < Time::from_ns(300),
            "ALPU gap should stay flat: {g0} -> {g200}"
        );
    }

    #[test]
    fn alpu_message_rate_advantage_at_depth() {
        let base = gap(NicConfig::baseline(), 300);
        let alpu = gap(NicConfig::with_alpus(256), 300);
        assert!(
            alpu * 2 < base,
            "ALPU should at least double the message rate: {alpu} vs {base}"
        );
    }
}
