//! Drive a tiny ALPU cycle model directly and trace what the hardware
//! does: the Fig. 3 state machine, the insert session protocol, priority
//! matching, delete-with-shift, and held-failure retry.
//!
//! ```text
//! cargo run --example alpu_inspector
//! ```

use mpiq::alpu::{Alpu, AlpuConfig, AlpuKind, Command, Entry, MatchWord, Probe, Response};

fn dump(alpu: &Alpu, label: &str) {
    print!("[cycle {:>4}] {label:<34} |", alpu.stats().cycles);
    let arr = alpu.array();
    // Highest index (oldest / highest priority) printed on the right,
    // matching Fig. 2's "inserted from the left, progress to the right".
    for i in 0..arr.capacity() {
        match arr.cell(i) {
            Some(e) => print!(" [tag {:>2}]", e.tag),
            None => print!(" [ ____ ]"),
        }
    }
    println!("  state={:?}", alpu.state());
}

fn drain(alpu: &mut Alpu) {
    while let Some(r) = alpu.pop_response() {
        match r {
            Response::StartAck { free } => println!("             response: START ACK, {free} free cells"),
            Response::MatchSuccess { tag } => println!("             response: MATCH SUCCESS, tag {tag}"),
            Response::MatchFailure => println!("             response: MATCH FAILURE"),
        }
    }
}

fn main() {
    // 8 cells in blocks of 4: two blocks, 6-cycle match pipeline.
    let mut alpu = Alpu::new(AlpuConfig::new(8, 4, AlpuKind::PostedReceive));
    println!(
        "ALPU: {} cells, block size {}, match pipeline {} cycles, inserts every {} cycles\n",
        8,
        4,
        alpu.config().timing().match_latency,
        alpu.config().timing().insert_interval
    );
    dump(&alpu, "reset");

    // Insert session: three receives, one with MPI_ANY_SOURCE.
    println!("\n-- insert session: START INSERT, 3 INSERTs, STOP INSERT");
    alpu.push_command(Command::StartInsert).unwrap();
    alpu.advance(2);
    drain(&mut alpu);
    for (i, entry) in [
        Entry::mpi_recv(1, Some(4), Some(10), 10),
        Entry::mpi_recv(1, None, Some(11), 11), // ANY_SOURCE
        Entry::mpi_recv(1, Some(4), Some(10), 12), // duplicate of tag 10
    ]
    .into_iter()
    .enumerate()
    {
        alpu.push_command(Command::Insert(entry)).unwrap();
        alpu.advance(2);
        dump(&alpu, &format!("after INSERT #{}", i + 1));
    }
    alpu.push_command(Command::StopInsert).unwrap();
    alpu.advance(8);
    dump(&alpu, "compacted after STOP INSERT");

    // Priority: two entries match {ctx 1, src 4, tag 10}; the OLDER one
    // (tag 10, furthest right) must win and be deleted with a shift.
    println!("\n-- probe {{ctx 1, src 4, tag 10}}: two candidates, oldest wins");
    alpu.push_header(Probe::exact(MatchWord::mpi(1, 4, 10))).unwrap();
    alpu.advance(6);
    drain(&mut alpu);
    dump(&alpu, "after delete-with-shift");

    // Wildcard: entry tag 11 stores ANY_SOURCE, so src 99 matches it.
    println!("\n-- probe {{ctx 1, src 99, tag 11}}: hits the ANY_SOURCE cell");
    alpu.push_header(Probe::exact(MatchWord::mpi(1, 99, 11))).unwrap();
    alpu.advance(6);
    drain(&mut alpu);
    dump(&alpu, "after wildcard match");

    // Held failure: a probe that matches nothing arrives during insert
    // mode; its failure is held until the matching insert lands.
    println!("\n-- held failure: probe arrives mid-session, insert satisfies it");
    alpu.push_command(Command::StartInsert).unwrap();
    alpu.advance(2);
    drain(&mut alpu);
    alpu.push_header(Probe::exact(MatchWord::mpi(1, 7, 77))).unwrap();
    alpu.advance(20);
    println!("             (no response yet — failure held for retry, §III-C)");
    assert_eq!(alpu.responses_pending(), 0);
    alpu.push_command(Command::Insert(Entry::mpi_recv(1, Some(7), Some(77), 77)))
        .unwrap();
    alpu.advance(20);
    drain(&mut alpu);
    alpu.push_command(Command::StopInsert).unwrap();
    alpu.advance(4);
    dump(&alpu, "after retry matched the new insert");

    let s = alpu.stats();
    println!(
        "\ntotals: {} matches attempted, {} successes, {} failures, {} inserts, {} busy cycles",
        s.matches_attempted, s.match_successes, s.match_failures, s.inserts, s.busy_cycles
    );

    // Bonus: capture a waveform of one more match and write a VCD file
    // (viewable in GTKWave) when an output path is given.
    if let Some(path) = std::env::args().nth(1) {
        alpu.push_command(Command::StartInsert).unwrap();
        alpu.push_command(Command::Insert(Entry::mpi_recv(1, Some(4), Some(99), 5)))
            .unwrap();
        alpu.push_command(Command::StopInsert).unwrap();
        alpu.run_to_idle(10_000);
        while alpu.pop_response().is_some() {}
        let vcd = mpiq::alpu::vcd::capture(&mut alpu, 2, |a| {
            a.push_header(Probe::exact(MatchWord::mpi(1, 4, 99))).unwrap();
        });
        std::fs::write(&path, vcd).expect("write vcd");
        println!("wrote waveform to {path} (open with GTKWave)");
    }
}
