//! Regenerates Figure 5: message latency vs. posted-receive queue length
//! and fraction of the queue traversed, for the baseline NIC and the
//! 128-/256-entry ALPU NICs.
//!
//! ```text
//! cargo run --release -p mpiq-bench --bin fig5 -- [--config all|baseline|alpu128|alpu256]
//!     [--max-queue 500] [--step 25] [--fractions 0,0.25,0.5,0.75,1.0]
//!     [--sizes 0,1024,8192] [--plot] [--threads 0] [--sweep-threads 0]
//!     [--out results/fig5.json] [--server 127.0.0.1:7171]
//!     [--faults seed=N,drop=P[,dup=P,corrupt=P,flip=P,stall=P]]
//!     [--trace-out trace.json] [--metrics]
//! ```
//!
//! The flags assemble a [`RunSpec`] that either executes locally
//! ([`mpiq_bench::exec`]) or, with `--server ADDR`, is submitted to a
//! running `simd` daemon — identical bytes on stdout either way, with
//! server resubmissions served from the daemon's memo cache.
//!
//! `--trace-out PATH` re-runs one representative point (the deepest
//! queue, full traversal, smallest message) with structured tracing
//! enabled and writes a Chrome `chrome://tracing` JSON timeline to PATH.
//! `--metrics` dumps the latency histograms of that instrumented run to
//! stderr. Neither flag perturbs the CSV on stdout; both always run
//! locally.

use mpiq_bench::cli::Cli;
use mpiq_bench::spec::{flags, BenchSpec, RunSpec};
use mpiq_bench::{service, NicVariant, PrepostedPoint};

fn main() {
    let cli = Cli::parse("fig5", "Fig. 5: latency vs. posted-receive queue depth", flags("fig5"));
    let spec = RunSpec::from_cli("fig5", &cli).unwrap_or_else(|e| {
        eprintln!("fig5: {e}");
        std::process::exit(2);
    });
    let BenchSpec::Fig5 { configs: variants, max_queue, step, fractions, sizes } =
        spec.bench.clone()
    else {
        unreachable!()
    };

    let points = variants.len() * sizes.len() * fractions.len() * (max_queue / step.max(1) + 1);
    eprintln!(
        "fig5: {} points across {} config(s), {} sweep thread(s), engine threads {}",
        points,
        variants.len(),
        if spec.sweep_threads == 0 { "auto".to_string() } else { spec.sweep_threads.to_string() },
        spec.threads
    );

    let result = service::run_for_cli("fig5", cli.common.server.as_deref(), &spec)
        .unwrap_or_else(|e| {
            eprintln!("fig5: {e}");
            std::process::exit(1);
        });
    let ok = service::emit(&result, cli.common.out.as_deref().map(std::path::Path::new))
        .expect("write json");

    if cli.has("plot") {
        let mut series = Vec::new();
        for (v, glyph) in variants.iter().zip(['B', 'a', 'A', 'x', 'y']) {
            series.push(mpiq_bench::ascii_plot::Series {
                label: v.label().to_string(),
                glyph,
                points: result
                    .rows
                    .iter()
                    .filter(|r| {
                        r.text("config").as_deref() == Some(v.label())
                            && r.num("fraction") == Some(1.0)
                            && r.num("msg_size") == Some(sizes[0] as f64)
                    })
                    .map(|r| (r.num("queue_len").unwrap_or(0.0), r.num("latency_us").unwrap_or(0.0)))
                    .collect(),
            });
        }
        eprintln!(
            "
Fig. 5 projection: latency vs posted-queue length (full traversal, {} B)
{}",
            sizes[0],
            mpiq_bench::ascii_plot::render(&series, 72, 20, "queue length", "latency (us)")
        );
    }

    if cli.common.trace_out.is_some() || cli.common.metrics {
        // Prefer an ALPU variant so the timeline shows hardware events.
        let v = variants
            .iter()
            .copied()
            .find(|v| *v != NicVariant::Baseline)
            .unwrap_or(variants[0]);
        let point = PrepostedPoint { queue_len: max_queue, fraction: 1.0, msg_size: sizes[0] };
        let mut cfg = v.config();
        if let Some(f) = cli.common.faults {
            cfg = cfg.with_faults(f);
        }
        let run = mpiq_bench::traced_preposted(cfg, point, 1 << 20, spec.threads);
        if run.dropped > 0 {
            eprintln!("fig5: trace ring overflowed, {} records dropped", run.dropped);
        }
        if let Some(path) = &cli.common.trace_out {
            std::fs::write(path, &run.chrome_json).expect("write trace");
            eprintln!("fig5: wrote {} trace records ({} config) to {path}", run.records, v.label());
        }
        if cli.common.metrics {
            eprintln!("{}", run.metrics_text);
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
