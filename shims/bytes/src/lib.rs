//! Minimal offline shim for the `bytes` crate.
//!
//! Provides the subset of the real crate's API this workspace uses: an
//! immutable, cheaply clonable byte buffer. Clones share the underlying
//! allocation via `Arc`; equality and hashing are by content.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Wrap a static slice. The shim copies it once; the real crate
    /// borrows it, but the observable behavior is identical.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Arc::from(bytes))
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Create a buffer holding `self[begin..end]`.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.0.len(),
        };
        Bytes(Arc::from(&self.0[start..end]))
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0[..] == other.0[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.0[..] == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
        assert_eq!(Bytes::from(vec![1u8, 2, 3]).to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn clones_share_and_compare_by_content() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..2], b"he");
    }

    #[test]
    fn slicing() {
        let a = Bytes::from_static(b"abcdef");
        assert_eq!(a.slice(1..4), Bytes::from_static(b"bcd"));
        assert_eq!(a.slice(..), a);
    }
}
