//! `cargo bench` entry that regenerates every paper artifact in reduced
//! form and asserts the headline *shapes* (who wins, where crossovers
//! fall), then reports the key numbers through Criterion so regressions
//! in the modeled latencies show up as benchmark changes.
//!
//! Full-resolution regeneration lives in the binaries:
//! `fig5`, `fig6`, `table4`, `table5`, `breakeven`.

use criterion::{criterion_group, criterion_main, Criterion};
use mpiq_bench::{preposted_latency, unexpected_latency, NicVariant, PrepostedPoint, UnexpectedPoint};
use mpiq_fpga::{estimate, paper_table, Variant};

fn artifact_tables(_c: &mut Criterion) {
    // Tables IV & V: every configuration within tolerance of the paper.
    for variant in [Variant::PostedReceive, Variant::Unexpected] {
        for row in paper_table(variant) {
            let e = estimate(variant, row.total_cells, row.block_size);
            let lut_err = (e.luts as f64 - row.luts as f64).abs() / row.luts as f64;
            let ff_err = (e.ffs as f64 - row.ffs as f64).abs() / row.ffs as f64;
            assert!(lut_err < 0.01 && ff_err < 0.01, "table mismatch: {row:?}");
            assert_eq!(e.latency, row.latency);
        }
    }
    eprintln!("tables IV/V: all 12 configurations within 1% of published LUT/FF counts");
}

fn artifact_fig5_shape(_c: &mut Criterion) {
    let lat = |v: NicVariant, q: usize| {
        preposted_latency(
            v,
            PrepostedPoint {
                queue_len: q,
                fraction: 1.0,
                msg_size: 0,
            },
        )
        .latency
    };
    let b0 = lat(NicVariant::Baseline, 0);
    let b300 = lat(NicVariant::Baseline, 300);
    let a0 = lat(NicVariant::Alpu256, 0);
    let a250 = lat(NicVariant::Alpu256, 250); // within the 256-cell capacity
    let a300 = lat(NicVariant::Alpu256, 300); // past capacity: tail search
    assert!(b300 > b0, "baseline must grow with queue length");
    assert!(
        a250.saturating_sub(a0) < mpiq_dessim::Time::from_ns(200),
        "ALPU-256 must stay flat within its capacity"
    );
    assert!(a300 * 2 < b300, "ALPU must win decisively at depth 300");
    eprintln!(
        "fig5 shape: baseline {} -> {}, alpu256 {} -> {} -> {} (queue 0 -> 250 -> 300)",
        b0, b300, a0, a250, a300
    );
}

fn artifact_fig6_shape(_c: &mut Criterion) {
    let lat = |v: NicVariant, u: usize| {
        unexpected_latency(
            v,
            UnexpectedPoint {
                queue_len: u,
                msg_size: 64,
            },
        )
        .latency
    };
    let b20 = lat(NicVariant::Baseline, 20);
    let a20 = lat(NicVariant::Alpu128, 20);
    let b250 = lat(NicVariant::Baseline, 250);
    let a250 = lat(NicVariant::Alpu128, 250);
    // Short queues: no advantage (within the flight-time window).
    assert!(a20.saturating_sub(b20) < mpiq_dessim::Time::from_us(1));
    // Long queues: clear advantage.
    assert!(a250 + mpiq_dessim::Time::from_us(1) < b250);
    eprintln!(
        "fig6 shape: at 20 entries baseline {} vs alpu {}, at 250 entries {} vs {}",
        b20, a20, b250, a250
    );
}

criterion_group!(
    artifacts,
    artifact_tables,
    artifact_fig5_shape,
    artifact_fig6_shape
);
criterion_main!(artifacts);
