//! Scaling bench: wall-clock speedup of the sharded engine vs worker
//! threads, on a ≥16-rank incast soak — and the repo's tracked perf
//! trajectory.
//!
//! ```text
//! cargo run --release -p mpiq-bench --bin scaling -- [--senders 16] [--msgs 64]
//!     [--size 512] [--thread-counts 1,2,4] [--scenarios incast,hetero]
//!     [--out BENCH_scaling.json] [--check BENCH_scaling.json] [--tolerance 25]
//! ```
//!
//! Two wire profiles exercise the window planner:
//!
//! * `incast` — uniform 200 ns wires. Every cross-shard edge has the
//!   same lookahead, so the adaptive and global planners pick similar
//!   windows; this row tracks raw engine throughput.
//! * `hetero` — the same incast over 1 µs wires with one 10 ns edge
//!   (nodes 1↔2). The global planner must shrink *every* window to the
//!   worst edge; the adaptive per-edge planner only constrains the two
//!   shards touching it. This row is the headline win.
//!
//! Each (scenario, policy) pair runs at every `--thread-counts` entry
//! and its statistics dump is byte-compared against the pair's
//! one-thread run — the engine's determinism contract makes any
//! divergence a hard error. Speedup is relative to the first thread
//! count of the same pair; only the wall clock may change.
//!
//! `--out PATH` writes the full document (code version stamp, config,
//! one row per run). The repo tracks `BENCH_scaling.json` at the root:
//! regenerate it with `--out BENCH_scaling.json` after perf-relevant
//! changes. `--check PATH` loads such a document and fails (exit 1)
//! when any current adaptive row's events/sec drops more than
//! `--tolerance` percent below the same (scenario, threads) row of the
//! baseline — CI runs both flags in one invocation.
//!
//! This bench measures *wall clock*, so its results are never memoized
//! (`BenchSpec::cacheable`): a `--server ADDR` submission re-runs on
//! the daemon every time, and `--check` always gates fresh timings.

use mpiq_bench::cli::Cli;
use mpiq_bench::jsonlint::{self, Json};
use mpiq_bench::report::{json_f64, json_str};
use mpiq_bench::service;
use mpiq_bench::spec::{flags, BenchSpec, ResultRow, RunSpec};

/// `git rev-parse --short HEAD`, or `unknown` outside a checkout.
fn code_version() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Render the tracked document. Nested (header + rows), so the file
/// carries its own provenance; validated by `jsonlint` before writing.
fn render(rows: &[ResultRow], senders: u32, msgs: u32, size: u32, seed: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"scaling\",\n");
    out.push_str(&format!("  \"version\": {},\n", json_str(&code_version())));
    out.push_str(&format!(
        "  \"config\": {{\"senders\": {senders}, \"msgs\": {msgs}, \"size\": {size}, \"seed\": {seed}}},\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"scenario\": {}, \"policy\": {}, \"threads\": {}, \"wall_ms\": {}, \
             \"events\": {}, \"events_per_sec\": {}, \"speedup\": {}}}{comma}\n",
            json_str(&r.text("scenario").unwrap_or_default()),
            json_str(&r.text("policy").unwrap_or_default()),
            r.num("threads").unwrap_or(0.0) as u64,
            json_f64(r.num("wall_ms").unwrap_or(0.0)),
            r.num("events").unwrap_or(0.0) as u64,
            json_f64(r.num("events_per_sec").unwrap_or(0.0)),
            json_f64(r.num("speedup").unwrap_or(0.0)),
        ));
    }
    out.push_str("  ]\n}\n");
    jsonlint::validate(&out).expect("scaling emitted invalid JSON");
    out
}

/// Compare the current adaptive rows against a baseline document.
/// Returns the failures (empty = pass). Baseline rows with no matching
/// current run (different thread list) are skipped; a baseline that
/// matches nothing at all is an error, because the gate would be
/// vacuous.
fn check_baseline(
    baseline: &str,
    rows: &[ResultRow],
    tolerance_pct: f64,
) -> Result<Vec<String>, String> {
    let doc = jsonlint::parse(baseline).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let base_rows = doc
        .get("rows")
        .and_then(Json::as_array)
        .ok_or("baseline has no `rows` array")?;
    let base_version = doc.get("version").and_then(Json::as_str).unwrap_or("?");
    let mut failures = Vec::new();
    let mut matched = 0usize;
    for r in rows.iter().filter(|r| r.text("policy").as_deref() == Some("adaptive")) {
        let scenario = r.text("scenario").unwrap_or_default();
        let threads = r.num("threads").unwrap_or(0.0) as u64;
        let events_per_sec = r.num("events_per_sec").unwrap_or(0.0);
        let Some(base) = base_rows.iter().find(|b| {
            b.get("scenario").and_then(Json::as_str) == Some(scenario.as_str())
                && b.get("policy").and_then(Json::as_str) == r.text("policy").as_deref()
                && b.get("threads").and_then(Json::as_u64) == Some(threads)
        }) else {
            continue;
        };
        let base_eps = base
            .get("events_per_sec")
            .and_then(Json::as_f64)
            .ok_or_else(|| {
                format!("baseline row ({scenario}, {threads} threads) has no events_per_sec")
            })?;
        matched += 1;
        let floor = base_eps * (1.0 - tolerance_pct / 100.0);
        if events_per_sec < floor {
            failures.push(format!(
                "{} @ {} threads: {:.0} events/s is {:.0}% below baseline {:.0} (version {}, tolerance {}%)",
                scenario,
                threads,
                events_per_sec,
                (1.0 - events_per_sec / base_eps) * 100.0,
                base_eps,
                base_version,
                tolerance_pct,
            ));
        }
    }
    if matched == 0 {
        return Err("no baseline row matches any current (scenario, threads) — \
                    regenerate the baseline with --out"
            .to_string());
    }
    Ok(failures)
}

fn main() {
    let cli = Cli::parse("scaling", "sharded-engine speedup vs worker threads", flags("scaling"));
    let spec = RunSpec::from_cli("scaling", &cli).unwrap_or_else(|e| {
        eprintln!("scaling: {e}");
        std::process::exit(2);
    });
    let BenchSpec::Scaling { senders, msgs, size, .. } = spec.bench.clone() else { unreachable!() };
    let tolerance: f64 = cli.get("tolerance", 25.0);
    let seed = spec.seed.unwrap_or(1);

    eprintln!(
        "scaling: incast, {} ranks, {} msgs x {} B, seed {seed}, host has {} core(s)",
        senders + 1,
        msgs,
        size,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // `--out` writes the tracked baseline document, not plain rows, so
    // it is handled here instead of in `emit`.
    let result = service::run_for_cli("scaling", cli.common.server.as_deref(), &spec)
        .unwrap_or_else(|e| {
            eprintln!("scaling: {e}");
            std::process::exit(1);
        });
    let ok = service::emit(&result, None).expect("stdout");

    if let Some(path) = &cli.common.out {
        let doc = render(&result.rows, senders, msgs, size, seed);
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create output directory");
            }
        }
        std::fs::write(path, &doc).expect("write json");
        eprintln!("scaling: wrote {path}");
    }

    if let Some(path) = cli.get_str("check") {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("scaling: cannot read baseline {path}: {e}"));
        match check_baseline(&baseline, &result.rows, tolerance) {
            Ok(failures) if failures.is_empty() => {
                eprintln!("scaling: within {tolerance}% of baseline {path}");
            }
            Ok(failures) => {
                for f in &failures {
                    eprintln!("scaling: REGRESSION: {f}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("scaling: bad baseline {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
