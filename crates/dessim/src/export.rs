//! Export the trace ring and metrics as Chrome `chrome://tracing` JSON.
//!
//! The [Trace Event Format] is the de-facto interchange for timeline
//! viewers (`chrome://tracing`, Perfetto, Speedscope). We emit the JSON
//! object form: a `traceEvents` array plus an `otherData` bag carrying
//! the histogram/counter summary. Mapping:
//!
//! * each simulation component becomes a "thread" (`tid` = component id)
//!   named via a `ph:"M"` thread_name metadata event;
//! * trace events with a duration ([`TraceEvent::dur`]) become `ph:"X"`
//!   complete events spanning `[start, start+dur)`;
//! * [`TraceEvent::QueueOp`] becomes a `ph:"C"` counter event, so queue
//!   depth renders as a stacked area chart over time;
//! * everything else becomes a `ph:"i"` thread-scoped instant.
//!
//! Timestamps are microseconds (the format's unit) with picosecond
//! precision preserved in the fraction. The output is deterministic:
//! records are emitted in ring order, metrics in sorted key order.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::metrics::Metrics;
use crate::scheduler::Simulation;
use crate::shard::ShardedSim;
use crate::trace::{TraceEvent, TraceRing};

/// Escape a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Picoseconds rendered as a microsecond JSON number with the fraction
/// kept exact (`1_500` ps -> `0.0015`).
fn us(ps: u64) -> String {
    let whole = ps / 1_000_000;
    let frac = ps % 1_000_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        let s = format!("{whole}.{frac:06}");
        s.trim_end_matches('0').to_string()
    }
}

/// The display name and argument bag for one trace event.
fn describe(what: &TraceEvent) -> (String, String) {
    match what {
        TraceEvent::Note(s) => (esc(s), String::new()),
        TraceEvent::QueueOp { queue, op, depth } => (
            format!("{}.depth", queue.label()),
            format!("\"op\":\"{}\",\"depth\":{depth}", op.label()),
        ),
        TraceEvent::AlpuCommand {
            unit,
            kind,
            entries,
            ..
        } => (
            format!("alpu[{}] {}", unit.label(), kind.label()),
            format!("\"entries\":{entries}"),
        ),
        TraceEvent::AlpuResponse { unit, hit, .. } => (
            format!("alpu[{}] response", unit.label()),
            format!("\"hit\":{hit}"),
        ),
        TraceEvent::SwSearch {
            queue,
            source,
            entries,
            ..
        } => (
            format!("search[{}] {}", queue.label(), source.label()),
            format!("\"entries\":{entries}"),
        ),
        TraceEvent::LinkRetransmit {
            peer,
            frames,
            backoff,
        } => (
            "link retransmit".to_string(),
            format!(
                "\"peer\":{peer},\"frames\":{frames},\"backoff_ns\":{}",
                backoff.ns()
            ),
        ),
        TraceEvent::Quarantine { unit, engaged } => (
            format!(
                "alpu[{}] {}",
                unit.label(),
                if *engaged { "re-engage" } else { "quarantine" }
            ),
            format!("\"engaged\":{engaged}"),
        ),
        TraceEvent::Dma { dir, bytes, .. } => (
            format!("dma {}", dir.label()),
            format!("\"bytes\":{bytes}"),
        ),
        TraceEvent::HostCompletion { rank, cancelled } => (
            "completion".to_string(),
            format!("\"rank\":{rank},\"cancelled\":{cancelled}"),
        ),
        TraceEvent::ComponentFault { kind, node, peer } => (
            format!("fault {}", kind.label()),
            format!("\"node\":{node},\"peer\":{peer}"),
        ),
    }
}

/// Render the simulation's trace ring and metrics registry as a Chrome
/// trace JSON document. Works on any simulation; with tracing disabled
/// the `traceEvents` array holds only the thread-name metadata.
pub fn chrome_trace(sim: &Simulation) -> String {
    let names: Vec<String> = (0..sim.component_count())
        .map(|i| sim.name_of(crate::component::ComponentId(i as u32)).to_string())
        .collect();
    chrome_trace_parts(&names, sim.trace(), sim.metrics())
}

/// [`chrome_trace`] for a sharded simulation: per-shard rings are merged
/// into canonical order first (see [`TraceRing::merged`]), so the output
/// is byte-identical for any worker-thread count.
pub fn chrome_trace_sharded(sim: &ShardedSim) -> String {
    let names: Vec<String> = (0..sim.component_count())
        .map(|i| sim.name_of(crate::component::ComponentId(i as u32)).to_string())
        .collect();
    chrome_trace_parts(&names, &sim.trace_merged(), &sim.metrics_merged())
}

/// The exporter core, decoupled from which executive produced the parts:
/// component names (index = `tid`), a trace ring, and a metrics registry.
pub fn chrome_trace_parts(names: &[String], ring: &TraceRing, metrics: &Metrics) -> String {
    let mut events: Vec<String> = Vec::new();

    // One "thread" per component, named up front so viewers label lanes.
    for (i, name) in names.iter().enumerate() {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{i},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    for r in ring.records() {
        let tid = r.who.0;
        let ts = us(r.time.ps());
        let (name, args) = describe(&r.what);
        let args = if args.is_empty() {
            String::new()
        } else {
            format!(",\"args\":{{{args}}}")
        };
        match (&r.what, r.what.dur()) {
            (TraceEvent::QueueOp { .. }, _) => {
                // Counter events: Chrome plots each args key as a series.
                let TraceEvent::QueueOp { depth, .. } = r.what else {
                    unreachable!()
                };
                events.push(format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                     \"name\":\"{name}\",\"args\":{{\"depth\":{depth}}}}}"
                ));
            }
            (_, Some(dur)) => {
                events.push(format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                     \"dur\":{},\"name\":\"{name}\"{args}}}",
                    us(dur.ps())
                ));
            }
            (_, None) => {
                events.push(format!(
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\
                     \"s\":\"t\",\"name\":\"{name}\"{args}}}"
                ));
            }
        }
    }

    // Histogram / counter summary rides along in otherData, where viewers
    // show it as run metadata.
    let m = metrics;
    let mut other: Vec<String> = Vec::new();
    for (k, v) in m.counters() {
        other.push(format!("\"{}\":\"{v}\"", esc(k)));
    }
    for (k, h) in m.hists() {
        other.push(format!(
            "\"{}\":\"count={} mean_ns={:.1} max_ps={}\"",
            esc(k),
            h.count(),
            h.mean_ns(),
            h.max_ps()
        ));
    }

    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ns\",\"otherData\":{{{}}}}}\n",
        events.join(",\n"),
        other.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Component, Ctx};
    use crate::event::{Event, InPort, Payload};
    use crate::time::Time;
    use crate::trace::{DmaDir, QueueKind, QueueOpKind};

    #[test]
    fn us_preserves_picosecond_fractions() {
        assert_eq!(us(0), "0");
        assert_eq!(us(1_000_000), "1");
        assert_eq!(us(1_500), "0.0015");
        assert_eq!(us(123_456_789), "123.456789");
    }

    #[test]
    fn esc_escapes_controls_and_quotes() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    struct Emitter;
    impl Component for Emitter {
        fn on_event(&mut self, _ev: Event, ctx: &mut Ctx<'_>) {
            ctx.trace(TraceEvent::QueueOp {
                queue: QueueKind::Posted,
                op: QueueOpKind::Push,
                depth: 2,
            });
            ctx.trace(TraceEvent::Dma {
                dir: DmaDir::Rx,
                bytes: 64,
                dur: Time::from_ns(7),
            });
            ctx.trace("plain note");
        }
    }

    #[test]
    fn exporter_emits_counter_duration_and_instant_events() {
        let mut sim = Simulation::new(0);
        let c = sim.add_component("nic0", Emitter);
        sim.enable_tracing(16);
        sim.post(c, InPort(0), Payload::empty(), Time::from_ns(3));
        sim.run();
        let json = chrome_trace(&sim);
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("\"args\":{\"name\":\"nic0\"}"), "{json}");
        assert!(
            json.contains("\"ph\":\"C\"") && json.contains("posted.depth"),
            "{json}"
        );
        assert!(
            json.contains("\"ph\":\"X\"") && json.contains("\"dur\":0.007"),
            "{json}"
        );
        assert!(
            json.contains("\"ph\":\"i\"") && json.contains("plain note"),
            "{json}"
        );
        // All events sit at ts = 3 ns = 0.003 us.
        assert!(json.contains("\"ts\":0.003"), "{json}");
    }

    #[test]
    fn exporter_summarizes_metrics_in_other_data() {
        let mut sim = Simulation::new(0);
        sim.add_component("nic0", Emitter);
        sim.enable_metrics();
        sim.metrics_mut().add("nic0.ops", 5);
        sim.metrics_mut().record("nic0.lat", Time::from_ns(4));
        let json = chrome_trace(&sim);
        assert!(json.contains("\"nic0.ops\":\"5\""), "{json}");
        assert!(json.contains("\"nic0.lat\":\"count=1"), "{json}");
    }

    #[test]
    fn exporter_without_tracing_is_still_valid_shell() {
        let mut sim = Simulation::new(0);
        sim.add_component("a", Emitter);
        let json = chrome_trace(&sim);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"displayTimeUnit\":\"ns\""));
    }
}
