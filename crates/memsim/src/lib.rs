//! `mpiq-memsim` — timing models for the memory hierarchy.
//!
//! The paper's system simulation "modeled the memory hierarchy to include
//! contention for open rows on the DRAM chips" (§V-B). This crate provides
//! that hierarchy as *timing-only* models: caches track tags and
//! replacement state, DRAM tracks per-bank open rows and busy windows, and
//! each access returns a latency. Functional data stays in ordinary Rust
//! data structures owned by the higher layers — the simulation only needs
//! to know *how long* memory operations take, not to store bytes twice.
//!
//! Layering:
//!
//! - [`cache::Cache`] — one set-associative, write-back/write-allocate,
//!   LRU cache level.
//! - [`dram::Dram`] — banked DRAM with open-row state and contention.
//! - [`hierarchy::MemSystem`] — composes L1 (+ optional L2) + DRAM into
//!   the two memory systems of Table III (host CPU and NIC processor).

pub mod cache;
pub mod dram;
pub mod hierarchy;

pub use cache::{Cache, CacheConfig};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{Access, MemSystem, MemSystemConfig};
