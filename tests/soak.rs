//! Soak test: sustained random traffic over every NIC configuration —
//! the long-haul stress that shakes out rare interleavings (insert-race
//! windows, FIFO pressure, rendezvous token reuse, multi-process
//! routing). Deterministic: failures reproduce from the seed.

use mpiq::dessim::SimRng;
use mpiq::mpi::script::{mark_log, status_log};
use mpiq::mpi::{AppProgram, Cluster, ClusterConfig, Script};
use mpiq::nic::firmware::check_invariants;
use mpiq::nic::NicConfig;

/// Build a heavy random-but-race-free workload: `count` uniquely tagged
/// messages among `ranks` ranks, mixed sizes, mixed posting orders, some
/// cancels of never-matching receives sprinkled in.
fn soak_once(nic: NicConfig, ranks: u32, count: usize, seed: u64) -> u64 {
    let mut rng = SimRng::new(seed);
    #[derive(Clone, Copy)]
    struct Msg {
        src: u32,
        dst: u32,
        tag: u16,
        len: u32,
        wildcard: bool,
    }
    let msgs: Vec<Msg> = (0..count)
        .map(|i| {
            let src = rng.gen_range(ranks as u64) as u32;
            let dst = (src + 1 + rng.gen_range(ranks as u64 - 1) as u32) % ranks;
            Msg {
                src,
                dst,
                tag: 100 + i as u16,
                len: [0u32, 32, 512, 3000, 10_000][rng.gen_range(5) as usize],
                wildcard: rng.gen_bool(0.35),
            }
        })
        .collect();

    let logs: Vec<_> = (0..ranks).map(|_| status_log()).collect();
    let programs: Vec<Box<dyn AppProgram>> = (0..ranks)
        .map(|me| {
            let mut b = Script::builder();
            let mut my_recvs: Vec<&Msg> = msgs.iter().filter(|m| m.dst == me).collect();
            rng.shuffle(&mut my_recvs);
            let mut recv_slots = Vec::new();
            for m in &my_recvs {
                let src = (!m.wildcard).then_some(m.src as u16);
                recv_slots.push(b.irecv(src, Some(m.tag), m.len));
            }
            // Decoys: receives that never match, cancelled later — keeps
            // tombstone machinery under load on the ALPU configs.
            let decoys: Vec<usize> = (0..6)
                .map(|d| b.irecv(Some(0), Some(30_000 + d as u16 + me as u16 * 16), 0))
                .collect();
            b.barrier();
            let mut my_sends: Vec<&Msg> = msgs.iter().filter(|m| m.src == me).collect();
            rng.shuffle(&mut my_sends);
            let mut send_slots = Vec::new();
            for m in my_sends {
                send_slots.push(b.isend(m.dst, m.tag, m.len));
            }
            for (i, slot) in recv_slots.iter().enumerate() {
                b.wait(*slot);
                b.status(*slot, i as u32);
            }
            b.wait_all(send_slots);
            for d in decoys {
                b.cancel(d);
            }
            b.barrier();
            Box::new(
                b.build(mark_log())
                    .with_status_log(logs[me as usize].clone()),
            ) as Box<dyn AppProgram>
        })
        .collect();

    let mut cluster = Cluster::new(ClusterConfig::new(nic), programs);
    cluster.run();
    for r in 0..ranks {
        check_invariants(cluster.nic(r).firmware());
    }
    let received: usize = logs.iter().map(|l| l.borrow().len()).sum();
    assert_eq!(received, count, "every message must be received exactly once");
    // A cheap digest of all statuses for determinism checks.
    let mut digest = 0u64;
    for l in &logs {
        for &(id, st) in l.borrow().iter() {
            digest = digest
                .wrapping_mul(0x100000001b3)
                .wrapping_add((id as u64) << 32 | (st.tag as u64) << 16 | st.source as u64)
                .wrapping_add(st.len as u64);
        }
    }
    digest
}

#[test]
fn soak_all_configs() {
    for (i, nic) in [
        NicConfig::baseline(),
        NicConfig::with_alpus(128),
        NicConfig::with_alpus(256),
        NicConfig::with_hash(32),
    ]
    .into_iter()
    .enumerate()
    {
        soak_once(nic, 4, 160, 0xBEEF + i as u64);
    }
}

#[test]
fn soak_multiprocess() {
    let mut nic = NicConfig::with_alpus(128);
    nic.ranks_per_node = 2;
    soak_once(nic, 6, 140, 0xCAFE);
}

#[test]
fn soak_is_deterministic() {
    let a = soak_once(NicConfig::with_alpus(128), 3, 90, 7);
    let b = soak_once(NicConfig::with_alpus(128), 3, 90, 7);
    assert_eq!(a, b);
}

#[test]
fn soak_small_alpu_overflow() {
    // An 8-cell ALPU against ~100 messages: constant overflow into the
    // software tail, constant insert sessions.
    let nic = NicConfig::with_alpus(8);
    soak_once(nic, 3, 100, 0xD00D);
}
