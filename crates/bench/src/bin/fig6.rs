//! Regenerates Figure 6: message latency (including receive-posting time)
//! vs. unexpected-queue length for the three NIC configurations.
//!
//! ```text
//! cargo run --release -p mpiq-bench --bin fig6 -- [--max-queue 400] [--step 20]
//!     [--sizes 64,1024] [--plot] [--threads 0] [--sweep-threads 0]
//!     [--out results/fig6.json] [--server 127.0.0.1:7171]
//!     [--faults seed=N,drop=P[,dup=P,corrupt=P,flip=P,stall=P]]
//!     [--trace-out trace.json] [--metrics]
//! ```
//!
//! The flags assemble a [`RunSpec`] that either executes locally
//! ([`mpiq_bench::exec`]) or, with `--server ADDR`, is submitted to a
//! running `simd` daemon — identical bytes on stdout either way.
//!
//! `--trace-out PATH` runs one instrumented exchange (alpu128, deepest
//! queue) and writes a Chrome `chrome://tracing` timeline to PATH;
//! `--metrics` dumps its latency histograms to stderr. The CSV on
//! stdout is unaffected by either flag; both always run locally.

use mpiq_bench::cli::Cli;
use mpiq_bench::spec::{flags, BenchSpec, RunSpec};
use mpiq_bench::{service, NicVariant, UnexpectedPoint};

fn main() {
    let cli = Cli::parse("fig6", "Fig. 6: latency vs. unexpected-queue depth", flags("fig6"));
    let spec = RunSpec::from_cli("fig6", &cli).unwrap_or_else(|e| {
        eprintln!("fig6: {e}");
        std::process::exit(2);
    });
    let BenchSpec::Fig6 { max_queue, step, sizes } = spec.bench.clone() else { unreachable!() };

    let points = NicVariant::ALL.len() * sizes.len() * (max_queue / step.max(1) + 1);
    eprintln!("fig6: {} points, engine threads {}", points, spec.threads);

    let result = service::run_for_cli("fig6", cli.common.server.as_deref(), &spec)
        .unwrap_or_else(|e| {
            eprintln!("fig6: {e}");
            std::process::exit(1);
        });
    let ok = service::emit(&result, cli.common.out.as_deref().map(std::path::Path::new))
        .expect("write json");

    if cli.has("plot") {
        let mut series = Vec::new();
        for (v, glyph) in NicVariant::ALL.iter().zip(['B', 'a', 'A']) {
            series.push(mpiq_bench::ascii_plot::Series {
                label: v.label().to_string(),
                glyph,
                points: result
                    .rows
                    .iter()
                    .filter(|r| {
                        r.text("config").as_deref() == Some(v.label())
                            && r.num("msg_size") == Some(sizes[0] as f64)
                    })
                    .map(|r| (r.num("queue_len").unwrap_or(0.0), r.num("latency_us").unwrap_or(0.0)))
                    .collect(),
            });
        }
        eprintln!(
            "
Fig. 6: latency vs unexpected-queue length ({} B messages)
{}",
            sizes[0],
            mpiq_bench::ascii_plot::render(&series, 72, 20, "unexpected queue length", "latency (us)")
        );
    }

    if cli.common.trace_out.is_some() || cli.common.metrics {
        let mut cfg = NicVariant::Alpu128.config();
        if let Some(f) = cli.common.faults {
            cfg = cfg.with_faults(f);
        }
        let run = mpiq_bench::traced_unexpected(
            cfg,
            UnexpectedPoint { queue_len: max_queue, msg_size: sizes[0] },
            1 << 20,
            spec.threads,
        );
        if run.dropped > 0 {
            eprintln!("fig6: trace ring overflowed, {} records dropped", run.dropped);
        }
        if let Some(path) = &cli.common.trace_out {
            std::fs::write(path, &run.chrome_json).expect("write trace");
            eprintln!("fig6: wrote {} trace records to {path}", run.records);
        }
        if cli.common.metrics {
            eprintln!("{}", run.metrics_text);
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
