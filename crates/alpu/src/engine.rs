//! The full ALPU: chained blocks + control state machine + FIFOs
//! (§III-C, Fig. 3; command set of Table I; responses of Table II).
//!
//! The engine is cycle-stepped: [`Alpu::tick`] advances one clock of the
//! unit's own clock domain. The controlling state machine has the three
//! states of Fig. 3 — **Match**, **Read Command**, **Insert** — with these
//! behaviors:
//!
//! * **Match**: headers from the header FIFO are matched one at a time
//!   (each occupying the full, non-overlapped pipeline). Successes delete
//!   the matched cell and report `MATCH SUCCESS`; failures report
//!   `MATCH FAILURE`. A pending command interrupts the flow after the
//!   current match completes.
//! * **Read Command**: only `RESET` and `START INSERT` are valid here;
//!   anything else is discarded. `START INSERT` replies
//!   `START ACKNOWLEDGE` with the number of free cells and enters Insert.
//! * **Insert**: `INSERT` commands are accepted every other cycle.
//!   Between inserts, matching continues — but a **failed** match is *held
//!   for retry* rather than reported (an in-flight insert might satisfy
//!   it), and it blocks the header stream to preserve ordering. A held
//!   probe is retried after each insert; `STOP INSERT` performs one final
//!   retry before any `MATCH FAILURE` may be reported. This is why "MATCH
//!   FAILURE cannot occur between a START ACKNOWLEDGE and a STOP INSERT"
//!   (§IV-A).
//!
//! Hole compaction runs concurrently on every cycle (see
//! [`crate::block::CellArray::compact_step`]).

use crate::block::CellArray;
use crate::match_types::{Entry, Probe, Tag};
use crate::timing::PipelineTiming;
use std::collections::VecDeque;

/// Which queue this ALPU accelerates; selects the cell variant
/// (Fig. 2a vs 2b).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AlpuKind {
    /// Posted-receive ALPU: masks stored per cell.
    #[default]
    PostedReceive,
    /// Unexpected-message ALPU: mask supplied with each probe.
    Unexpected,
}

/// Commands the processor can issue (Table I).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Command {
    /// Enter insert mode (answered by [`Response::StartAck`]).
    StartInsert,
    /// Insert a new entry (valid only in insert mode).
    Insert(Entry),
    /// Leave insert mode.
    StopInsert,
    /// Clear all entries.
    Reset,
}

/// Responses the ALPU produces (Table II).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Response {
    /// Insert mode entered; `free` entries may be safely inserted.
    StartAck {
        /// Number of free cells at the time insert mode was entered.
        free: u32,
    },
    /// A header matched; `tag` is the stored software cookie.
    MatchSuccess {
        /// The matched entry's tag.
        tag: Tag,
    },
    /// A header matched nothing (never emitted between
    /// `StartAck` and the completion of `STOP INSERT`).
    MatchFailure,
}

/// Error pushing into a full FIFO.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PushError;

/// The coarse state of the controlling state machine (Fig. 3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum State {
    /// Accepting and matching headers.
    Match,
    /// Decoding a command.
    ReadCommand,
    /// Insert mode.
    Insert,
}

/// Static configuration of one ALPU instance.
#[derive(Clone, Copy, Debug)]
pub struct AlpuConfig {
    /// Total cells (power of two).
    pub total_cells: usize,
    /// Cells per block (power of two, ≤ total).
    pub block_size: usize,
    /// Posted-receive or unexpected variant.
    pub kind: AlpuKind,
    /// Header FIFO depth.
    pub header_fifo_depth: usize,
    /// Command FIFO depth.
    pub command_fifo_depth: usize,
    /// Result FIFO depth.
    pub result_fifo_depth: usize,
}

impl AlpuConfig {
    /// Default configuration. The FIFO depths are generous: the firmware
    /// drains one response per header, but arrival *bursts* can outrun
    /// the processor by hundreds of messages, and a real NIC would
    /// backpressure the Rx path into the network's flow control — a
    /// mechanism outside this model. Deep FIFOs stand in for that
    /// backpressure; unit tests exercise the flow-control behavior with
    /// explicitly small depths.
    pub fn new(total_cells: usize, block_size: usize, kind: AlpuKind) -> AlpuConfig {
        AlpuConfig {
            total_cells,
            block_size,
            kind,
            header_fifo_depth: 4096,
            command_fifo_depth: 16,
            result_fifo_depth: 4096,
        }
    }

    /// Derived pipeline timing.
    pub fn timing(&self) -> PipelineTiming {
        PipelineTiming::for_geometry(self.total_cells, self.block_size)
    }
}

/// The operation currently occupying the (non-overlapped) pipeline.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// A match for `probe`. `final_retry` marks the post-STOP-INSERT
    /// retry whose failure must be reported.
    Match { probe: Probe, final_retry: bool },
    /// Decode one command from the command FIFO.
    DecodeCommand,
    /// Insert `entry` into cell 0.
    Insert { entry: Entry },
}

/// Counters for experiments and assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AlpuStats {
    /// Matches attempted (including held retries).
    pub matches_attempted: u64,
    /// Successful matches reported.
    pub match_successes: u64,
    /// Failures reported.
    pub match_failures: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Cycles spent with the pipeline busy.
    pub busy_cycles: u64,
    /// Total cycles ticked.
    pub cycles: u64,
    /// Result-FIFO occupancy highwater.
    pub result_fifo_highwater: usize,
    /// Cycles lost to injected pipeline stalls.
    pub stall_cycles: u64,
}

/// One Associative List Processing Unit.
#[derive(Clone, Debug)]
pub struct Alpu {
    cfg: AlpuConfig,
    timing: PipelineTiming,
    array: CellArray,
    state: State,
    op: Option<Op>,
    op_cycles_left: u64,
    /// Failed probe held for retry during insert mode. While present it is
    /// the head of the header stream: younger headers wait behind it.
    held: Option<Probe>,
    header_fifo: VecDeque<Probe>,
    cmd_fifo: VecDeque<Command>,
    result_fifo: VecDeque<Response>,
    stats: AlpuStats,
    /// Injected-fault state: remaining cycles of a transient pipeline
    /// stall. While nonzero, ticks advance the clock and nothing else —
    /// no compaction, no scheduling, no op progress.
    stall_cycles: u64,
    /// Sticky parity-error flag: set when fault injection corrupts a
    /// stored cell. Models the parity check over the cell state that the
    /// firmware reads to decide the unit can no longer be trusted. Cleared
    /// only by [`Alpu::hard_reset`].
    parity_error: bool,
}

impl Alpu {
    /// Build an idle, empty unit in the Match state.
    pub fn new(cfg: AlpuConfig) -> Alpu {
        Alpu {
            timing: cfg.timing(),
            array: CellArray::new(cfg.total_cells, cfg.block_size, cfg.kind),
            state: State::Match,
            op: None,
            op_cycles_left: 0,
            held: None,
            header_fifo: VecDeque::new(),
            cmd_fifo: VecDeque::new(),
            result_fifo: VecDeque::new(),
            stats: AlpuStats::default(),
            stall_cycles: 0,
            parity_error: false,
            cfg,
        }
    }

    /// The unit's configuration.
    pub fn config(&self) -> &AlpuConfig {
        &self.cfg
    }

    /// Current FSM state.
    pub fn state(&self) -> State {
        self.state
    }

    /// Number of valid entries in the array.
    pub fn occupied(&self) -> usize {
        self.array.occupied()
    }

    /// Number of free cells.
    pub fn free(&self) -> usize {
        self.array.free()
    }

    /// Statistics so far.
    pub fn stats(&self) -> AlpuStats {
        self.stats
    }

    /// Direct (read-only) view of the cell array, for diagnostics.
    pub fn array(&self) -> &CellArray {
        &self.array
    }

    /// Enqueue an incoming header copy (hardware path from the Rx FIFO).
    pub fn push_header(&mut self, p: Probe) -> Result<(), PushError> {
        if self.header_fifo.len() >= self.cfg.header_fifo_depth {
            return Err(PushError);
        }
        self.header_fifo.push_back(p);
        Ok(())
    }

    /// Enqueue a command (processor path over the local bus).
    pub fn push_command(&mut self, c: Command) -> Result<(), PushError> {
        if self.cmd_fifo.len() >= self.cfg.command_fifo_depth {
            return Err(PushError);
        }
        self.cmd_fifo.push_back(c);
        Ok(())
    }

    /// Pop the oldest response, if any (processor path over the local bus).
    pub fn pop_response(&mut self) -> Option<Response> {
        self.result_fifo.pop_front()
    }

    /// Peek the response queue depth.
    pub fn responses_pending(&self) -> usize {
        self.result_fifo.len()
    }

    /// Headers waiting (including a held probe).
    pub fn headers_pending(&self) -> usize {
        self.header_fifo.len() + usize::from(self.held.is_some())
    }

    /// Commands waiting.
    pub fn commands_pending(&self) -> usize {
        self.cmd_fifo.len()
    }

    /// True when no probe activity is outstanding: no queued headers, no
    /// held probe, no unread responses, and no match in the pipeline.
    ///
    /// Firmware must only open an insert session against a
    /// probe-quiescent unit: a MATCH FAILURE computed *before* the
    /// session's inserts must be paired with the pre-insert tail, so the
    /// processor "must be handled correctly" (§IV-C) — the simplest
    /// correct handling is to drain all probe traffic first.
    pub fn probe_quiescent(&self) -> bool {
        self.header_fifo.is_empty()
            && self.held.is_none()
            && self.result_fifo.is_empty()
            && !matches!(self.op, Some(Op::Match { .. }))
    }

    /// Fault injection: freeze the control pipeline for `cycles` clocks.
    /// Stall cycles accumulate if injected while one is already pending.
    pub fn inject_stall(&mut self, cycles: u64) {
        self.stall_cycles += cycles;
    }

    /// Fault injection: flip a bit of a stored match word (see
    /// [`CellArray::flip_word_bit`]) and latch the parity-error flag.
    /// Returns whether a cell was actually corrupted (no-op when empty).
    pub fn inject_bit_flip(&mut self, sel: u64, bit: u32) -> bool {
        let hit = self.array.flip_word_bit(sel, bit);
        if hit {
            self.parity_error = true;
        }
        hit
    }

    /// Sticky parity verdict over the cell state. Once set, match results
    /// are untrustworthy until a [`Alpu::hard_reset`].
    pub fn parity_error(&self) -> bool {
        self.parity_error
    }

    /// The reset pin: wipe the unit back to its power-on state — cell
    /// array, all three FIFOs, any in-flight or held operation, pending
    /// stall, and the parity flag. Unlike [`Command::Reset`] this does not
    /// travel through the command FIFO, so it works even when the FIFO is
    /// wedged. Cumulative stats survive (they are observation, not state).
    pub fn hard_reset(&mut self) {
        self.array.reset();
        self.header_fifo.clear();
        self.cmd_fifo.clear();
        self.result_fifo.clear();
        self.held = None;
        self.op = None;
        self.op_cycles_left = 0;
        self.stall_cycles = 0;
        self.parity_error = false;
        self.state = State::Match;
    }

    /// True when the unit has nothing to do: pipeline empty, no queued
    /// work, array fully compacted.
    pub fn idle(&self) -> bool {
        self.stall_cycles == 0
            && self.op.is_none()
            && self.held.is_none()
            && self.header_fifo.is_empty()
            && self.cmd_fifo.is_empty()
            && self.array.is_compact()
            && self.state == State::Match
    }

    /// Advance `n` cycles, bit-identically to calling [`Alpu::tick`] `n`
    /// times, but fast-forwarding analytically through stretches where
    /// per-cycle stepping cannot observe anything:
    ///
    /// * **Idle** (and externally *frozen* — result-FIFO backpressure or
    ///   insert mode with an empty command FIFO): nothing evolves, so the
    ///   remaining cycles are consumed in O(1).
    /// * **Op in flight over a compact array**: compaction is a no-op and
    ///   only the countdown decrements, so the pipeline jumps straight to
    ///   the op's completion cycle.
    ///
    /// Only while the array holds a migrating hole does this fall back to
    /// per-cycle stepping, because compaction moves data every clock.
    pub fn advance(&mut self, n: u64) {
        let mut left = n;
        while left > 0 {
            if self.stall_cycles > 0 {
                // An injected stall: each stalled tick only moves the
                // clock and the countdown, so the whole stretch collapses
                // into one jump.
                let jump = left.min(self.stall_cycles);
                self.stall_cycles -= jump;
                self.stats.cycles += jump;
                self.stats.stall_cycles += jump;
                left -= jump;
                continue;
            }
            if self.idle() {
                self.stats.cycles += left;
                return;
            }
            if !self.array.is_compact() {
                // A hole is migrating: compaction does real work each
                // clock, so this cycle must be stepped faithfully.
                self.tick();
                left -= 1;
                continue;
            }
            if self.op.is_some() {
                // Compact array: compact_step is a no-op and the only
                // per-cycle change is the countdown. Jump to completion.
                let jump = left.min(self.op_cycles_left);
                self.stats.cycles += jump;
                self.stats.busy_cycles += jump;
                self.op_cycles_left -= jump;
                left -= jump;
                if self.op_cycles_left == 0 {
                    let op = self.op.take().expect("counted down a live op");
                    self.complete(op);
                }
                continue;
            }
            if self.frozen() {
                // Nothing schedulable: the unit is stalled on external
                // flow control (result FIFO full, or insert mode waiting
                // on the processor). No internal transition can occur
                // until the environment acts, so the remaining cycles
                // only advance the clock.
                self.stats.cycles += left;
                return;
            }
            // Pipeline empty and something is eligible: one real tick
            // lets the scheduler start it.
            self.tick();
            left -= 1;
        }
    }

    /// True when, with the pipeline empty and the array compact, a tick
    /// would change nothing but the cycle counter: the scheduler (see
    /// [`Alpu::tick`]'s call to `schedule`) has no eligible work. This is
    /// exactly the per-state condition under which `schedule` starts no
    /// operation and performs no state transition.
    fn frozen(&self) -> bool {
        debug_assert!(self.op.is_none());
        let result_full = self.result_fifo.len() >= self.cfg.result_fifo_depth;
        match self.state {
            // Defensive: the ReadCommand arm of `schedule` flips back to
            // Match, which is a transition — never frozen.
            State::ReadCommand => false,
            State::Match => {
                self.cmd_fifo.is_empty() && (result_full || self.header_fifo.is_empty())
            }
            State::Insert => {
                self.cmd_fifo.is_empty()
                    && (result_full || (self.held.is_none() && self.header_fifo.is_empty()))
            }
        }
    }

    /// Run until idle (test/driver convenience); returns cycles consumed.
    pub fn run_to_idle(&mut self, max: u64) -> u64 {
        let mut n = 0;
        while !self.idle() && n < max {
            self.tick();
            n += 1;
        }
        assert!(self.idle(), "ALPU failed to go idle within {max} cycles");
        n
    }

    /// Advance exactly one clock cycle.
    pub fn tick(&mut self) {
        if self.stall_cycles > 0 {
            // Stalled: the clock advances, nothing else does.
            self.stall_cycles -= 1;
            self.stats.cycles += 1;
            self.stats.stall_cycles += 1;
            return;
        }
        self.stats.cycles += 1;
        // Compaction logic runs every cycle, concurrent with the pipeline.
        self.array.compact_step();

        // If the pipeline is free, choose the next operation; it consumes
        // this cycle as its first.
        if self.op.is_none() {
            self.schedule();
        }
        if self.op.is_some() {
            self.stats.busy_cycles += 1;
            self.op_cycles_left -= 1;
            if self.op_cycles_left == 0 {
                let op = self.op.take().expect("busy implies op");
                self.complete(op);
            }
        }
    }

    /// Pick the next operation according to the FSM state.
    fn schedule(&mut self) {
        match self.state {
            State::Match => {
                if !self.cmd_fifo.is_empty() {
                    self.state = State::ReadCommand;
                    self.start(Op::DecodeCommand, self.timing.command_cycles);
                } else if let Some(probe) = self.next_probe() {
                    self.start_match(probe, false);
                }
            }
            State::ReadCommand => {
                // Only reached if a decode was interrupted conceptually;
                // decode ops are started from Match, so nothing to do.
                self.state = State::Match;
            }
            State::Insert => {
                if let Some(&cmd) = self.cmd_fifo.front() {
                    match cmd {
                        Command::Insert(entry) => {
                            self.cmd_fifo.pop_front();
                            // Inserts are accepted every other cycle; the
                            // 2-cycle op models that initiation interval.
                            self.start(Op::Insert { entry }, self.timing.insert_interval);
                        }
                        Command::StopInsert => {
                            self.cmd_fifo.pop_front();
                            if let Some(probe) = self.held.take() {
                                // Final retry; a failure now is reportable.
                                self.start_match(probe, true);
                            }
                            self.state = State::Match;
                        }
                        Command::Reset => {
                            self.cmd_fifo.pop_front();
                            self.do_reset();
                        }
                        Command::StartInsert => {
                            // Already in insert mode; discard.
                            self.cmd_fifo.pop_front();
                        }
                    }
                } else if self.result_fifo.len() < self.cfg.result_fifo_depth {
                    // Between inserts, matching continues.
                    if let Some(probe) = self.held.take() {
                        self.start_match(probe, false);
                    } else if let Some(probe) = self.next_probe() {
                        self.start_match(probe, false);
                    }
                }
            }
        }
    }

    /// Take the next header to match, honoring result-FIFO flow control.
    fn next_probe(&mut self) -> Option<Probe> {
        if self.result_fifo.len() >= self.cfg.result_fifo_depth {
            return None; // stall: nowhere to put the result
        }
        self.header_fifo.pop_front()
    }

    fn start(&mut self, op: Op, cycles: u64) {
        debug_assert!(self.op.is_none());
        debug_assert!(cycles > 0);
        self.op = Some(op);
        self.op_cycles_left = cycles;
    }

    fn start_match(&mut self, probe: Probe, final_retry: bool) {
        self.stats.matches_attempted += 1;
        self.start(Op::Match { probe, final_retry }, self.timing.match_latency);
    }

    fn complete(&mut self, op: Op) {
        match op {
            Op::Match { probe, final_retry } => match self.array.match_probe(probe) {
                Some((loc, tag)) => {
                    self.array.delete_shift(loc);
                    self.stats.match_successes += 1;
                    self.push_result(Response::MatchSuccess { tag });
                }
                None => {
                    if self.state == State::Insert && !final_retry {
                        // Hold for retry: an in-flight insert may match it.
                        self.held = Some(probe);
                    } else {
                        self.stats.match_failures += 1;
                        self.push_result(Response::MatchFailure);
                    }
                }
            },
            Op::DecodeCommand => {
                let cmd = self.cmd_fifo.pop_front();
                self.state = State::Match;
                match cmd {
                    Some(Command::Reset) => self.do_reset(),
                    Some(Command::StartInsert) => {
                        self.push_result(Response::StartAck {
                            free: self.array.free() as u32,
                        });
                        self.state = State::Insert;
                    }
                    // "Other commands are discarded" (§III-C, footnote 3).
                    Some(Command::Insert(_)) | Some(Command::StopInsert) | None => {}
                }
            }
            Op::Insert { entry } => {
                if self.array.insert(entry) {
                    self.stats.inserts += 1;
                } else {
                    // Cell 0 not yet compacted away — retry next cycle.
                    // Flow control (the advertised free count) makes this
                    // transient.
                    self.start(Op::Insert { entry }, 1);
                }
            }
        }
    }

    fn do_reset(&mut self) {
        self.array.reset();
        if self.held.take().is_some() {
            // The entries a held probe was waiting for are gone; its
            // failure becomes reportable immediately.
            self.stats.match_failures += 1;
            self.push_result(Response::MatchFailure);
        }
        self.state = State::Match;
    }

    fn push_result(&mut self, r: Response) {
        self.result_fifo.push_back(r);
        self.stats.result_fifo_highwater =
            self.stats.result_fifo_highwater.max(self.result_fifo.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::match_types::MatchWord;

    fn small() -> Alpu {
        Alpu::new(AlpuConfig::new(16, 4, AlpuKind::PostedReceive))
    }

    fn recv(tagv: u16, cookie: Tag) -> Entry {
        Entry::mpi_recv(1, Some(0), Some(tagv), cookie)
    }

    fn hdr(tagv: u16) -> Probe {
        Probe::exact(MatchWord::mpi(1, 0, tagv))
    }

    /// Drive a full insert session: StartInsert, entries, StopInsert.
    fn load(a: &mut Alpu, entries: &[Entry]) {
        a.push_command(Command::StartInsert).unwrap();
        for &e in entries {
            a.push_command(Command::Insert(e)).unwrap();
        }
        a.push_command(Command::StopInsert).unwrap();
        a.run_to_idle(10_000);
        assert!(matches!(
            a.pop_response(),
            Some(Response::StartAck { .. })
        ));
    }

    #[test]
    fn start_insert_acks_with_free_count() {
        let mut a = small();
        a.push_command(Command::StartInsert).unwrap();
        a.advance(2);
        assert!(matches!(a.pop_response(), Some(Response::StartAck { free: 16 })));
        assert_eq!(a.state(), State::Insert);
    }

    #[test]
    fn match_on_empty_unit_fails() {
        let mut a = small();
        a.push_header(hdr(1)).unwrap();
        a.advance(20);
        assert_eq!(a.pop_response(), Some(Response::MatchFailure));
    }

    #[test]
    fn insert_then_match_succeeds_and_deletes() {
        let mut a = small();
        load(&mut a, &[recv(5, 1000)]);
        assert_eq!(a.occupied(), 1);
        a.push_header(hdr(5)).unwrap();
        a.advance(20);
        assert_eq!(a.pop_response(), Some(Response::MatchSuccess { tag: 1000 }));
        assert_eq!(a.occupied(), 0);
        // Second identical header now fails.
        a.push_header(hdr(5)).unwrap();
        a.advance(20);
        assert_eq!(a.pop_response(), Some(Response::MatchFailure));
    }

    #[test]
    fn ordering_first_posted_wins() {
        let mut a = small();
        load(&mut a, &[recv(5, 1), recv(5, 2), recv(5, 3)]);
        for want in [1, 2, 3] {
            a.push_header(hdr(5)).unwrap();
            a.advance(20);
            assert_eq!(a.pop_response(), Some(Response::MatchSuccess { tag: want }));
        }
    }

    #[test]
    fn match_latency_is_pipeline_cycles() {
        let mut a = small(); // 16 cells / 4-block = 4 blocks -> 6 cycles
        load(&mut a, &[recv(5, 1)]);
        a.push_header(hdr(5)).unwrap();
        // After 5 cycles: still in flight. After 6: done.
        a.advance(5);
        assert_eq!(a.pop_response(), None);
        a.advance(1);
        assert_eq!(a.pop_response(), Some(Response::MatchSuccess { tag: 1 }));
    }

    #[test]
    fn back_to_back_matches_every_latency_cycles() {
        let mut a = small();
        load(&mut a, &[recv(1, 1), recv(2, 2), recv(3, 3)]);
        a.push_header(hdr(1)).unwrap();
        a.push_header(hdr(2)).unwrap();
        a.push_header(hdr(3)).unwrap();
        a.advance(18); // 3 matches x 6 cycles
        assert_eq!(a.responses_pending(), 3);
    }

    #[test]
    fn failure_held_during_insert_mode_until_stop() {
        let mut a = small();
        a.push_command(Command::StartInsert).unwrap();
        a.advance(4);
        assert!(matches!(a.pop_response(), Some(Response::StartAck { .. })));
        // A header that matches nothing arrives during insert mode.
        a.push_header(hdr(9)).unwrap();
        a.advance(40);
        assert_eq!(
            a.pop_response(),
            None,
            "MATCH FAILURE must not be reported during insert mode"
        );
        // Now insert the matching receive: the held probe retries and hits.
        a.push_command(Command::Insert(recv(9, 77))).unwrap();
        a.advance(40);
        assert_eq!(a.pop_response(), Some(Response::MatchSuccess { tag: 77 }));
        a.push_command(Command::StopInsert).unwrap();
        a.advance(10);
        assert_eq!(a.state(), State::Match);
    }

    #[test]
    fn held_failure_reported_after_stop_insert() {
        let mut a = small();
        a.push_command(Command::StartInsert).unwrap();
        a.push_command(Command::Insert(recv(1, 1))).unwrap();
        a.advance(10);
        a.push_header(hdr(9)).unwrap(); // will not match
        a.advance(40);
        assert_eq!(a.pop_response(), Some(Response::StartAck { free: 16 }));
        assert_eq!(a.pop_response(), None, "failure held");
        a.push_command(Command::StopInsert).unwrap();
        a.advance(20);
        assert_eq!(a.pop_response(), Some(Response::MatchFailure));
    }

    #[test]
    fn held_probe_blocks_younger_headers() {
        // Ordering: header A (no match) held; header B (would match) must
        // not be processed before A's fate is settled; after an insert
        // satisfies A, B proceeds.
        let mut a = small();
        a.push_command(Command::StartInsert).unwrap();
        a.advance(4);
        a.pop_response(); // StartAck
        a.push_header(hdr(1)).unwrap(); // A: no match yet
        a.push_header(hdr(2)).unwrap(); // B
        a.advance(40);
        assert_eq!(a.pop_response(), None);
        // Insert receives for both; A must match first (tag 10), then B.
        a.push_command(Command::Insert(recv(1, 10))).unwrap();
        a.push_command(Command::Insert(recv(2, 20))).unwrap();
        a.push_command(Command::StopInsert).unwrap();
        a.advance(100);
        assert_eq!(a.pop_response(), Some(Response::MatchSuccess { tag: 10 }));
        assert_eq!(a.pop_response(), Some(Response::MatchSuccess { tag: 20 }));
        assert_eq!(a.pop_response(), None);
    }

    #[test]
    fn insert_commands_discarded_outside_insert_mode() {
        let mut a = small();
        a.push_command(Command::Insert(recv(1, 1))).unwrap();
        a.push_command(Command::StopInsert).unwrap();
        a.advance(20);
        assert_eq!(a.occupied(), 0, "INSERT without START INSERT discarded");
        assert_eq!(a.pop_response(), None);
    }

    #[test]
    fn reset_clears_entries() {
        let mut a = small();
        load(&mut a, &[recv(1, 1), recv(2, 2)]);
        a.push_command(Command::Reset).unwrap();
        a.advance(10);
        assert_eq!(a.occupied(), 0);
        a.push_header(hdr(1)).unwrap();
        a.advance(20);
        assert_eq!(a.pop_response(), Some(Response::MatchFailure));
    }

    #[test]
    fn insert_rate_is_every_other_cycle() {
        let mut a = small();
        a.push_command(Command::StartInsert).unwrap();
        a.advance(2); // decode + ack
        for i in 0..8 {
            a.push_command(Command::Insert(recv(i, i as Tag))).unwrap();
        }
        // 8 inserts at 2 cycles each = 16 cycles (plus nothing else queued).
        a.advance(16);
        assert_eq!(a.occupied(), 8);
    }

    #[test]
    fn capacity_flow_control_free_count() {
        let mut a = Alpu::new(AlpuConfig::new(4, 4, AlpuKind::PostedReceive));
        load(&mut a, &[recv(1, 1), recv(2, 2), recv(3, 3)]);
        a.push_command(Command::StartInsert).unwrap();
        a.advance(4);
        assert_eq!(a.pop_response(), Some(Response::StartAck { free: 1 }));
        a.push_command(Command::Insert(recv(4, 4))).unwrap();
        a.push_command(Command::StopInsert).unwrap();
        a.advance(50);
        assert_eq!(a.occupied(), 4);
        assert_eq!(a.free(), 0);
    }

    #[test]
    fn result_fifo_flow_control_stalls_matching() {
        let mut cfg = AlpuConfig::new(16, 4, AlpuKind::PostedReceive);
        cfg.result_fifo_depth = 2;
        let mut a = Alpu::new(cfg);
        for _ in 0..4 {
            a.push_header(hdr(9)).unwrap();
        }
        a.advance(200);
        // Only 2 results fit; the other 2 headers wait.
        assert_eq!(a.responses_pending(), 2);
        assert_eq!(a.headers_pending(), 2);
        a.pop_response();
        a.pop_response();
        a.advance(200);
        assert_eq!(a.responses_pending(), 2);
    }

    #[test]
    fn header_fifo_overflow_reports_error() {
        let mut cfg = AlpuConfig::new(16, 4, AlpuKind::PostedReceive);
        cfg.header_fifo_depth = 2;
        let mut a = Alpu::new(cfg);
        a.push_header(hdr(1)).unwrap();
        a.push_header(hdr(2)).unwrap();
        assert_eq!(a.push_header(hdr(3)), Err(PushError));
    }

    #[test]
    fn unexpected_kind_end_to_end() {
        let mut a = Alpu::new(AlpuConfig::new(16, 4, AlpuKind::Unexpected));
        // Store arrived headers.
        a.push_command(Command::StartInsert).unwrap();
        a.push_command(Command::Insert(Entry::mpi_header(3, 7, 11, 500)))
            .unwrap();
        a.push_command(Command::StopInsert).unwrap();
        a.advance(50);
        a.pop_response(); // StartAck
        // Probe with a wildcard-source receive.
        a.push_header(Probe::recv(3, None, Some(11))).unwrap();
        a.advance(20);
        assert_eq!(a.pop_response(), Some(Response::MatchSuccess { tag: 500 }));
    }

    #[test]
    fn idle_fast_path_skips_cycles() {
        let mut a = small();
        a.advance(1_000_000);
        assert_eq!(a.stats().cycles, 1_000_000);
        assert_eq!(a.stats().busy_cycles, 0);
    }

    #[test]
    fn injected_stall_delays_match_completion() {
        let mut a = small();
        load(&mut a, &[recv(5, 1)]);
        a.inject_stall(10);
        a.push_header(hdr(5)).unwrap();
        // 10 stalled cycles + 6-cycle match: not done at 15, done at 16.
        a.advance(15);
        assert_eq!(a.pop_response(), None);
        a.advance(1);
        assert_eq!(a.pop_response(), Some(Response::MatchSuccess { tag: 1 }));
        assert_eq!(a.stats().stall_cycles, 10);
    }

    #[test]
    fn stall_advance_matches_per_cycle_ticks() {
        let build = |a: &mut Alpu| {
            load(a, &[recv(1, 1), recv(2, 2)]);
            a.inject_stall(7);
            a.push_header(hdr(1)).unwrap();
            a.push_header(hdr(9)).unwrap();
            a.push_command(Command::StartInsert).unwrap();
        };
        let mut fast = small();
        let mut slow = small();
        build(&mut fast);
        build(&mut slow);
        fast.advance(100);
        for _ in 0..100 {
            slow.tick();
        }
        assert_eq!(fast.stats(), slow.stats());
        assert_eq!(fast.state(), slow.state());
        assert_eq!(fast.responses_pending(), slow.responses_pending());
        assert_eq!(
            fast.array().entries_oldest_first(),
            slow.array().entries_oldest_first()
        );
    }

    #[test]
    fn bit_flip_latches_parity_and_breaks_matching() {
        let mut a = small();
        load(&mut a, &[recv(5, 1)]);
        assert!(!a.parity_error());
        assert!(a.inject_bit_flip(0, 3)); // flips a tag bit of the entry
        assert!(a.parity_error());
        a.push_header(hdr(5)).unwrap();
        a.advance(20);
        // The stored word no longer equals the header: a false miss.
        assert_eq!(a.pop_response(), Some(Response::MatchFailure));
    }

    #[test]
    fn bit_flip_on_empty_unit_is_a_no_op() {
        let mut a = small();
        assert!(!a.inject_bit_flip(7, 7));
        assert!(!a.parity_error());
    }

    #[test]
    fn hard_reset_restores_power_on_state() {
        let mut a = small();
        load(&mut a, &[recv(1, 1), recv(2, 2)]);
        a.inject_bit_flip(0, 0);
        a.inject_stall(1000);
        a.push_header(hdr(1)).unwrap();
        a.push_command(Command::StartInsert).unwrap();
        a.hard_reset();
        assert!(a.idle());
        assert!(!a.parity_error());
        assert_eq!(a.occupied(), 0);
        assert_eq!(a.headers_pending(), 0);
        assert_eq!(a.commands_pending(), 0);
        assert_eq!(a.responses_pending(), 0);
        assert_eq!(a.state(), State::Match);
        // The unit is usable again immediately.
        load(&mut a, &[recv(3, 3)]);
        a.push_header(hdr(3)).unwrap();
        a.advance(20);
        assert_eq!(a.pop_response(), Some(Response::MatchSuccess { tag: 3 }));
    }

    #[test]
    fn stats_track_operations() {
        let mut a = small();
        load(&mut a, &[recv(1, 1)]);
        a.push_header(hdr(1)).unwrap();
        a.push_header(hdr(2)).unwrap();
        a.advance(50);
        let s = a.stats();
        assert_eq!(s.inserts, 1);
        assert_eq!(s.match_successes, 1);
        assert_eq!(s.match_failures, 1);
        assert!(s.matches_attempted >= 2);
        assert!(s.busy_cycles > 0);
    }
}
