//! The basic matching cell (§III-A, Fig. 2a/2b).
//!
//! A cell stores match bits, mask bits (posted-receive variant only), a
//! valid bit, and the software tag. Its combinational outputs are the
//! match-AND-valid bit, the tag (muxed upward by priority logic), and the
//! valid bit for flow control. Data shifts cell-to-cell under enables
//! computed by the block (see [`crate::block`]).

use crate::engine::AlpuKind;
use crate::match_types::{masked_eq, Entry, Probe};

/// One hardware cell: either empty (valid=0) or holding an [`Entry`].
///
/// Modeled as `Option<Entry>` — `None` is an invalid cell, which by
/// construction "cannot produce a valid match".
pub type Cell = Option<Entry>;

/// The combinational match function of one cell.
///
/// * Posted-receive variant (Fig. 2a): the **stored** mask marks the
///   receive's wildcard bits; the probe is an explicit incoming header.
/// * Unexpected-message variant (Fig. 2b): the mask arrives **with the
///   probe** (the receive being posted); stored entries are explicit
///   headers.
#[inline]
pub fn cell_matches(kind: AlpuKind, entry: &Entry, probe: Probe) -> bool {
    match kind {
        AlpuKind::PostedReceive => masked_eq(entry.word, probe.word, entry.mask),
        AlpuKind::Unexpected => masked_eq(entry.word, probe.word, probe.mask),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::match_types::{MatchWord, Tag};

    fn recv(ctx: u16, src: Option<u16>, tag: Option<u16>, t: Tag) -> Entry {
        Entry::mpi_recv(ctx, src, tag, t)
    }

    #[test]
    fn posted_cell_uses_stored_mask() {
        let e = recv(4, None, Some(9), 1); // ANY_SOURCE stored
        assert!(cell_matches(
            AlpuKind::PostedReceive,
            &e,
            Probe::exact(MatchWord::mpi(4, 123, 9))
        ));
        assert!(!cell_matches(
            AlpuKind::PostedReceive,
            &e,
            Probe::exact(MatchWord::mpi(4, 123, 8))
        ));
    }

    #[test]
    fn posted_cell_ignores_probe_mask() {
        // Headers are always explicit; even if a probe carried a mask, the
        // posted variant must not consult it.
        let e = recv(4, Some(1), Some(9), 1);
        let p = Probe {
            word: MatchWord::mpi(4, 2, 9),
            mask: crate::match_types::MaskWord::ANY_SOURCE,
        };
        assert!(!cell_matches(AlpuKind::PostedReceive, &e, p));
    }

    #[test]
    fn unexpected_cell_uses_probe_mask() {
        let hdr = Entry::mpi_header(4, 123, 9, 2);
        assert!(cell_matches(
            AlpuKind::Unexpected,
            &hdr,
            Probe::recv(4, None, Some(9))
        ));
        assert!(!cell_matches(
            AlpuKind::Unexpected,
            &hdr,
            Probe::recv(4, Some(99), Some(9))
        ));
        assert!(cell_matches(
            AlpuKind::Unexpected,
            &hdr,
            Probe::recv(4, Some(123), None)
        ));
    }

    #[test]
    fn empty_cell_is_none() {
        let c: Cell = None;
        assert!(c.is_none());
    }
}
