//! The §VII future-work direction, runnable: Portals-style building
//! blocks (match entries with ignore bits, memory descriptors with
//! managed offsets, event queues) with the ALPU's matching semantics
//! underneath.
//!
//! ```text
//! cargo run --example portals_put
//! ```

use mpiq::portals::md::MdOptions;
use mpiq::portals::me::{MatchEntry, MeOptions};
use mpiq::portals::{EventKind, MdHandle, Network, ProcessId};

fn main() {
    let mut net = Network::new();
    let client = net.add(ProcessId { nid: 0, pid: 0 });
    let server = net.add(ProcessId { nid: 1, pid: 0 });

    // The server exposes a request buffer at portal index 2: a persistent
    // match entry with locally managed offsets — every matching put
    // appends. The low 8 match bits are ignored (a Portals idiom: one ME
    // covers a whole family of request kinds).
    let req_md = net.ni_mut(server).md_bind(64, MdOptions {
        manage_local_offset: true,
        ..MdOptions::default()
    });
    net.ni_mut(server).me_attach(
        2,
        MatchEntry {
            source: None,
            match_bits: 0x4000,
            ignore_bits: 0x00FF,
            options: MeOptions {
                use_once: false,
                ..MeOptions::default()
            },
            md: req_md,
        },
    );

    println!("server exposes a 64 B request region at portal 2,");
    println!("match bits 0x4000 with the low byte ignored\n");

    for (bits, body) in [
        (0x4001u64, &b"PUT-A "[..]),
        (0x40FFu64, &b"PUT-B "[..]),
        (0x4002u64, &b"PUT-C"[..]),
    ] {
        let ok = net.put(client, server, 2, bits, 0, bytes::Bytes::copy_from_slice(body));
        println!("client put bits {bits:#06x} ({} B): matched = {ok}", body.len());
    }
    // A put outside the ignore window is dropped.
    let ok = net.put(client, server, 2, 0x5001, 0, bytes::Bytes::from_static(b"nope"));
    println!("client put bits 0x5001: matched = {ok} (dropped — outside the mask)\n");

    let region = region_string(&net, server, req_md);
    println!("server request region now holds: {region:?}");
    println!("server events:");
    while let Some(ev) = net.ni_mut(server).eq.poll() {
        println!(
            "  {:?} from nid {} bits {:#06x} offset {} len {}",
            ev.kind, ev.initiator.nid, ev.match_bits, ev.offset, ev.length
        );
    }
    let drops = net.ni(server).dropped();
    println!("dropped operations: {drops}");
    assert_eq!(drops, 1);

    println!("\nThis is the match problem the ALPU solves in hardware: ordered");
    println!("first-match with per-bit ignore masks — see");
    println!("crates/portals/tests/alpu_backed.rs for the equivalence proof.");
    let _ = EventKind::PutEnd;
}

fn region_string(net: &Network, server: ProcessId, md: MdHandle) -> String {
    let bytes = net.ni(server).md_bytes(md).unwrap();
    String::from_utf8_lossy(&bytes[..18]).into_owned()
}
