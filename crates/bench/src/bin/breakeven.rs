//! The §VI-B break-even ablation: at what posted-queue length does the
//! ALPU overhead pay for itself? The paper reports a break-even of about
//! 5 entries and an ~80 ns zero-length penalty, suggesting "the MPI
//! library could be optimized to not use the ALPU until the list is at
//! least 5 entries long".
//!
//! ```text
//! cargo run -p mpiq-bench --bin breakeven -- [MAX_QUEUE] [--server ADDR]
//! ```

use mpiq_bench::cli::Cli;
use mpiq_bench::service;
use mpiq_bench::spec::{flags, RunSpec};

fn main() {
    let cli = Cli::parse(
        "breakeven",
        "§VI-B break-even: queue length where the ALPU pays for itself (positional: MAX_QUEUE)",
        flags("breakeven"),
    );
    let spec = RunSpec::from_cli("breakeven", &cli).unwrap_or_else(|e| {
        eprintln!("breakeven: {e}");
        std::process::exit(2);
    });
    let result = service::run_for_cli("breakeven", cli.common.server.as_deref(), &spec)
        .unwrap_or_else(|e| {
            eprintln!("breakeven: {e}");
            std::process::exit(1);
        });
    let ok = service::emit(&result, cli.common.out.as_deref().map(std::path::Path::new))
        .expect("write json");
    if !ok {
        std::process::exit(1);
    }
}
