//! Master/worker with an unexpected-message flood.
//!
//! Workers all report results to rank 0 before it has posted any
//! receives, so the master's unexpected queue fills with one message per
//! worker per round. The master then drains with `MPI_ANY_SOURCE`
//! receives — each posting must search the unexpected queue, which is
//! the access pattern Fig. 6 measures.
//!
//! ```text
//! cargo run --release --example unexpected_flood
//! ```

use mpiq::dessim::Time;
use mpiq::mpi::script::mark_log;
use mpiq::mpi::{AppProgram, Cluster, ClusterConfig, Script};
use mpiq::nic::NicConfig;

const WORKERS: u32 = 8;
const ROUNDS: u32 = 24;
const RESULT_BYTES: u32 = 256;

fn run(nic: NicConfig) -> (Time, u64) {
    let marks = mark_log();
    let mut programs: Vec<Box<dyn AppProgram>> = Vec::new();

    // Rank 0: master. Lets the flood land, then drains newest-tag-first
    // so every posting searches past the still-parked older messages.
    let mut master = Script::builder();
    master.barrier();
    master.sleep(Time::from_us(400)); // flood arrives & ALPU inserts settle
    master.mark(0);
    for round in (0..ROUNDS).rev() {
        for _ in 0..WORKERS {
            master.recv(None, Some(round as u16), RESULT_BYTES);
        }
    }
    master.mark(1);
    programs.push(Box::new(master.build(marks.clone())));

    // Workers: fire all results immediately, then stop.
    for _w in 1..=WORKERS {
        let mut b = Script::builder();
        let mut slots = Vec::new();
        for round in 0..ROUNDS {
            slots.push(b.isend(0, round as u16, RESULT_BYTES));
        }
        b.wait_all(slots);
        b.barrier();
        programs.push(Box::new(b.build(mark_log())));
    }

    let mut cluster = Cluster::new(ClusterConfig::new(nic), programs);
    cluster.run();
    let m = marks.borrow();
    let drain = m[1].1 - m[0].1;
    let traversed = cluster.nic(0).firmware().stats().unexpected_entries_traversed;
    (drain, traversed)
}

fn main() {
    println!(
        "master/worker flood: {WORKERS} workers x {ROUNDS} rounds of {RESULT_BYTES} B results"
    );
    println!(
        "land unexpected on rank 0 (peak unexpected queue: {} entries), then drain:\n",
        WORKERS * ROUNDS
    );
    for (label, nic) in [
        ("baseline", NicConfig::baseline()),
        ("ALPU-128", NicConfig::with_alpus(128)),
        ("ALPU-256", NicConfig::with_alpus(256)),
    ] {
        let (t, traversed) = run(nic);
        println!(
            "  {label:>9}: drain time {:>8.2} us, software search visited {traversed} entries",
            t.as_us_f64()
        );
    }
    println!("\nThe unexpected-message ALPU answers the reverse lookup (receive");
    println!("probing stored headers) in hardware, so the master's postings stop");
    println!("paying for the queue walk.");
}
