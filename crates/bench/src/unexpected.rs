//! The unexpected-message queue benchmark (§V-A, second benchmark).
//!
//! Only two degrees of freedom: the unexpected queue length and the
//! message size. Unlike a classic latency test, the time to *post the
//! receive* is charged to the measured latency — that posting must search
//! the unexpected queue past all the fillers. The benchmark is
//! "conservative": posting overlaps with message flight (§VI-C), so the
//! ALPU's advantage only emerges once the software search outgrows the
//! flight-time window (the ≈70-entry crossover of Fig. 6).

use crate::faultstats::FaultCounters;
use crate::NicVariant;
use mpiq_dessim::Time;
use mpiq_mpi::script::mark_log;
use mpiq_mpi::{AppProgram, Cluster, ClusterConfig, Script};

/// One point of the Fig. 6 parameter space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnexpectedPoint {
    /// Number of never-matched messages parked on the unexpected queue.
    pub queue_len: usize,
    /// Payload bytes of the fillers and the probe message.
    pub msg_size: u32,
}

const PING_TAG: u16 = 7;
const PONG_TAG: u16 = 8;
const FILLER_TAG: u16 = 10_000;
/// Timed iterations (the first two warm up and are discarded).
const ITERS: u32 = 8;
const WARMUP: u32 = 2;

/// Measurements for one point.
#[derive(Clone, Copy, Debug)]
pub struct UnexpectedResult {
    /// Mean receiver-side latency: post-receive through completion,
    /// including the unexpected-queue search.
    pub latency: Time,
    /// Unexpected-queue entries visited by software search (whole run).
    pub sw_traversed: u64,
    /// Fault-injection and recovery totals (all zero on fault-free runs).
    pub faults: FaultCounters,
}

/// Run one point.
pub fn unexpected_latency(variant: NicVariant, p: UnexpectedPoint) -> UnexpectedResult {
    unexpected_latency_cfg(variant.config(), p, 0)
}

/// [`unexpected_latency`] with an explicit NIC configuration.
pub fn unexpected_latency_cfg(
    nic: mpiq_nic::NicConfig,
    p: UnexpectedPoint,
    parallelism: usize,
) -> UnexpectedResult {
    let marks = mark_log();
    let u = p.queue_len;

    // Rank 0: sender. Park `u` fillers on the receiver, settle, then
    // ping-pong: send ping i as soon as pong i-1 arrives.
    let mut b0 = Script::builder();
    let mut filler_slots = Vec::new();
    for i in 0..u {
        filler_slots.push(b0.isend(1, FILLER_TAG + (i % 30_000) as u16, p.msg_size));
    }
    b0.wait_all(filler_slots);
    // The barrier message trails the fillers on the same (src, dst) pair,
    // so its arrival implies every filler was processed (MPI ordering).
    b0.barrier();
    b0.sleep(Time::from_us(500)); // ALPU insert sessions drain
    for i in 0..ITERS {
        b0.send(1, PING_TAG.wrapping_add((i as u16) << 5), p.msg_size);
        b0.recv(Some(1), Some(PONG_TAG), 0);
    }
    let p0 = b0.build(mark_log());

    // Rank 1: receiver. The timed loop: mark, post the receive (searches
    // the u-entry unexpected queue), wait, mark, reply.
    let mut b1 = Script::builder();
    b1.barrier();
    b1.sleep(Time::from_us(500));
    for i in 0..ITERS {
        b1.mark(2 * i);
        b1.recv(Some(0), Some(PING_TAG.wrapping_add((i as u16) << 5)), p.msg_size);
        b1.mark(2 * i + 1);
        b1.send(0, PONG_TAG, 0);
    }
    let p1 = b1.build(marks.clone());

    let mut cluster = Cluster::new(
        ClusterConfig::builder(nic).parallelism(parallelism).build(),
        vec![
            Box::new(p0) as Box<dyn AppProgram>,
            Box::new(p1) as Box<dyn AppProgram>,
        ],
    );
    cluster.run();

    let m = marks.borrow();
    assert_eq!(m.len(), (2 * ITERS) as usize);
    let mut total = Time::ZERO;
    for i in WARMUP..ITERS {
        let start = m[(2 * i) as usize].1;
        let end = m[(2 * i + 1) as usize].1;
        total += end - start;
    }
    let fw = cluster.nic(1).firmware().stats();
    UnexpectedResult {
        latency: total / (ITERS - WARMUP) as u64,
        sw_traversed: fw.unexpected_entries_traversed,
        faults: FaultCounters::collect(&cluster),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat(v: NicVariant, u: usize) -> Time {
        unexpected_latency(
            v,
            UnexpectedPoint {
                queue_len: u,
                msg_size: 64,
            },
        )
        .latency
    }

    #[test]
    fn short_queues_show_no_alpu_advantage() {
        // §VI-C: "with short unexpected message queues, the ALPU appears
        // to show a small loss" — within a microsecond-scale flight
        // window both configs measure about the same.
        let base = lat(NicVariant::Baseline, 10);
        let alpu = lat(NicVariant::Alpu256, 10);
        let diff = if alpu > base { alpu - base } else { base - alpu };
        assert!(
            diff < Time::from_us(1),
            "short-queue gap too large: baseline {base}, alpu {alpu}"
        );
    }

    #[test]
    fn long_queues_show_clear_alpu_advantage() {
        let base = lat(NicVariant::Baseline, 250);
        let alpu = lat(NicVariant::Alpu256, 250);
        assert!(
            alpu + Time::from_us(1) < base,
            "at 250 entries ALPU {alpu} must clearly beat baseline {base}"
        );
    }

    #[test]
    fn baseline_latency_grows_with_queue_length() {
        let l50 = lat(NicVariant::Baseline, 50);
        let l400 = lat(NicVariant::Baseline, 400);
        assert!(l400 > l50 + Time::from_us(2), "{l50} -> {l400}");
    }

    #[test]
    fn receiver_search_is_offloaded_with_alpu() {
        let base = unexpected_latency(
            NicVariant::Baseline,
            UnexpectedPoint {
                queue_len: 100,
                msg_size: 64,
            },
        );
        let alpu = unexpected_latency(
            NicVariant::Alpu128,
            UnexpectedPoint {
                queue_len: 100,
                msg_size: 64,
            },
        );
        assert!(
            alpu.sw_traversed * 5 < base.sw_traversed,
            "ALPU should offload the search: {} vs {}",
            alpu.sw_traversed,
            base.sw_traversed
        );
    }
}
