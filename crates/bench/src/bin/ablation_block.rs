//! Ablation: ALPU block-size design space (§III-B / §V-D).
//!
//! Block size trades area and clock against pipeline depth: bigger blocks
//! mean fewer inter-block tree levels (6-cycle pipelines) but deeper
//! intra-block muxing (slower clock) and wider space-available scans
//! (more LUTs). This harness combines the FPGA estimator with the
//! pipeline model to report the *effective match service time* for every
//! geometry, on the FPGA and with the paper's conservative 5x ASIC
//! projection.
//!
//! ```text
//! cargo run -p mpiq-bench --bin ablation_block -- [--server ADDR]
//! ```

use mpiq_bench::cli::Cli;
use mpiq_bench::service;
use mpiq_bench::spec::{flags, RunSpec};

fn main() {
    let cli = Cli::parse(
        "ablation_block",
        "ALPU block-size design space: area, clock, and match service time",
        flags("ablation_block"),
    );
    let spec = RunSpec::from_cli("ablation_block", &cli).unwrap_or_else(|e| {
        eprintln!("ablation_block: {e}");
        std::process::exit(2);
    });
    let result = service::run_for_cli("ablation_block", cli.common.server.as_deref(), &spec)
        .unwrap_or_else(|e| {
            eprintln!("ablation_block: {e}");
            std::process::exit(1);
        });
    let ok = service::emit(&result, cli.common.out.as_deref().map(std::path::Path::new))
        .expect("write json");
    if !ok {
        std::process::exit(1);
    }
}
