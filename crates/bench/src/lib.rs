//! `mpiq-bench` — workload generators and experiment harnesses.
//!
//! Reimplements the two microbenchmarks of §V-A (from Underwood &
//! Brightwell, ICPP 2004) on the simulated cluster, plus the sweep
//! drivers that regenerate every figure and table of the paper's
//! evaluation:
//!
//! | Paper artifact | Harness |
//! |---|---|
//! | Fig. 5 (a–f) | [`preposted`] sweeps via `--bin fig5` |
//! | Fig. 6 | [`unexpected`] sweeps via `--bin fig6` |
//! | Table IV / V | [`mpiq_fpga::tables`] via `--bin table4` / `--bin table5` |
//! | break-even analysis (§VI-B) | [`preposted`] fine sweep via `--bin breakeven` |

pub mod appsim;
pub mod ascii_plot;
pub mod cli;
pub mod exec;
pub mod faultstats;
pub mod gap;
pub mod jsonlint;
pub mod obs;
pub mod postloop;
pub mod preposted;
pub mod report;
pub mod service;
pub mod soak;
pub mod spec;
pub mod sweep;
pub mod unexpected;
pub mod wildcard;

pub use faultstats::FaultCounters;
pub use obs::{traced_preposted, traced_unexpected, TracedRun};
pub use postloop::{postloop_rtt, PostLoopPoint};
pub use preposted::{preposted_latency, preposted_latency_cfg, PrepostedPoint};
pub use soak::{run_soak, Scenario, SoakConfig, SoakOutcome};
pub use sweep::run_parallel;
pub use unexpected::{unexpected_latency, unexpected_latency_cfg, UnexpectedPoint};

use mpiq_nic::NicConfig;

/// The three NIC configurations of the evaluation (§VI).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NicVariant {
    /// Embedded processor only (Red Storm-like).
    Baseline,
    /// Baseline + 128-entry ALPUs.
    Alpu128,
    /// Baseline + 256-entry ALPUs.
    Alpu256,
}

impl NicVariant {
    /// All three, in presentation order.
    pub const ALL: [NicVariant; 3] = [NicVariant::Baseline, NicVariant::Alpu128, NicVariant::Alpu256];

    /// The NIC configuration for this variant.
    pub fn config(self) -> NicConfig {
        match self {
            NicVariant::Baseline => NicConfig::baseline(),
            NicVariant::Alpu128 => NicConfig::with_alpus(128),
            NicVariant::Alpu256 => NicConfig::with_alpus(256),
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            NicVariant::Baseline => "baseline",
            NicVariant::Alpu128 => "alpu128",
            NicVariant::Alpu256 => "alpu256",
        }
    }
}

impl std::str::FromStr for NicVariant {
    type Err = String;
    fn from_str(s: &str) -> Result<NicVariant, String> {
        match s {
            "baseline" => Ok(NicVariant::Baseline),
            "alpu128" => Ok(NicVariant::Alpu128),
            "alpu256" => Ok(NicVariant::Alpu256),
            other => Err(format!(
                "unknown NIC variant `{other}` (want baseline|alpu128|alpu256)"
            )),
        }
    }
}
