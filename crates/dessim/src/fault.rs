//! Deterministic fault injection.
//!
//! A [`FaultConfig`] describes *what* can go wrong (message drops,
//! duplications, corruption on the wire; bit-flips and command-FIFO
//! stalls in an offload unit) and with what probability; a [`FaultPlan`]
//! turns that description into a reproducible stream of concrete fault
//! decisions. Every decision is drawn from a private SplitMix64 stream
//! derived from `(config seed, site id)`, never from the simulation's
//! shared RNG — so enabling faults cannot perturb any other randomized
//! choice, and two runs with the same seed make bit-identical decisions
//! at every injection site regardless of event interleaving.
//!
//! Sites (one plan per fabric, one per offload unit) each get their own
//! stream id, keeping decisions at different sites uncorrelated.
//!
//! Above the message-level streams sits the component level: a
//! [`FaultSchedule`] is a deterministic *timeline* of component failures —
//! node crashes, link flaps, fabric partitions, permanent offload-unit
//! death — evaluated as pure functions of virtual time. Every component
//! holds its own (shared, immutable) copy of the schedule and asks
//! "is this edge down at `t`?" locally, so no fault information ever
//! crosses a shard boundary and the layer is deterministic at any worker
//! thread count by construction.

use crate::rng::SimRng;
use crate::time::Time;
use std::fmt;
use std::sync::Arc;

/// Probabilities and seed for a fault campaign. `FaultConfig::none()`
/// (the `Default`) disables everything; injection sites must be zero-cost
/// in that case.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Master seed; all per-site streams derive from it.
    pub seed: u64,
    /// Probability a wire message is dropped.
    pub drop_p: f64,
    /// Probability a wire message is delivered twice.
    pub dup_p: f64,
    /// Probability a wire message arrives with a failed CRC.
    pub corrupt_p: f64,
    /// Probability, per queued probe, of a bit-flip in the unit's cells.
    pub flip_p: f64,
    /// Probability, per pushed command, of a transient pipeline stall.
    pub stall_p: f64,
    /// Probability, per flow-control credit grant or rendezvous
    /// clear-to-send, that the message authorizing further progress is
    /// silently lost *inside the NIC* (a firmware bug model, not a wire
    /// fault — the reliability layer cannot recover it). Used to induce
    /// real credit-leak deadlocks for the watchdog.
    pub leak_p: f64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::none()
    }
}

impl FaultConfig {
    /// No faults. Every probability zero.
    pub const fn none() -> FaultConfig {
        FaultConfig {
            seed: 1,
            drop_p: 0.0,
            dup_p: 0.0,
            corrupt_p: 0.0,
            flip_p: 0.0,
            stall_p: 0.0,
            leak_p: 0.0,
        }
    }

    /// True if any fault class can fire.
    pub fn is_active(&self) -> bool {
        self.net_active() || self.alpu_active() || self.leak_active()
    }

    /// True if any wire-level fault class can fire.
    pub fn net_active(&self) -> bool {
        self.drop_p > 0.0 || self.dup_p > 0.0 || self.corrupt_p > 0.0
    }

    /// True if any offload-unit fault class can fire.
    pub fn alpu_active(&self) -> bool {
        self.flip_p > 0.0 || self.stall_p > 0.0
    }

    /// True if the credit/CTS leak class can fire.
    pub fn leak_active(&self) -> bool {
        self.leak_p > 0.0
    }
}

/// Parse `seed=N,drop=P,dup=P,corrupt=P,flip=P,stall=P,leak=P` (any
/// subset, any order; omitted fields default to the `none()` values).
impl std::str::FromStr for FaultConfig {
    type Err = String;
    fn from_str(s: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::none();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v.parse().map_err(|_| format!("bad probability `{v}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability `{v}` outside [0,1]"));
                }
                Ok(p)
            };
            match key {
                "seed" => cfg.seed = val.parse().map_err(|_| format!("bad seed `{val}`"))?,
                "drop" => cfg.drop_p = prob(val)?,
                "dup" => cfg.dup_p = prob(val)?,
                "corrupt" => cfg.corrupt_p = prob(val)?,
                "flip" => cfg.flip_p = prob(val)?,
                "stall" => cfg.stall_p = prob(val)?,
                "leak" => cfg.leak_p = prob(val)?,
                other => {
                    return Err(format!(
                        "unknown fault key `{other}` (want seed|drop|dup|corrupt|flip|stall|leak)"
                    ))
                }
            }
        }
        Ok(cfg)
    }
}

/// The three independent verdicts for one wire message. Rolled in a fixed
/// order with a fixed number of RNG draws, so the decision stream for
/// message *n* does not depend on the outcomes for messages `0..n`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireFault {
    pub drop: bool,
    pub duplicate: bool,
    pub corrupt: bool,
}

/// A bit-flip target inside an offload unit: an occupied-cell selector
/// (reduced modulo occupancy by the unit) and a bit index within the
/// cell's match word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlipTarget {
    pub cell_sel: u64,
    pub bit: u32,
}

/// A reproducible stream of fault decisions for one injection site.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SimRng,
}

/// Stall durations drawn per command, in unit clock cycles. The upper
/// bound is deliberately above typical firmware spin budgets so that some
/// stalls are survivable and some force a quarantine.
const STALL_MIN_CYCLES: u64 = 512;
const STALL_MAX_CYCLES: u64 = 8192;

impl FaultPlan {
    /// Plan for injection site `site`, derived from `cfg.seed`. Distinct
    /// sites get uncorrelated streams; the same `(seed, site)` pair always
    /// yields the same stream.
    pub fn new(cfg: FaultConfig, site: u64) -> FaultPlan {
        // One fork step per site id separates the streams; the xor keeps
        // site 0 from replaying the raw seed stream.
        let mut base = SimRng::new(cfg.seed ^ 0xa076_1d64_78bd_642f);
        let mut rng = SimRng::new(base.next_u64() ^ site.wrapping_mul(0xe703_7ed1_a0b4_28db));
        rng.next_u64(); // burn one step to decouple from the mix constant
        FaultPlan { cfg, rng }
    }

    /// The config this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Roll the wire-fault verdicts for the next message (three Bernoulli
    /// draws, always consumed).
    pub fn roll_wire(&mut self) -> WireFault {
        WireFault {
            drop: self.rng.gen_bool(self.cfg.drop_p),
            duplicate: self.rng.gen_bool(self.cfg.dup_p),
            corrupt: self.rng.gen_bool(self.cfg.corrupt_p),
        }
    }

    /// Roll a possible bit-flip for the next queued probe. Consumes a
    /// fixed three draws whether or not the flip fires.
    pub fn roll_flip(&mut self) -> Option<FlipTarget> {
        let fire = self.rng.gen_bool(self.cfg.flip_p);
        let cell_sel = self.rng.next_u64();
        let bit = self.rng.gen_range(64) as u32;
        fire.then_some(FlipTarget { cell_sel, bit })
    }

    /// Roll a possible pipeline stall for the next pushed command, in unit
    /// clock cycles. Consumes a fixed two draws.
    pub fn roll_stall(&mut self) -> Option<u64> {
        let fire = self.rng.gen_bool(self.cfg.stall_p);
        let cycles = STALL_MIN_CYCLES + self.rng.gen_range(STALL_MAX_CYCLES - STALL_MIN_CYCLES);
        fire.then_some(cycles)
    }

    /// Roll whether the next credit grant / clear-to-send is leaked.
    /// Consumes a fixed one draw.
    pub fn roll_leak(&mut self) -> bool {
        self.rng.gen_bool(self.cfg.leak_p)
    }
}

/// One component-level fault on a [`FaultSchedule`] timeline.
///
/// Component identifiers are node ids (`host` and `nic` coincide in this
/// simulator: one NIC per node); edges are undirected node pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Host (and its NIC) crash-stops: all in-flight state is lost and the
    /// node never speaks again. Its links are down from this instant on.
    NodeCrash { host: u32 },
    /// The undirected edge `a–b` refuses all frames for `down_for`, then
    /// heals; the go-back-N layer is expected to resync across the gap.
    LinkFlap { a: u32, b: u32, down_for: Time },
    /// The fabric splits into the listed `groups` (nodes absent from every
    /// group form one implicit extra group); all inter-group edges are down
    /// until the absolute time `heal_at`.
    Partition { groups: Vec<Vec<u32>>, heal_at: Time },
    /// The node's offload unit dies permanently: firmware is pinned in the
    /// software-fallback path and never re-engages the unit.
    AlpuDeath { nic: u32 },
    /// A previously crashed host (and its NIC) comes back up with *all*
    /// volatile state wiped — queues, ALPU contents, link windows — under
    /// a new incarnation epoch. Its links carry frames again from this
    /// instant; peers fence any state keyed to the old incarnation.
    NodeRestart { host: u32 },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::NodeCrash { host } => write!(f, "crash node {host}"),
            FaultEvent::LinkFlap { a, b, down_for } => {
                write!(f, "flap edge {a}-{b} for {down_for}")
            }
            FaultEvent::Partition { groups, heal_at } => {
                let gs: Vec<String> = groups
                    .iter()
                    .map(|g| {
                        g.iter().map(u32::to_string).collect::<Vec<_>>().join(".")
                    })
                    .collect();
                write!(f, "partition {} until {heal_at}", gs.join("|"))
            }
            FaultEvent::AlpuDeath { nic } => write!(f, "alpu death on nic {nic}"),
            FaultEvent::NodeRestart { host } => write!(f, "restart node {host}"),
        }
    }
}

/// A deterministic timeline of component-level faults, shared read-only by
/// every component (each holds an `Arc`). All queries are pure functions of
/// `(schedule, time)` so the same schedule gives byte-identical behavior on
/// the hub engine and on the sharded engine at any thread count.
///
/// Build one programmatically with [`FaultSchedule::push`], generate a flap
/// storm from a seed with [`FaultSchedule::generate`], or parse the text
/// spec grammar (events separated by `;`):
///
/// ```text
/// crash@500us:node=3
/// crash@500us:node=3,mttr=300us     (sugar: crash + restart@800us)
/// restart@800us:node=3
/// flap@1ms:edge=0-2,down=200us
/// partition@2ms:groups=0.1|2.3,heal=3ms
/// alpu@1ms:nic=1
/// ```
///
/// Times are `N` with a `ps`/`ns`/`us`/`ms` suffix. [`fmt::Display`]
/// renders the canonical spec (the `mttr=` sugar desugars into an
/// explicit `restart@`), so `format(parse(s))` parses back to the same
/// schedule for every event kind.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    /// `(at, event)`, kept sorted by `at` (ties in insertion order).
    events: Vec<(Time, FaultEvent)>,
}

impl FaultSchedule {
    /// An empty timeline (nothing ever fails).
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Add an event at absolute time `at`, keeping the timeline sorted.
    pub fn push(&mut self, at: Time, event: FaultEvent) -> &mut Self {
        let idx = self.events.partition_point(|&(t, _)| t <= at);
        self.events.insert(idx, (at, event));
        self
    }

    /// The sorted timeline.
    pub fn events(&self) -> &[(Time, FaultEvent)] {
        &self.events
    }

    /// Wrap in the shared handle components hold.
    pub fn arc(self) -> Arc<FaultSchedule> {
        Arc::new(self)
    }

    /// Generate a reproducible link-flap storm: flap arrivals spaced
    /// uniformly in `[mtbf/2, 3·mtbf/2)` across random edges of a
    /// `nodes`-node cluster, each outage lasting `[mttr/2, 3·mttr/2)`,
    /// until `horizon`. Failure rate and repair time are independent
    /// knobs — availability follows the classic `mtbf / (mtbf + mttr)`
    /// shape only when the outage length does *not* scale with the
    /// arrival spacing. Crashes and ALPU deaths are deliberate, targeted
    /// events — push them explicitly on top of the generated storm.
    pub fn generate(seed: u64, nodes: u32, mtbf: Time, mttr: Time, horizon: Time) -> FaultSchedule {
        assert!(nodes >= 2, "a flap needs an edge, so at least two nodes");
        assert!(mtbf > Time::ZERO, "mtbf must be positive");
        assert!(mttr > Time::ZERO, "mttr must be positive");
        let mut rng = SimRng::new(seed ^ 0x5bd1_e995_97f4_a7c5);
        let mut sched = FaultSchedule::new();
        let mut at = Time::ZERO;
        loop {
            let gap = mtbf.ps() / 2 + rng.gen_range(mtbf.ps().max(1));
            at += Time::from_ps(gap);
            if at >= horizon {
                return sched;
            }
            let a = rng.gen_range(nodes as u64) as u32;
            let mut b = rng.gen_range(nodes as u64 - 1) as u32;
            if b >= a {
                b += 1;
            }
            let down = mttr.ps() / 2 + rng.gen_range(mttr.ps().max(1));
            sched.push(at, FaultEvent::LinkFlap { a, b, down_for: Time::from_ps(down) });
        }
    }

    /// Generate a reproducible crash/restart storm: crash arrivals spaced
    /// uniformly in `[mtbf/2, 3·mtbf/2)` across random nodes, each outage
    /// lasting `[mttr/2, 3·mttr/2)` before the node restarts under a new
    /// incarnation — `NodeCrash` with an MTTR, exactly as
    /// [`FaultSchedule::generate`] gives `LinkFlap` one. A node is never
    /// re-crashed while still down, and a crash whose restart would land
    /// past `horizon` is emitted without one (it stays down).
    pub fn generate_crashes(
        seed: u64,
        nodes: u32,
        mtbf: Time,
        mttr: Time,
        horizon: Time,
    ) -> FaultSchedule {
        assert!(nodes >= 2, "a crash needs surviving peers, so at least two nodes");
        assert!(mtbf > Time::ZERO, "mtbf must be positive");
        assert!(mttr > Time::ZERO, "mttr must be positive");
        let mut rng = SimRng::new(seed ^ 0x94d0_49bb_1331_11eb);
        let mut sched = FaultSchedule::new();
        let mut down_until = vec![Time::ZERO; nodes as usize];
        let mut at = Time::ZERO;
        loop {
            let gap = mtbf.ps() / 2 + rng.gen_range(mtbf.ps().max(1));
            at += Time::from_ps(gap);
            if at >= horizon {
                return sched;
            }
            // Draw the victim *before* filtering so the stream of draws —
            // and thus the storm — does not depend on outage overlap.
            let host = rng.gen_range(nodes as u64) as u32;
            let down = mttr.ps() / 2 + rng.gen_range(mttr.ps().max(1));
            if at < down_until[host as usize] {
                continue; // still rebooting from its previous crash
            }
            sched.push(at, FaultEvent::NodeCrash { host });
            let up = at + Time::from_ps(down);
            if up < horizon {
                sched.push(up, FaultEvent::NodeRestart { host });
                down_until[host as usize] = up;
            } else {
                down_until[host as usize] = Time::MAX;
            }
        }
    }

    /// Is anything scheduled at all?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// When (if ever) does `node` first crash-stop? Earliest crash wins.
    pub fn crash_time(&self, node: u32) -> Option<Time> {
        self.events
            .iter()
            .find(|(_, e)| matches!(e, FaultEvent::NodeCrash { host } if *host == node))
            .map(|&(t, _)| t)
    }

    /// Every crash instant of `node`, ascending.
    pub fn crash_times(&self, node: u32) -> Vec<Time> {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::NodeCrash { host } if *host == node))
            .map(|&(t, _)| t)
            .collect()
    }

    /// Every restart instant of `node`, ascending.
    pub fn restart_times(&self, node: u32) -> Vec<Time> {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, FaultEvent::NodeRestart { host } if *host == node))
            .map(|&(t, _)| t)
            .collect()
    }

    /// The earliest restart of `node` strictly after `at`, if any.
    fn restart_after(&self, node: u32, at: Time) -> Option<Time> {
        self.events
            .iter()
            .find(|&&(t, ref e)| {
                t > at && matches!(e, FaultEvent::NodeRestart { host } if *host == node)
            })
            .map(|&(t, _)| t)
    }

    /// Is `node` down — crashed and not (yet) restarted — at time `t`?
    pub fn node_down(&self, node: u32, t: Time) -> bool {
        self.events
            .iter()
            .take_while(|&&(at, _)| at <= t)
            .filter_map(|(_, e)| match e {
                FaultEvent::NodeCrash { host } if *host == node => Some(true),
                FaultEvent::NodeRestart { host } if *host == node => Some(false),
                _ => None,
            })
            .last()
            .unwrap_or(false)
    }

    /// `node`'s incarnation epoch at time `t`: 0 from boot, bumped by
    /// every completed restart. Pure function of `(schedule, time)`, so
    /// every component — on any shard — agrees on the epoch without
    /// exchanging fault information.
    pub fn incarnation_at(&self, node: u32, t: Time) -> u32 {
        self.events
            .iter()
            .take_while(|&&(at, _)| at <= t)
            .filter(|(_, e)| matches!(e, FaultEvent::NodeRestart { host } if *host == node))
            .count() as u32
    }

    /// Every node down at the *end* of the timeline (a crash with no
    /// later restart), deduplicated, ascending. A node that crashed and
    /// came back is not listed: it finishes the run alive.
    pub fn crashed_nodes(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .events
            .iter()
            .filter_map(|&(t, ref e)| match e {
                FaultEvent::NodeCrash { host } if self.restart_after(*host, t).is_none() => {
                    Some(*host)
                }
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every node with at least one crash anywhere on the timeline —
    /// including nodes that later restart — deduplicated, ascending.
    /// Peers schedule one keepalive-detection wake per crash instant.
    pub fn crashing_nodes(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                FaultEvent::NodeCrash { host } => Some(*host),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// When (if ever) does `nic`'s offload unit die permanently?
    pub fn alpu_death_time(&self, nic: u32) -> Option<Time> {
        self.events
            .iter()
            .find(|(_, e)| matches!(e, FaultEvent::AlpuDeath { nic: n } if *n == nic))
            .map(|&(t, _)| t)
    }

    /// Is the undirected edge `a–b` refusing frames at time `t`? True
    /// during any covering flap outage, while a partition separates the
    /// endpoints, or while either endpoint is crashed — until that
    /// endpoint's next scheduled restart (forever, absent one).
    pub fn edge_down(&self, a: u32, b: u32, t: Time) -> bool {
        for &(at, ref ev) in &self.events {
            if at > t {
                break;
            }
            match ev {
                FaultEvent::NodeCrash { host } if *host == a || *host == b => {
                    match self.restart_after(*host, at) {
                        Some(up) if t >= up => {} // already back: this crash is history
                        _ => return true,
                    }
                }
                FaultEvent::LinkFlap { a: fa, b: fb, down_for }
                    if ((*fa == a && *fb == b) || (*fa == b && *fb == a))
                        && t < at + *down_for =>
                {
                    return true;
                }
                FaultEvent::Partition { groups, heal_at } if t < *heal_at => {
                    let side = |n: u32| groups.iter().position(|g| g.contains(&n));
                    if side(a) != side(b) {
                        return true;
                    }
                }
                _ => {}
            }
        }
        false
    }

    /// Connectivity groups of an `n`-node cluster at time `t`: connected
    /// components over the edges currently alive, each component sorted,
    /// components ordered by their smallest member. Crashed nodes come out
    /// as singletons (every edge at a crashed endpoint is down). One group
    /// of `0..n` means "no partition in effect".
    pub fn groups_at(&self, n: u32, t: Time) -> Vec<Vec<u32>> {
        let n = n as usize;
        let mut parent: Vec<usize> = (0..n).collect();
        fn root(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for a in 0..n {
            for b in (a + 1)..n {
                if !self.edge_down(a as u32, b as u32, t) {
                    let (ra, rb) = (root(&mut parent, a), root(&mut parent, b));
                    parent[ra.max(rb)] = ra.min(rb);
                }
            }
        }
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); n];
        for x in 0..n {
            let r = root(&mut parent, x);
            groups[r].push(x as u32);
        }
        groups.retain(|g| !g.is_empty());
        groups
    }
}

/// Render a time as the spec grammar's `N<suffix>` literal, picking the
/// coarsest suffix that loses nothing — the inverse of
/// [`parse_schedule_time`].
fn fmt_schedule_time(t: Time) -> String {
    let ps = t.ps();
    if ps == 0 {
        "0ns".to_string()
    } else if ps.is_multiple_of(1_000_000_000) {
        format!("{}ms", ps / 1_000_000_000)
    } else if ps.is_multiple_of(1_000_000) {
        format!("{}us", ps / 1_000_000)
    } else if ps.is_multiple_of(1_000) {
        format!("{}ns", ps / 1_000)
    } else {
        format!("{ps}ps")
    }
}

/// Render the canonical spec grammar: `;`-separated `kind@time:args`
/// events in timeline order. Round-trips through [`FromStr`]: parsing the
/// rendered text reproduces the schedule exactly.
impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &(at, ref ev) in &self.events {
            if !first {
                write!(f, "; ")?;
            }
            first = false;
            let at = fmt_schedule_time(at);
            match ev {
                FaultEvent::NodeCrash { host } => write!(f, "crash@{at}:node={host}")?,
                FaultEvent::NodeRestart { host } => write!(f, "restart@{at}:node={host}")?,
                FaultEvent::AlpuDeath { nic } => write!(f, "alpu@{at}:nic={nic}")?,
                FaultEvent::LinkFlap { a, b, down_for } => {
                    write!(f, "flap@{at}:edge={a}-{b},down={}", fmt_schedule_time(*down_for))?
                }
                FaultEvent::Partition { groups, heal_at } => {
                    let gs: Vec<String> = groups
                        .iter()
                        .map(|g| g.iter().map(u32::to_string).collect::<Vec<_>>().join("."))
                        .collect();
                    write!(
                        f,
                        "partition@{at}:groups={},heal={}",
                        gs.join("|"),
                        fmt_schedule_time(*heal_at)
                    )?
                }
            }
        }
        Ok(())
    }
}

/// Parse a time literal like `200us` (suffixes: `ps`, `ns`, `us`, `ms`).
fn parse_schedule_time(s: &str) -> Result<Time, String> {
    let (digits, make): (&str, fn(u64) -> Time) = if let Some(d) = s.strip_suffix("ms") {
        (d, Time::from_ms)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, Time::from_us)
    } else if let Some(d) = s.strip_suffix("ns") {
        (d, Time::from_ns)
    } else if let Some(d) = s.strip_suffix("ps") {
        (d, Time::from_ps)
    } else {
        return Err(format!("time `{s}` needs a ps|ns|us|ms suffix"));
    };
    digits
        .parse()
        .map(make)
        .map_err(|_| format!("bad time `{s}`"))
}

/// Parse the [`FaultSchedule`] spec grammar: `;`-separated events, each
/// `kind@time:key=value,...` — see the type-level docs for the shapes.
impl std::str::FromStr for FaultSchedule {
    type Err = String;
    fn from_str(s: &str) -> Result<FaultSchedule, String> {
        let mut sched = FaultSchedule::new();
        for part in s.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (head, body) = part
                .split_once(':')
                .ok_or_else(|| format!("event `{part}` is not kind@time:args"))?;
            let (kind, at) = head
                .split_once('@')
                .ok_or_else(|| format!("event head `{head}` is not kind@time"))?;
            let at = parse_schedule_time(at)?;
            let mut args = std::collections::BTreeMap::new();
            for kv in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("arg `{kv}` is not key=value"))?;
                args.insert(k, v);
            }
            let want = |key: &str| -> Result<&str, String> {
                args.get(key)
                    .copied()
                    .ok_or_else(|| format!("event `{part}` is missing `{key}=`"))
            };
            let node = |v: &str| -> Result<u32, String> {
                v.parse().map_err(|_| format!("bad node id `{v}`"))
            };
            let event = match kind {
                "crash" => {
                    let host = node(want("node")?)?;
                    if let Some(mttr) = args.get("mttr") {
                        // Sugar: a crash with a mean-time-to-repair is a
                        // crash plus an explicit restart `mttr` later.
                        sched.push(at + parse_schedule_time(mttr)?, FaultEvent::NodeRestart {
                            host,
                        });
                    }
                    FaultEvent::NodeCrash { host }
                }
                "restart" => FaultEvent::NodeRestart { host: node(want("node")?)? },
                "alpu" => FaultEvent::AlpuDeath { nic: node(want("nic")?)? },
                "flap" => {
                    let edge = want("edge")?;
                    let (a, b) = edge
                        .split_once('-')
                        .ok_or_else(|| format!("edge `{edge}` is not a-b"))?;
                    FaultEvent::LinkFlap {
                        a: node(a)?,
                        b: node(b)?,
                        down_for: parse_schedule_time(want("down")?)?,
                    }
                }
                "partition" => {
                    let groups = want("groups")?
                        .split('|')
                        .map(|g| g.split('.').map(node).collect())
                        .collect::<Result<Vec<Vec<u32>>, _>>()?;
                    FaultEvent::Partition {
                        groups,
                        heal_at: parse_schedule_time(want("heal")?)?,
                    }
                }
                other => {
                    return Err(format!(
                        "unknown fault event `{other}` (want crash|restart|flap|partition|alpu)"
                    ))
                }
            };
            sched.push(at, event);
        }
        Ok(sched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_default() {
        let cfg = FaultConfig::none();
        assert!(!cfg.is_active());
        assert_eq!(cfg, FaultConfig::default());
    }

    #[test]
    fn parse_full_spec() {
        let cfg: FaultConfig = "seed=42,drop=0.01,dup=0.005,corrupt=0.002,flip=0.1,stall=0.2"
            .parse()
            .unwrap();
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.drop_p, 0.01);
        assert_eq!(cfg.dup_p, 0.005);
        assert_eq!(cfg.corrupt_p, 0.002);
        assert_eq!(cfg.flip_p, 0.1);
        assert_eq!(cfg.stall_p, 0.2);
        assert!(cfg.is_active() && cfg.net_active() && cfg.alpu_active());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("drop".parse::<FaultConfig>().is_err());
        assert!("drop=2.0".parse::<FaultConfig>().is_err());
        assert!("warp=0.1".parse::<FaultConfig>().is_err());
        assert!("seed=x".parse::<FaultConfig>().is_err());
    }

    #[test]
    fn plans_are_reproducible_per_site() {
        let cfg: FaultConfig = "seed=7,drop=0.5,dup=0.5,corrupt=0.5".parse().unwrap();
        let mut a = FaultPlan::new(cfg, 3);
        let mut b = FaultPlan::new(cfg, 3);
        for _ in 0..200 {
            assert_eq!(a.roll_wire(), b.roll_wire());
        }
    }

    #[test]
    fn sites_are_uncorrelated() {
        let cfg: FaultConfig = "seed=7,drop=0.5".parse().unwrap();
        let mut a = FaultPlan::new(cfg, 0);
        let mut b = FaultPlan::new(cfg, 1);
        let same = (0..256)
            .filter(|_| a.roll_wire().drop == b.roll_wire().drop)
            .count();
        // Two fair-coin streams should agree about half the time.
        assert!((64..=192).contains(&same), "suspicious agreement: {same}");
    }

    #[test]
    fn drop_rate_close_to_requested() {
        let cfg: FaultConfig = "seed=11,drop=0.01".parse().unwrap();
        let mut plan = FaultPlan::new(cfg, 0);
        let n = 100_000;
        let drops = (0..n).filter(|_| plan.roll_wire().drop).count();
        let rate = drops as f64 / n as f64;
        assert!((0.005..0.02).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn stall_cycles_bounded() {
        let cfg: FaultConfig = "seed=5,stall=1.0".parse().unwrap();
        let mut plan = FaultPlan::new(cfg, 0);
        for _ in 0..1_000 {
            let c = plan.roll_stall().unwrap();
            assert!((STALL_MIN_CYCLES..STALL_MAX_CYCLES).contains(&c));
        }
    }

    #[test]
    fn inactive_plan_never_fires() {
        let mut plan = FaultPlan::new(FaultConfig::none(), 0);
        for _ in 0..1_000 {
            assert_eq!(plan.roll_wire(), WireFault::default());
            assert!(plan.roll_flip().is_none());
            assert!(plan.roll_stall().is_none());
            assert!(!plan.roll_leak());
        }
    }

    #[test]
    fn parse_leak_key() {
        let cfg: FaultConfig = "seed=3,leak=1.0".parse().unwrap();
        assert_eq!(cfg.leak_p, 1.0);
        assert!(cfg.leak_active() && cfg.is_active());
        assert!(!cfg.net_active() && !cfg.alpu_active());
        let mut plan = FaultPlan::new(cfg, 9);
        assert!(plan.roll_leak());
    }

    #[test]
    fn schedule_spec_round_trips_every_event_kind() {
        let sched: FaultSchedule =
            "crash@500us:node=3; flap@1ms:edge=0-2,down=200us; \
             partition@2ms:groups=0.1|2.3,heal=3ms; alpu@1ms:nic=1"
                .parse()
                .unwrap();
        assert_eq!(sched.events().len(), 4);
        assert_eq!(sched.crash_time(3), Some(Time::from_us(500)));
        assert_eq!(sched.crash_time(0), None);
        assert_eq!(sched.alpu_death_time(1), Some(Time::from_ms(1)));
        assert_eq!(sched.crashed_nodes(), vec![3]);
        // Timeline is sorted by time even though the spec is not.
        let times: Vec<Time> = sched.events().iter().map(|&(t, _)| t).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn schedule_spec_rejects_garbage() {
        assert!("crash@500us".parse::<FaultSchedule>().is_err());
        assert!("crash:node=1".parse::<FaultSchedule>().is_err());
        assert!("crash@500us:host=1".parse::<FaultSchedule>().is_err());
        assert!("flap@1ms:edge=02,down=1us".parse::<FaultSchedule>().is_err());
        assert!("flap@1ms:edge=0-2,down=1".parse::<FaultSchedule>().is_err());
        assert!("melt@1ms:node=0".parse::<FaultSchedule>().is_err());
    }

    #[test]
    fn flap_downs_edge_for_exactly_the_outage() {
        let sched: FaultSchedule = "flap@1ms:edge=0-2,down=200us".parse().unwrap();
        let down = |us| sched.edge_down(0, 2, Time::from_us(us));
        assert!(!down(999));
        assert!(down(1000) && down(1100) && down(1199));
        assert!(!down(1200), "edge must heal at flap end");
        // Undirected: the reverse orientation sees the same outage.
        assert!(sched.edge_down(2, 0, Time::from_us(1100)));
        // Unrelated edges never notice.
        assert!(!sched.edge_down(0, 1, Time::from_us(1100)));
    }

    #[test]
    fn crash_downs_every_adjacent_edge_forever() {
        let sched: FaultSchedule = "crash@10us:node=1".parse().unwrap();
        assert!(!sched.edge_down(0, 1, Time::from_us(9)));
        assert!(sched.edge_down(0, 1, Time::from_us(10)));
        assert!(sched.edge_down(1, 3, Time::from_ms(500)));
        assert!(!sched.edge_down(0, 3, Time::from_ms(500)));
    }

    #[test]
    fn partition_separates_groups_then_heals() {
        let sched: FaultSchedule =
            "partition@2ms:groups=0.1|2.3,heal=3ms".parse().unwrap();
        let at = Time::from_us(2500);
        assert!(sched.edge_down(0, 2, at) && sched.edge_down(1, 3, at));
        assert!(!sched.edge_down(0, 1, at) && !sched.edge_down(2, 3, at));
        assert!(!sched.edge_down(0, 2, Time::from_ms(3)), "heals at heal_at");
        assert_eq!(
            sched.groups_at(4, at),
            vec![vec![0, 1], vec![2, 3]],
        );
        assert_eq!(sched.groups_at(4, Time::from_ms(3)).len(), 1);
    }

    #[test]
    fn groups_at_isolates_crashed_nodes() {
        let sched: FaultSchedule = "crash@10us:node=2".parse().unwrap();
        assert_eq!(
            sched.groups_at(4, Time::from_us(11)),
            vec![vec![0, 1, 3], vec![2]],
        );
    }

    #[test]
    fn restart_heals_crashed_edges_and_bumps_incarnation() {
        let sched: FaultSchedule = "crash@10us:node=1; restart@60us:node=1".parse().unwrap();
        assert!(!sched.edge_down(0, 1, Time::from_us(9)));
        assert!(sched.edge_down(0, 1, Time::from_us(10)));
        assert!(sched.edge_down(0, 1, Time::from_us(59)));
        assert!(!sched.edge_down(0, 1, Time::from_us(60)), "restart must heal the edge");
        assert!(!sched.edge_down(0, 1, Time::from_ms(500)));
        assert!(sched.node_down(1, Time::from_us(30)));
        assert!(!sched.node_down(1, Time::from_us(60)));
        assert_eq!(sched.incarnation_at(1, Time::from_us(59)), 0);
        assert_eq!(sched.incarnation_at(1, Time::from_us(60)), 1);
        assert_eq!(sched.incarnation_at(0, Time::from_ms(1)), 0, "peers keep epoch 0");
        // A restarted node is alive at the end: not a crashed node.
        assert!(sched.crashed_nodes().is_empty());
        assert_eq!(sched.crash_times(1), vec![Time::from_us(10)]);
        assert_eq!(sched.restart_times(1), vec![Time::from_us(60)]);
        // groups_at folds the node back into the connected component.
        assert_eq!(sched.groups_at(3, Time::from_us(30)), vec![vec![0, 2], vec![1]]);
        assert_eq!(sched.groups_at(3, Time::from_us(61)).len(), 1);
    }

    #[test]
    fn crash_mttr_sugar_desugars_to_restart() {
        let sugar: FaultSchedule = "crash@10us:node=1,mttr=50us".parse().unwrap();
        let explicit: FaultSchedule = "crash@10us:node=1; restart@60us:node=1".parse().unwrap();
        assert_eq!(sugar, explicit);
    }

    #[test]
    fn second_incarnation_counts_repeat_crashes() {
        let sched: FaultSchedule =
            "crash@10us:node=2,mttr=20us; crash@50us:node=2,mttr=20us".parse().unwrap();
        assert_eq!(sched.incarnation_at(2, Time::from_us(29)), 0);
        assert_eq!(sched.incarnation_at(2, Time::from_us(30)), 1);
        assert_eq!(sched.incarnation_at(2, Time::from_us(70)), 2);
        assert!(sched.edge_down(0, 2, Time::from_us(55)));
        assert!(!sched.edge_down(0, 2, Time::from_us(40)));
        assert!(!sched.edge_down(0, 2, Time::from_us(70)));
    }

    #[test]
    fn schedule_display_round_trips_every_event_kind() {
        let spec = "crash@500us:node=3; flap@1ms:edge=0-2,down=200us; \
                    partition@2ms:groups=0.1|2.3,heal=3ms; alpu@1ms:nic=1; \
                    restart@4ms:node=3";
        let sched: FaultSchedule = spec.parse().unwrap();
        let rendered = sched.to_string();
        let reparsed: FaultSchedule = rendered.parse().unwrap_or_else(|e| {
            panic!("canonical render `{rendered}` failed to parse: {e}")
        });
        assert_eq!(sched, reparsed, "format→parse must be the identity");
        // Sub-microsecond times survive too (suffix selection).
        let odd: FaultSchedule = "flap@1500ns:edge=0-1,down=750ps".parse().unwrap();
        assert_eq!(odd, odd.to_string().parse().unwrap());
        // The mttr sugar renders as its desugared pair.
        let sugar: FaultSchedule = "crash@10us:node=1,mttr=50us".parse().unwrap();
        assert_eq!(sugar, sugar.to_string().parse().unwrap());
    }

    #[test]
    fn generated_crash_storm_is_reproducible_and_paired() {
        let mk = || {
            FaultSchedule::generate_crashes(
                7,
                6,
                Time::from_us(100),
                Time::from_us(40),
                Time::from_ms(1),
            )
        };
        let a = mk();
        assert_eq!(a, mk());
        assert!(!a.is_empty());
        let mut down: Vec<Option<Time>> = vec![None; 6];
        for &(t, ref ev) in a.events() {
            assert!(t < Time::from_ms(1));
            match ev {
                FaultEvent::NodeCrash { host } => {
                    assert!(
                        down[*host as usize].is_none(),
                        "node {host} re-crashed while still down"
                    );
                    down[*host as usize] = Some(t);
                }
                FaultEvent::NodeRestart { host } => {
                    let since = down[*host as usize].take().expect("restart without a crash");
                    let outage = t - since;
                    assert!(outage >= Time::from_us(20) && outage < Time::from_us(60));
                }
                other => panic!("crash storm emitted {other}"),
            }
        }
        // Every node that restarted is alive at the end.
        for host in a.crashed_nodes() {
            assert!(down[host as usize].is_some());
        }
    }

    #[test]
    fn generated_storm_is_reproducible_and_bounded() {
        let a = FaultSchedule::generate(9, 8, Time::from_us(50), Time::from_us(20), Time::from_ms(1));
        let b = FaultSchedule::generate(9, 8, Time::from_us(50), Time::from_us(20), Time::from_ms(1));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for (t, ev) in a.events() {
            assert!(*t < Time::from_ms(1));
            match ev {
                FaultEvent::LinkFlap { a, b, down_for } => {
                    assert!(a != b && *a < 8 && *b < 8);
                    assert!(*down_for >= Time::from_us(10) && *down_for < Time::from_us(30));
                }
                other => panic!("generate should only emit flaps, got {other}"),
            }
        }
        let c = FaultSchedule::generate(10, 8, Time::from_us(50), Time::from_us(20), Time::from_ms(1));
        assert_ne!(a, c, "different seeds should give different storms");
    }
}
