//! The event scheduler / simulation executive.

use crate::calendar::CalendarQueue;
use crate::component::{Component, ComponentId, Ctx, Emission};
use crate::event::{Event, InPort, OutPort, Payload};
use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::stats::Stats;
use crate::time::Time;
use crate::trace::TraceRing;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled event in the heap. Ordered by (time, seq): the sequence
/// number breaks ties deterministically in insertion order. Shared with
/// the partitioned executor ([`crate::shard`]), which keeps one such heap
/// per shard.
pub(crate) struct Scheduled {
    pub(crate) time: Time,
    pub(crate) seq: u64,
    pub(crate) dst: ComponentId,
    pub(crate) port: InPort,
    pub(crate) payload: Payload,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A wired link: (src component, out port) -> (dst component, in port, latency).
#[derive(Clone, Copy)]
pub(crate) struct Link {
    pub(crate) dst: ComponentId,
    pub(crate) port: InPort,
    pub(crate) latency: Time,
}

/// The pending-event set: a binary heap by default, or a calendar queue
/// (see [`crate::calendar`]) when selected via
/// [`Simulation::use_calendar_queue`].
enum Pending {
    Heap(BinaryHeap<Reverse<Scheduled>>),
    Calendar(CalendarQueue<(ComponentId, InPort, Payload)>),
}

impl Pending {
    fn push(&mut self, ev: Scheduled) {
        match self {
            Pending::Heap(h) => h.push(Reverse(ev)),
            Pending::Calendar(c) => c.push(ev.time, ev.seq, (ev.dst, ev.port, ev.payload)),
        }
    }

    fn pop(&mut self) -> Option<Scheduled> {
        match self {
            Pending::Heap(h) => h.pop().map(|Reverse(ev)| ev),
            Pending::Calendar(c) => c.pop().map(|(time, seq, (dst, port, payload))| Scheduled {
                time,
                seq,
                dst,
                port,
                payload,
            }),
        }
    }

    fn peek_time(&mut self) -> Option<Time> {
        match self {
            Pending::Heap(h) => h.peek().map(|Reverse(ev)| ev.time),
            // The calendar peek advances its internal scan cursor, which
            // the following pop then reuses — peek+pop scans once.
            Pending::Calendar(c) => c.peek_time(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Pending::Heap(h) => h.is_empty(),
            Pending::Calendar(c) => c.is_empty(),
        }
    }
}

/// The simulation executive: owns components, wiring, the event heap,
/// virtual time, the RNG, and the statistics registry.
pub struct Simulation {
    components: Vec<Box<dyn Component>>,
    names: Vec<String>,
    /// Outgoing links, indexed `[component][out_port]` — a flat lookup on
    /// the per-emission hot path (out-port numbers are small and dense).
    wiring: Vec<Vec<Option<Link>>>,
    heap: Pending,
    now: Time,
    seq: u64,
    rng: SimRng,
    stats: Stats,
    trace: TraceRing,
    metrics: Metrics,
    started: bool,
    events_processed: u64,
}

impl Simulation {
    /// Create an empty simulation with a deterministic RNG seed.
    pub fn new(seed: u64) -> Simulation {
        Simulation {
            components: Vec::new(),
            names: Vec::new(),
            wiring: Vec::new(),
            heap: Pending::Heap(BinaryHeap::new()),
            now: Time::ZERO,
            seq: 0,
            rng: SimRng::new(seed),
            stats: Stats::new(),
            trace: TraceRing::disabled(),
            metrics: Metrics::disabled(),
            started: false,
            events_processed: 0,
        }
    }

    /// Register a component; the returned id addresses it in wiring and
    /// direct sends.
    pub fn add_component<C: Component>(&mut self, name: &str, c: C) -> ComponentId {
        let id = ComponentId(self.components.len() as u32);
        self.components.push(Box::new(c));
        self.names.push(name.to_string());
        self.wiring.push(Vec::new());
        id
    }

    /// Wire `src.out_port` to `dst.in_port` with the given link latency.
    /// Re-connecting an already wired output port replaces the link.
    pub fn connect(
        &mut self,
        src: ComponentId,
        out_port: OutPort,
        dst: ComponentId,
        in_port: InPort,
        latency: Time,
    ) {
        assert!(
            (dst.0 as usize) < self.components.len(),
            "connect: unknown destination component"
        );
        let ports = self
            .wiring
            .get_mut(src.0 as usize)
            .expect("connect: unknown source component");
        let slot = out_port.0 as usize;
        if ports.len() <= slot {
            ports.resize(slot + 1, None);
        }
        ports[slot] = Some(Link {
            dst,
            port: in_port,
            latency,
        });
    }

    /// Switch the pending-event set to a calendar queue (Brown 1988).
    /// Only valid before any event is posted; same delivery order as the
    /// default heap.
    pub fn use_calendar_queue(&mut self) {
        assert!(
            self.heap.is_empty() && self.seq == 0,
            "select the scheduler before posting events"
        );
        self.heap = Pending::Calendar(CalendarQueue::new());
    }

    /// Schedule an event for delivery `delay` after the current time.
    pub fn post(&mut self, dst: ComponentId, port: InPort, payload: Payload, delay: Time) {
        let time = self.now + delay;
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            time,
            seq,
            dst,
            port,
            payload,
        });
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Immutable view of the statistics registry.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable view of the statistics registry (e.g. for resetting between
    /// measurement phases).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Registered name of a component.
    pub fn name_of(&self, id: ComponentId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of registered components (ids are `0..count`).
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Keep the last `capacity` [`Ctx::trace`] records for debugging.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = TraceRing::with_capacity(capacity);
    }

    /// The trace ring (render with
    /// [`TraceRing::render`](crate::trace::TraceRing::render)).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Render the retained trace with component names resolved. Takes
    /// `&mut self` because rendering consumes the dropped-records notice
    /// (see [`TraceRing::render`]).
    pub fn render_trace(&mut self) -> String {
        let names = &self.names;
        self.trace.render(|id| names[id.0 as usize].clone())
    }

    /// Turn on the metrics registry; [`Ctx::metrics`] writes are recorded
    /// from here on. Off by default so unmetered runs stay byte-identical.
    pub fn enable_metrics(&mut self) {
        self.metrics.enable();
    }

    /// Immutable view of the metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable view of the metrics registry (e.g. for resetting between
    /// measurement phases).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Downcast a component to its concrete type, if it opted in via
    /// [`Component::as_any`]. For harness inspection between runs.
    pub fn component<C: Component>(&self, id: ComponentId) -> Option<&C> {
        self.components[id.0 as usize].as_any()?.downcast_ref()
    }

    /// Mutable variant of [`Simulation::component`].
    pub fn component_mut<C: Component>(&mut self, id: ComponentId) -> Option<&mut C> {
        self.components[id.0 as usize].as_any_mut()?.downcast_mut()
    }

    /// Is the pending-event set empty? A simulation that is idle *and*
    /// has components reporting unfinished obligations
    /// ([`Component::health`]) has quiesced into a deadlock: nothing
    /// will ever run again.
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }

    /// Collect [`Component::health`] reports from every component that
    /// provides one, in registration order, with names resolved.
    pub fn health_reports(&self) -> Vec<(String, crate::watchdog::Health)> {
        self.components
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.health().map(|h| (self.names[i].clone(), h)))
            .collect()
    }

    /// Assemble a typed stall report from the current state (see
    /// [`crate::watchdog`]). The caller decides the [`StallKind`] — it
    /// knows whether the run quiesced or overran its deadline.
    pub fn diagnose(&self, kind: crate::watchdog::StallKind) -> crate::watchdog::Diagnosis {
        crate::watchdog::Diagnosis {
            kind,
            at: self.now,
            events_processed: self.events_processed,
            components: self.health_reports(),
        }
    }

    /// Run until the heap is empty or a component requested a stop.
    /// Returns the number of events processed by this call.
    pub fn run(&mut self) -> u64 {
        self.run_until(Time::MAX)
    }

    /// Run events with `time <= horizon`; time advances to the last
    /// delivered event (not to the horizon itself if the heap runs dry).
    pub fn run_until(&mut self, horizon: Time) -> u64 {
        self.start_components();
        let mut delivered = 0u64;
        let mut stop = false;
        while !stop {
            // Both schedulers peek cheaply, so overshoot events past the
            // horizon stay in place instead of being popped and re-pushed.
            if let Some(t) = self.heap.peek_time() {
                if t > horizon {
                    break;
                }
            }
            let Some(ev) = self.heap.pop() else {
                break;
            };
            debug_assert!(ev.time <= horizon, "peek_time bounds the popped event");
            debug_assert!(
                ev.time >= self.now,
                "time must be monotone: event for {:?} port {:?} at t={} < now={}",
                ev.dst,
                ev.port,
                ev.time,
                self.now
            );
            self.now = ev.time;
            self.dispatch(ev, &mut stop);
            delivered += 1;
        }
        self.events_processed += delivered;
        delivered
    }

    /// Run exactly one event if one is pending. Returns `false` if idle.
    pub fn step(&mut self) -> bool {
        self.start_components();
        let Some(ev) = self.heap.pop() else {
            return false;
        };
        self.now = ev.time;
        let mut stop = false;
        self.dispatch(ev, &mut stop);
        self.events_processed += 1;
        true
    }

    fn start_components(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.components.len() {
            let id = ComponentId(i as u32);
            let mut stop = false;
            let mut ctx = Ctx {
                now: self.now,
                me: id,
                emissions: Vec::new(),
                rng: &mut self.rng,
                stats: &mut self.stats,
                stop_requested: &mut stop,
                trace: &mut self.trace,
                metrics: &mut self.metrics,
            };
            self.components[i].on_start(&mut ctx);
            let emissions = ctx.emissions;
            self.commit(id, emissions);
        }
    }

    fn dispatch(&mut self, ev: Scheduled, stop: &mut bool) {
        let id = ev.dst;
        let idx = id.0 as usize;
        assert!(
            idx < self.components.len(),
            "event at t={} on port {:?} addressed to unknown component {:?} \
             ({} registered)",
            ev.time,
            ev.port,
            id,
            self.components.len()
        );
        let mut ctx = Ctx {
            now: self.now,
            me: id,
            emissions: Vec::new(),
            rng: &mut self.rng,
            stats: &mut self.stats,
            stop_requested: stop,
            trace: &mut self.trace,
            metrics: &mut self.metrics,
        };
        let event = Event {
            time: ev.time,
            dst: id,
            port: ev.port,
            payload: ev.payload,
        };
        self.components[idx].on_event(event, &mut ctx);
        let emissions = ctx.emissions;
        self.commit(id, emissions);
    }

    fn commit(&mut self, src: ComponentId, emissions: Vec<Emission>) {
        for e in emissions {
            match e {
                Emission::Output {
                    port,
                    payload,
                    extra_delay,
                } => {
                    let link = self.wiring[src.0 as usize]
                        .get(port.0 as usize)
                        .copied()
                        .flatten()
                        .unwrap_or_else(|| {
                            panic!(
                                "component `{}` emitted on unwired output port {:?}",
                                self.names[src.0 as usize], port
                            )
                        });
                    self.post(link.dst, link.port, payload, link.latency + extra_delay);
                }
                Emission::Direct {
                    dst,
                    port,
                    payload,
                    delay,
                } => self.post(dst, port, payload, delay),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts events and forwards `n-1` copies of itself.
    struct Counter {
        seen: Vec<(Time, u64)>,
    }
    impl Component for Counter {
        fn on_event(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
            let n = *ev.payload.downcast::<u64>().unwrap();
            self.seen.push((ctx.now(), n));
            if n > 0 {
                ctx.wake_me(InPort(0), Payload::new(n - 1), Time::from_ns(5));
            }
        }
    }

    #[test]
    fn self_wakeups_advance_time() {
        let mut sim = Simulation::new(1);
        let c = sim.add_component("ctr", Counter { seen: vec![] });
        sim.post(c, InPort(0), Payload::new(3u64), Time::from_ns(2));
        sim.run();
        assert_eq!(sim.now(), Time::from_ns(2 + 3 * 5));
        assert_eq!(sim.events_processed(), 4);
    }

    struct Recorder {
        log: std::sync::Arc<std::sync::Mutex<Vec<(Time, u32)>>>,
        tag: u32,
    }
    impl Component for Recorder {
        fn on_event(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
            let _ = ev;
            self.log.lock().unwrap().push((ctx.now(), self.tag));
        }
    }

    #[test]
    fn ties_break_in_post_order() {
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut sim = Simulation::new(1);
        let a = sim.add_component(
            "a",
            Recorder {
                log: log.clone(),
                tag: 1,
            },
        );
        let b = sim.add_component(
            "b",
            Recorder {
                log: log.clone(),
                tag: 2,
            },
        );
        // Post b first, then a, at the same timestamp: delivery order must
        // match post order regardless of component ids.
        sim.post(b, InPort(0), Payload::empty(), Time::from_ns(10));
        sim.post(a, InPort(0), Payload::empty(), Time::from_ns(10));
        sim.run();
        let got: Vec<u32> = log.lock().unwrap().iter().map(|&(_, t)| t).collect();
        assert_eq!(got, vec![2, 1]);
    }

    #[test]
    fn wiring_routes_with_latency() {
        struct Fwd;
        impl Component for Fwd {
            fn on_event(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
                let n = *ev.payload.downcast::<u64>().unwrap();
                if n > 0 {
                    ctx.emit(OutPort(0), Payload::new(n - 1));
                }
            }
        }
        let mut sim = Simulation::new(0);
        let a = sim.add_component("a", Fwd);
        let b = sim.add_component("b", Fwd);
        sim.connect(a, OutPort(0), b, InPort(0), Time::from_ns(100));
        sim.connect(b, OutPort(0), a, InPort(0), Time::from_ns(100));
        sim.post(a, InPort(0), Payload::new(4u64), Time::ZERO);
        sim.run();
        // 4 hops of 100 ns each.
        assert_eq!(sim.now(), Time::from_ns(400));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new(0);
        let c = sim.add_component("ctr", Counter { seen: vec![] });
        sim.post(c, InPort(0), Payload::new(100u64), Time::ZERO);
        let n = sim.run_until(Time::from_ns(12));
        // events at t=0,5,10 are <= 12ns; t=15 is not.
        assert_eq!(n, 3);
        assert_eq!(sim.now(), Time::from_ns(10));
        // Remaining events still run afterwards.
        sim.run();
        assert_eq!(sim.events_processed(), 101);
    }

    #[test]
    fn stop_request_halts_run() {
        struct Stopper {
            after: u64,
        }
        impl Component for Stopper {
            fn on_event(&mut self, _ev: Event, ctx: &mut Ctx<'_>) {
                if self.after == 0 {
                    ctx.stop();
                } else {
                    self.after -= 1;
                    ctx.wake_me(InPort(0), Payload::empty(), Time::NS);
                }
            }
        }
        let mut sim = Simulation::new(0);
        let c = sim.add_component("s", Stopper { after: 5 });
        sim.post(c, InPort(0), Payload::empty(), Time::ZERO);
        let n = sim.run();
        assert_eq!(n, 6);
    }

    #[test]
    fn on_start_runs_once_before_events() {
        struct Starter {
            started: u32,
        }
        impl Component for Starter {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                self.started += 1;
                ctx.wake_me(InPort(0), Payload::empty(), Time::NS);
            }
            fn on_event(&mut self, _ev: Event, ctx: &mut Ctx<'_>) {
                ctx.stats().add("starter.events", 1);
            }
        }
        let mut sim = Simulation::new(0);
        let _ = sim.add_component("s", Starter { started: 0 });
        sim.run();
        assert_eq!(sim.stats().get("starter.events"), 1);
        sim.run(); // idempotent: start hooks don't fire again
        assert_eq!(sim.stats().get("starter.events"), 1);
    }

    #[test]
    fn tracing_records_component_activity() {
        struct Chatty;
        impl Component for Chatty {
            fn on_event(&mut self, _ev: Event, ctx: &mut Ctx<'_>) {
                ctx.trace("handled an event");
            }
        }
        let mut sim = Simulation::new(0);
        let c = sim.add_component("chatty", Chatty);
        sim.enable_tracing(8);
        sim.post(c, InPort(0), Payload::empty(), Time::from_ns(3));
        sim.run();
        let rendered = sim.render_trace();
        assert!(rendered.contains("chatty"));
        assert!(rendered.contains("handled an event"));
        assert!(rendered.contains("3ns"));
    }

    #[test]
    fn tracing_disabled_by_default() {
        struct Chatty;
        impl Component for Chatty {
            fn on_event(&mut self, _ev: Event, ctx: &mut Ctx<'_>) {
                ctx.trace("never retained");
            }
        }
        let mut sim = Simulation::new(0);
        let c = sim.add_component("chatty", Chatty);
        sim.post(c, InPort(0), Payload::empty(), Time::ZERO);
        sim.run();
        assert_eq!(sim.trace().records().count(), 0);
    }

    #[test]
    fn calendar_queue_matches_heap_delivery_order() {
        // A fan-out/fan-in workload with many simultaneous events; both
        // schedulers must produce identical logs.
        fn run(calendar: bool) -> Vec<(Time, u64)> {
            struct Pinger {
                log: std::sync::Arc<std::sync::Mutex<Vec<(Time, u64)>>>,
                id: u64,
            }
            impl Component for Pinger {
                fn on_event(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
                    let hops = *ev.payload.downcast::<u64>().unwrap();
                    self.log.lock().unwrap().push((ctx.now(), self.id * 1000 + hops));
                    if hops > 0 {
                        // Uneven delays exercise bucket spread.
                        let d = Time::from_ns(3 + (hops * self.id) % 40);
                        ctx.wake_me(InPort(0), Payload::new(hops - 1), d);
                    }
                }
            }
            let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
            let mut sim = Simulation::new(5);
            if calendar {
                sim.use_calendar_queue();
            }
            for id in 1..=6u64 {
                let c = sim.add_component(
                    &format!("p{id}"),
                    Pinger {
                        log: log.clone(),
                        id,
                    },
                );
                sim.post(c, InPort(0), Payload::new(30u64), Time::from_ns(id));
            }
            sim.run();
            let v = log.lock().unwrap().clone();
            v
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn calendar_queue_respects_run_until_horizon() {
        let mut sim = Simulation::new(0);
        sim.use_calendar_queue();
        let c = sim.add_component("ctr", Counter { seen: vec![] });
        sim.post(c, InPort(0), Payload::new(100u64), Time::ZERO);
        let n = sim.run_until(Time::from_ns(12));
        assert_eq!(n, 3);
        sim.run();
        assert_eq!(sim.events_processed(), 101);
    }

    #[test]
    #[should_panic(expected = "unwired output port")]
    fn unwired_emit_panics_with_component_name() {
        struct Bad;
        impl Component for Bad {
            fn on_event(&mut self, _ev: Event, ctx: &mut Ctx<'_>) {
                ctx.emit(OutPort(7), Payload::empty());
            }
        }
        let mut sim = Simulation::new(0);
        let c = sim.add_component("bad", Bad);
        sim.post(c, InPort(0), Payload::empty(), Time::ZERO);
        sim.run();
    }
}
