//! The network interface object and an in-process transport.

use crate::events::{Event, EventKind, EventQueue};
use crate::md::{Md, MdHandle, MdOptions};
use crate::me::{InsertPos, MatchEntry, MatchList, MeHandle};
use bytes::Bytes;
use std::collections::HashMap;

/// A Portals process address: node id + process id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ProcessId {
    /// Node.
    pub nid: u32,
    /// Process on the node.
    pub pid: u32,
}

/// Index into the portal table.
pub type PortalIndex = usize;

/// Number of portal table entries per NI (Portals implementations expose
/// a small fixed table; 8 suffices for MPI + runtime + I/O).
pub const PORTAL_TABLE_SIZE: usize = 8;

/// One process's network interface state.
pub struct Ni {
    /// Who we are.
    pub id: ProcessId,
    table: Vec<MatchList>,
    mds: HashMap<MdHandle, Md>,
    next_md: u32,
    /// Completion events.
    pub eq: EventQueue,
    dropped: u64,
}

impl Ni {
    /// A fresh NI for `id`.
    pub fn new(id: ProcessId) -> Ni {
        Ni {
            id,
            table: (0..PORTAL_TABLE_SIZE).map(|_| MatchList::default()).collect(),
            mds: HashMap::new(),
            next_md: 0,
            eq: EventQueue::new(1024),
            dropped: 0,
        }
    }

    /// Register a memory region (`PtlMDBind`).
    pub fn md_bind(&mut self, len: usize, options: MdOptions) -> MdHandle {
        let h = MdHandle(self.next_md);
        self.next_md += 1;
        self.mds.insert(h, Md::new(len, options));
        h
    }

    /// Borrow an MD's bytes (verification).
    pub fn md_bytes(&self, h: MdHandle) -> Option<&[u8]> {
        self.mds.get(&h).map(|m| m.buf.as_slice())
    }

    /// Attach a match entry at the tail of a portal entry's list
    /// (`PtlMEAttach`).
    pub fn me_attach(&mut self, pt: PortalIndex, me: MatchEntry) -> MeHandle {
        self.table[pt].attach(me)
    }

    /// Insert a match entry relative to another (`PtlMEInsert`).
    pub fn me_insert(
        &mut self,
        pt: PortalIndex,
        reference: MeHandle,
        pos: InsertPos,
        me: MatchEntry,
    ) -> Option<MeHandle> {
        self.table[pt].insert(reference, pos, me)
    }

    /// Remove a match entry (`PtlMEUnlink`).
    pub fn me_unlink(&mut self, pt: PortalIndex, h: MeHandle) -> bool {
        self.table[pt].unlink(h).is_some()
    }

    /// The live match list at a portal index (diagnostics / equivalence
    /// testing).
    pub fn match_list(&self, pt: PortalIndex) -> &MatchList {
        &self.table[pt]
    }

    /// Operations that matched nothing.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Target-side handling of an incoming put. Returns the ack event the
    /// initiator should receive, if the operation matched.
    fn handle_put(
        &mut self,
        initiator: ProcessId,
        pt: PortalIndex,
        bits: u64,
        offset: u64,
        data: Bytes,
    ) -> Option<(u64, u64)> {
        let Some(meh) = self.table[pt].first_match(initiator, bits, false) else {
            self.dropped += 1;
            self.eq.post(Event {
                kind: EventKind::Dropped,
                md: None,
                initiator,
                match_bits: bits,
                offset,
                length: data.len() as u64,
            });
            return None;
        };
        let me = self.table[pt].get(meh).expect("just matched").clone();
        let md = self.mds.get_mut(&me.md).expect("ME references a live MD");
        let Some(dep) = md.deposit(&data, offset) else {
            self.dropped += 1;
            return None;
        };
        self.eq.post(Event {
            kind: EventKind::PutEnd,
            md: Some(me.md),
            initiator,
            match_bits: bits,
            offset: dep.offset,
            length: dep.length,
        });
        if me.options.use_once || dep.unlink {
            self.table[pt].unlink(meh);
            self.eq.post(Event {
                kind: EventKind::Unlink,
                md: Some(me.md),
                initiator,
                match_bits: bits,
                offset: dep.offset,
                length: dep.length,
            });
        }
        Some((dep.offset, dep.length))
    }

    /// Target-side handling of an incoming get: read and return the data.
    fn handle_get(
        &mut self,
        initiator: ProcessId,
        pt: PortalIndex,
        bits: u64,
        offset: u64,
        len: u64,
    ) -> Option<Bytes> {
        let meh = self.table[pt].first_match(initiator, bits, true).or_else(|| {
            self.dropped += 1;
            None
        })?;
        let me = self.table[pt].get(meh).expect("just matched").clone();
        let md = self.mds.get_mut(&me.md).expect("live MD");
        let data = md.read(offset, len);
        self.eq.post(Event {
            kind: EventKind::GetEnd,
            md: Some(me.md),
            initiator,
            match_bits: bits,
            offset,
            length: data.len() as u64,
        });
        if me.options.use_once {
            self.table[pt].unlink(meh);
        }
        Some(data)
    }
}

/// An in-process fabric of NIs, keyed by [`ProcessId`]; delivers
/// operations synchronously (semantics only — timing lives in
/// `mpiq-nic`).
#[derive(Default)]
pub struct Network {
    nis: HashMap<ProcessId, Ni>,
}

impl Network {
    /// Empty network.
    pub fn new() -> Network {
        Network::default()
    }

    /// Create and register an NI.
    pub fn add(&mut self, id: ProcessId) -> ProcessId {
        self.nis.insert(id, Ni::new(id));
        id
    }

    /// Borrow an NI.
    pub fn ni(&self, id: ProcessId) -> &Ni {
        &self.nis[&id]
    }

    /// Mutably borrow an NI.
    pub fn ni_mut(&mut self, id: ProcessId) -> &mut Ni {
        self.nis.get_mut(&id).expect("known NI")
    }

    /// `PtlPut`: move `data` from `from`'s MD-less initiator buffer to
    /// whatever matches at the target. (The initiator-side MD is elided:
    /// callers pass bytes directly, which keeps the API surface focused
    /// on the matching side this repository studies.)
    pub fn put(
        &mut self,
        from: ProcessId,
        target: ProcessId,
        pt: PortalIndex,
        bits: u64,
        offset: u64,
        data: Bytes,
    ) -> bool {
        let len = data.len() as u64;
        let matched = self
            .nis
            .get_mut(&target)
            .expect("known target")
            .handle_put(from, pt, bits, offset, data);
        let initiator = self.nis.get_mut(&from).expect("known initiator");
        initiator.eq.post(Event {
            kind: EventKind::SendEnd,
            md: None,
            initiator: target,
            match_bits: bits,
            offset,
            length: len,
        });
        if let Some((off, n)) = matched {
            initiator.eq.post(Event {
                kind: EventKind::Ack,
                md: None,
                initiator: target,
                match_bits: bits,
                offset: off,
                length: n,
            });
            true
        } else {
            false
        }
    }

    /// `PtlGet`: read from whatever matches at the target.
    pub fn get(
        &mut self,
        from: ProcessId,
        target: ProcessId,
        pt: PortalIndex,
        bits: u64,
        offset: u64,
        len: u64,
    ) -> Option<Bytes> {
        let data = self
            .nis
            .get_mut(&target)
            .expect("known target")
            .handle_get(from, pt, bits, offset, len)?;
        let initiator = self.nis.get_mut(&from).expect("known initiator");
        initiator.eq.post(Event {
            kind: EventKind::ReplyEnd,
            md: None,
            initiator: target,
            match_bits: bits,
            offset,
            length: data.len() as u64,
        });
        Some(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::me::MeOptions;

    fn pid(nid: u32) -> ProcessId {
        ProcessId { nid, pid: 0 }
    }

    fn net2() -> (Network, ProcessId, ProcessId) {
        let mut net = Network::new();
        let a = net.add(pid(0));
        let b = net.add(pid(1));
        (net, a, b)
    }

    #[test]
    fn put_deposits_and_raises_events() {
        let (mut net, a, b) = net2();
        let md = net.ni_mut(b).md_bind(16, MdOptions::default());
        net.ni_mut(b).me_attach(
            0,
            MatchEntry {
                source: None,
                match_bits: 7,
                ignore_bits: 0,
                options: MeOptions::default(),
                md,
            },
        );
        assert!(net.put(a, b, 0, 7, 0, Bytes::from_static(b"hello")));
        assert_eq!(&net.ni(b).md_bytes(md).unwrap()[..5], b"hello");
        let kinds: Vec<EventKind> = std::iter::from_fn(|| net.ni_mut(b).eq.poll())
            .map(|e| e.kind)
            .collect();
        assert_eq!(kinds, vec![EventKind::PutEnd, EventKind::Unlink]);
        let ikinds: Vec<EventKind> = std::iter::from_fn(|| net.ni_mut(a).eq.poll())
            .map(|e| e.kind)
            .collect();
        assert_eq!(ikinds, vec![EventKind::SendEnd, EventKind::Ack]);
    }

    #[test]
    fn unmatched_put_is_dropped() {
        let (mut net, a, b) = net2();
        assert!(!net.put(a, b, 0, 99, 0, Bytes::from_static(b"x")));
        assert_eq!(net.ni(b).dropped(), 1);
    }

    #[test]
    fn use_once_unlinks_persistent_stays() {
        let (mut net, a, b) = net2();
        let md = net.ni_mut(b).md_bind(64, MdOptions {
            manage_local_offset: true,
            ..MdOptions::default()
        });
        net.ni_mut(b).me_attach(
            0,
            MatchEntry {
                source: None,
                match_bits: 7,
                ignore_bits: 0,
                options: MeOptions {
                    use_once: false,
                    ..MeOptions::default()
                },
                md,
            },
        );
        assert!(net.put(a, b, 0, 7, 0, Bytes::from_static(b"one")));
        assert!(net.put(a, b, 0, 7, 0, Bytes::from_static(b"two")));
        assert_eq!(&net.ni(b).md_bytes(md).unwrap()[..6], b"onetwo");
        assert_eq!(net.ni(b).match_list(0).len(), 1, "persistent ME remains");
    }

    #[test]
    fn get_reads_remote_data() {
        let (mut net, a, b) = net2();
        let md = net.ni_mut(b).md_bind(8, MdOptions::default());
        // Pre-fill via a put from b to itself... simpler: direct buffer.
        net.ni_mut(b).mds.get_mut(&md).unwrap().buf[..4].copy_from_slice(b"data");
        net.ni_mut(b).me_attach(
            0,
            MatchEntry {
                source: None,
                match_bits: 3,
                ignore_bits: 0,
                options: MeOptions {
                    op_put: false,
                    op_get: true,
                    use_once: false,
                },
                md,
            },
        );
        let got = net.get(a, b, 0, 3, 0, 4).unwrap();
        assert_eq!(&got[..], b"data");
    }

    #[test]
    fn portal_indices_are_independent() {
        let (mut net, a, b) = net2();
        let md = net.ni_mut(b).md_bind(8, MdOptions::default());
        net.ni_mut(b).me_attach(
            3,
            MatchEntry {
                source: None,
                match_bits: 7,
                ignore_bits: 0,
                options: MeOptions::default(),
                md,
            },
        );
        assert!(!net.put(a, b, 0, 7, 0, Bytes::from_static(b"x")), "wrong pt");
        assert!(net.put(a, b, 3, 7, 0, Bytes::from_static(b"x")));
    }
}
