//! Fault/recovery accounting for benchmark reports.
//!
//! Collects the injection and recovery counters a faulted run leaves in
//! the cluster statistics registry into one flat struct the report
//! writers can append to their rows. A fault-free run collects all
//! zeros, and the report writers omit the columns entirely in that case
//! so existing Fig. 5/6 outputs stay byte-identical.

use crate::report::cells;
use mpiq_mpi::Cluster;

/// Injection and recovery totals for one benchmark run, summed across
/// every NIC in the cluster.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Wire faults the fabric injected (drops + duplicates + corruptions).
    pub injected: u64,
    /// Frames the link layer re-sent (go-back-N windows, counted per frame).
    pub retransmits: u64,
    /// ALPU hard resets (quarantine events).
    pub alpu_resets: u64,
    /// Matches served by software while an ALPU was quarantined.
    pub alpu_fallbacks: u64,
    /// Quarantined ALPUs brought back after their cooldown.
    pub alpu_reengagements: u64,
}

impl FaultCounters {
    /// Gather the counters from a finished run.
    pub fn collect(cluster: &Cluster) -> FaultCounters {
        let stats = cluster.stats();
        let suffix_sum = |suffix: &str| {
            stats
                .iter()
                .filter(|(k, _)| k.ends_with(suffix))
                .map(|(_, v)| v)
                .sum()
        };
        FaultCounters {
            injected: stats.sum_prefix("net.faults."),
            retransmits: suffix_sum(".link.retransmits"),
            alpu_resets: suffix_sum(".alpu.resets"),
            alpu_fallbacks: suffix_sum(".alpu.fallbacks"),
            alpu_reengagements: suffix_sum(".alpu.reengagements"),
        }
    }

    /// True when nothing fault-related happened (fault-free runs).
    pub fn is_zero(&self) -> bool {
        *self == FaultCounters::default()
    }

    /// The extra CSV column names, comma-joined (matches [`Self::csv`]).
    pub const CSV_HEADER: &'static str =
        "faults_injected,retransmits,alpu_resets,alpu_fallbacks,alpu_reengagements";

    /// The extra CSV cells (matches [`Self::CSV_HEADER`]).
    pub fn csv(&self) -> String {
        cells(&[
            self.injected,
            self.retransmits,
            self.alpu_resets,
            self.alpu_fallbacks,
            self.alpu_reengagements,
        ])
    }

    /// The extra JSON fields, in CSV column order.
    pub fn json_fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("faults_injected", self.injected.to_string()),
            ("retransmits", self.retransmits.to_string()),
            ("alpu_resets", self.alpu_resets.to_string()),
            ("alpu_fallbacks", self.alpu_fallbacks.to_string()),
            ("alpu_reengagements", self.alpu_reengagements.to_string()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_detection_and_rendering() {
        let z = FaultCounters::default();
        assert!(z.is_zero());
        assert_eq!(z.csv(), "0,0,0,0,0");
        let c = FaultCounters {
            injected: 3,
            retransmits: 2,
            ..FaultCounters::default()
        };
        assert!(!c.is_zero());
        assert_eq!(c.csv(), "3,2,0,0,0");
        assert_eq!(c.json_fields()[0], ("faults_injected", "3".to_string()));
        assert_eq!(
            FaultCounters::CSV_HEADER.split(',').count(),
            c.json_fields().len()
        );
    }
}
