//! A sequential script interpreter: blocking-feeling MPI programs on top
//! of the polled [`AppProgram`] model.
//!
//! `MPI_Send`, `MPI_Recv`, `MPI_Wait`, `MPI_Waitall` and `MPI_Barrier` are
//! "built from other MPI functions" in the paper's prototype (Fig. 4);
//! here they are built from `Isend`/`Irecv`/`Test` exactly the same way:
//! a [`Script`] is a list of [`Op`]s executed in order, suspending on
//! waits until the completion that unblocks them arrives.
//!
//! `Mark` ops record timestamps into a shared [`MarkLog`] — the
//! measurement hooks the benchmark harnesses read after a run.

use crate::app::{AppProgram, Mpi, Request};
use crate::types::CTX_INTERNAL;
use mpiq_dessim::Time;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// A log shared between a script (owned by a host component) and the
/// harness that reads it after the run.
///
/// Backed by `Arc<Mutex<..>>` so scripts can live inside `Send`
/// components and cross shard-thread boundaries under the partitioned
/// executor. There is no lock contention in practice: each script appends
/// from its own shard thread, and harnesses read only between runs. The
/// accessors keep the `borrow`/`borrow_mut` names of the earlier
/// `Rc<RefCell>` representation so call sites read the same.
#[derive(Debug, Default)]
pub struct SharedLog<T>(Arc<Mutex<Vec<T>>>);

impl<T> SharedLog<T> {
    /// Create an empty log.
    pub fn new() -> SharedLog<T> {
        SharedLog(Arc::new(Mutex::new(Vec::new())))
    }

    /// Read access to the entries.
    pub fn borrow(&self) -> MutexGuard<'_, Vec<T>> {
        self.0.lock().unwrap()
    }

    /// Write access to the entries.
    pub fn borrow_mut(&self) -> MutexGuard<'_, Vec<T>> {
        self.0.lock().unwrap()
    }
}

impl<T> Clone for SharedLog<T> {
    fn clone(&self) -> SharedLog<T> {
        SharedLog(Arc::clone(&self.0))
    }
}

/// Timestamp log shared between a script and its harness.
pub type MarkLog = SharedLog<(u32, Time)>;

/// Create an empty mark log.
pub fn mark_log() -> MarkLog {
    SharedLog::new()
}

/// Status log shared between a script and its harness: `(id, status)`
/// records appended by [`Op::Status`].
pub type StatusLog = SharedLog<(u32, crate::types::MpiStatus)>;

/// Create an empty status log.
pub fn status_log() -> StatusLog {
    SharedLog::new()
}

/// One script operation.
#[derive(Clone, Debug)]
pub enum Op {
    /// `MPI_Isend` into a slot.
    Isend {
        /// Destination rank.
        dst: u32,
        /// Communicator context (user traffic: [`crate::types::CTX_WORLD`]).
        ctx: u16,
        /// Tag.
        tag: u16,
        /// Payload bytes.
        len: u32,
        /// Slot to store the request handle.
        slot: usize,
    },
    /// `MPI_Irecv` into a slot.
    Irecv {
        /// Source rank or `MPI_ANY_SOURCE`.
        src: Option<u16>,
        /// Communicator context.
        ctx: u16,
        /// Tag or `MPI_ANY_TAG`.
        tag: Option<u16>,
        /// Buffer bytes.
        len: u32,
        /// Slot to store the request handle.
        slot: usize,
    },
    /// `MPI_Wait` on a slot.
    Wait {
        /// Slot to wait on.
        slot: usize,
    },
    /// `MPI_Waitany`: proceed once *any* of the slots completes.
    WaitAny {
        /// Slots to race.
        slots: Vec<usize>,
    },
    /// `MPI_Cancel` on a slot's request (receives only).
    Cancel {
        /// Slot whose request to cancel.
        slot: usize,
    },
    /// `MPI_Iprobe` into a slot (wait it, then read its status: a
    /// `cancelled` status means `flag == false`).
    Iprobe {
        /// Source filter.
        src: Option<u16>,
        /// Tag filter.
        tag: Option<u16>,
        /// Slot for the answer.
        slot: usize,
    },
    /// `MPI_Waitall` on several slots.
    WaitAll {
        /// Slots to wait on.
        slots: Vec<usize>,
    },
    /// `MPI_Barrier` on `MPI_COMM_WORLD` (dissemination algorithm over
    /// the internal context).
    Barrier,
    /// Record `(id, now)` into the mark log.
    Mark {
        /// Mark identifier.
        id: u32,
    },
    /// Pause the script for a fixed simulated duration (settle phases in
    /// benchmarks — e.g. letting ALPU insert sessions drain).
    Sleep {
        /// How long to sleep.
        dur: Time,
    },
    /// Record the `MPI_Status` of a completed request into the status
    /// log as `(id, status)`. The slot must already be complete (place
    /// after its `Wait`).
    Status {
        /// Slot whose status to record.
        slot: usize,
        /// Identifier written alongside.
        id: u32,
    },
    /// A blocking collective, offered to the NIC first
    /// ([`Mpi::icoll`]). If the NIC declines (`cancelled` status), the
    /// script replays the *identical* shared step plan
    /// ([`mpiq_nic::coll::steps`]) through ordinary sends and receives —
    /// so offloading and fallback ranks produce the same wire pattern
    /// and interoperate within one collective.
    Coll {
        /// Which collective.
        op: mpiq_nic::CollOp,
        /// Root rank (bcast; ignored for barrier/allreduce).
        root: u32,
        /// Payload bytes per message.
        len: u32,
        /// Record the final status into the status log under this id.
        sid: Option<u32>,
    },
    /// Fault-tolerant agreement on the failed-rank set (ULFM
    /// `MPI_Comm_agree` shape): a fixed number of all-exchange
    /// [`mpiq_nic::CollOp::Agree`] sweeps, each offered to the NIC first
    /// with the shared-plan host fallback on decline. The sweep count is
    /// fixed — not run-until-stable — so every survivor performs the
    /// same wire pattern and no rank stops a sweep early while a partner
    /// still waits on it. Each sweep is seeded with the mask accumulated
    /// so far; with all-to-all exchange every survivor hears about a
    /// rank that died in sweep `j` by the end of sweep `j + 1`, so the
    /// default 3 sweeps converge for failures up to the penultimate
    /// sweep. The agreed mask persists in the script (input to
    /// [`Op::Shrink`]) and is recorded as the status `len` under `sid`.
    Agree {
        /// All-exchange sweeps to run (≥ 2; default 3).
        sweeps: u32,
        /// Record the agreed mask (status `len`) under this id.
        sid: Option<u32>,
    },
    /// Rebuild a dense rank mapping over the survivors of the last
    /// [`Op::Agree`] (ULFM `MPI_Comm_shrink` shape): survivors are the
    /// world ranks whose bit is clear in the agreed mask, in ascending
    /// world-rank order, and this rank's shrunk rank is its index in
    /// that list. Purely local — consistency comes from agreement, so no
    /// further communication is needed. Records a status under `sid`
    /// with `source` = shrunk rank and `len` = survivor count.
    Shrink {
        /// Record the shrunk mapping under this id.
        sid: Option<u32>,
    },
    /// A collective over the *shrunk* communicator: the shared step plan
    /// generated in shrunk rank space, with every peer translated back
    /// to its world rank through the survivor list, replayed host-side.
    /// (The NIC offload engine derives peers from `rank == node`, which
    /// no longer holds after a shrink, so these always run on the host.)
    /// `root` is a shrunk-space rank. A rank excluded by the shrink —
    /// its own bit set in the agreed mask — completes immediately with a
    /// `cancelled` status.
    ShrunkColl {
        /// Which collective.
        op: mpiq_nic::CollOp,
        /// Root rank in shrunk space (bcast; ignored otherwise).
        root: u32,
        /// Payload bytes per message.
        len: u32,
        /// Record the final status into the status log under this id.
        sid: Option<u32>,
    },
    /// `MPI_Send` with retry-and-backoff: on a typed `RankFailed`, sleep
    /// the (doubling) backoff and reissue, up to `tries` attempts total.
    /// A peer that restarts within the retry budget turns a
    /// would-be-fatal send into a delayed success.
    RetrySend {
        /// Destination rank.
        dst: u32,
        /// Tag.
        tag: u16,
        /// Payload bytes.
        len: u32,
        /// Total attempts (≥ 1).
        tries: u32,
        /// Initial backoff before the second attempt; doubles per retry.
        backoff: Time,
        /// Record the final status under this id.
        sid: Option<u32>,
    },
    /// `MPI_Recv` with retry-and-backoff; see [`Op::RetrySend`].
    RetryRecv {
        /// Source rank.
        src: u16,
        /// Tag.
        tag: u16,
        /// Buffer bytes.
        len: u32,
        /// Total attempts (≥ 1).
        tries: u32,
        /// Initial backoff before the second attempt; doubles per retry.
        backoff: Time,
        /// Record the final status under this id.
        sid: Option<u32>,
    },
}

#[derive(Debug)]
struct BarrierRound {
    send: Request,
    recv: Request,
}

/// In-flight state of one [`Op::Coll`].
#[derive(Debug)]
enum CollRun {
    /// Offered to the NIC; waiting on its single end-of-plan completion.
    Offload {
        /// The offload request.
        req: Request,
        /// Instance slot, reused verbatim by the fallback plan.
        instance: u16,
    },
    /// NIC declined: the host replays the shared plan, one step at a
    /// time (each step is a blocking send or receive, exactly what the
    /// dependency-ordered plan requires).
    Host {
        steps: Vec<mpiq_nic::CollStep>,
        idx: usize,
        pending: Option<Request>,
        /// First dead peer seen mid-plan (typed `RankFailed` statuses on
        /// individual steps); carried into the final synthetic status.
        /// Never set in agree mode, where failures are the payload.
        failed: Option<u16>,
        /// Agreement mode: sends stamp the accumulated `mask` as their
        /// length, received lengths and per-step `RankFailed` ranks OR
        /// into it, and the final status carries it as `len` — mirroring
        /// the firmware's offloaded accumulation step for step.
        agree: bool,
        /// Accumulated failed-rank bitmask (agree mode only).
        mask: u16,
    },
}

/// In-flight state of one [`Op::RetrySend`]/[`Op::RetryRecv`].
#[derive(Debug)]
struct RetryRun {
    /// The outstanding attempt, `None` while backing off before reissue.
    pending: Option<Request>,
    /// Attempts left after the outstanding one.
    tries_left: u32,
    /// Backoff before the next reissue (doubles each retry).
    backoff: Time,
}

/// The interpreter state for one rank's script.
pub struct Script {
    ops: Vec<Op>,
    pc: usize,
    slots: HashMap<usize, Request>,
    barrier_instance: u16,
    barrier_round: u32,
    barrier_pending: Option<BarrierRound>,
    /// Instance-slot counter for [`Op::Coll`] (wraps within the tag
    /// partition; scripts run collectives sequentially, so slots can't
    /// collide in flight).
    coll_instance: u16,
    coll: Option<CollRun>,
    /// Completed sweeps of the current [`Op::Agree`].
    agree_sweep: u32,
    /// The failed-rank mask accumulated across agree sweeps. Monotonic
    /// across the script's lifetime (a rank, once agreed dead, stays
    /// dead), read by [`Op::Shrink`].
    agree_mask: u16,
    /// Survivor list (world ranks, ascending) set by [`Op::Shrink`].
    shrunk: Option<Vec<u32>>,
    /// In-flight retry verb state.
    retry: Option<RetryRun>,
    sleep_until: Option<Time>,
    marks: MarkLog,
    statuses: StatusLog,
}

impl Script {
    /// Build from explicit ops.
    pub fn new(ops: Vec<Op>, marks: MarkLog) -> Script {
        Script {
            ops,
            pc: 0,
            slots: HashMap::new(),
            barrier_instance: 0,
            barrier_round: 0,
            barrier_pending: None,
            coll_instance: 0,
            coll: None,
            agree_sweep: 0,
            agree_mask: 0,
            shrunk: None,
            retry: None,
            sleep_until: None,
            marks,
            statuses: SharedLog::new(),
        }
    }

    /// Attach a status log for [`Op::Status`] records.
    pub fn with_status_log(mut self, log: StatusLog) -> Script {
        self.statuses = log;
        self
    }

    /// Start the collective and barrier instance counters at a given
    /// base instead of 0. Recovery programs staged for a restarted node
    /// use this to align their instance slots (and therefore tags) with
    /// the survivors' scripts, which have already consumed some slots —
    /// without alignment a post-rejoin collective would cross-match
    /// against a different instance's tags and deadlock.
    pub fn with_instance_base(mut self, coll: u16, barrier: u16) -> Script {
        self.coll_instance = coll;
        self.barrier_instance = barrier;
        self
    }

    /// Fluent builder.
    pub fn builder() -> ScriptBuilder {
        ScriptBuilder::default()
    }

    /// Dissemination barrier: returns `true` when this rank has finished
    /// the barrier.
    fn poll_barrier(&mut self, mpi: &mut Mpi<'_, '_>) -> bool {
        let n = mpi.size();
        if n <= 1 {
            self.barrier_instance = self.barrier_instance.wrapping_add(1);
            return true;
        }
        let rounds = (n as f64).log2().ceil() as u32;
        loop {
            if self.barrier_round >= rounds {
                self.barrier_round = 0;
                self.barrier_instance = self.barrier_instance.wrapping_add(1);
                return true;
            }
            if self.barrier_pending.is_none() {
                let dist = 1u32 << self.barrier_round;
                let me = mpi.rank();
                let to = (me + dist) % n;
                let from = (me + n - dist) % n;
                // Tag encodes (instance, round) so concurrent barriers
                // cannot cross-match.
                let tag = self
                    .barrier_instance
                    .wrapping_mul(32)
                    .wrapping_add(self.barrier_round as u16)
                    & 0x7FFF;
                let send = mpi.isend_ctx(to, CTX_INTERNAL, tag, 0);
                let recv = mpi.irecv_ctx(Some(from as u16), CTX_INTERNAL, Some(tag), 0);
                self.barrier_pending = Some(BarrierRound { send, recv });
            }
            let pend = self.barrier_pending.as_ref().expect("just set");
            if mpi.test(pend.send) && mpi.test(pend.recv) {
                self.barrier_pending = None;
                self.barrier_round += 1;
            } else {
                return false;
            }
        }
    }

    /// Drive one [`Op::Coll`] (or one agree sweep, or one
    /// [`Op::ShrunkColl`]): offer-to-NIC, then (on decline) the
    /// host-side replay of the identical plan. Shrunk collectives skip
    /// the offer and go straight to a peer-translated host plan. Returns
    /// the final synthetic status when the collective is done, `None`
    /// while it is still in flight. In agree mode (`op` is
    /// [`mpiq_nic::CollOp::Agree`]) `len` seeds the failed-rank mask and
    /// the returned status's `len` carries the accumulated mask.
    fn poll_coll(
        &mut self,
        mpi: &mut Mpi<'_, '_>,
        op: mpiq_nic::CollOp,
        root: u32,
        len: u32,
        shrunk: bool,
    ) -> Option<crate::types::MpiStatus> {
        let agree = op == mpiq_nic::CollOp::Agree;
        loop {
            match self.coll.take() {
                None => {
                    let instance = self.coll_instance % mpiq_nic::coll::INSTANCES;
                    self.coll_instance = self.coll_instance.wrapping_add(1);
                    if shrunk {
                        let survivors =
                            self.shrunk.clone().expect("ShrunkColl before Shrink");
                        let Some(me) =
                            survivors.iter().position(|&r| r == mpi.rank())
                        else {
                            // This rank was shrunk out: nothing to do.
                            return Some(crate::types::MpiStatus {
                                source: mpi.rank() as u16,
                                tag: 0,
                                len: 0,
                                cancelled: true,
                                overflow: false,
                                error: None,
                            });
                        };
                        let steps = mpiq_nic::coll::steps(
                            op,
                            me as u32,
                            survivors.len() as u32,
                            root,
                            len,
                            instance,
                        )
                        .into_iter()
                        .map(|s| mpiq_nic::CollStep {
                            peer: survivors[s.peer as usize],
                            ..s
                        })
                        .collect();
                        self.coll = Some(CollRun::Host {
                            steps,
                            idx: 0,
                            pending: None,
                            failed: None,
                            agree,
                            mask: len as u16,
                        });
                    } else {
                        let req = mpi.icoll(op, root, len, instance);
                        self.coll = Some(CollRun::Offload { req, instance });
                    }
                }
                Some(CollRun::Offload { req, instance }) => {
                    let Some(st) = mpi.status(req) else {
                        self.coll = Some(CollRun::Offload { req, instance });
                        return None;
                    };
                    if st.cancelled {
                        // Declined: replay the identical shared plan.
                        self.coll = Some(CollRun::Host {
                            steps: mpiq_nic::coll::steps(
                                op,
                                mpi.rank(),
                                mpi.size(),
                                root,
                                len,
                                instance,
                            ),
                            idx: 0,
                            pending: None,
                            failed: None,
                            agree,
                            mask: len as u16,
                        });
                    } else {
                        return Some(st);
                    }
                }
                Some(CollRun::Host {
                    steps,
                    mut idx,
                    mut pending,
                    mut failed,
                    agree,
                    mut mask,
                }) => {
                    loop {
                        if let Some(r) = pending {
                            let Some(st) = mpi.status(r) else {
                                self.coll = Some(CollRun::Host {
                                    steps,
                                    idx,
                                    pending,
                                    failed,
                                    agree,
                                    mask,
                                });
                                return None;
                            };
                            if let Some(crate::types::MpiError::RankFailed { rank }) = st.error {
                                if agree {
                                    mask |= 1 << rank.min(15);
                                } else {
                                    failed.get_or_insert(rank);
                                }
                            } else if agree && steps[idx].dir == mpiq_nic::Dir::Recv {
                                mask |= st.len as u16;
                            }
                            idx += 1;
                        }
                        let Some(step) = steps.get(idx) else {
                            // Plan done: one synthetic status, shaped
                            // exactly like the NIC's end-of-plan
                            // completion.
                            return Some(crate::types::MpiStatus {
                                source: failed.unwrap_or(mpi.rank() as u16),
                                tag: 0,
                                len: if agree { mask as u32 } else { 0 },
                                cancelled: false,
                                overflow: false,
                                error: failed
                                    .map(|rank| crate::types::MpiError::RankFailed { rank }),
                            });
                        };
                        pending = Some(match step.dir {
                            mpiq_nic::Dir::Send => {
                                // Agreement frames carry the current
                                // mask, exactly as the firmware stamps
                                // them.
                                let slen = if agree { mask as u32 } else { step.len };
                                mpi.isend_ctx(step.peer, CTX_INTERNAL, step.tag, slen)
                            }
                            mpiq_nic::Dir::Recv => {
                                // Agree recvs post a full-mask-sized
                                // buffer: the arriving length is the
                                // sender's mask at stamp time, not the
                                // plan's static length.
                                let rlen = if agree { u16::MAX as u32 } else { step.len };
                                mpi.irecv_ctx(
                                    Some(step.peer as u16),
                                    CTX_INTERNAL,
                                    Some(step.tag),
                                    rlen,
                                )
                            }
                        });
                    }
                }
            }
        }
    }

    /// Drive one retry verb. Returns `true` when the op (with all its
    /// retries) has concluded and the script may advance.
    #[allow(clippy::too_many_arguments)]
    fn poll_retry(
        &mut self,
        mpi: &mut Mpi<'_, '_>,
        send: bool,
        peer: u32,
        tag: u16,
        len: u32,
        tries: u32,
        backoff: Time,
        sid: Option<u32>,
    ) -> bool {
        loop {
            // Between attempts: hold until the backoff elapses.
            if let Some(until) = self.sleep_until {
                if mpi.now() < until {
                    return false;
                }
                self.sleep_until = None;
            }
            let issue = |mpi: &mut Mpi<'_, '_>| {
                if send {
                    mpi.isend(peer, tag, len)
                } else {
                    mpi.irecv(Some(peer as u16), Some(tag), len)
                }
            };
            match self.retry.take() {
                None => {
                    self.retry = Some(RetryRun {
                        pending: Some(issue(mpi)),
                        tries_left: tries.saturating_sub(1),
                        backoff,
                    });
                }
                Some(mut run) => match run.pending {
                    None => {
                        // Backoff elapsed: reissue.
                        run.pending = Some(issue(mpi));
                        self.retry = Some(run);
                    }
                    Some(r) => {
                        let Some(st) = mpi.status(r) else {
                            self.retry = Some(run);
                            return false;
                        };
                        if st.rank_failed() && run.tries_left > 0 {
                            run.tries_left -= 1;
                            run.pending = None;
                            self.sleep_until = Some(mpi.now() + run.backoff);
                            mpi.wake_after(run.backoff);
                            run.backoff = Time(run.backoff.0 * 2);
                            self.retry = Some(run);
                            return false;
                        }
                        if let Some(id) = sid {
                            self.statuses.borrow_mut().push((id, st));
                        }
                        self.retry = None;
                        return true;
                    }
                },
            }
        }
    }
}

impl AppProgram for Script {
    fn step(&mut self, mpi: &mut Mpi<'_, '_>) {
        while self.pc < self.ops.len() {
            match self.ops[self.pc].clone() {
                Op::Isend {
                    dst,
                    ctx,
                    tag,
                    len,
                    slot,
                } => {
                    let r = mpi.isend_ctx(dst, ctx, tag, len);
                    self.slots.insert(slot, r);
                    self.pc += 1;
                }
                Op::Irecv {
                    src,
                    ctx,
                    tag,
                    len,
                    slot,
                } => {
                    let r = mpi.irecv_ctx(src, ctx, tag, len);
                    self.slots.insert(slot, r);
                    self.pc += 1;
                }
                Op::Wait { slot } => {
                    let r = self.slots[&slot];
                    if mpi.test(r) {
                        self.pc += 1;
                    } else {
                        return;
                    }
                }
                Op::WaitAny { slots } => {
                    if slots.iter().any(|s| mpi.test(self.slots[s])) {
                        self.pc += 1;
                    } else {
                        return;
                    }
                }
                Op::Cancel { slot } => {
                    let r = self.slots[&slot];
                    mpi.cancel(r);
                    self.pc += 1;
                }
                Op::Iprobe { src, tag, slot } => {
                    let r = mpi.iprobe(src, tag);
                    self.slots.insert(slot, r);
                    self.pc += 1;
                }
                Op::WaitAll { slots } => {
                    if slots.iter().all(|s| mpi.test(self.slots[s])) {
                        self.pc += 1;
                    } else {
                        return;
                    }
                }
                Op::Barrier => {
                    if self.poll_barrier(mpi) {
                        self.pc += 1;
                    } else {
                        return;
                    }
                }
                Op::Coll { op, root, len, sid } => {
                    match self.poll_coll(mpi, op, root, len, false) {
                        Some(st) => {
                            if let Some(id) = sid {
                                self.statuses.borrow_mut().push((id, st));
                            }
                            self.pc += 1;
                        }
                        None => return,
                    }
                }
                Op::Agree { sweeps, sid } => {
                    let mut done = false;
                    while !done {
                        let seed = self.agree_mask as u32;
                        match self.poll_coll(mpi, mpiq_nic::CollOp::Agree, 0, seed, false) {
                            Some(st) => {
                                self.agree_mask |= st.len as u16;
                                self.agree_sweep += 1;
                                if self.agree_sweep >= sweeps {
                                    self.agree_sweep = 0;
                                    if let Some(id) = sid {
                                        self.statuses.borrow_mut().push((
                                            id,
                                            crate::types::MpiStatus {
                                                source: mpi.rank() as u16,
                                                tag: 0,
                                                len: self.agree_mask as u32,
                                                cancelled: false,
                                                overflow: false,
                                                error: None,
                                            },
                                        ));
                                    }
                                    self.pc += 1;
                                    done = true;
                                }
                            }
                            None => return,
                        }
                    }
                }
                Op::Shrink { sid } => {
                    let mask = self.agree_mask;
                    let survivors: Vec<u32> = (0..mpi.size())
                        .filter(|&r| r >= 16 || mask & (1 << r) == 0)
                        .collect();
                    let me = survivors.iter().position(|&r| r == mpi.rank());
                    if let Some(id) = sid {
                        self.statuses.borrow_mut().push((
                            id,
                            crate::types::MpiStatus {
                                source: me.map_or(u16::MAX, |i| i as u16),
                                tag: 0,
                                len: survivors.len() as u32,
                                cancelled: me.is_none(),
                                overflow: false,
                                error: None,
                            },
                        ));
                    }
                    self.shrunk = Some(survivors);
                    self.pc += 1;
                }
                Op::ShrunkColl { op, root, len, sid } => {
                    match self.poll_coll(mpi, op, root, len, true) {
                        Some(st) => {
                            if let Some(id) = sid {
                                self.statuses.borrow_mut().push((id, st));
                            }
                            self.pc += 1;
                        }
                        None => return,
                    }
                }
                Op::RetrySend {
                    dst,
                    tag,
                    len,
                    tries,
                    backoff,
                    sid,
                } => {
                    if self.poll_retry(mpi, true, dst, tag, len, tries, backoff, sid) {
                        self.pc += 1;
                    } else {
                        return;
                    }
                }
                Op::RetryRecv {
                    src,
                    tag,
                    len,
                    tries,
                    backoff,
                    sid,
                } => {
                    if self.poll_retry(mpi, false, src as u32, tag, len, tries, backoff, sid) {
                        self.pc += 1;
                    } else {
                        return;
                    }
                }
                Op::Mark { id } => {
                    let now = mpi.now();
                    self.marks.borrow_mut().push((id, now));
                    self.pc += 1;
                }
                Op::Status { slot, id } => {
                    let r = self.slots[&slot];
                    let st = mpi
                        .status(r)
                        .expect("Op::Status requires a completed request");
                    self.statuses.borrow_mut().push((id, st));
                    self.pc += 1;
                }
                Op::Sleep { dur } => match self.sleep_until {
                    None => {
                        self.sleep_until = Some(mpi.now() + dur);
                        mpi.wake_after(dur);
                        return;
                    }
                    Some(until) => {
                        if mpi.now() >= until {
                            self.sleep_until = None;
                            self.pc += 1;
                        } else {
                            return; // spurious wake (a completion arrived)
                        }
                    }
                },
            }
        }
        mpi.finish();
    }
}

/// Fluent construction of scripts with automatic slot allocation.
#[derive(Default)]
pub struct ScriptBuilder {
    ops: Vec<Op>,
    next_slot: usize,
}

impl ScriptBuilder {
    /// `MPI_Isend`; returns the slot for a later wait.
    pub fn isend(&mut self, dst: u32, tag: u16, len: u32) -> usize {
        self.isend_ctx(dst, crate::types::CTX_WORLD, tag, len)
    }

    /// `MPI_Isend` on an explicit context (collectives machinery).
    pub fn isend_ctx(&mut self, dst: u32, ctx: u16, tag: u16, len: u32) -> usize {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.ops.push(Op::Isend {
            dst,
            ctx,
            tag,
            len,
            slot,
        });
        slot
    }

    /// `MPI_Irecv`; returns the slot for a later wait.
    pub fn irecv(&mut self, src: Option<u16>, tag: Option<u16>, len: u32) -> usize {
        self.irecv_ctx(src, crate::types::CTX_WORLD, tag, len)
    }

    /// `MPI_Irecv` on an explicit context (collectives machinery).
    pub fn irecv_ctx(&mut self, src: Option<u16>, ctx: u16, tag: Option<u16>, len: u32) -> usize {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.ops.push(Op::Irecv {
            src,
            ctx,
            tag,
            len,
            slot,
        });
        slot
    }

    /// `MPI_Wait`.
    pub fn wait(&mut self, slot: usize) -> &mut Self {
        self.ops.push(Op::Wait { slot });
        self
    }

    /// `MPI_Waitall`.
    pub fn wait_all(&mut self, slots: Vec<usize>) -> &mut Self {
        self.ops.push(Op::WaitAll { slots });
        self
    }

    /// `MPI_Waitany`.
    pub fn wait_any(&mut self, slots: Vec<usize>) -> &mut Self {
        self.ops.push(Op::WaitAny { slots });
        self
    }

    /// `MPI_Cancel` on a slot's request.
    pub fn cancel(&mut self, slot: usize) -> &mut Self {
        self.ops.push(Op::Cancel { slot });
        self
    }

    /// `MPI_Iprobe`; returns the slot carrying the answer.
    pub fn iprobe(&mut self, src: Option<u16>, tag: Option<u16>) -> usize {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.ops.push(Op::Iprobe { src, tag, slot });
        slot
    }

    /// Blocking `MPI_Send` = `Isend` + `Wait`.
    pub fn send(&mut self, dst: u32, tag: u16, len: u32) -> &mut Self {
        let s = self.isend(dst, tag, len);
        self.wait(s)
    }

    /// Blocking `MPI_Recv` = `Irecv` + `Wait`.
    pub fn recv(&mut self, src: Option<u16>, tag: Option<u16>, len: u32) -> &mut Self {
        let s = self.irecv(src, tag, len);
        self.wait(s)
    }

    /// `MPI_Barrier`.
    pub fn barrier(&mut self) -> &mut Self {
        self.ops.push(Op::Barrier);
        self
    }

    /// Record a timestamp.
    pub fn mark(&mut self, id: u32) -> &mut Self {
        self.ops.push(Op::Mark { id });
        self
    }

    /// Pause for a fixed simulated duration.
    pub fn sleep(&mut self, dur: Time) -> &mut Self {
        self.ops.push(Op::Sleep { dur });
        self
    }

    /// Record a completed slot's status.
    pub fn status(&mut self, slot: usize, id: u32) -> &mut Self {
        self.ops.push(Op::Status { slot, id });
        self
    }

    /// A NIC-offloadable collective with host fallback ([`Op::Coll`]).
    /// `sid` records the final status into the status log.
    pub fn coll(
        &mut self,
        op: mpiq_nic::CollOp,
        root: u32,
        len: u32,
        sid: Option<u32>,
    ) -> &mut Self {
        self.ops.push(Op::Coll { op, root, len, sid });
        self
    }

    /// `MPI_Barrier` via the NIC-offload path (host fallback on decline).
    pub fn coll_barrier(&mut self) -> &mut Self {
        self.coll(mpiq_nic::CollOp::Barrier, 0, 0, None)
    }

    /// `MPI_Bcast` via the NIC-offload path (host fallback on decline).
    pub fn coll_bcast(&mut self, root: u32, len: u32) -> &mut Self {
        self.coll(mpiq_nic::CollOp::Bcast, root, len, None)
    }

    /// `MPI_Allreduce` via the NIC-offload path (host fallback on
    /// decline).
    pub fn coll_allreduce(&mut self, len: u32) -> &mut Self {
        self.coll(mpiq_nic::CollOp::Allreduce, 0, len, None)
    }

    /// Fault-tolerant agreement on the failed-rank set with the default
    /// 3 all-exchange sweeps ([`Op::Agree`]). The agreed mask is
    /// recorded as the status `len` under `sid`.
    pub fn agree(&mut self, sid: Option<u32>) -> &mut Self {
        self.agree_sweeps(3, sid)
    }

    /// [`Op::Agree`] with an explicit sweep count (≥ 2 for masks to
    /// propagate between survivors that never directly heard the same
    /// failure).
    pub fn agree_sweeps(&mut self, sweeps: u32, sid: Option<u32>) -> &mut Self {
        assert!(sweeps >= 2, "agreement needs at least 2 sweeps to converge");
        self.ops.push(Op::Agree { sweeps, sid });
        self
    }

    /// Rebuild a dense rank mapping over the survivors of the last
    /// agreement ([`Op::Shrink`]).
    pub fn shrink(&mut self, sid: Option<u32>) -> &mut Self {
        self.ops.push(Op::Shrink { sid });
        self
    }

    /// A collective over the shrunk communicator ([`Op::ShrunkColl`]);
    /// `root` is a shrunk-space rank.
    pub fn shrunk_coll(
        &mut self,
        op: mpiq_nic::CollOp,
        root: u32,
        len: u32,
        sid: Option<u32>,
    ) -> &mut Self {
        self.ops.push(Op::ShrunkColl { op, root, len, sid });
        self
    }

    /// `MPI_Barrier` over the shrunk communicator.
    pub fn shrunk_barrier(&mut self) -> &mut Self {
        self.shrunk_coll(mpiq_nic::CollOp::Barrier, 0, 0, None)
    }

    /// `MPI_Bcast` over the shrunk communicator (`root` in shrunk space).
    pub fn shrunk_bcast(&mut self, root: u32, len: u32) -> &mut Self {
        self.shrunk_coll(mpiq_nic::CollOp::Bcast, root, len, None)
    }

    /// `MPI_Allreduce` over the shrunk communicator.
    pub fn shrunk_allreduce(&mut self, len: u32) -> &mut Self {
        self.shrunk_coll(mpiq_nic::CollOp::Allreduce, 0, len, None)
    }

    /// Blocking send with retry-and-doubling-backoff ([`Op::RetrySend`]).
    pub fn retry_send(
        &mut self,
        dst: u32,
        tag: u16,
        len: u32,
        tries: u32,
        backoff: Time,
        sid: Option<u32>,
    ) -> &mut Self {
        assert!(tries >= 1);
        self.ops.push(Op::RetrySend { dst, tag, len, tries, backoff, sid });
        self
    }

    /// Blocking receive with retry-and-doubling-backoff
    /// ([`Op::RetryRecv`]).
    pub fn retry_recv(
        &mut self,
        src: u16,
        tag: u16,
        len: u32,
        tries: u32,
        backoff: Time,
        sid: Option<u32>,
    ) -> &mut Self {
        assert!(tries >= 1);
        self.ops.push(Op::RetryRecv { src, tag, len, tries, backoff, sid });
        self
    }

    /// Finish, attaching the mark log.
    pub fn build(&mut self, marks: MarkLog) -> Script {
        Script::new(std::mem::take(&mut self.ops), marks)
    }
}
