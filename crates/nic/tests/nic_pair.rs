//! Two-node NIC integration tests: a pair of NICs on a fabric, driven by
//! scripted host components. Exercises eager and rendezvous protocols,
//! matching semantics, ordering, and baseline-vs-ALPU equivalence.

use mpiq_dessim::prelude::*;
use mpiq_net::{Fabric, NetConfig, PORT_FROM_NIC};
use mpiq_nic::{
    Completion, HostRequest, Nic, NicConfig, ReqId, PORT_HOST_COMP, PORT_HOST_REQ, PORT_NET_RX,
    PORT_NET_TX,
};
use std::sync::Mutex;
use std::sync::Arc;

/// A host that fires a script of requests at fixed times and records
/// completions.
struct ScriptHost {
    nic: ComponentId,
    script: Vec<(Time, HostRequest)>,
    log: CompletionLog,
}

impl Component for ScriptHost {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (at, req) in self.script.drain(..) {
            // Request reaches the NIC one bus transaction after issue.
            ctx.send_to(self.nic, PORT_HOST_REQ, Payload::new(req), at + Time::from_ns(20));
        }
    }
    fn on_event(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        let comp = *ev.payload.downcast::<Completion>().unwrap();
        self.log.lock().unwrap().push((ctx.now(), comp));
    }
}

type CompletionLog = Arc<Mutex<Vec<(Time, Completion)>>>;

struct World {
    sim: Simulation,
    nics: Vec<ComponentId>,
    logs: Vec<CompletionLog>,
}

fn build(cfg: NicConfig, scripts: Vec<Vec<(Time, HostRequest)>>) -> World {
    let n = scripts.len() as u32;
    let mut sim = Simulation::new(1);
    let fab = sim.add_component("net", Fabric::new(NetConfig::default(), n));
    let mut nics = Vec::new();
    let mut logs = Vec::new();
    for (node, script) in scripts.into_iter().enumerate() {
        let nic = sim.add_component(&format!("nic{node}"), Nic::new(node as u32, cfg));
        sim.connect(nic, PORT_NET_TX, fab, PORT_FROM_NIC, Time::ZERO);
        sim.connect(fab, Fabric::out_port(node as u32), nic, PORT_NET_RX, Time::ZERO);
        let log = Arc::new(Mutex::new(Vec::new()));
        let host = sim.add_component(
            &format!("host{node}"),
            ScriptHost {
                nic,
                script,
                log: log.clone(),
            },
        );
        sim.connect(nic, PORT_HOST_COMP, host, InPort(0), Time::from_ns(20));
        nics.push(nic);
        logs.push(log);
    }
    World { sim, nics, logs }
}

fn rid(rank: u32, seq: u64) -> ReqId {
    ReqId { rank, seq }
}

fn send(rank: u32, seq: u64, dst: u32, tag: u16, len: u32) -> HostRequest {
    HostRequest::PostSend {
        req: rid(rank, seq),
        dst,
        context: 1,
        tag,
        len,
    }
}

fn recv(rank: u32, seq: u64, src: Option<u16>, tag: Option<u16>, len: u32) -> HostRequest {
    HostRequest::PostRecv {
        req: rid(rank, seq),
        src,
        context: 1,
        tag,
        len,
    }
}

#[test]
fn eager_zero_length_pingpong_half() {
    // Node 1 pre-posts; node 0 sends at t=1us.
    let w = build(
        NicConfig::baseline(),
        vec![
            vec![(Time::from_us(1), send(0, 0, 1, 7, 0))],
            vec![(Time::ZERO, recv(1, 0, Some(0), Some(7), 0))],
        ],
    );
    let mut w = w;
    w.sim.run();
    let log1 = w.logs[1].lock().unwrap();
    assert_eq!(log1.len(), 1, "receiver must complete exactly once");
    let (t, comp) = log1[0];
    assert_eq!(comp.req, rid(1, 0));
    assert_eq!(comp.source, 0);
    assert_eq!(comp.tag, 7);
    assert_eq!(comp.len, 0);
    let latency = t - Time::from_us(1);
    assert!(
        latency > Time::from_ns(200) && latency < Time::from_us(2),
        "one-way latency {latency} out of sane range"
    );
    // Sender's local completion too.
    assert_eq!(w.logs[0].lock().unwrap().len(), 1);
}

#[test]
fn unexpected_eager_completes_on_late_recv() {
    let w = build(
        NicConfig::baseline(),
        vec![
            vec![(Time::ZERO, send(0, 0, 1, 3, 256))],
            vec![(Time::from_us(5), recv(1, 0, Some(0), Some(3), 256))],
        ],
    );
    let mut w = w;
    w.sim.run();
    let log1 = w.logs[1].lock().unwrap();
    assert_eq!(log1.len(), 1);
    assert_eq!(log1[0].1.len, 256);
    assert!(log1[0].0 > Time::from_us(5));
}

#[test]
fn rendezvous_transfers_large_payload() {
    let len = 64 * 1024; // far above the 2 KB eager threshold
    let w = build(
        NicConfig::baseline(),
        vec![
            vec![(Time::from_us(1), send(0, 0, 1, 9, len))],
            vec![(Time::ZERO, recv(1, 0, Some(0), Some(9), len))],
        ],
    );
    let mut w = w;
    w.sim.run();
    let log1 = w.logs[1].lock().unwrap();
    assert_eq!(log1.len(), 1);
    assert_eq!(log1[0].1.len, len);
    // 64 KB at 2 B/ns on the wire alone is 32 us.
    assert!(log1[0].0 > Time::from_us(30), "rndv too fast: {}", log1[0].0);
    // Sender completes after shipping the data.
    let log0 = w.logs[0].lock().unwrap();
    assert_eq!(log0.len(), 1);
}

#[test]
fn rendezvous_unexpected_side() {
    // Request arrives before the receive is posted.
    let len = 16 * 1024;
    let w = build(
        NicConfig::baseline(),
        vec![
            vec![(Time::ZERO, send(0, 0, 1, 9, len))],
            vec![(Time::from_us(10), recv(1, 0, Some(0), Some(9), len))],
        ],
    );
    let mut w = w;
    w.sim.run();
    assert_eq!(w.logs[1].lock().unwrap().len(), 1);
    assert_eq!(w.logs[1].lock().unwrap()[0].1.len, len);
}

#[test]
fn wildcard_source_and_tag_match() {
    let w = build(
        NicConfig::baseline(),
        vec![
            vec![(Time::from_us(1), send(0, 0, 2, 42, 0))],
            vec![(Time::from_us(1), send(1, 0, 2, 43, 0))],
            vec![
                (Time::ZERO, recv(2, 0, None, Some(42), 0)),
                (Time::ZERO, recv(2, 1, None, None, 0)),
            ],
        ],
    );
    let mut w = w;
    w.sim.run();
    let log = w.logs[2].lock().unwrap();
    assert_eq!(log.len(), 2);
    // The ANY/ANY receive was posted second, so the tag-42 message goes to
    // req 0 and the other to req 1.
    let by_req: std::collections::HashMap<u64, u16> =
        log.iter().map(|&(_, c)| (c.req.seq, c.tag)).collect();
    assert_eq!(by_req[&0], 42);
    assert_eq!(by_req[&1], 43);
}

#[test]
fn same_pair_messages_complete_in_order() {
    // MPI ordering: two identical sends must match two identical receives
    // in post order.
    let w = build(
        NicConfig::baseline(),
        vec![
            vec![
                (Time::from_us(1), send(0, 0, 1, 5, 64)),
                (Time::from_us(1), send(0, 1, 1, 5, 64)),
            ],
            vec![
                (Time::ZERO, recv(1, 0, Some(0), Some(5), 64)),
                (Time::ZERO, recv(1, 1, Some(0), Some(5), 64)),
            ],
        ],
    );
    let mut w = w;
    w.sim.run();
    let log = w.logs[1].lock().unwrap();
    assert_eq!(log.len(), 2);
    assert!(log[0].0 <= log[1].0);
    assert_eq!(log[0].1.req.seq, 0, "first recv matches first send");
    assert_eq!(log[1].1.req.seq, 1);
}

/// Run the same mixed workload on two configs; application-visible results
/// must be identical (only timing may differ).
fn run_workload(cfg: NicConfig) -> Vec<Vec<Completion>> {
    let mut scripts: Vec<Vec<(Time, HostRequest)>> = vec![vec![], vec![]];
    // Node 1 posts a pile of receives, some wildcards; node 0 sends a mix
    // of matching and non-matching messages; node 1 then posts late
    // receives to drain the unexpected queue.
    for i in 0..20u64 {
        scripts[1].push((
            Time::from_ns(100 * i),
            recv(1, i, Some(0), Some(1000 + i as u16), 64),
        ));
    }
    scripts[1].push((Time::from_us(3), recv(1, 20, None, Some(7), 0)));
    for i in 0..20u64 {
        scripts[0].push((
            Time::from_us(10) + Time::from_ns(500 * i),
            send(0, i, 1, 1000 + i as u16, 64),
        ));
    }
    scripts[0].push((Time::from_us(25), send(0, 20, 1, 7, 0)));
    // Unexpected traffic, drained later.
    for i in 0..10u64 {
        scripts[0].push((
            Time::from_us(30) + Time::from_ns(500 * i),
            send(0, 21 + i, 1, 2000 + i as u16, 128),
        ));
    }
    for i in 0..10u64 {
        scripts[1].push((
            Time::from_us(60) + Time::from_ns(300 * i),
            recv(1, 21 + i, Some(0), Some(2000 + i as u16), 128),
        ));
    }
    let mut w = build(cfg, scripts);
    w.sim.run();
    // Quiesce check: ALPU shadow invariants hold at the end.
    for &nic in &w.nics {
        let nic_ref: &Nic = w.sim.component(nic).expect("downcast Nic");
        mpiq_nic::firmware::check_invariants(nic_ref.firmware());
    }
    w.logs
        .iter()
        .map(|l| {
            let mut v: Vec<Completion> = l.lock().unwrap().iter().map(|&(_, c)| c).collect();
            v.sort_by_key(|c| c.req);
            v
        })
        .collect()
}

#[test]
fn alpu_and_baseline_agree_on_results() {
    let base = run_workload(NicConfig::baseline());
    let alpu128 = run_workload(NicConfig::with_alpus(128));
    let alpu256 = run_workload(NicConfig::with_alpus(256));
    assert_eq!(base, alpu128);
    assert_eq!(base, alpu256);
    // Everything completed.
    assert_eq!(base[0].len(), 31);
    assert_eq!(base[1].len(), 31);
}

/// The headline effect: with a long posted queue, the baseline NIC's
/// latency grows with traversal depth while the ALPU NIC stays flat.
fn deep_queue_latency(cfg: NicConfig, depth: u64) -> Time {
    let mut scripts: Vec<Vec<(Time, HostRequest)>> = vec![vec![], vec![]];
    // Node 1 posts `depth` non-matching receives then the matching one.
    for i in 0..depth {
        scripts[1].push((Time::ZERO, recv(1, i, Some(0), Some(100), 0)));
    }
    scripts[1].push((Time::ZERO, recv(1, depth, Some(0), Some(7), 0)));
    // Sender waits long enough for all posting (and ALPU inserts) to
    // settle, then sends the probe message.
    let t0 = Time::from_ms(2);
    scripts[0].push((t0, send(0, 0, 1, 7, 0)));
    let mut w = build(cfg, scripts);
    w.sim.run();
    let log = w.logs[1].lock().unwrap();
    let done = log
        .iter()
        .find(|(_, c)| c.req.seq == depth)
        .expect("probe recv completed")
        .0;
    done - t0
}

#[test]
fn baseline_latency_grows_with_queue_depth() {
    let short = deep_queue_latency(NicConfig::baseline(), 4);
    let long = deep_queue_latency(NicConfig::baseline(), 300);
    let delta = long - short;
    let per_entry = delta.ps() as f64 / 296.0 / 1000.0;
    assert!(
        (10.0..=80.0).contains(&per_entry),
        "baseline per-entry cost {per_entry} ns"
    );
}

#[test]
fn alpu_latency_flat_within_capacity() {
    let short = deep_queue_latency(NicConfig::with_alpus(128), 4);
    let deep = deep_queue_latency(NicConfig::with_alpus(128), 100);
    let delta = deep.saturating_sub(short);
    assert!(
        delta < Time::from_ns(200),
        "ALPU latency should be flat within capacity; grew by {delta}"
    );
}

#[test]
fn alpu_beats_baseline_on_deep_queues() {
    let base = deep_queue_latency(NicConfig::baseline(), 300);
    let alpu = deep_queue_latency(NicConfig::with_alpus(256), 300);
    assert!(
        alpu + Time::from_us(2) < base,
        "ALPU {alpu} should clearly beat baseline {base} at depth 300"
    );
}

#[test]
fn alpu_overhead_at_zero_depth_is_small() {
    let base = deep_queue_latency(NicConfig::baseline(), 0);
    let alpu = deep_queue_latency(NicConfig::with_alpus(128), 0);
    let overhead = alpu.saturating_sub(base);
    assert!(
        overhead < Time::from_ns(200),
        "zero-depth ALPU overhead {overhead} too large"
    );
    assert!(
        overhead > Time::ZERO,
        "ALPU interaction should cost something at zero depth"
    );
}
