//! Micro-op traces: what firmware tells the timing model it did.

use mpiq_dessim::Time;

/// One unit of modeled work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Uop {
    /// `n` integer/branch operations with no long-latency dependencies;
    /// throughput-limited by the core's effective integer width.
    Int(u32),
    /// A load. `chain: true` marks a *pointer-chase* load: program order
    /// cannot issue past it until it completes (the next work needs the
    /// loaded value to even form an address). `chain: false` loads only
    /// occupy a memory port and the in-flight window; out-of-order
    /// execution hides their latency.
    Load { addr: u64, chain: bool },
    /// A store; retires through the write buffer, latency hidden.
    Store { addr: u64 },
    /// A read over the NIC local bus (uncached, serializing): the core
    /// waits the full bus round trip for the data.
    BusRead,
    /// A posted write over the NIC local bus: one issue slot, the bus
    /// transaction completes asynchronously.
    BusWrite,
    /// An explicit stall (waiting on a device, interrupt dead time, ...).
    Delay(Time),
}

/// An owned uop sequence.
pub type Trace = Vec<Uop>;

/// Ergonomic builder for traces.
///
/// ```
/// use mpiq_cpusim::TraceBuilder;
/// let t = TraceBuilder::new()
///     .int(4)
///     .load_chain(0x1000)
///     .int(9)
///     .store(0x2000)
///     .build();
/// assert_eq!(t.len(), 4);
/// ```
#[derive(Default, Debug, Clone)]
pub struct TraceBuilder {
    ops: Vec<Uop>,
}

impl TraceBuilder {
    /// Empty builder.
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Append `n` integer ops.
    pub fn int(mut self, n: u32) -> TraceBuilder {
        self.ops.push(Uop::Int(n));
        self
    }

    /// Append an independent load.
    pub fn load(mut self, addr: u64) -> TraceBuilder {
        self.ops.push(Uop::Load { addr, chain: false });
        self
    }

    /// Append a pointer-chase (serializing) load.
    pub fn load_chain(mut self, addr: u64) -> TraceBuilder {
        self.ops.push(Uop::Load { addr, chain: true });
        self
    }

    /// Append a store.
    pub fn store(mut self, addr: u64) -> TraceBuilder {
        self.ops.push(Uop::Store { addr });
        self
    }

    /// Append a serializing local-bus read.
    pub fn bus_read(mut self) -> TraceBuilder {
        self.ops.push(Uop::BusRead);
        self
    }

    /// Append a posted local-bus write.
    pub fn bus_write(mut self) -> TraceBuilder {
        self.ops.push(Uop::BusWrite);
        self
    }

    /// Append a fixed stall.
    pub fn delay(mut self, t: Time) -> TraceBuilder {
        self.ops.push(Uop::Delay(t));
        self
    }

    /// Append all ops from another trace.
    pub fn extend(mut self, other: &[Uop]) -> TraceBuilder {
        self.ops.extend_from_slice(other);
        self
    }

    /// Finish.
    pub fn build(self) -> Trace {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_sequence() {
        let t = TraceBuilder::new()
            .int(2)
            .load_chain(0x10)
            .bus_read()
            .bus_write()
            .delay(Time::from_ns(5))
            .build();
        assert_eq!(
            t,
            vec![
                Uop::Int(2),
                Uop::Load {
                    addr: 0x10,
                    chain: true
                },
                Uop::BusRead,
                Uop::BusWrite,
                Uop::Delay(Time::from_ns(5)),
            ]
        );
    }

    #[test]
    fn extend_concatenates() {
        let a = TraceBuilder::new().int(1).build();
        let t = TraceBuilder::new().extend(&a).extend(&a).build();
        assert_eq!(t.len(), 2);
    }
}
