//! The NIC as a discrete-event component.
//!
//! Serializes [`WorkItem`]s on the single embedded processor: events
//! (network arrivals, host requests) enqueue work; the component processes
//! one item at a time, scheduling a self-wakeup at the item's finish time.
//! Hardware that runs concurrently with the processor — the ALPUs' header
//! copy path and the DMA engines — acts at event time or through
//! firmware-computed completion timestamps.

use crate::config::NicConfig;
use crate::firmware::{Firmware, WorkItem};
use crate::host_iface::HostRequest;
use mpiq_cpusim::Core;
use mpiq_dessim::prelude::*;
use mpiq_net::{Message, NodeId};
use std::collections::VecDeque;

/// Input port: messages from the fabric.
pub const PORT_NET_RX: InPort = InPort(0);
/// Input port: requests from the host.
pub const PORT_HOST_REQ: InPort = InPort(1);
/// Self-wakeup port (internal).
pub const PORT_WAKE: InPort = InPort(2);
/// Output port: messages to the fabric.
pub const PORT_NET_TX: OutPort = OutPort(0);
/// Output port: completions to the host of local process 0.
pub const PORT_HOST_COMP: OutPort = OutPort(1);

/// Completion port for the host of local process `pid`
/// (multi-process-per-node NICs; `host_comp_port(0) == PORT_HOST_COMP`).
pub fn host_comp_port(pid: u32) -> OutPort {
    OutPort(1 + pid as u16)
}

/// One NIC: firmware + embedded core + work-item scheduler.
pub struct Nic {
    node: NodeId,
    ranks_per_node: u32,
    fw: Firmware,
    core: Core,
    work: VecDeque<WorkItem>,
    busy: bool,
    update_queued: bool,
    stat_prefix: String,
    /// Time-weighted queue-occupancy accumulation (for the application
    /// queue-characterization study, after refs [8,9]).
    last_sample: Time,
    posted_integral: u64,
    unexpected_integral: u64,
}

impl Nic {
    /// Build the NIC for `node`.
    pub fn new(node: NodeId, cfg: NicConfig) -> Nic {
        Nic {
            node,
            ranks_per_node: cfg.ranks_per_node.max(1),
            fw: Firmware::new(node, cfg),
            core: Core::new(cfg.core),
            work: VecDeque::new(),
            busy: false,
            update_queued: false,
            stat_prefix: format!("nic{node}"),
            last_sample: Time::ZERO,
            posted_integral: 0,
            unexpected_integral: 0,
        }
    }

    /// Accumulate queue-depth ∫len·dt up to `now` (piecewise constant
    /// between work items). Units: entry·nanoseconds.
    fn sample_occupancy(&mut self, now: Time) {
        let dt = now.saturating_sub(self.last_sample).ns();
        self.posted_integral += self.fw.posted_len() as u64 * dt;
        self.unexpected_integral += self.fw.unexpected_len() as u64 * dt;
        self.last_sample = now;
    }

    /// The node this NIC serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The firmware state (queues, ALPUs, statistics).
    pub fn firmware(&self) -> &Firmware {
        &self.fw
    }

    /// The embedded core (cache statistics).
    pub fn core(&self) -> &Core {
        &self.core
    }

    fn try_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.busy {
            return;
        }
        if self.work.is_empty() {
            // Idle NIC: flush any not-yet-inserted tails into the ALPUs.
            if self.fw.update_needed(true) && !self.update_queued {
                self.work.push_back(WorkItem::AlpuUpdate);
                self.update_queued = true;
            } else {
                return;
            }
        }
        let item = self.work.pop_front().expect("checked nonempty");
        if matches!(item, WorkItem::AlpuUpdate) {
            self.update_queued = false;
        }
        let now = ctx.now();
        self.sample_occupancy(now);
        let (end, fx) = self.fw.process(item, now, &mut self.core);
        debug_assert!(end >= now);
        for (at, msg) in fx.tx {
            ctx.emit_after(PORT_NET_TX, Payload::new(msg), at.saturating_sub(now));
        }
        for (at, comp) in fx.completions {
            // Route to the issuing process's host.
            let pid = comp.req.rank % self.ranks_per_node;
            ctx.emit_after(host_comp_port(pid), Payload::new(comp), at.saturating_sub(now));
        }
        // Batch-aware update scheduling (§IV-B).
        if !self.update_queued && self.fw.update_needed(self.work.is_empty()) {
            self.work.push_back(WorkItem::AlpuUpdate);
            self.update_queued = true;
        }
        self.busy = true;
        ctx.wake_me(PORT_WAKE, Payload::empty(), end - now);
        self.publish_stats(ctx);
    }

    fn publish_stats(&self, ctx: &mut Ctx<'_>) {
        let s = ctx.stats();
        let p = &self.stat_prefix;
        let fw = self.fw.stats();
        s.set(&format!("{p}.l1.misses"), self.core.mem().l1().misses());
        s.set(&format!("{p}.l1.hits"), self.core.mem().l1().hits());
        s.set(&format!("{p}.posted.traversed"), fw.posted_entries_traversed);
        s.set(
            &format!("{p}.unexpected.traversed"),
            fw.unexpected_entries_traversed,
        );
        s.set(&format!("{p}.posted.alpu_hits"), fw.posted_alpu_hits);
        s.set(
            &format!("{p}.unexpected.alpu_hits"),
            fw.unexpected_alpu_hits,
        );
        s.set(&format!("{p}.unexpected.arrivals"), fw.unexpected_arrivals);
        s.set(&format!("{p}.insert_sessions"), fw.insert_sessions);
        s.set_max(&format!("{p}.posted.len_max"), self.fw.posted_len() as u64);
        s.set_max(
            &format!("{p}.unexpected.len_max"),
            self.fw.unexpected_len() as u64,
        );
        s.set(&format!("{p}.posted.occ_integral"), self.posted_integral);
        s.set(
            &format!("{p}.unexpected.occ_integral"),
            self.unexpected_integral,
        );
        s.set(&format!("{p}.sampled_until_ns"), self.last_sample.ns());
    }
}

impl Component for Nic {
    fn on_event(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        match ev.port {
            PORT_NET_RX => {
                let msg = *ev
                    .payload
                    .downcast::<Message>()
                    .expect("NET_RX carries Message");
                // Hardware header-copy path fires at arrival time,
                // regardless of processor occupancy (Fig. 1).
                let probed = self.fw.header_arrival(&msg, ctx.now());
                self.work.push_back(WorkItem::Rx { msg, probed });
                self.try_start(ctx);
            }
            PORT_HOST_REQ => {
                let req = *ev
                    .payload
                    .downcast::<HostRequest>()
                    .expect("HOST_REQ carries HostRequest");
                self.work.push_back(WorkItem::Host(req));
                self.try_start(ctx);
            }
            PORT_WAKE => {
                self.busy = false;
                self.try_start(ctx);
            }
            other => panic!("nic{}: event on unknown port {other:?}", self.node),
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}
