//! Repeatability guarantees: identical inputs produce bit-identical
//! simulations, across configurations and parallel sweep execution.

use mpiq::dessim::Time;
use mpiq::mpi::script::mark_log;
use mpiq::mpi::{AppProgram, Cluster, ClusterConfig, Script};
use mpiq::nic::NicConfig;
use mpiq_bench::{preposted_latency, run_parallel, NicVariant, PrepostedPoint};

fn workload(nic: NicConfig) -> Vec<(u32, Time)> {
    let marks = mark_log();
    let mut b0 = Script::builder();
    b0.barrier();
    for i in 0..20u16 {
        b0.isend(1, i, (i as u32) * 100);
    }
    b0.recv(Some(1), Some(99), 0);
    b0.mark(0);
    let p0 = b0.build(marks.clone());

    let mut b1 = Script::builder();
    for i in (0..20u16).rev() {
        b1.irecv(Some(0), Some(i), 2000);
    }
    b1.barrier();
    b1.sleep(Time::from_us(50));
    b1.send(0, 99, 0);
    b1.mark(1);
    let p1 = b1.build(marks.clone());

    let mut c = Cluster::new(
        ClusterConfig::new(nic),
        vec![
            Box::new(p0) as Box<dyn AppProgram>,
            Box::new(p1) as Box<dyn AppProgram>,
        ],
    );
    c.run();
    let mut m = marks.borrow().clone();
    m.sort();
    m
}

#[test]
fn identical_runs_are_bit_identical() {
    for nic in [NicConfig::baseline(), NicConfig::with_alpus(128)] {
        assert_eq!(workload(nic), workload(nic));
    }
}

#[test]
fn parallel_sweep_equals_serial_sweep() {
    let points: Vec<PrepostedPoint> = (0..8)
        .map(|i| PrepostedPoint {
            queue_len: i * 30,
            fraction: 0.5,
            msg_size: 64,
        })
        .collect();
    let serial = run_parallel(points.clone(), 1, |&p| {
        preposted_latency(NicVariant::Alpu128, p).latency
    });
    let parallel = run_parallel(points, 8, |&p| {
        preposted_latency(NicVariant::Alpu128, p).latency
    });
    assert_eq!(serial, parallel);
}

#[test]
fn timing_differs_but_results_match_across_configs() {
    let base = workload(NicConfig::baseline());
    let alpu = workload(NicConfig::with_alpus(256));
    assert_eq!(base.len(), alpu.len());
    // Same marks present; times legitimately differ.
    let ids = |v: &[(u32, Time)]| v.iter().map(|&(i, _)| i).collect::<Vec<_>>();
    assert_eq!(ids(&base), ids(&alpu));
}
