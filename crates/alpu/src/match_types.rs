//! Match words, masks, tags, and the MPI field layout.
//!
//! The prototype in the paper uses a 42-bit match width with a mask bit for
//! every match bit — "adequate to support an MPI implementation supporting
//! the full specification on a 32K node system" (§VI-A). We use the same
//! width with this field layout:
//!
//! ```text
//!   41        31 30          16 15           0
//!  +------------+--------------+--------------+
//!  | context:11 |  source:15   |   tag:16     |
//!  +------------+--------------+--------------+
//! ```
//!
//! 15 source bits cover 32K ranks; 11 context bits cover 2K live
//! communicators; 16 tag bits match the prototype's match-width budget.

/// Number of significant match bits.
pub const MATCH_WIDTH: u32 = 42;

/// All-ones over the match width.
pub const MATCH_MASK: u64 = (1 << MATCH_WIDTH) - 1;

const TAG_SHIFT: u32 = 0;
const TAG_BITS: u32 = 16;
const SRC_SHIFT: u32 = 16;
const SRC_BITS: u32 = 15;
const CTX_SHIFT: u32 = 31;
const CTX_BITS: u32 = 11;

/// The bits being matched (an incoming header's {context, source, tag}, or
/// a posted receive's non-wildcard values).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct MatchWord(pub u64);

/// Per-bit "don't care" flags. A set bit means *ignore this bit* when
/// comparing — the wildcard encoding for `MPI_ANY_SOURCE` / `MPI_ANY_TAG`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct MaskWord(pub u64);

/// The software-defined cookie returned on a match. The paper's
/// recommendation (§IV-C) — and this repository's convention — is a pointer
/// to the corresponding queue entry in NIC RAM (a 20-bit local-RAM pointer
/// in the simulated configuration; 16 bits in the FPGA prototype).
pub type Tag = u32;

impl MatchWord {
    /// Build from the MPI matching triplet.
    pub fn mpi(context: u16, source: u16, tag: u16) -> MatchWord {
        debug_assert!(context < (1 << CTX_BITS), "context out of range");
        debug_assert!(source < (1 << SRC_BITS), "source rank out of range");
        MatchWord(
            ((context as u64) << CTX_SHIFT)
                | ((source as u64) << SRC_SHIFT)
                | ((tag as u64) << TAG_SHIFT),
        )
    }

    /// Extract the context field.
    pub fn context(self) -> u16 {
        ((self.0 >> CTX_SHIFT) & ((1 << CTX_BITS) - 1)) as u16
    }

    /// Extract the source field.
    pub fn source(self) -> u16 {
        ((self.0 >> SRC_SHIFT) & ((1 << SRC_BITS) - 1)) as u16
    }

    /// Extract the tag field.
    pub fn tag(self) -> u16 {
        ((self.0 >> TAG_SHIFT) & ((1 << TAG_BITS) - 1)) as u16
    }
}

impl MaskWord {
    /// No wildcards: every bit significant.
    pub const EXACT: MaskWord = MaskWord(0);

    /// Mask covering the source field (`MPI_ANY_SOURCE`).
    pub const ANY_SOURCE: MaskWord = MaskWord(((1 << SRC_BITS) - 1) << SRC_SHIFT);

    /// Mask covering the tag field (`MPI_ANY_TAG`).
    pub const ANY_TAG: MaskWord = MaskWord(((1 << TAG_BITS) - 1) << TAG_SHIFT);

    /// Combine wildcard masks.
    pub fn union(self, other: MaskWord) -> MaskWord {
        MaskWord(self.0 | other.0)
    }

    /// Build the mask for a receive: wildcard source and/or tag.
    pub fn for_recv(any_source: bool, any_tag: bool) -> MaskWord {
        let mut m = MaskWord::EXACT;
        if any_source {
            m = m.union(MaskWord::ANY_SOURCE);
        }
        if any_tag {
            m = m.union(MaskWord::ANY_TAG);
        }
        m
    }
}

/// Do `a` and `b` agree on every bit the mask does *not* cover?
#[inline]
pub fn masked_eq(a: MatchWord, b: MatchWord, mask: MaskWord) -> bool {
    (a.0 ^ b.0) & !mask.0 & MATCH_MASK == 0
}

/// A stored ALPU entry: match bits, mask bits, software tag.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Entry {
    /// The stored match bits.
    pub word: MatchWord,
    /// Stored wildcard mask. Used by the posted-receive ALPU; the
    /// unexpected-message ALPU stores explicit headers and ignores it.
    pub mask: MaskWord,
    /// Software cookie returned on match.
    pub tag: Tag,
}

impl Entry {
    /// A posted receive: explicit context, optional (wildcardable) source
    /// and tag, plus the software cookie.
    pub fn mpi_recv(context: u16, source: Option<u16>, tag: Option<u16>, cookie: Tag) -> Entry {
        Entry {
            word: MatchWord::mpi(context, source.unwrap_or(0), tag.unwrap_or(0)),
            mask: MaskWord::for_recv(source.is_none(), tag.is_none()),
            tag: cookie,
        }
    }

    /// An unexpected-message record: the explicit header triplet.
    pub fn mpi_header(context: u16, source: u16, tag: u16, cookie: Tag) -> Entry {
        Entry {
            word: MatchWord::mpi(context, source, tag),
            mask: MaskWord::EXACT,
            tag: cookie,
        }
    }

    /// An entry with an arbitrary per-bit mask — the full generality the
    /// hardware provides ("a mask bit for every match bit allows maximum
    /// configurability and supports protocols beyond MPI, such as
    /// Portals", §VI-A footnote 7). Bits outside the match width are
    /// ignored.
    pub fn with_mask(word: u64, mask: u64, cookie: Tag) -> Entry {
        Entry {
            word: MatchWord(word & MATCH_MASK),
            mask: MaskWord(mask & MATCH_MASK),
            tag: cookie,
        }
    }
}

/// A probe presented to the match array.
///
/// For the posted-receive ALPU the probe is an incoming header: fully
/// explicit, `mask` unused. For the unexpected-message ALPU the probe is a
/// receive being posted: `mask` carries its wildcards (the paper's
/// "reverse lookup", §II).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Probe {
    /// Value bits of the probe.
    pub word: MatchWord,
    /// Probe-side wildcard mask (unexpected ALPU only).
    pub mask: MaskWord,
}

impl Probe {
    /// A fully explicit probe (incoming header).
    pub fn exact(word: MatchWord) -> Probe {
        Probe {
            word,
            mask: MaskWord::EXACT,
        }
    }

    /// A receive-side probe with wildcards.
    pub fn recv(context: u16, source: Option<u16>, tag: Option<u16>) -> Probe {
        Probe {
            word: MatchWord::mpi(context, source.unwrap_or(0), tag.unwrap_or(0)),
            mask: MaskWord::for_recv(source.is_none(), tag.is_none()),
        }
    }

    /// A probe with an arbitrary per-bit mask (Portals-style matching).
    pub fn with_mask(word: u64, mask: u64) -> Probe {
        Probe {
            word: MatchWord(word & MATCH_MASK),
            mask: MaskWord(mask & MATCH_MASK),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_roundtrip() {
        let w = MatchWord::mpi(0x7FF, 0x7FFF, 0xFFFF);
        assert_eq!(w.context(), 0x7FF);
        assert_eq!(w.source(), 0x7FFF);
        assert_eq!(w.tag(), 0xFFFF);
        assert_eq!(w.0 & !MATCH_MASK, 0, "word fits in 42 bits");
    }

    #[test]
    fn fields_do_not_overlap() {
        assert_eq!(MatchWord::mpi(1, 0, 0).0 & MatchWord::mpi(0, 1, 0).0, 0);
        assert_eq!(MatchWord::mpi(0, 1, 0).0 & MatchWord::mpi(0, 0, 1).0, 0);
        assert_eq!(
            MaskWord::ANY_SOURCE.0 & MaskWord::ANY_TAG.0,
            0,
            "wildcard masks are disjoint"
        );
    }

    #[test]
    fn masked_eq_exact() {
        let a = MatchWord::mpi(3, 5, 9);
        assert!(masked_eq(a, MatchWord::mpi(3, 5, 9), MaskWord::EXACT));
        assert!(!masked_eq(a, MatchWord::mpi(3, 5, 8), MaskWord::EXACT));
        assert!(!masked_eq(a, MatchWord::mpi(3, 6, 9), MaskWord::EXACT));
        assert!(!masked_eq(a, MatchWord::mpi(4, 5, 9), MaskWord::EXACT));
    }

    #[test]
    fn masked_eq_wildcards() {
        let hdr = MatchWord::mpi(3, 5, 9);
        // ANY_SOURCE: source differences ignored, tag still significant.
        let r = MatchWord::mpi(3, 0, 9);
        assert!(masked_eq(hdr, r, MaskWord::ANY_SOURCE));
        assert!(!masked_eq(MatchWord::mpi(3, 5, 8), r, MaskWord::ANY_SOURCE));
        // ANY_TAG.
        let r2 = MatchWord::mpi(3, 5, 0);
        assert!(masked_eq(hdr, r2, MaskWord::ANY_TAG));
        assert!(!masked_eq(MatchWord::mpi(3, 6, 9), r2, MaskWord::ANY_TAG));
        // Both wildcards: only context matters.
        let both = MaskWord::for_recv(true, true);
        assert!(masked_eq(hdr, MatchWord::mpi(3, 0, 0), both));
        assert!(!masked_eq(hdr, MatchWord::mpi(2, 0, 0), both));
    }

    #[test]
    fn recv_entry_encodes_wildcards() {
        let e = Entry::mpi_recv(1, None, Some(7), 99);
        assert_eq!(e.mask, MaskWord::ANY_SOURCE);
        assert_eq!(e.tag, 99);
        let e2 = Entry::mpi_recv(1, Some(2), None, 0);
        assert_eq!(e2.mask, MaskWord::ANY_TAG);
        let e3 = Entry::mpi_recv(1, None, None, 0);
        assert_eq!(e3.mask, MaskWord::ANY_SOURCE.union(MaskWord::ANY_TAG));
    }

    #[test]
    fn header_entry_is_exact() {
        assert_eq!(Entry::mpi_header(1, 2, 3, 0).mask, MaskWord::EXACT);
    }

    #[test]
    fn probe_constructors() {
        assert_eq!(Probe::exact(MatchWord::mpi(1, 2, 3)).mask, MaskWord::EXACT);
        assert_eq!(Probe::recv(1, None, Some(3)).mask, MaskWord::ANY_SOURCE);
    }
}
