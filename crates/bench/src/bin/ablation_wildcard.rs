//! The §II wildcard-workaround study: `MPI_ANY_SOURCE` vs "post a receive
//! from every possible source and then cancel those receives that are
//! unused" — quantifying why the paper calls the workaround "an
//! inefficient use of processing and memory resources", and what cancels
//! do to DELETE-less ALPU hardware.
//!
//! ```text
//! cargo run -p mpiq-bench --bin ablation_wildcard -- [--server ADDR]
//! ```

use mpiq_bench::cli::Cli;
use mpiq_bench::service;
use mpiq_bench::spec::{flags, RunSpec};

fn main() {
    let cli = Cli::parse(
        "ablation_wildcard",
        "MPI_ANY_SOURCE vs the post-all-and-cancel workaround (§II)",
        flags("ablation_wildcard"),
    );
    let spec = RunSpec::from_cli("ablation_wildcard", &cli).unwrap_or_else(|e| {
        eprintln!("ablation_wildcard: {e}");
        std::process::exit(2);
    });
    let result = service::run_for_cli("ablation_wildcard", cli.common.server.as_deref(), &spec)
        .unwrap_or_else(|e| {
            eprintln!("ablation_wildcard: {e}");
            std::process::exit(1);
        });
    let ok = service::emit(&result, cli.common.out.as_deref().map(std::path::Path::new))
        .expect("write json");
    if !ok {
        std::process::exit(1);
    }
}
