//! `mpiq-cpusim` — a parameterized superscalar processor *timing* model.
//!
//! The paper ran its NIC firmware and host code as compiled PowerPC
//! binaries on SimpleScalar's `sim-outorder`. We substitute a trace-driven
//! timing model: firmware in this repository executes *functionally* as
//! ordinary Rust, and emits a stream of [`Uop`]s describing the work a real
//! core would have done (integer ops, dependent loads, stores, device/bus
//! transactions). A [`Core`] — parameterized with exactly the Table III
//! processor parameters — turns that stream into elapsed time, using a
//! [`MemSystem`](mpiq_memsim::MemSystem) for load/store latencies.
//!
//! The model captures the two effects the evaluation depends on:
//!
//! * **Issue-limited traversal**: short queue walks are bounded by integer
//!   issue bandwidth (≈15 ns/entry on the dual-issue 500 MHz NIC core).
//! * **Memory-limited traversal**: once the queue spills the L1, the
//!   pointer chase serializes on the 30–32-cycle memory latency
//!   (≈64 ns/entry), with out-of-order execution hiding the integer work
//!   underneath.

pub mod config;
pub mod core;
pub mod trace;

pub use crate::core::{Core, RunStats};
pub use config::CoreConfig;
pub use trace::{Trace, TraceBuilder, Uop};
