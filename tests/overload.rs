//! Overload robustness: the acceptance scenarios from the flow-control
//! work. Bounded NIC resources must degrade by protocol (refusal,
//! truncation, rendezvous fallback) — never by panic, loss, or silent
//! hang — and when a protocol bug *does* wedge the cluster, the watchdog
//! must convert the hang into a typed diagnosis naming the stuck parts.

use mpiq::dessim::watchdog::StallKind;
use mpiq::dessim::Time;
use mpiq::mpi::script::{mark_log, status_log};
use mpiq::mpi::{AppProgram, Cluster, ClusterConfig, Script};
use mpiq::nic::NicConfig;
use mpiq_bench::{run_soak, Scenario, SoakConfig};

/// The headline acceptance test: a 64-sender all-to-one incast with tight
/// bounds completes under the watchdog, the unexpected queue never
/// exceeds its configured bound, every message is delivered, and a
/// same-seed re-run produces a bit-identical statistics dump.
#[test]
fn incast_64_to_1_bounded_lossless_deterministic() {
    let mut cfg = SoakConfig::new(Scenario::Incast, 42);
    cfg.senders = 64;
    cfg.msgs = 4;
    cfg.deadline = Time::from_ms(2_000);
    let out = run_soak(&cfg).unwrap_or_else(|d| panic!("64->1 incast stalled:\n{d}"));
    // run_soak's oracle already checked queue drain + shadow invariants;
    // re-assert the headline numbers here so a regression reads clearly.
    assert!(
        out.unexpected_highwater <= cfg.max_unexpected as u64,
        "high-water {} > bound {}",
        out.unexpected_highwater,
        cfg.max_unexpected
    );
    assert_eq!(out.delivered, 64 * 4, "zero loss: every message delivered");
    assert!(
        out.admission_refused > 0,
        "64 senders against a 32-entry bound must refuse at the wire"
    );
    let again = run_soak(&cfg).expect("same-seed re-run");
    assert_eq!(out.stats_json, again.stats_json, "same-seed runs diverged");
}

/// Credit exhaustion staging on the sender: with the per-peer allowance
/// far below the burst, senders must demote eager traffic to rendezvous
/// and the run must still drain losslessly.
#[test]
fn credit_starvation_falls_back_to_rendezvous() {
    let mut cfg = SoakConfig::new(Scenario::CreditStarve, 9);
    cfg.eager_credits = 2;
    cfg.msgs = 10;
    let out = run_soak(&cfg).unwrap_or_else(|d| panic!("credit starve stalled:\n{d}"));
    assert!(out.credit_stalls > 0, "credits never ran dry: {out:?}");
    assert!(out.grants_issued > 0, "receiver never returned credits");
}

/// Eager staging-pool exhaustion surfaces as an `overflow` receive
/// status (MPI_ERR_TRUNCATE-like), not as loss or a hang: the envelope
/// still matches, the payload bytes are gone.
#[test]
fn eager_pool_exhaustion_surfaces_overflow_status() {
    // 600-byte pool vs four 512-byte unexpected eagers: the first stages,
    // the rest are admitted header-only.
    let nic = NicConfig::baseline().with_flow_control(0, 0, 600);
    let log = status_log();

    let mut b0 = Script::builder();
    b0.barrier();
    b0.sleep(Time::from_us(50)); // let the burst arrive unexpected
    let slots: Vec<usize> = (0..4).map(|i| b0.irecv(Some(1), Some(i as u16), 512)).collect();
    for (i, s) in slots.iter().enumerate() {
        b0.wait(*s);
        b0.status(*s, i as u32);
    }
    let receiver = b0.build(mark_log()).with_status_log(log.clone());

    let mut b1 = Script::builder();
    b1.barrier();
    let sends: Vec<usize> = (0..4).map(|i| b1.isend(0, i as u16, 512)).collect();
    b1.wait_all(sends);
    let sender = b1.build(mark_log());

    let programs: Vec<Box<dyn AppProgram>> = vec![Box::new(receiver), Box::new(sender)];
    let mut cluster = Cluster::new(ClusterConfig::new(nic), programs);
    cluster
        .run_watched(Time::from_ms(100))
        .unwrap_or_else(|d| panic!("overflow run stalled:\n{d}"));

    let statuses = log.borrow();
    assert_eq!(statuses.len(), 4, "all four receives completed");
    let overflowed = statuses.iter().filter(|(_, st)| st.overflow).count();
    let intact = statuses.iter().filter(|(_, st)| !st.overflow).count();
    assert!(overflowed >= 1, "pool exhaustion must mark at least one overflow");
    assert!(intact >= 1, "the first eager fits the pool and stays intact");
    for (_, st) in statuses.iter().filter(|(_, st)| st.overflow) {
        assert_eq!(st.len, 0, "a truncated eager delivers zero payload bytes");
    }
    assert!(
        cluster.stats().get("nic0.flow.truncated_admits") >= 1,
        "truncation must be counted"
    );
}

/// A leaked credit grant / clear-to-send (the `leak=P` fault class) is a
/// loss the link layer cannot recover — the cluster goes quiet with
/// obligations outstanding. The watchdog must turn that silence into a
/// quiescent-deadlock diagnosis naming the stuck components.
#[test]
fn leaked_grants_deadlock_is_diagnosed() {
    let nic = NicConfig::baseline()
        .with_flow_control(2, 0, 0)
        .with_faults("seed=5,leak=1.0".parse().unwrap());

    let mut b0 = Script::builder();
    b0.barrier();
    let slots: Vec<usize> = (0..6).map(|i| b0.irecv(Some(1), Some(i as u16), 512)).collect();
    b0.wait_all(slots);
    let receiver = b0.build(mark_log());

    let mut b1 = Script::builder();
    b1.barrier();
    let sends: Vec<usize> = (0..6).map(|i| b1.isend(0, i as u16, 512)).collect();
    b1.wait_all(sends);
    let sender = b1.build(mark_log());

    let programs: Vec<Box<dyn AppProgram>> = vec![Box::new(receiver), Box::new(sender)];
    let mut cluster = Cluster::new(ClusterConfig::new(nic), programs);
    let diag = cluster
        .run_watched(Time::from_ms(500))
        .expect_err("every grant and CTS leaked: the run cannot finish");
    assert_eq!(diag.kind, StallKind::QuiescentDeadlock, "diagnosis:\n{diag}");
    let stuck = diag.stuck();
    assert!(!stuck.is_empty(), "somebody must report unfinished obligations");
    assert!(
        stuck.iter().any(|n| n.starts_with("host") || n.starts_with("nic")),
        "the stuck list names cluster components: {stuck:?}"
    );
    // The sender's demoted (rendezvous) send is parked forever — that
    // gauge is the tell for a leaked CTS.
    let rendered = diag.to_string();
    assert!(
        rendered.contains("sends_parked"),
        "diagnosis carries queue-depth gauges:\n{rendered}"
    );
}

/// A peer that stops acknowledging entirely exhausts the sender's retry
/// budget; the link is declared dead and the watchdog diagnosis names
/// the dead peer instead of leaving a silent hang.
#[test]
fn dead_link_diagnosis_names_the_peer() {
    let nic = NicConfig::baseline().with_faults("seed=2,drop=1.0".parse().unwrap());

    let mut b0 = Script::builder();
    let r = b0.irecv(Some(1), Some(7), 256);
    b0.wait(r);
    let receiver = b0.build(mark_log());

    let mut b1 = Script::builder();
    let s = b1.isend(0, 7, 256);
    b1.wait(s);
    let sender = b1.build(mark_log());

    let programs: Vec<Box<dyn AppProgram>> = vec![Box::new(receiver), Box::new(sender)];
    let mut cluster = Cluster::new(ClusterConfig::new(nic), programs);
    let diag = cluster
        .run_watched(Time::from_ms(5_000))
        .expect_err("a fully lossy wire cannot deliver anything");
    let dead_notes = diag.notes_containing("DEAD");
    assert!(
        !dead_notes.is_empty(),
        "diagnosis must call out the dead link:\n{diag}"
    );
    assert!(
        dead_notes.iter().any(|n| n.contains("node 0")),
        "the sender's dead peer is node 0: {dead_notes:?}"
    );
}
