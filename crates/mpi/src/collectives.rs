//! Collective operations built from point-to-point — the same way the
//! paper's prototype builds `MPI_Barrier` (Fig. 4's "built from other MPI
//! functions"). An extension beyond the paper's subset, using the
//! textbook algorithms contemporary MPI implementations used.
//!
//! All collective traffic runs on [`CTX_INTERNAL`] with tags in the upper
//! half of the tag space (`0x8000 |`), so it can never interfere with
//! user point-to-point matching or with barrier rounds. Each collective
//! call takes an `instance` number that must be unique per call site per
//! pair of communicating collectives in flight (scripts are sequential,
//! so an incrementing counter per rank suffices).
//!
//! Data *contents* are not modeled (payloads are synthetic); what these
//! produce is the exact message pattern — counts, sizes, dependencies —
//! which is what the NIC-level evaluation cares about.
//!
//! **Under component faults** (a scheduled `FaultSchedule` crash or a
//! link declared dead), collectives never deadlock: every operation in
//! the tree that names a failed rank completes with
//! `MpiStatus::error = Some(MpiError::RankFailed{..})` — the ULFM
//! `MPI_ERR_PROC_FAILED` contract — so the wait unblocks and the script
//! continues. Survivor-to-survivor edges complete normally; the caller
//! inspects statuses to learn the collective was cut. There is no
//! built-in communicator-shrinking (`MPIX_Comm_shrink`) — the typed
//! error is the recovery surface.

use crate::script::ScriptBuilder;
use crate::types::CTX_INTERNAL;

/// Tag for collective `instance`, message index `k`.
fn ctag(instance: u16, k: u16) -> u16 {
    0x8000 | ((instance.wrapping_mul(97).wrapping_add(k)) & 0x7FFF)
}

/// Binomial-tree broadcast from `root` (the MPICH algorithm).
///
/// Emits the ops for rank `me` of `n`; every rank must call with the same
/// `root`, `len`, and `instance`.
pub fn bcast(b: &mut ScriptBuilder, me: u32, n: u32, root: u32, len: u32, instance: u16) {
    assert!(me < n && root < n);
    if n <= 1 {
        return;
    }
    let relative = (me + n - root) % n;
    let mut mask = 1u32;
    // Receive from the parent (non-root ranks).
    while mask < n {
        if relative & mask != 0 {
            let src = (me + n - mask) % n;
            let s = b.irecv_ctx(Some(src as u16), CTX_INTERNAL, Some(ctag(instance, 0)), len);
            b.wait(s);
            break;
        }
        mask <<= 1;
    }
    // Forward to children.
    mask >>= 1;
    while mask > 0 {
        if relative + mask < n {
            let dst = (me + mask) % n;
            let s = b.isend_ctx(dst, CTX_INTERNAL, ctag(instance, 0), len);
            b.wait(s);
        }
        mask >>= 1;
    }
}

/// Binomial-tree reduction to `root` (message pattern of MPICH's reduce;
/// the combining computation itself is not modeled).
pub fn reduce(b: &mut ScriptBuilder, me: u32, n: u32, root: u32, len: u32, instance: u16) {
    assert!(me < n && root < n);
    if n <= 1 {
        return;
    }
    let relative = (me + n - root) % n;
    let mut mask = 1u32;
    while mask < n {
        if relative & mask == 0 {
            let src_rel = relative | mask;
            if src_rel < n {
                let src = (src_rel + root) % n;
                let s =
                    b.irecv_ctx(Some(src as u16), CTX_INTERNAL, Some(ctag(instance, 1)), len);
                b.wait(s);
            }
        } else {
            let dst = ((relative & !mask) + root) % n;
            let s = b.isend_ctx(dst, CTX_INTERNAL, ctag(instance, 1), len);
            b.wait(s);
            break;
        }
        mask <<= 1;
    }
}

/// All-reduce as reduce-to-0 followed by broadcast-from-0.
pub fn allreduce(b: &mut ScriptBuilder, me: u32, n: u32, len: u32, instance: u16) {
    reduce(b, me, n, 0, len, instance.wrapping_mul(2));
    bcast(b, me, n, 0, len, instance.wrapping_mul(2).wrapping_add(1));
}

/// Linear gather to `root`: every non-root sends one message; the root
/// receives `n-1`, distinguished by per-source tags.
pub fn gather(b: &mut ScriptBuilder, me: u32, n: u32, root: u32, len: u32, instance: u16) {
    assert!(me < n && root < n);
    if me == root {
        let slots: Vec<usize> = (0..n)
            .filter(|&r| r != root)
            .map(|r| {
                b.irecv_ctx(
                    Some(r as u16),
                    CTX_INTERNAL,
                    Some(ctag(instance, 2 + r as u16)),
                    len,
                )
            })
            .collect();
        b.wait_all(slots);
    } else {
        let s = b.isend_ctx(root, CTX_INTERNAL, ctag(instance, 2 + me as u16), len);
        b.wait(s);
    }
}

/// Linear scatter from `root`: the root sends one message per rank.
pub fn scatter(b: &mut ScriptBuilder, me: u32, n: u32, root: u32, len: u32, instance: u16) {
    assert!(me < n && root < n);
    if me == root {
        let slots: Vec<usize> = (0..n)
            .filter(|&r| r != root)
            .map(|r| b.isend_ctx(r, CTX_INTERNAL, ctag(instance, 2 + r as u16), len))
            .collect();
        b.wait_all(slots);
    } else {
        let s = b.irecv_ctx(
            Some(root as u16),
            CTX_INTERNAL,
            Some(ctag(instance, 2 + me as u16)),
            len,
        );
        b.wait(s);
    }
}

/// Linear all-to-all: every rank sends to and receives from every other
/// rank, fully overlapped. The pattern that builds the deepest transient
/// queues — a natural ALPU stress.
pub fn alltoall(b: &mut ScriptBuilder, me: u32, n: u32, len: u32, instance: u16) {
    assert!(me < n);
    let mut slots = Vec::new();
    for peer in 0..n {
        if peer == me {
            continue;
        }
        // Tag by sender so receives are unambiguous.
        slots.push(b.irecv_ctx(
            Some(peer as u16),
            CTX_INTERNAL,
            Some(ctag(instance, 2 + peer as u16)),
            len,
        ));
        slots.push(b.isend_ctx(peer, CTX_INTERNAL, ctag(instance, 2 + me as u16), len));
    }
    b.wait_all(slots);
}
