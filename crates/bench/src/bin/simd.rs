//! `simd` — the experiment server daemon (sim-daemon).
//!
//! Serves the newline-delimited-JSON protocol documented in
//! [`mpiq_bench::service`]: bench bins submit [`RunSpec`]s with
//! `--server ADDR` and the daemon runs them across a worker pool,
//! memoizing results on (spec, seed, engine, code-version) so identical
//! resubmissions are byte-exact cache hits that never re-simulate
//! (except the wall-clock benches — scaling, collectives — which
//! re-run every time).
//!
//! ```text
//! simd &                          # serve on 127.0.0.1:7171
//! fig5 --server 127.0.0.1:7171    # cold: runs on the daemon
//! fig5 --server 127.0.0.1:7171    # warm: byte-identical cache hit
//! simd --query status             # run counter, cache size, telemetry
//! simd --query shutdown           # stop the daemon
//! ```

use mpiq_bench::cli::{Cli, Flag};
use mpiq_bench::service::{self, Server, ServiceConfig, DEFAULT_ADDR};

const FLAGS: &[Flag] = &[
    Flag { name: "addr", value: Some("ADDR"), help: "listen (or, with --query, connect) address" },
    Flag { name: "workers", value: Some("N"), help: "worker threads handling requests (default 2)" },
    Flag {
        name: "code-version",
        value: Some("TAG"),
        help: "cache-key version stamp (default: crate version + git rev)",
    },
    Flag {
        name: "query",
        value: Some("OP"),
        help: "client mode: send `status` or `shutdown` to a running daemon and exit",
    },
];

fn main() {
    let cli = Cli::parse("simd", "experiment server daemon with memoized results", FLAGS);
    let addr = cli.get_str("addr").unwrap_or(DEFAULT_ADDR).to_string();

    if let Some(op) = cli.get_str("query") {
        match op {
            "status" => match service::status(&addr) {
                Ok(line) => println!("{line}"),
                Err(e) => {
                    eprintln!("simd: {e}");
                    std::process::exit(1);
                }
            },
            "shutdown" => match service::shutdown(&addr) {
                Ok(()) => eprintln!("simd: server at {addr} shutting down"),
                Err(e) => {
                    eprintln!("simd: {e}");
                    std::process::exit(1);
                }
            },
            other => {
                eprintln!("simd: unknown query `{other}` (want status or shutdown)");
                std::process::exit(2);
            }
        }
        return;
    }

    let mut cfg = ServiceConfig { addr, ..ServiceConfig::default() };
    cfg.workers = cli.get("workers", cfg.workers);
    if let Some(v) = cli.get_str("code-version") {
        cfg.code_version = v.to_string();
    }
    let server = match Server::bind(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simd: cannot bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    let bound = server.local_addr().expect("bound socket has an address");
    eprintln!(
        "simd: serving on {bound} with {} worker(s), code version {}",
        cfg.workers, cfg.code_version
    );
    if let Err(e) = server.serve() {
        eprintln!("simd: server error: {e}");
        std::process::exit(1);
    }
    eprintln!("simd: stopped");
}
