//! A switch in a planned topology: output-queued trunk ports with finite
//! link bandwidth, plus node downlink ports.
//!
//! Timing model, hop for hop the same discipline as the hub fabric and
//! the [`crate::port::FabricPort`]s:
//!
//! * **Trunk hop** — the frame occupies the chosen output port's
//!   serialization window (`max(now, busy) + ser`, with `ser` rounded up
//!   to the next picosecond exactly like `Fabric::serialize` — no silent
//!   truncation on the multi-hop path), then rides the trunk wire (the
//!   `connect` latency). Contending frames queue FIFO behind the window,
//!   which is the output-queueing/link-contention model.
//! * **Node delivery** — handed straight down the node port; the
//!   destination [`FabricPort`]'s receiver-side busy window charges the
//!   downlink serialization, so it is *not* charged here (that would
//!   double-count the last hop).
//!
//! Scheduled link faults stay at the *source* port: `FabricPort::inject`
//! refuses a frame whose (src, dst) edge the fault schedule has down, so
//! a downed edge blackholes the pair end-to-end no matter how many
//! switches sit between them — the same semantics the hub enforces, kept
//! out of the per-hop hot loop.
//!
//! [`FabricPort`]: crate::port::FabricPort

use crate::fabric::NetConfig;
use crate::message::Message;
use crate::topo::{RouteStep, TopoPlan};
use mpiq_dessim::prelude::*;
use std::sync::Arc;

/// The single input port: uplinked node frames and trunk arrivals alike.
pub const PORT_SW_IN: InPort = InPort(0);

/// One switch of a [`TopoPlan`].
///
/// Wiring contract (the cluster builder owns this):
/// * every attached node's `FabricPort` uplink -> [`PORT_SW_IN`], at wire
///   latency;
/// * [`Switch::trunk_port`]`(i)` -> neighbor `i`'s [`PORT_SW_IN`], at
///   wire latency (both directions of a trunk are separate links);
/// * [`Switch::node_port`]`(j)` -> attached node `j`'s `PORT_FP_WIRE`,
///   at wire latency.
pub struct Switch {
    id: usize,
    plan: Arc<TopoPlan>,
    cfg: NetConfig,
    /// Per-trunk-port output serialization window.
    trunk_busy: Vec<Time>,
}

impl Switch {
    /// Switch `id` of `plan`.
    pub fn new(id: usize, plan: Arc<TopoPlan>, cfg: NetConfig) -> Switch {
        let trunks = plan.neighbors[id].len();
        Switch {
            id,
            plan,
            cfg,
            trunk_busy: vec![Time::ZERO; trunks],
        }
    }

    /// Output port for trunk `i` (index into `plan.neighbors[id]`).
    pub fn trunk_port(plan: &TopoPlan, id: usize, i: usize) -> OutPort {
        assert!(i < plan.neighbors[id].len());
        OutPort(i as u16)
    }

    /// Output port for attached node `j` (index into `plan.attached[id]`).
    pub fn node_port(plan: &TopoPlan, id: usize, j: usize) -> OutPort {
        assert!(j < plan.attached[id].len());
        OutPort((plan.neighbors[id].len() + j) as u16)
    }

    /// Serialization time for `bytes` on a trunk, rounded up to the next
    /// picosecond (identical to `Fabric::serialize`).
    fn serialize(&self, bytes: u64) -> Time {
        Time::from_ps((bytes * 1000).div_ceil(self.cfg.bytes_per_ns))
    }
}

impl Component for Switch {
    fn on_event(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        assert_eq!(ev.port, PORT_SW_IN, "switch has a single input port");
        let msg = *ev.payload.downcast::<Message>().unwrap_or_else(|p| {
            panic!(
                "switch accepts Message payloads only; got {p:?} at t={}",
                ev.time
            )
        });
        let dst = msg.header.dst_node;
        match self.plan.routes[self.id][dst as usize] {
            RouteStep::Deliver => {
                let j = self.plan.attached[self.id]
                    .binary_search(&dst)
                    .unwrap_or_else(|_| {
                        panic!("switch {} asked to deliver to unattached node {dst}", self.id)
                    });
                ctx.emit(
                    Switch::node_port(&self.plan, self.id, j),
                    Payload::new(msg),
                );
            }
            RouteStep::Forward(p) => {
                let ser = self.serialize(msg.wire_bytes());
                let start = ctx.now().max(self.trunk_busy[p]);
                self.trunk_busy[p] = start + ser;
                ctx.stats().incr("net.switch.hops");
                ctx.emit_after(
                    Switch::trunk_port(&self.plan, self.id, p),
                    Payload::new(msg),
                    (start + ser) - ctx.now(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MsgHeader, MsgKind, NodeId};
    use crate::topo::Topology;
    use mpiq_dessim::Simulation;
    use std::sync::Mutex;

    fn msg(src: NodeId, dst: NodeId, len: u32, seq: u64) -> Message {
        Message::new(
            MsgHeader {
                src_node: src,
                dst_node: dst,
                dst_rank: dst,
                context: 0,
                src_rank: src as u16,
                tag: 0,
                payload_len: len,
                kind: MsgKind::Eager,
                seq,
            },
            Message::test_payload(len as usize, 0),
        )
    }

    type Log = Arc<Mutex<Vec<(Time, u64)>>>;
    struct Sink {
        got: Log,
    }
    impl Component for Sink {
        fn on_event(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
            let m = ev.payload.downcast::<Message>().unwrap();
            self.got.lock().unwrap().push((ctx.now(), m.header.seq));
        }
    }

    /// A leaf-spine pair with sinks in place of node ports, to pin hop
    /// timing in isolation.
    fn leaf_spine(cfg: NetConfig) -> (Simulation, ComponentId, Log) {
        // 8 nodes, 4 per leaf, 1 spine: leaf0 (sw0), leaf1 (sw1), spine (sw2).
        let plan = Arc::new(Topology::FatTree { down: 4, up: 1 }.plan(8).unwrap());
        let mut sim = Simulation::new(7);
        let sw: Vec<ComponentId> = (0..plan.switches())
            .map(|s| sim.add_component(&format!("sw{s}"), Switch::new(s, plan.clone(), cfg)))
            .collect();
        for (a, ns) in plan.neighbors.iter().enumerate() {
            for (i, &b) in ns.iter().enumerate() {
                sim.connect(
                    sw[a],
                    Switch::trunk_port(&plan, a, i),
                    sw[b],
                    PORT_SW_IN,
                    cfg.wire_latency,
                );
            }
        }
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        // Node 4 lives on leaf 1, local index 0.
        let sink = sim.add_component("sink4", Sink { got: log.clone() });
        sim.connect(
            sw[1],
            Switch::node_port(&plan, 1, 0),
            sink,
            InPort(0),
            cfg.wire_latency,
        );
        (sim, sw[0], log)
    }

    /// Leaf -> spine -> leaf: each trunk hop charges wire latency plus
    /// serialization; the final node hop charges only the wire (the
    /// destination port serializes).
    #[test]
    fn two_trunk_hops_charge_two_serializations() {
        let cfg = NetConfig::default(); // 200 ns wire, 2 B/ns
        let (mut sim, leaf0, log) = leaf_spine(cfg);
        sim.post(leaf0, PORT_SW_IN, Payload::new(msg(0, 4, 0, 1)), Time::ZERO);
        sim.run();
        // ser(32 B) = 16 ns. leaf0: 16 + 200; spine: 16 + 200; node wire:
        // 200. Total 632 ns.
        assert_eq!(log.lock().unwrap()[0], (Time::from_ns(632), 1));
        assert_eq!(sim.stats().get("net.switch.hops"), 2);
    }

    /// Switch-hop serialization rounds partial bytes *up*, exactly like
    /// the hub `Fabric::serialize` fix — the multi-hop path must not
    /// reintroduce silent truncation.
    #[test]
    fn trunk_serialization_rounds_up_not_down() {
        // 7 B/ns does not divide 32 header bytes: 32000/7 = 4571.43 ps,
        // charged as 4572 ps per trunk hop.
        let cfg = NetConfig {
            wire_latency: Time::from_ns(200),
            bytes_per_ns: 7,
            ..NetConfig::default()
        };
        let (mut sim, leaf0, log) = leaf_spine(cfg);
        sim.post(leaf0, PORT_SW_IN, Payload::new(msg(0, 4, 0, 1)), Time::ZERO);
        sim.run();
        let t = log.lock().unwrap()[0].0;
        assert_eq!(t, Time::from_ns(600) + Time::from_ps(2 * 4572));
    }

    /// Two frames contending for the same trunk port queue FIFO behind
    /// its serialization window — output queueing under finite bandwidth.
    #[test]
    fn trunk_contention_serializes_fifo() {
        let cfg = NetConfig::default();
        let (mut sim, leaf0, log) = leaf_spine(cfg);
        sim.post(leaf0, PORT_SW_IN, Payload::new(msg(0, 4, 1000, 1)), Time::ZERO);
        sim.post(leaf0, PORT_SW_IN, Payload::new(msg(1, 4, 1000, 2)), Time::ZERO);
        sim.run();
        let got = log.lock().unwrap();
        assert_eq!(got[0].1, 1);
        assert_eq!(got[1].1, 2);
        // 1032 B serialize for 516 ns; the second frame leaves the leaf
        // uplink 516 ns behind the first and stays behind it at the spine.
        assert_eq!(got[1].0 - got[0].0, Time::from_ns(516));
    }
}
