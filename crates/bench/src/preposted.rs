//! The posted-receive queue benchmark (§V-A, first benchmark).
//!
//! Three degrees of freedom: the length of the pre-posted receive queue,
//! the portion of the queue traversed before the match, and the message
//! size. The receiver pre-posts `queue_len` receives of which the one at
//! traversal depth `floor(fraction * queue_len)` matches the sender's
//! probe message; latency is half the sender-measured round trip.

use crate::faultstats::FaultCounters;
use crate::NicVariant;
use mpiq_dessim::Time;
use mpiq_mpi::script::mark_log;
use mpiq_mpi::{AppProgram, Cluster, ClusterConfig, Script};

/// One point of the Fig. 5 parameter space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrepostedPoint {
    /// Pre-posted queue length (entries ahead of / behind the match).
    pub queue_len: usize,
    /// Portion of the queue traversed before the match, in `[0, 1]`.
    pub fraction: f64,
    /// Probe message payload bytes.
    pub msg_size: u32,
}

/// Tag that only the probe message carries.
const PING_TAG: u16 = 7;
/// Tag of the reply.
const PONG_TAG: u16 = 8;
/// Non-matching filler receives use tags at and above this.
const FILLER_TAG: u16 = 10_000;

/// Measured results for one point.
#[derive(Clone, Copy, Debug)]
pub struct PrepostedResult {
    /// One-way latency (half round trip).
    pub latency: Time,
    /// Posted-queue entries the receiver's software search visited during
    /// the timed exchange.
    pub sw_traversed: u64,
    /// NIC L1 misses on the receiving NIC (whole run).
    pub rx_l1_misses: u64,
    /// Fault-injection and recovery totals (all zero on fault-free runs).
    pub faults: FaultCounters,
}

/// Run one point and return its measurements. Deterministic: equal inputs
/// give equal outputs.
pub fn preposted_latency(variant: NicVariant, p: PrepostedPoint) -> PrepostedResult {
    preposted_latency_cfg(variant.config(), p, 0)
}

/// [`preposted_latency`] with an explicit NIC configuration (for
/// ablations that tweak individual knobs) and an explicit engine:
/// `parallelism` maps to [`ClusterConfig::parallelism`] (0 = hub engine
/// on the calling thread, `n >= 1` = sharded engine on `n` threads —
/// same results for every such `n`).
pub fn preposted_latency_cfg(
    nic: mpiq_nic::NicConfig,
    p: PrepostedPoint,
    parallelism: usize,
) -> PrepostedResult {
    let depth = ((p.queue_len as f64) * p.fraction).floor() as usize;
    let depth = depth.min(p.queue_len);
    let marks = mark_log();

    // The exchange is symmetric, like the original benchmark: *both*
    // ranks hold the pre-posted queue, the ping traverses the receiver's
    // copy and the pong traverses the sender's, so half the round trip
    // carries exactly one full traversal.
    let post_queue = |b: &mut mpiq_mpi::script::ScriptBuilder,
                      peer: u16,
                      match_tag: u16|
     -> usize {
        for i in 0..depth {
            b.irecv(Some(peer), Some(FILLER_TAG + (i % 30_000) as u16), 0);
        }
        let matching = b.irecv(Some(peer), Some(match_tag), p.msg_size);
        for i in depth..p.queue_len {
            b.irecv(Some(peer), Some(FILLER_TAG + (i % 30_000) as u16), 0);
        }
        matching
    };

    // Rank 0: sender side of the timed exchange.
    let mut b0 = Script::builder();
    let pong = post_queue(&mut b0, 1, PONG_TAG);
    b0.barrier();
    b0.sleep(Time::from_us(400)); // let ALPU insert sessions drain
    b0.mark(0);
    b0.send(1, PING_TAG, p.msg_size);
    b0.wait(pong);
    b0.mark(1);
    let p0 = b0.build(marks.clone());

    // Rank 1: receiver.
    let mut b1 = Script::builder();
    let matching = post_queue(&mut b1, 0, PING_TAG);
    b1.barrier();
    b1.sleep(Time::from_us(400));
    b1.wait(matching);
    b1.send(0, PONG_TAG, p.msg_size);
    let p1 = b1.build(mark_log());

    let mut cluster = Cluster::new(
        ClusterConfig::builder(nic).parallelism(parallelism).build(),
        vec![
            Box::new(p0) as Box<dyn AppProgram>,
            Box::new(p1) as Box<dyn AppProgram>,
        ],
    );
    cluster.run();

    let m = marks.borrow();
    assert_eq!(m.len(), 2, "sender must mark start and end");
    let rtt = m[1].1 - m[0].1;
    let fw = cluster.nic(1).firmware().stats();
    PrepostedResult {
        latency: rtt / 2,
        sw_traversed: fw.posted_entries_traversed,
        rx_l1_misses: cluster.nic(1).core().mem().l1().misses(),
        faults: FaultCounters::collect(&cluster),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat(v: NicVariant, q: usize, f: f64) -> Time {
        preposted_latency(
            v,
            PrepostedPoint {
                queue_len: q,
                fraction: f,
                msg_size: 0,
            },
        )
        .latency
    }

    #[test]
    fn baseline_grows_roughly_15ns_per_entry_in_cache() {
        let l0 = lat(NicVariant::Baseline, 0, 1.0);
        let l200 = lat(NicVariant::Baseline, 200, 1.0);
        let per_entry = (l200 - l0).ps() as f64 / 200.0 / 1000.0;
        assert!(
            (10.0..=25.0).contains(&per_entry),
            "in-cache per-entry cost {per_entry} ns (paper: ~15)"
        );
    }

    #[test]
    fn baseline_out_of_cache_entries_cost_more() {
        // Marginal cost between 400 and 500 entries (queue spills the
        // 32 KB L1) must exceed the in-cache slope substantially.
        let l400 = lat(NicVariant::Baseline, 420, 1.0);
        let l500 = lat(NicVariant::Baseline, 500, 1.0);
        let per_entry = (l500 - l400).ps() as f64 / 80.0 / 1000.0;
        assert!(
            per_entry > 35.0,
            "out-of-cache per-entry cost {per_entry} ns (paper: ~64)"
        );
    }

    #[test]
    fn alpu_flat_until_capacity_then_grows() {
        let l0 = lat(NicVariant::Alpu128, 0, 1.0);
        let l100 = lat(NicVariant::Alpu128, 100, 1.0);
        assert!(
            l100.saturating_sub(l0) < Time::from_ns(150),
            "ALPU-128 latency must be flat within capacity: {l0} -> {l100}"
        );
        let l300 = lat(NicVariant::Alpu128, 300, 1.0);
        assert!(
            l300 > l100 + Time::from_us(1),
            "beyond capacity the tail search shows: {l100} -> {l300}"
        );
        // And the 256-entry unit stays flat at 200.
        let l200_256 = lat(NicVariant::Alpu256, 200, 1.0);
        let l0_256 = lat(NicVariant::Alpu256, 0, 1.0);
        assert!(l200_256.saturating_sub(l0_256) < Time::from_ns(150));
    }

    #[test]
    fn fraction_controls_traversal_depth() {
        let full = preposted_latency(
            NicVariant::Baseline,
            PrepostedPoint {
                queue_len: 300,
                fraction: 1.0,
                msg_size: 0,
            },
        );
        let half = preposted_latency(
            NicVariant::Baseline,
            PrepostedPoint {
                queue_len: 300,
                fraction: 0.5,
                msg_size: 0,
            },
        );
        assert!(half.latency < full.latency);
        assert!(half.sw_traversed < full.sw_traversed);
    }

    #[test]
    fn deterministic() {
        let p = PrepostedPoint {
            queue_len: 50,
            fraction: 0.5,
            msg_size: 1024,
        };
        assert_eq!(
            preposted_latency(NicVariant::Alpu128, p).latency,
            preposted_latency(NicVariant::Alpu128, p).latency
        );
    }
}
