//! Collective-operation tests: completion, causality, and config
//! equivalence on simulated clusters of various sizes (including
//! non-powers of two, which exercise the tree algorithms' edge cases).

use mpiq_dessim::Time;
use mpiq_mpi::collectives::{allreduce, alltoall, bcast, gather, reduce, scatter};
use mpiq_mpi::script::{mark_log, MarkLog};
use mpiq_mpi::{AppProgram, Cluster, ClusterConfig, Script};
use mpiq_nic::NicConfig;

/// Build a cluster where each rank runs `f(builder, me, n)` between two
/// marks, then run it and return (per-rank start, per-rank end) times.
fn run_collective(
    nic: NicConfig,
    n: u32,
    f: impl Fn(&mut mpiq_mpi::script::ScriptBuilder, u32, u32),
) -> (Vec<Time>, Vec<Time>, MarkLog) {
    let marks = mark_log();
    let programs: Vec<Box<dyn AppProgram>> = (0..n)
        .map(|me| {
            let mut b = Script::builder();
            b.barrier();
            b.mark(me);
            f(&mut b, me, n);
            b.mark(1000 + me);
            Box::new(b.build(marks.clone())) as Box<dyn AppProgram>
        })
        .collect();
    let mut c = Cluster::new(ClusterConfig::new(nic), programs);
    c.run();
    let m = marks.borrow();
    let starts: Vec<Time> = (0..n)
        .map(|r| m.iter().find(|&&(id, _)| id == r).expect("start mark").1)
        .collect();
    let ends: Vec<Time> = (0..n)
        .map(|r| {
            m.iter()
                .find(|&&(id, _)| id == 1000 + r)
                .expect("end mark")
                .1
        })
        .collect();
    (starts, ends, marks.clone())
}

#[test]
fn bcast_reaches_every_rank_after_root_starts() {
    for n in [2u32, 3, 4, 7, 8] {
        let (starts, ends, _) =
            run_collective(NicConfig::baseline(), n, |b, me, n| bcast(b, me, n, 1 % n, 512, 1));
        let root_start = starts[(1 % n) as usize];
        for (r, &e) in ends.iter().enumerate() {
            assert!(
                e >= root_start,
                "n={n}: rank {r} finished bcast at {e}, before the root started at {root_start}"
            );
        }
    }
}

#[test]
fn reduce_root_finishes_after_all_leaves_start() {
    for n in [2u32, 3, 5, 8] {
        let root = n - 1;
        let (starts, ends, _) =
            run_collective(NicConfig::baseline(), n, move |b, me, n| {
                reduce(b, me, n, root, 256, 2)
            });
        let max_start = *starts.iter().max().unwrap();
        assert!(
            ends[root as usize] >= max_start,
            "n={n}: reduce root finished before some contributor started"
        );
    }
}

#[test]
fn allreduce_synchronizes_everyone() {
    for n in [3u32, 4, 6] {
        let (starts, ends, _) =
            run_collective(NicConfig::baseline(), n, |b, me, n| allreduce(b, me, n, 128, 3));
        let max_start = *starts.iter().max().unwrap();
        for (r, &e) in ends.iter().enumerate() {
            assert!(
                e >= max_start,
                "n={n}: rank {r} left allreduce before everyone entered"
            );
        }
    }
}

#[test]
fn gather_and_scatter_complete() {
    for n in [2u32, 5, 8] {
        run_collective(NicConfig::baseline(), n, |b, me, n| {
            gather(b, me, n, 0, 512, 4);
            scatter(b, me, n, 0, 512, 5);
        });
    }
}

#[test]
fn alltoall_completes_and_stresses_queues() {
    let n = 6u32;
    let (_, _, _) = run_collective(NicConfig::baseline(), n, |b, me, n| {
        alltoall(b, me, n, 1024, 6)
    });
}

#[test]
fn collectives_complete_on_all_nic_configs() {
    for nic in [
        NicConfig::baseline(),
        NicConfig::with_alpus(128),
        NicConfig::with_hash(32),
    ] {
        run_collective(nic, 5, |b, me, n| {
            bcast(b, me, n, 0, 2048, 7);
            allreduce(b, me, n, 64, 8);
            alltoall(b, me, n, 256, 9);
        });
    }
}

#[test]
fn back_to_back_collectives_do_not_cross_match() {
    // Distinct instances must not interfere even with zero settle time.
    run_collective(NicConfig::baseline(), 4, |b, me, n| {
        for inst in 10..20 {
            bcast(b, me, n, (inst as u32) % n, 64, inst);
        }
    });
}
