//! `mpiq-mpi` — the MPI layer over the simulated cluster.
//!
//! The paper's prototype MPI (§V-C, Fig. 4) implements a subset of
//! MPI-1.2 where "almost all processing occurs on the NIC" — the host
//! "is only required to dispatch message requests to the NIC and wait for
//! request completion". This crate is that host side plus the glue that
//! builds whole simulated clusters:
//!
//! * [`types`] — ranks, contexts, statuses, datatypes.
//! * [`app`] — the application programming model: an [`AppProgram`] is a
//!   polled state machine driven by completions, issuing non-blocking
//!   operations through the [`Mpi`] handle (the `MPI_Isend`/`MPI_Irecv`/
//!   `MPI_Test` layer).
//! * [`script`] — a sequential script interpreter on top of `app`, giving
//!   benchmarks blocking-feeling `Send`/`Recv`/`Wait`/`Waitall`/`Barrier`
//!   (the Fig. 4 functions marked "built from other MPI functions").
//! * [`host`] — the host CPU as a DES component.
//! * [`cluster`] — wires hosts, NICs, and the fabric into a runnable
//!   simulation.

pub mod app;
pub mod collectives;
pub mod cluster;
pub mod host;
pub mod script;
pub mod types;

pub use app::{AppProgram, Mpi, Request};
pub use cluster::{Cluster, ClusterConfig, ClusterConfigBuilder, FlowControl};
pub use host::Host;
pub use script::{MarkLog, Op, Script, SharedLog, StatusLog};
pub use types::{Datatype, MpiError, MpiStatus, ANY_SOURCE, ANY_TAG, CTX_INTERNAL, CTX_WORLD};
