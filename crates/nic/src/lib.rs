//! `mpiq-nic` — the network interface model.
//!
//! This crate models the NIC of Fig. 1: Rx/Tx paths with DMA engines, an
//! embedded processor (a [`mpiq_cpusim::Core`] with the Table III "NIC
//! Processor" parameters) running the MPI firmware loop of §V-C, a local
//! bus with a 20 ns transaction delay, and — in the enhanced
//! configuration — two [`Alpu`](mpiq_alpu::Alpu)s fed by hardware header
//! copies: one accelerating the posted-receive queue and one the
//! unexpected-message queue.
//!
//! The firmware ([`firmware`]) owns the five queues of §V-C
//! (`postedRecvQ`, `activeRecvQ`, `unexpectedQ`, `unexpectedActiveQ`,
//! `sendQ`), implements eager and rendezvous protocols, and — when ALPUs
//! are present — the shadow-list management of §IV: a software copy of
//! each queue, a pointer separating the ALPU-resident prefix from the
//! not-yet-inserted tail, batched insert sessions, and response pairing.
//!
//! Timing: the firmware executes *functionally* in Rust while emitting
//! micro-op traces ([`mpiq_cpusim::Uop`]) that the embedded core model
//! turns into elapsed time; the DES component ([`nic::Nic`]) serializes
//! work items on the processor and lets DMA engines and the ALPUs run
//! concurrently.

pub mod coll;
pub mod config;
pub mod dma;
pub mod firmware;
pub mod hashmatch;
pub mod host_iface;
pub mod nic;
pub mod queues;
pub mod reliability;

pub use coll::{ctag, CollOp, CollStep, Dir};
pub use config::{AlpuSetup, NicConfig, SwMatch};
pub use firmware::FwStats;
pub use host_iface::{Completion, HostRequest, ReqId};
pub use nic::{host_comp_port, Nic, PORT_HOST_COMP, PORT_HOST_REQ, PORT_NET_RX, PORT_NET_TX, PORT_RETX};
pub use reliability::{LinkStats, Reliability, ReliabilityConfig};
