//! Property test: random race-free workloads complete with *identical
//! application-visible results* on the baseline NIC, the hash-matching
//! NIC, and both ALPU NICs — only timing may differ.
//!
//! "Race-free" here means the matching outcome is semantically
//! determined: every message carries a globally unique tag, and receives
//! are either fully explicit or `MPI_ANY_SOURCE` with an explicit
//! (unique) tag, so no wildcard can legally match more than one message.
//! Under that restriction MPI mandates a single outcome, and all four
//! matching engines must produce it.

use mpiq::dessim::SimRng;
use mpiq::mpi::script::status_log;
use mpiq::mpi::{AppProgram, Cluster, ClusterConfig, MpiStatus, Script};
use mpiq::nic::NicConfig;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Msg {
    src: u32,
    dst: u32,
    tag: u16,
    len: u32,
    any_source_recv: bool,
}

/// Generate a random race-free message set for `ranks` ranks.
fn workload(ranks: u32, seed: u64, count: usize) -> Vec<Msg> {
    let mut rng = SimRng::new(seed);
    (0..count)
        .map(|i| {
            let src = rng.gen_range(ranks as u64) as u32;
            let mut dst = rng.gen_range(ranks as u64) as u32;
            if dst == src {
                dst = (dst + 1) % ranks;
            }
            let len = [0u32, 64, 1500, 4096][rng.gen_range(4) as usize];
            Msg {
                src,
                dst,
                tag: 100 + i as u16, // globally unique
                len,
                any_source_recv: rng.gen_bool(0.3),
            }
        })
        .collect()
}

/// Run the workload on one NIC config; returns per-rank sorted receive
/// statuses.
fn run(nic: NicConfig, ranks: u32, msgs: &[Msg], shuffle_seed: u64) -> Vec<Vec<(u32, MpiStatus)>> {
    let mut rng = SimRng::new(shuffle_seed);
    let logs: Vec<_> = (0..ranks).map(|_| status_log()).collect();
    let programs: Vec<Box<dyn AppProgram>> = (0..ranks)
        .map(|me| {
            let mut b = Script::builder();
            // Recvs posted in a per-rank random order (posting order is
            // semantically irrelevant for race-free workloads).
            let mut my_recvs: Vec<&Msg> = msgs.iter().filter(|m| m.dst == me).collect();
            rng.shuffle(&mut my_recvs);
            let mut recv_ops = Vec::new();
            for m in &my_recvs {
                let src = (!m.any_source_recv).then_some(m.src as u16);
                recv_ops.push((b.irecv(src, Some(m.tag), m.len), m.tag));
            }
            // Sends likewise, half before and half after a barrier so some
            // land unexpected and some pre-posted.
            let mut my_sends: Vec<&Msg> = msgs.iter().filter(|m| m.src == me).collect();
            rng.shuffle(&mut my_sends);
            let cut = my_sends.len() / 2;
            let mut send_slots = Vec::new();
            for m in &my_sends[..cut] {
                send_slots.push(b.isend(m.dst, m.tag, m.len));
            }
            b.barrier();
            for m in &my_sends[cut..] {
                send_slots.push(b.isend(m.dst, m.tag, m.len));
            }
            for (slot, tag) in &recv_ops {
                b.wait(*slot);
                b.status(*slot, *tag as u32);
            }
            b.wait_all(send_slots);
            Box::new(b.build(mpiq::mpi::script::mark_log()).with_status_log(
                logs[me as usize].clone(),
            )) as Box<dyn AppProgram>
        })
        .collect();

    let mut cluster = Cluster::new(ClusterConfig::new(nic), programs);
    cluster.run();
    logs.iter()
        .map(|l| {
            let mut v = l.borrow().clone();
            v.sort_by_key(|&(id, _)| id);
            v
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_matching_engines_agree(seed in any::<u64>(), count in 4usize..24) {
        let ranks = 3u32;
        let msgs = workload(ranks, seed, count);
        let base = run(NicConfig::baseline(), ranks, &msgs, seed ^ 1);
        // Every receive completed with the right source/tag/len.
        let total: usize = base.iter().map(Vec::len).sum();
        prop_assert_eq!(total, msgs.len());
        for m in &msgs {
            let got = base[m.dst as usize]
                .iter()
                .find(|&&(id, _)| id == m.tag as u32)
                .map(|&(_, st)| st);
            prop_assert_eq!(
                got,
                Some(MpiStatus { source: m.src as u16, tag: m.tag, len: m.len, cancelled: false, overflow: false, error: None }),
                "message {:?} misdelivered", m
            );
        }
        // And every other engine agrees exactly.
        for nic in [
            NicConfig::with_alpus(128),
            NicConfig::with_alpus(256),
            NicConfig::with_hash(32),
        ] {
            let other = run(nic, ranks, &msgs, seed ^ 1);
            prop_assert_eq!(&base, &other);
        }
    }
}
