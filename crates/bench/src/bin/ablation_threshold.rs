//! Ablation: the §VI-B engagement heuristic.
//!
//! "It is entirely possible that the MPI library could be optimized to
//! not use the ALPU until the list is at least 5 entries long." This
//! harness implements exactly that knob (`AlpuSetup::engage_threshold`)
//! and sweeps it: with the threshold at 5, the zero-length penalty
//! disappears while the deep-queue win is retained.
//!
//! ```text
//! cargo run -p mpiq-bench --bin ablation_threshold -- [--server ADDR]
//! ```

use mpiq_bench::cli::Cli;
use mpiq_bench::service;
use mpiq_bench::spec::{flags, RunSpec};

fn main() {
    let cli = Cli::parse(
        "ablation_threshold",
        "§VI-B engagement heuristic: ALPU engage threshold sweep",
        flags("ablation_threshold"),
    );
    let spec = RunSpec::from_cli("ablation_threshold", &cli).unwrap_or_else(|e| {
        eprintln!("ablation_threshold: {e}");
        std::process::exit(2);
    });
    let result = service::run_for_cli("ablation_threshold", cli.common.server.as_deref(), &spec)
        .unwrap_or_else(|e| {
            eprintln!("ablation_threshold: {e}");
            std::process::exit(1);
        });
    let ok = service::emit(&result, cli.common.out.as_deref().map(std::path::Path::new))
        .expect("write json");
    if !ok {
        std::process::exit(1);
    }
}
