//! DMA engine timing model.
//!
//! One engine per direction (Rx and Tx), each a simple busy-window model:
//! a transfer occupies the engine for `setup + bytes/bandwidth`, transfers
//! queue FCFS behind the busy window, and the caller learns the completion
//! time so it can schedule a completion event.

use mpiq_dessim::Time;

/// One DMA engine.
#[derive(Clone, Copy, Debug)]
pub struct Dma {
    bytes_per_ns: u64,
    setup: Time,
    busy_until: Time,
    transfers: u64,
    bytes_moved: u64,
}

impl Dma {
    /// Idle engine.
    pub fn new(bytes_per_ns: u64, setup: Time) -> Dma {
        assert!(bytes_per_ns > 0);
        Dma {
            bytes_per_ns,
            setup,
            busy_until: Time::ZERO,
            transfers: 0,
            bytes_moved: 0,
        }
    }

    /// Enqueue a transfer of `bytes` at time `now`; returns `(start, done)`.
    pub fn transfer(&mut self, bytes: u64, now: Time) -> (Time, Time) {
        let start = now.max(self.busy_until);
        let xfer = Time::from_ps(bytes * 1000 / self.bytes_per_ns);
        let done = start + self.setup + xfer;
        self.busy_until = done;
        self.transfers += 1;
        self.bytes_moved += bytes;
        (start, done)
    }

    /// When the engine next goes idle.
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total payload bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_setup_plus_serialization() {
        let mut d = Dma::new(4, Time::from_ns(60));
        let (start, done) = d.transfer(4096, Time::from_ns(100));
        assert_eq!(start, Time::from_ns(100));
        assert_eq!(done, Time::from_ns(100 + 60 + 1024));
    }

    #[test]
    fn transfers_queue_fcfs() {
        let mut d = Dma::new(4, Time::from_ns(60));
        let (_, d1) = d.transfer(400, Time::ZERO); // done at 160
        assert_eq!(d1, Time::from_ns(160));
        let (s2, d2) = d.transfer(400, Time::from_ns(10));
        assert_eq!(s2, Time::from_ns(160));
        assert_eq!(d2, Time::from_ns(320));
    }

    #[test]
    fn zero_byte_transfer_costs_setup_only() {
        let mut d = Dma::new(4, Time::from_ns(60));
        let (_, done) = d.transfer(0, Time::ZERO);
        assert_eq!(done, Time::from_ns(60));
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Dma::new(2, Time::ZERO);
        d.transfer(100, Time::ZERO);
        d.transfer(50, Time::ZERO);
        assert_eq!(d.transfers(), 2);
        assert_eq!(d.bytes_moved(), 150);
    }
}
