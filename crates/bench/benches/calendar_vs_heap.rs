//! Pending-event-set microbench: [`CalendarQueue`] vs `BinaryHeap` under
//! the sharded engine's load shapes.
//!
//! Two access patterns dominate a shard's event set during an incast:
//!
//! * **hold** — steady state: pop the earliest event, schedule its
//!   successor a (workload-dependent) delta later. The classic hold
//!   model; O(1) amortized for the calendar, O(log n) for the heap.
//! * **drain** — a batched mailbox drain at a window boundary: a burst
//!   of near-simultaneous cross-shard arrivals is bulk-inserted, then
//!   consumed. This is the path `Shard::drain_mailbox` exercises.
//!
//! Each runs under two time distributions: `uniform` (deltas spread over
//! ~2 µs) and `incast` (deltas quantized to a 1 µs wire, so events from
//! all senders collide on identical timestamps — the tie-heavy shape the
//! hetero scaling scenario produces).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpiq_dessim::{CalendarQueue, SimRng, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

const SENDERS: u64 = 16;
const OPS: usize = 10_000;

/// Per-pop successor deltas (picoseconds) for one load shape.
fn deltas(shape: &str, n: usize) -> Vec<u64> {
    let mut rng = SimRng::new(1);
    let wire = Time::from_us(1).ps();
    (0..n)
        .map(|_| match shape {
            // Spread arrivals: anywhere in the next ~2 us.
            "uniform" => 1_000 + rng.gen_range(2_000_000),
            // Quantized arrivals: whole wire delays, maximizing ties.
            "incast" => wire * (1 + rng.gen_range(3)),
            other => panic!("unknown shape {other}"),
        })
        .collect()
}

fn hold_calendar(deltas: &[u64]) -> u64 {
    let mut q = CalendarQueue::new();
    let mut seq = 0u64;
    for _ in 0..SENDERS {
        q.push(Time::from_ps(0), seq, seq);
        seq += 1;
    }
    let mut acc = 0u64;
    for &d in deltas {
        let (t, _, _) = q.pop().expect("population is constant");
        acc ^= t.ps();
        q.push(Time::from_ps(t.ps() + d), seq, seq);
        seq += 1;
    }
    acc
}

fn hold_heap(deltas: &[u64]) -> u64 {
    let mut q: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for _ in 0..SENDERS {
        q.push(Reverse((0, seq)));
        seq += 1;
    }
    let mut acc = 0u64;
    for &d in deltas {
        let Reverse((t, _)) = q.pop().expect("population is constant");
        acc ^= t;
        q.push(Reverse((t + d, seq)));
        seq += 1;
    }
    acc
}

fn bench_hold(c: &mut Criterion) {
    let mut g = c.benchmark_group("pes_hold");
    g.sample_size(20);
    g.throughput(Throughput::Elements(OPS as u64));
    for shape in ["uniform", "incast"] {
        let ds = deltas(shape, OPS);
        g.bench_with_input(BenchmarkId::new("calendar", shape), &ds, |b, ds| {
            b.iter(|| black_box(hold_calendar(ds)));
        });
        g.bench_with_input(BenchmarkId::new("heap", shape), &ds, |b, ds| {
            b.iter(|| black_box(hold_heap(ds)));
        });
    }
    g.finish();
}

/// Event times of one mailbox burst: `rounds` windows, each delivering
/// one event per sender; under `incast` every sender hits the identical
/// timestamp, under `uniform` they spread inside the window.
fn burst_times(shape: &str, rounds: u64) -> Vec<u64> {
    let mut rng = SimRng::new(2);
    let wire = Time::from_us(1).ps();
    let mut times = Vec::new();
    for round in 0..rounds {
        for _ in 0..SENDERS {
            let jitter = match shape {
                "uniform" => rng.gen_range(wire),
                "incast" => 0,
                other => panic!("unknown shape {other}"),
            };
            times.push((round + 1) * wire + jitter);
        }
    }
    times
}

fn drain_calendar(times: &[u64]) -> u64 {
    let mut q = CalendarQueue::new();
    for (seq, &t) in times.iter().enumerate() {
        q.push(Time::from_ps(t), seq as u64, seq);
    }
    let mut acc = 0u64;
    while let Some((t, _, _)) = q.pop() {
        acc ^= t.ps();
    }
    acc
}

fn drain_heap(times: &[u64]) -> u64 {
    let mut q: BinaryHeap<Reverse<(u64, u64)>> =
        times.iter().enumerate().map(|(seq, &t)| Reverse((t, seq as u64))).collect();
    let mut acc = 0u64;
    while let Some(Reverse((t, _))) = q.pop() {
        acc ^= t;
    }
    acc
}

fn bench_drain(c: &mut Criterion) {
    const ROUNDS: u64 = 256;
    let mut g = c.benchmark_group("pes_drain");
    g.sample_size(20);
    g.throughput(Throughput::Elements(ROUNDS * SENDERS));
    for shape in ["uniform", "incast"] {
        let ts = burst_times(shape, ROUNDS);
        g.bench_with_input(BenchmarkId::new("calendar", shape), &ts, |b, ts| {
            b.iter(|| black_box(drain_calendar(ts)));
        });
        g.bench_with_input(BenchmarkId::new("heap", shape), &ts, |b, ts| {
            b.iter(|| black_box(drain_heap(ts)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hold, bench_drain);
criterion_main!(benches);
