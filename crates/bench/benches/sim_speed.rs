//! Whole-stack simulator throughput: how long one experiment point takes
//! on the host. This is what bounds full Fig. 5 / Fig. 6 sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpiq_bench::{preposted_latency, unexpected_latency, NicVariant, PrepostedPoint, UnexpectedPoint};
use std::hint::black_box;

fn bench_preposted_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_preposted_point");
    g.sample_size(20);
    for (variant, q) in [
        (NicVariant::Baseline, 100usize),
        (NicVariant::Baseline, 400),
        (NicVariant::Alpu256, 400),
    ] {
        g.bench_with_input(
            BenchmarkId::new(variant.label(), q),
            &(variant, q),
            |b, &(v, q)| {
                b.iter(|| {
                    black_box(preposted_latency(
                        v,
                        PrepostedPoint {
                            queue_len: q,
                            fraction: 1.0,
                            msg_size: 0,
                        },
                    ))
                });
            },
        );
    }
    g.finish();
}

fn bench_unexpected_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_unexpected_point");
    g.sample_size(10);
    for (variant, u) in [(NicVariant::Baseline, 200usize), (NicVariant::Alpu128, 200)] {
        g.bench_with_input(
            BenchmarkId::new(variant.label(), u),
            &(variant, u),
            |b, &(v, u)| {
                b.iter(|| {
                    black_box(unexpected_latency(
                        v,
                        UnexpectedPoint {
                            queue_len: u,
                            msg_size: 64,
                        },
                    ))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_preposted_point, bench_unexpected_point);
criterion_main!(benches);
