//! The two-speed core's contract: `Alpu::advance(n)` must be
//! *bit-identical* to calling `tick()` n times — same responses, same
//! surviving entries, same statistics (including cycle and busy-cycle
//! counts) — across arbitrary interleavings of headers, insert sessions
//! (with held-probe retries), resets, response draining, and advances
//! short enough to land mid-compaction or mid-operation.

use mpiq_alpu::{Alpu, AlpuConfig, AlpuKind, Command, Entry, MatchWord, Probe};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Step {
    /// An incoming header (tag field selects among a small match space).
    Header(u16),
    /// Processor opens an insert session.
    StartInsert,
    /// Processor inserts an entry.
    Insert(u16),
    /// Processor closes the session (triggers the held-probe final retry).
    StopInsert,
    /// Processor clears the unit.
    Reset,
    /// Processor drains one response (releases result-FIFO backpressure).
    Pop,
    /// Let `n` cycles elapse — small values land mid-op / mid-compaction,
    /// large ones exercise the fast-forward paths.
    Advance(u16),
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        5 => (0u16..6).prop_map(Step::Header),
        2 => Just(Step::StartInsert),
        4 => (0u16..6).prop_map(Step::Insert),
        2 => Just(Step::StopInsert),
        1 => Just(Step::Reset),
        3 => Just(Step::Pop),
        6 => (0u16..96).prop_map(Step::Advance),
    ]
}

/// Compare every externally observable piece of state, plus the full
/// statistics block (so elided cycles must be accounted identically).
fn assert_same(fast: &Alpu, slow: &Alpu, step: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(fast.state(), slow.state(), "state diverged at step {}", step);
    prop_assert_eq!(
        fast.occupied(),
        slow.occupied(),
        "occupancy diverged at step {}",
        step
    );
    prop_assert_eq!(fast.free(), slow.free(), "free diverged at step {}", step);
    prop_assert_eq!(
        fast.responses_pending(),
        slow.responses_pending(),
        "response queue diverged at step {}",
        step
    );
    prop_assert_eq!(
        fast.headers_pending(),
        slow.headers_pending(),
        "header queue diverged at step {}",
        step
    );
    prop_assert_eq!(
        fast.commands_pending(),
        slow.commands_pending(),
        "command queue diverged at step {}",
        step
    );
    prop_assert_eq!(fast.stats(), slow.stats(), "stats diverged at step {}", step);
    prop_assert_eq!(
        fast.array().entries_oldest_first(),
        slow.array().entries_oldest_first(),
        "cell contents diverged at step {}",
        step
    );
    Ok(())
}

fn run(total: usize, block: usize, result_depth: usize, script: Vec<Step>) -> Result<(), TestCaseError> {
    let mut cfg = AlpuConfig::new(total, block, AlpuKind::PostedReceive);
    // A shallow result FIFO makes flow-control freezes reachable.
    cfg.result_fifo_depth = result_depth;
    let mut fast = Alpu::new(cfg);
    let mut slow = fast.clone();
    let mut cookie = 0u32;

    for (i, s) in script.into_iter().enumerate() {
        match s {
            Step::Header(t) => {
                let p = Probe::exact(MatchWord::mpi(1, 0, t));
                prop_assert_eq!(fast.push_header(p), slow.push_header(p));
            }
            Step::StartInsert => {
                prop_assert_eq!(
                    fast.push_command(Command::StartInsert),
                    slow.push_command(Command::StartInsert)
                );
            }
            Step::Insert(t) => {
                let e = Entry::mpi_recv(1, Some(0), Some(t), cookie);
                cookie += 1;
                prop_assert_eq!(
                    fast.push_command(Command::Insert(e)),
                    slow.push_command(Command::Insert(e))
                );
            }
            Step::StopInsert => {
                prop_assert_eq!(
                    fast.push_command(Command::StopInsert),
                    slow.push_command(Command::StopInsert)
                );
            }
            Step::Reset => {
                prop_assert_eq!(
                    fast.push_command(Command::Reset),
                    slow.push_command(Command::Reset)
                );
            }
            Step::Pop => {
                prop_assert_eq!(fast.pop_response(), slow.pop_response());
            }
            Step::Advance(n) => {
                fast.advance(n as u64);
                for _ in 0..n {
                    slow.tick();
                }
            }
        }
        assert_same(&fast, &slow, i)?;
    }

    // Long tail: fast-forward a large quiescent-ish stretch both ways.
    fast.advance(10_000);
    for _ in 0..10_000 {
        slow.tick();
    }
    assert_same(&fast, &slow, usize::MAX)?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn advance_equals_ticks(script in prop::collection::vec(step(), 1..60)) {
        run(16, 4, 4096, script)?;
    }

    /// Shallow result FIFO: backpressure freezes are common, so the
    /// frozen fast-forward path must stay tick-identical.
    #[test]
    fn advance_equals_ticks_under_backpressure(script in prop::collection::vec(step(), 1..60)) {
        run(16, 4, 2, script)?;
    }

    /// Single-block geometry (deepest per-block mux tree).
    #[test]
    fn advance_equals_ticks_single_block(script in prop::collection::vec(step(), 1..50)) {
        run(8, 8, 4096, script)?;
    }

    /// Two-cell blocks: compaction crosses many block boundaries, keeping
    /// holes in flight longer.
    #[test]
    fn advance_equals_ticks_tiny_blocks(script in prop::collection::vec(step(), 1..50)) {
        run(16, 2, 3, script)?;
    }
}
