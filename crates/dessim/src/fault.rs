//! Deterministic fault injection.
//!
//! A [`FaultConfig`] describes *what* can go wrong (message drops,
//! duplications, corruption on the wire; bit-flips and command-FIFO
//! stalls in an offload unit) and with what probability; a [`FaultPlan`]
//! turns that description into a reproducible stream of concrete fault
//! decisions. Every decision is drawn from a private SplitMix64 stream
//! derived from `(config seed, site id)`, never from the simulation's
//! shared RNG — so enabling faults cannot perturb any other randomized
//! choice, and two runs with the same seed make bit-identical decisions
//! at every injection site regardless of event interleaving.
//!
//! Sites (one plan per fabric, one per offload unit) each get their own
//! stream id, keeping decisions at different sites uncorrelated.

use crate::rng::SimRng;

/// Probabilities and seed for a fault campaign. `FaultConfig::none()`
/// (the `Default`) disables everything; injection sites must be zero-cost
/// in that case.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Master seed; all per-site streams derive from it.
    pub seed: u64,
    /// Probability a wire message is dropped.
    pub drop_p: f64,
    /// Probability a wire message is delivered twice.
    pub dup_p: f64,
    /// Probability a wire message arrives with a failed CRC.
    pub corrupt_p: f64,
    /// Probability, per queued probe, of a bit-flip in the unit's cells.
    pub flip_p: f64,
    /// Probability, per pushed command, of a transient pipeline stall.
    pub stall_p: f64,
    /// Probability, per flow-control credit grant or rendezvous
    /// clear-to-send, that the message authorizing further progress is
    /// silently lost *inside the NIC* (a firmware bug model, not a wire
    /// fault — the reliability layer cannot recover it). Used to induce
    /// real credit-leak deadlocks for the watchdog.
    pub leak_p: f64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::none()
    }
}

impl FaultConfig {
    /// No faults. Every probability zero.
    pub const fn none() -> FaultConfig {
        FaultConfig {
            seed: 1,
            drop_p: 0.0,
            dup_p: 0.0,
            corrupt_p: 0.0,
            flip_p: 0.0,
            stall_p: 0.0,
            leak_p: 0.0,
        }
    }

    /// True if any fault class can fire.
    pub fn is_active(&self) -> bool {
        self.net_active() || self.alpu_active() || self.leak_active()
    }

    /// True if any wire-level fault class can fire.
    pub fn net_active(&self) -> bool {
        self.drop_p > 0.0 || self.dup_p > 0.0 || self.corrupt_p > 0.0
    }

    /// True if any offload-unit fault class can fire.
    pub fn alpu_active(&self) -> bool {
        self.flip_p > 0.0 || self.stall_p > 0.0
    }

    /// True if the credit/CTS leak class can fire.
    pub fn leak_active(&self) -> bool {
        self.leak_p > 0.0
    }
}

/// Parse `seed=N,drop=P,dup=P,corrupt=P,flip=P,stall=P,leak=P` (any
/// subset, any order; omitted fields default to the `none()` values).
impl std::str::FromStr for FaultConfig {
    type Err = String;
    fn from_str(s: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::none();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v.parse().map_err(|_| format!("bad probability `{v}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability `{v}` outside [0,1]"));
                }
                Ok(p)
            };
            match key {
                "seed" => cfg.seed = val.parse().map_err(|_| format!("bad seed `{val}`"))?,
                "drop" => cfg.drop_p = prob(val)?,
                "dup" => cfg.dup_p = prob(val)?,
                "corrupt" => cfg.corrupt_p = prob(val)?,
                "flip" => cfg.flip_p = prob(val)?,
                "stall" => cfg.stall_p = prob(val)?,
                "leak" => cfg.leak_p = prob(val)?,
                other => {
                    return Err(format!(
                        "unknown fault key `{other}` (want seed|drop|dup|corrupt|flip|stall|leak)"
                    ))
                }
            }
        }
        Ok(cfg)
    }
}

/// The three independent verdicts for one wire message. Rolled in a fixed
/// order with a fixed number of RNG draws, so the decision stream for
/// message *n* does not depend on the outcomes for messages `0..n`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireFault {
    pub drop: bool,
    pub duplicate: bool,
    pub corrupt: bool,
}

/// A bit-flip target inside an offload unit: an occupied-cell selector
/// (reduced modulo occupancy by the unit) and a bit index within the
/// cell's match word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlipTarget {
    pub cell_sel: u64,
    pub bit: u32,
}

/// A reproducible stream of fault decisions for one injection site.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SimRng,
}

/// Stall durations drawn per command, in unit clock cycles. The upper
/// bound is deliberately above typical firmware spin budgets so that some
/// stalls are survivable and some force a quarantine.
const STALL_MIN_CYCLES: u64 = 512;
const STALL_MAX_CYCLES: u64 = 8192;

impl FaultPlan {
    /// Plan for injection site `site`, derived from `cfg.seed`. Distinct
    /// sites get uncorrelated streams; the same `(seed, site)` pair always
    /// yields the same stream.
    pub fn new(cfg: FaultConfig, site: u64) -> FaultPlan {
        // One fork step per site id separates the streams; the xor keeps
        // site 0 from replaying the raw seed stream.
        let mut base = SimRng::new(cfg.seed ^ 0xa076_1d64_78bd_642f);
        let mut rng = SimRng::new(base.next_u64() ^ site.wrapping_mul(0xe703_7ed1_a0b4_28db));
        rng.next_u64(); // burn one step to decouple from the mix constant
        FaultPlan { cfg, rng }
    }

    /// The config this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Roll the wire-fault verdicts for the next message (three Bernoulli
    /// draws, always consumed).
    pub fn roll_wire(&mut self) -> WireFault {
        WireFault {
            drop: self.rng.gen_bool(self.cfg.drop_p),
            duplicate: self.rng.gen_bool(self.cfg.dup_p),
            corrupt: self.rng.gen_bool(self.cfg.corrupt_p),
        }
    }

    /// Roll a possible bit-flip for the next queued probe. Consumes a
    /// fixed three draws whether or not the flip fires.
    pub fn roll_flip(&mut self) -> Option<FlipTarget> {
        let fire = self.rng.gen_bool(self.cfg.flip_p);
        let cell_sel = self.rng.next_u64();
        let bit = self.rng.gen_range(64) as u32;
        fire.then_some(FlipTarget { cell_sel, bit })
    }

    /// Roll a possible pipeline stall for the next pushed command, in unit
    /// clock cycles. Consumes a fixed two draws.
    pub fn roll_stall(&mut self) -> Option<u64> {
        let fire = self.rng.gen_bool(self.cfg.stall_p);
        let cycles = STALL_MIN_CYCLES + self.rng.gen_range(STALL_MAX_CYCLES - STALL_MIN_CYCLES);
        fire.then_some(cycles)
    }

    /// Roll whether the next credit grant / clear-to-send is leaked.
    /// Consumes a fixed one draw.
    pub fn roll_leak(&mut self) -> bool {
        self.rng.gen_bool(self.cfg.leak_p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_default() {
        let cfg = FaultConfig::none();
        assert!(!cfg.is_active());
        assert_eq!(cfg, FaultConfig::default());
    }

    #[test]
    fn parse_full_spec() {
        let cfg: FaultConfig = "seed=42,drop=0.01,dup=0.005,corrupt=0.002,flip=0.1,stall=0.2"
            .parse()
            .unwrap();
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.drop_p, 0.01);
        assert_eq!(cfg.dup_p, 0.005);
        assert_eq!(cfg.corrupt_p, 0.002);
        assert_eq!(cfg.flip_p, 0.1);
        assert_eq!(cfg.stall_p, 0.2);
        assert!(cfg.is_active() && cfg.net_active() && cfg.alpu_active());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("drop".parse::<FaultConfig>().is_err());
        assert!("drop=2.0".parse::<FaultConfig>().is_err());
        assert!("warp=0.1".parse::<FaultConfig>().is_err());
        assert!("seed=x".parse::<FaultConfig>().is_err());
    }

    #[test]
    fn plans_are_reproducible_per_site() {
        let cfg: FaultConfig = "seed=7,drop=0.5,dup=0.5,corrupt=0.5".parse().unwrap();
        let mut a = FaultPlan::new(cfg, 3);
        let mut b = FaultPlan::new(cfg, 3);
        for _ in 0..200 {
            assert_eq!(a.roll_wire(), b.roll_wire());
        }
    }

    #[test]
    fn sites_are_uncorrelated() {
        let cfg: FaultConfig = "seed=7,drop=0.5".parse().unwrap();
        let mut a = FaultPlan::new(cfg, 0);
        let mut b = FaultPlan::new(cfg, 1);
        let same = (0..256)
            .filter(|_| a.roll_wire().drop == b.roll_wire().drop)
            .count();
        // Two fair-coin streams should agree about half the time.
        assert!((64..=192).contains(&same), "suspicious agreement: {same}");
    }

    #[test]
    fn drop_rate_close_to_requested() {
        let cfg: FaultConfig = "seed=11,drop=0.01".parse().unwrap();
        let mut plan = FaultPlan::new(cfg, 0);
        let n = 100_000;
        let drops = (0..n).filter(|_| plan.roll_wire().drop).count();
        let rate = drops as f64 / n as f64;
        assert!((0.005..0.02).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn stall_cycles_bounded() {
        let cfg: FaultConfig = "seed=5,stall=1.0".parse().unwrap();
        let mut plan = FaultPlan::new(cfg, 0);
        for _ in 0..1_000 {
            let c = plan.roll_stall().unwrap();
            assert!((STALL_MIN_CYCLES..STALL_MAX_CYCLES).contains(&c));
        }
    }

    #[test]
    fn inactive_plan_never_fires() {
        let mut plan = FaultPlan::new(FaultConfig::none(), 0);
        for _ in 0..1_000 {
            assert_eq!(plan.roll_wire(), WireFault::default());
            assert!(plan.roll_flip().is_none());
            assert!(plan.roll_stall().is_none());
            assert!(!plan.roll_leak());
        }
    }

    #[test]
    fn parse_leak_key() {
        let cfg: FaultConfig = "seed=3,leak=1.0".parse().unwrap();
        assert_eq!(cfg.leak_p, 1.0);
        assert!(cfg.leak_active() && cfg.is_active());
        assert!(!cfg.net_active() && !cfg.alpu_active());
        let mut plan = FaultPlan::new(cfg, 9);
        assert!(plan.roll_leak());
    }
}
