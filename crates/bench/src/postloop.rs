//! Post-in-loop ping-pong: the workload where *matching strategy*
//! trade-offs show (§II's hash-table discussion and the §VI-B break-even
//! heuristic).
//!
//! Unlike the pre-posted benchmark, the receiver posts the matching
//! receive inside the timed loop — the way applications actually use MPI
//! ("applications ... typically have some number of iterations and post
//! receives in each iteration", §V-A). Every iteration therefore pays:
//! the posting cost (where hash insertion overhead bites), the
//! posted-queue search when the ping arrives (where the pre-posted depth
//! bites), and the wildcard side-walk (where hash matching degrades).

use mpiq_dessim::Time;
use mpiq_mpi::script::mark_log;
use mpiq_mpi::{AppProgram, Cluster, ClusterConfig, Script};
use mpiq_nic::NicConfig;

/// One point of the post-in-loop parameter space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PostLoopPoint {
    /// Exact (fully specified) never-matching receives pre-posted ahead
    /// of the loop.
    pub exact_prepost: usize,
    /// `MPI_ANY_SOURCE` never-matching receives pre-posted ahead of the
    /// loop.
    pub wildcard_prepost: usize,
    /// Ping payload bytes.
    pub msg_size: u32,
}

const PING_TAG: u16 = 7;
const PONG_TAG: u16 = 8;
const ITERS: u32 = 8;
const WARMUP: u32 = 2;

/// Mean per-iteration round-trip time at the sender. `parallelism`
/// selects the execution engine (0 = hub, `n >= 1` = sharded on `n`
/// threads); the result is identical either way.
pub fn postloop_rtt(nic: NicConfig, p: PostLoopPoint, parallelism: usize) -> Time {
    let marks = mark_log();

    // Rank 0: sender, measures full iterations.
    let mut b0 = Script::builder();
    b0.barrier();
    b0.sleep(Time::from_us(400));
    for i in 0..ITERS {
        b0.mark(2 * i);
        b0.send(1, PING_TAG.wrapping_add((i as u16) << 5), p.msg_size);
        b0.recv(Some(1), Some(PONG_TAG), 0);
        b0.mark(2 * i + 1);
    }
    let p0 = b0.build(marks.clone());

    // Rank 1: receiver with the polluted queue; posts in the loop.
    let mut b1 = Script::builder();
    for i in 0..p.exact_prepost {
        b1.irecv(Some(0), Some(20_000 + (i % 20_000) as u16), 0);
    }
    for i in 0..p.wildcard_prepost {
        b1.irecv(None, Some(40_000 + (i % 20_000) as u16), 0);
    }
    b1.barrier();
    b1.sleep(Time::from_us(400));
    for i in 0..ITERS {
        b1.recv(Some(0), Some(PING_TAG.wrapping_add((i as u16) << 5)), p.msg_size);
        b1.send(0, PONG_TAG, 0);
    }
    let p1 = b1.build(mark_log());

    let mut cluster = Cluster::new(
        ClusterConfig::builder(nic).parallelism(parallelism).build(),
        vec![
            Box::new(p0) as Box<dyn AppProgram>,
            Box::new(p1) as Box<dyn AppProgram>,
        ],
    );
    cluster.run();
    let m = marks.borrow();
    let mut total = Time::ZERO;
    for i in WARMUP..ITERS {
        total += m[(2 * i + 1) as usize].1 - m[(2 * i) as usize].1;
    }
    total / (ITERS - WARMUP) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpiq_nic::SwMatch;

    fn rtt(nic: NicConfig, exact: usize, wild: usize) -> Time {
        postloop_rtt(
            nic,
            PostLoopPoint {
                exact_prepost: exact,
                wildcard_prepost: wild,
                msg_size: 0,
            },
            0,
        )
    }

    #[test]
    fn hash_flattens_exact_depth() {
        // Deep exact-prepost queue: list pays per entry, hash does not.
        let list = rtt(NicConfig::baseline(), 300, 0);
        let hash = rtt(NicConfig::with_hash(64), 300, 0);
        assert!(
            hash + Time::from_us(2) < list,
            "hash {hash} should beat list {list} at depth 300"
        );
    }

    #[test]
    fn hash_pays_insertion_overhead_when_queue_is_short() {
        // §II: "this increase in insertion time ... is especially
        // noticeable in the zero-length ping-pong latency test".
        let list = rtt(NicConfig::baseline(), 0, 0);
        let hash = rtt(NicConfig::with_hash(64), 0, 0);
        assert!(
            hash > list,
            "hash {hash} must be slower than list {list} on empty queues"
        );
    }

    #[test]
    fn wildcards_erode_the_hash_advantage() {
        // With the depth in the wildcard list instead of exact entries,
        // hashing degenerates to a linear walk.
        let hash_exact = rtt(NicConfig::with_hash(64), 200, 0);
        let hash_wild = rtt(NicConfig::with_hash(64), 0, 200);
        assert!(
            hash_wild > hash_exact + Time::from_us(1),
            "wildcard pollution must hurt hash matching: {hash_exact} vs {hash_wild}"
        );
        // ...while the ALPU handles wildcards natively.
        let alpu_wild = rtt(NicConfig::with_alpus(256), 0, 200);
        assert!(alpu_wild + Time::from_us(1) < hash_wild);
    }

    #[test]
    fn alpu_beats_both_at_depth() {
        let list = rtt(NicConfig::baseline(), 300, 0);
        let alpu = rtt(NicConfig::with_alpus(256), 300, 0);
        assert!(alpu + Time::from_us(2) < list);
    }

    #[test]
    fn hash_and_list_agree_semantically() {
        // Same completions either way (the cluster deadlock assert plus
        // the fact both runs finish proves matching correctness here).
        let a = rtt(NicConfig::baseline(), 50, 10);
        let b = rtt(NicConfig::with_hash(16), 50, 10);
        assert!(a > Time::ZERO && b > Time::ZERO);
    }

    #[test]
    fn sw_match_selector_roundtrip() {
        assert_eq!(
            NicConfig::with_hash(64).sw_match,
            SwMatch::HashBins { bins: 64 }
        );
        assert_eq!(NicConfig::baseline().sw_match, SwMatch::LinearList);
    }
}
