//! Regenerates Figure 5: message latency vs. posted-receive queue length
//! and fraction of the queue traversed, for the baseline NIC and the
//! 128-/256-entry ALPU NICs.
//!
//! ```text
//! cargo run --release -p mpiq-bench --bin fig5 -- [--config all|baseline|alpu128|alpu256]
//!     [--max-queue 500] [--step 25] [--fractions 0,0.25,0.5,0.75,1.0]
//!     [--sizes 0,1024,8192] [--threads 0] [--json results/fig5.json]
//!     [--faults seed=N,drop=P[,dup=P,corrupt=P,flip=P,stall=P]]
//!     [--trace-out trace.json] [--metrics]
//! ```
//!
//! With `--faults`, every point runs under the given deterministic fault
//! schedule and the rows carry extra injection/recovery columns; without
//! it, the output is byte-identical to the pre-fault harness.
//!
//! `--trace-out PATH` re-runs one representative point (the deepest
//! queue, full traversal, smallest message) with structured tracing
//! enabled and writes a Chrome `chrome://tracing` JSON timeline to PATH.
//! `--metrics` dumps the latency histograms of that instrumented run to
//! stderr. Neither flag perturbs the CSV on stdout.

use mpiq_bench::report::{json_f64, json_str, write_json, CsvRow, JsonRow};
use mpiq_bench::{
    preposted_latency_cfg, run_parallel, FaultCounters, NicVariant, PrepostedPoint,
};
use mpiq_dessim::FaultConfig;

struct Row {
    config: String,
    queue_len: usize,
    fraction: f64,
    msg_size: u32,
    latency_us: f64,
    sw_traversed: u64,
    rx_l1_misses: u64,
    faults: Option<FaultCounters>,
}

impl JsonRow for Row {
    fn fields(&self) -> Vec<(&'static str, String)> {
        let mut f = vec![
            ("config", json_str(&self.config)),
            ("queue_len", self.queue_len.to_string()),
            ("fraction", json_f64(self.fraction)),
            ("msg_size", self.msg_size.to_string()),
            ("latency_us", json_f64(self.latency_us)),
            ("sw_traversed", self.sw_traversed.to_string()),
            ("rx_l1_misses", self.rx_l1_misses.to_string()),
        ];
        if let Some(fc) = &self.faults {
            f.extend(fc.json_fields());
        }
        f
    }
}

impl CsvRow for Row {
    fn csv(&self) -> String {
        let base = format!(
            "{},{},{},{},{:.4},{},{}",
            self.config,
            self.queue_len,
            self.fraction,
            self.msg_size,
            self.latency_us,
            self.sw_traversed,
            self.rx_l1_misses
        );
        match &self.faults {
            Some(fc) => format!("{base},{}", fc.csv()),
            None => base,
        }
    }
}

fn main() {
    let args = Args::parse();
    let variants: Vec<NicVariant> = match args.config.as_str() {
        "all" => NicVariant::ALL.to_vec(),
        s => vec![s.parse().unwrap_or_else(|e| panic!("{e}"))],
    };

    let mut points = Vec::new();
    for &v in &variants {
        for &size in &args.sizes {
            for &f in &args.fractions {
                for q in (0..=args.max_queue).step_by(args.step) {
                    points.push((
                        v,
                        PrepostedPoint {
                            queue_len: q,
                            fraction: f,
                            msg_size: size,
                        },
                    ));
                }
            }
        }
    }
    eprintln!(
        "fig5: {} points across {} config(s), {} thread(s)",
        points.len(),
        variants.len(),
        if args.threads == 0 { "auto".to_string() } else { args.threads.to_string() }
    );

    let faults = args.faults;
    let rows: Vec<Row> = run_parallel(points, args.threads, move |&(v, p)| {
        let mut cfg = v.config();
        if let Some(f) = faults {
            cfg = cfg.with_faults(f);
        }
        let r = preposted_latency_cfg(cfg, p);
        Row {
            config: v.label().to_string(),
            queue_len: p.queue_len,
            fraction: p.fraction,
            msg_size: p.msg_size,
            latency_us: r.latency.as_us_f64(),
            sw_traversed: r.sw_traversed,
            rx_l1_misses: r.rx_l1_misses,
            faults: faults.map(|_| r.faults),
        }
    });

    let mut header =
        "config,queue_len,fraction,msg_size,latency_us,sw_traversed,rx_l1_misses".to_string();
    if faults.is_some() {
        header = format!("{header},{}", FaultCounters::CSV_HEADER);
    }
    println!("{header}");
    for r in &rows {
        println!("{}", r.csv());
    }
    if let Some(path) = &args.json {
        write_json(std::path::Path::new(path), &rows).expect("write json");
        eprintln!("fig5: wrote {path}");
    }

    if args.plot {
        let mut series = Vec::new();
        for (v, glyph) in variants.iter().zip(['B', 'a', 'A', 'x', 'y']) {
            series.push(mpiq_bench::ascii_plot::Series {
                label: v.label().to_string(),
                glyph,
                points: rows
                    .iter()
                    .filter(|r| {
                        r.config == v.label() && r.fraction == 1.0 && r.msg_size == args.sizes[0]
                    })
                    .map(|r| (r.queue_len as f64, r.latency_us))
                    .collect(),
            });
        }
        eprintln!(
            "
Fig. 5 projection: latency vs posted-queue length (full traversal, {} B)
{}",
            args.sizes[0],
            mpiq_bench::ascii_plot::render(&series, 72, 20, "queue length", "latency (us)")
        );
    }

    if args.trace_out.is_some() || args.metrics {
        // Prefer an ALPU variant so the timeline shows hardware events.
        let v = variants
            .iter()
            .copied()
            .find(|v| *v != NicVariant::Baseline)
            .unwrap_or(variants[0]);
        let point = PrepostedPoint {
            queue_len: args.max_queue,
            fraction: 1.0,
            msg_size: args.sizes[0],
        };
        let mut cfg = v.config();
        if let Some(f) = faults {
            cfg = cfg.with_faults(f);
        }
        let run = mpiq_bench::traced_preposted(cfg, point, 1 << 20);
        if run.dropped > 0 {
            eprintln!("fig5: trace ring overflowed, {} records dropped", run.dropped);
        }
        if let Some(path) = &args.trace_out {
            std::fs::write(path, &run.chrome_json).expect("write trace");
            eprintln!(
                "fig5: wrote {} trace records ({} config) to {path}",
                run.records,
                v.label()
            );
        }
        if args.metrics {
            eprintln!("{}", run.metrics_text);
        }
    }

    // Headline summary (paper §VI-B shape checks).
    for &v in &variants {
        let at = |q: usize| {
            rows.iter()
                .find(|r| {
                    r.config == v.label()
                        && r.queue_len == q
                        && r.fraction == 1.0
                        && r.msg_size == args.sizes[0]
                })
                .map(|r| r.latency_us)
        };
        if let (Some(l0), Some(lmax)) = (at(0), at(args.max_queue)) {
            eprintln!(
                "fig5[{}]: latency {:.2}us @len 0 -> {:.2}us @len {} (full traversal)",
                v.label(),
                l0,
                lmax,
                args.max_queue
            );
        }
    }
}

struct Args {
    plot: bool,
    config: String,
    max_queue: usize,
    step: usize,
    fractions: Vec<f64>,
    sizes: Vec<u32>,
    threads: usize,
    json: Option<String>,
    faults: Option<FaultConfig>,
    trace_out: Option<String>,
    metrics: bool,
}

impl Args {
    fn parse() -> Args {
        let mut a = Args {
            plot: false,
            config: "all".into(),
            max_queue: 500,
            step: 25,
            fractions: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            sizes: vec![0, 1024, 8192],
            threads: 0,
            json: None,
            faults: None,
            trace_out: None,
            metrics: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
            match flag.as_str() {
                "--plot" => a.plot = true,
                "--config" => a.config = val(),
                "--max-queue" => a.max_queue = val().parse().expect("usize"),
                "--step" => a.step = val().parse().expect("usize"),
                "--fractions" => {
                    a.fractions = val().split(',').map(|s| s.parse().expect("f64")).collect()
                }
                "--sizes" => a.sizes = val().split(',').map(|s| s.parse().expect("u32")).collect(),
                "--threads" => a.threads = val().parse().expect("usize"),
                "--json" => a.json = Some(val()),
                "--faults" => {
                    a.faults = Some(val().parse().unwrap_or_else(|e| panic!("--faults: {e}")))
                }
                "--trace-out" => a.trace_out = Some(val()),
                "--metrics" => a.metrics = true,
                other => panic!("unknown flag {other}"),
            }
        }
        a
    }
}
