//! Collective operations built from point-to-point — the same way the
//! paper's prototype builds `MPI_Barrier` (Fig. 4's "built from other MPI
//! functions"). An extension beyond the paper's subset, using the
//! textbook algorithms contemporary MPI implementations used.
//!
//! All collective traffic runs on [`CTX_INTERNAL`] with tags in the upper
//! half of the tag space, drawn from the partitioned
//! [`mpiq_nic::coll::ctag`] space: each instance slot owns a disjoint
//! block of message indices, so two collectives in flight can never
//! produce the same tag (the old `instance * 97 + k` hash collided as
//! soon as a message index reached 97 — i.e. at ≥ 98 ranks). Each
//! collective call takes an `instance` number that must be unique per
//! call site per pair of communicating collectives in flight (scripts
//! are sequential, so an incrementing counter per rank suffices).
//!
//! The tree-shaped collectives (`bcast`, `reduce`, `allreduce`) emit the
//! shared step plans from [`mpiq_nic::coll`] — the same plans the NIC
//! firmware's offload engine executes — so a host-driven rank and an
//! offloaded rank produce identical wire patterns and can interoperate
//! within one collective.
//!
//! Data *contents* are not modeled (payloads are synthetic); what these
//! produce is the exact message pattern — counts, sizes, dependencies —
//! which is what the NIC-level evaluation cares about.
//!
//! **Under component faults** (a scheduled `FaultSchedule` crash or a
//! link declared dead), collectives never deadlock: every operation in
//! the tree that names a failed rank completes with
//! `MpiStatus::error = Some(MpiError::RankFailed{..})` — the ULFM
//! `MPI_ERR_PROC_FAILED` contract — so the wait unblocks and the script
//! continues. Survivor-to-survivor edges complete normally; the caller
//! inspects statuses to learn the collective was cut. There is no
//! built-in communicator-shrinking (`MPIX_Comm_shrink`) — the typed
//! error is the recovery surface.

use crate::script::ScriptBuilder;
use crate::types::CTX_INTERNAL;
use mpiq_nic::coll::{bcast_steps, ctag, reduce_steps, steps, CollOp, CollStep, Dir};

/// Emit one shared-plan step as blocking script ops.
fn emit(b: &mut ScriptBuilder, step: CollStep) {
    let s = match step.dir {
        Dir::Send => b.isend_ctx(step.peer, CTX_INTERNAL, step.tag, step.len),
        Dir::Recv => b.irecv_ctx(Some(step.peer as u16), CTX_INTERNAL, Some(step.tag), step.len),
    };
    b.wait(s);
}

/// Binomial-tree broadcast from `root` (the MPICH algorithm).
///
/// Emits the ops for rank `me` of `n`; every rank must call with the same
/// `root`, `len`, and `instance`. Parent and child targets are computed
/// in relative rank space and de-rotated through `root` explicitly, so
/// the tree shape is root-invariant (pinned by the shape-oracle tests in
/// `mpiq_nic::coll`).
pub fn bcast(b: &mut ScriptBuilder, me: u32, n: u32, root: u32, len: u32, instance: u16) {
    for step in bcast_steps(me, n, root, len, instance) {
        emit(b, step);
    }
}

/// Binomial-tree reduction to `root` (message pattern of MPICH's reduce;
/// the combining computation itself is not modeled).
pub fn reduce(b: &mut ScriptBuilder, me: u32, n: u32, root: u32, len: u32, instance: u16) {
    for step in reduce_steps(me, n, root, len, instance) {
        emit(b, step);
    }
}

/// All-reduce as reduce-to-0 followed by broadcast-from-0. A single
/// instance covers both phases (they use distinct message indices), so
/// callers no longer burn two instance slots per allreduce.
pub fn allreduce(b: &mut ScriptBuilder, me: u32, n: u32, len: u32, instance: u16) {
    for step in steps(CollOp::Allreduce, me, n, 0, len, instance) {
        emit(b, step);
    }
}

/// Tree barrier: a zero-payload allreduce (up-tree to 0, down-tree from
/// 0). This is the host-driven twin of the firmware's offloaded barrier —
/// identical wire pattern — and the baseline the scaling bench compares
/// against. (The `Script::barrier()` primitive uses dissemination instead;
/// this one exists so offloaded and host-driven runs differ only in *who*
/// executes the steps.)
pub fn tree_barrier(b: &mut ScriptBuilder, me: u32, n: u32, instance: u16) {
    for step in steps(CollOp::Barrier, me, n, 0, 0, instance) {
        emit(b, step);
    }
}

/// Linear gather to `root`: every non-root sends one message; the root
/// receives `n-1`, distinguished by per-source tags.
pub fn gather(b: &mut ScriptBuilder, me: u32, n: u32, root: u32, len: u32, instance: u16) {
    assert!(me < n && root < n);
    if me == root {
        let slots: Vec<usize> = (0..n)
            .filter(|&r| r != root)
            .map(|r| {
                b.irecv_ctx(
                    Some(r as u16),
                    CTX_INTERNAL,
                    Some(ctag(instance, 2 + r as u16)),
                    len,
                )
            })
            .collect();
        b.wait_all(slots);
    } else {
        let s = b.isend_ctx(root, CTX_INTERNAL, ctag(instance, 2 + me as u16), len);
        b.wait(s);
    }
}

/// Linear scatter from `root`: the root sends one message per rank.
pub fn scatter(b: &mut ScriptBuilder, me: u32, n: u32, root: u32, len: u32, instance: u16) {
    assert!(me < n && root < n);
    if me == root {
        let slots: Vec<usize> = (0..n)
            .filter(|&r| r != root)
            .map(|r| b.isend_ctx(r, CTX_INTERNAL, ctag(instance, 2 + r as u16), len))
            .collect();
        b.wait_all(slots);
    } else {
        let s = b.irecv_ctx(
            Some(root as u16),
            CTX_INTERNAL,
            Some(ctag(instance, 2 + me as u16)),
            len,
        );
        b.wait(s);
    }
}

/// Linear all-to-all: every rank sends to and receives from every other
/// rank, fully overlapped. The pattern that builds the deepest transient
/// queues — a natural ALPU stress.
pub fn alltoall(b: &mut ScriptBuilder, me: u32, n: u32, len: u32, instance: u16) {
    assert!(me < n);
    let mut slots = Vec::new();
    for peer in 0..n {
        if peer == me {
            continue;
        }
        // Tag by sender so receives are unambiguous.
        slots.push(b.irecv_ctx(
            Some(peer as u16),
            CTX_INTERNAL,
            Some(ctag(instance, 2 + peer as u16)),
            len,
        ));
        slots.push(b.isend_ctx(peer, CTX_INTERNAL, ctag(instance, 2 + me as u16), len));
    }
    b.wait_all(slots);
}

#[cfg(test)]
mod tests {
    /// `mpiq_nic::coll` duplicates the internal-context constant because
    /// it cannot depend on this crate; pin the two together.
    #[test]
    fn coll_ctx_matches_ctx_internal() {
        assert_eq!(mpiq_nic::coll::COLL_CTX, crate::types::CTX_INTERNAL);
    }
}
