//! A minimal reusable scoped worker pool.
//!
//! The partitioned DES executor advances simulation time in short global
//! windows — often microseconds of wall-clock work each — so spawning a
//! thread per window would drown the speedup in `clone(2)` calls. This
//! pool spawns its workers **once** per run inside a
//! [`std::thread::scope`] (so borrowed, non-`'static` work closures are
//! fine) and then broadcasts one `u64` work plan per round through a
//! [`Barrier`]-synchronized [`AtomicU64`].
//!
//! Protocol per round, driven by the caller's `drive` closure:
//!
//! 1. the driver stores the plan and hits the start barrier (releasing
//!    the workers),
//! 2. every worker (and the driver itself, which doubles as worker 0)
//!    executes `work(worker_index, plan)`,
//! 3. everyone meets at the end barrier; the driver now owns the results
//!    exclusively and can plan the next round.
//!
//! A plan of [`SHUTDOWN`] ends the workers' loops; [`Broadcast::step`]
//! issues it automatically when `drive` returns.
//!
//! Caveat: like any barrier protocol, a panic inside `work` on one
//! thread leaves the others parked at the barrier. The executor treats
//! worker panics as fatal (they indicate a simulation bug), so the
//! process aborts via the propagated panic once the scope unwinds — do
//! not rely on catching panics across a `step`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// Plan value that tells workers to exit their loop.
pub const SHUTDOWN: u64 = u64::MAX;

/// The broadcast channel between the driver and the workers.
pub struct Broadcast {
    start: Barrier,
    done: Barrier,
    plan: AtomicU64,
}

impl Broadcast {
    fn new(parties: usize) -> Broadcast {
        Broadcast {
            start: Barrier::new(parties),
            done: Barrier::new(parties),
            plan: AtomicU64::new(SHUTDOWN),
        }
    }

    /// Run one round: broadcast `plan` to all workers, run `local` as
    /// this thread's share of the round (the driver doubles as worker 0),
    /// and return once every worker has finished the round.
    pub fn step(&self, plan: u64, local: impl FnOnce()) {
        assert_ne!(plan, SHUTDOWN, "u64::MAX is reserved as the shutdown plan");
        self.plan.store(plan, Ordering::Relaxed);
        self.start.wait();
        local();
        self.done.wait();
    }

    fn shutdown(&self) {
        self.plan.store(SHUTDOWN, Ordering::Relaxed);
        self.start.wait();
    }
}

/// Spawn `extra_workers` threads that each loop running
/// `work(worker_index, plan)` per broadcast round (worker indices
/// `1..=extra_workers`; the driver thread is worker 0 and runs its share
/// inside [`Broadcast::step`]). `drive` orchestrates rounds and its
/// return value is passed through.
///
/// With `extra_workers == 0` no threads spawn and `step` degenerates to
/// calling `local` inline — single-threaded callers pay nothing.
pub fn run<R>(
    extra_workers: usize,
    work: impl Fn(usize, u64) + Sync,
    drive: impl FnOnce(&Broadcast) -> R,
) -> R {
    let bc = Broadcast::new(extra_workers + 1);
    let work = &work;
    std::thread::scope(|scope| {
        for w in 1..=extra_workers {
            let bc = &bc;
            scope.spawn(move || loop {
                bc.start.wait();
                let plan = bc.plan.load(Ordering::Relaxed);
                if plan == SHUTDOWN {
                    break;
                }
                work(w, plan);
                bc.done.wait();
            });
        }
        let r = drive(&bc);
        if extra_workers > 0 {
            bc.shutdown();
        }
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_workers_run_every_round() {
        let hits = AtomicUsize::new(0);
        let rounds = 5usize;
        let workers = 3usize; // worker 0 (driver) + 3 spawned
        run(
            workers,
            |_w, plan| {
                assert!(plan < rounds as u64);
                hits.fetch_add(1, Ordering::Relaxed);
            },
            |bc| {
                for r in 0..rounds {
                    bc.step(r as u64, || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            },
        );
        assert_eq!(hits.load(Ordering::Relaxed), rounds * (workers + 1));
    }

    #[test]
    fn zero_extra_workers_runs_inline() {
        let mut n = 0u64;
        run(0, |_, _| unreachable!("no workers spawned"), |bc| {
            bc.step(7, || n += 42);
        });
        assert_eq!(n, 42);
    }

    #[test]
    fn rounds_are_sequentially_consistent() {
        // Each round appends to a per-worker lane; after the run the lanes
        // must hold the exact plan sequence (no round skipped or doubled).
        let lanes: Vec<std::sync::Mutex<Vec<u64>>> =
            (0..4).map(|_| std::sync::Mutex::new(Vec::new())).collect();
        run(
            3,
            |w, plan| lanes[w].lock().unwrap().push(plan),
            |bc| {
                for plan in 10..20u64 {
                    bc.step(plan, || lanes[0].lock().unwrap().push(plan));
                }
            },
        );
        let want: Vec<u64> = (10..20).collect();
        for lane in &lanes {
            assert_eq!(*lane.lock().unwrap(), want);
        }
    }

    #[test]
    fn drive_result_passes_through() {
        let out = run(2, |_, _| {}, |bc| {
            bc.step(1, || {});
            "done"
        });
        assert_eq!(out, "done");
    }
}
