//! Minimal offline shim for the `criterion` crate.
//!
//! Supports the subset this workspace's benches use: `Criterion`,
//! benchmark groups with `sample_size`/`throughput`, `bench_function` /
//! `bench_with_input`, `Bencher::iter` / `iter_batched` /
//! `iter_batched_ref`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of the real crate's statistical machinery it times each
//! routine directly: per-sample iteration counts are calibrated so one
//! sample takes ~1 ms of wall clock, then the median across samples is
//! reported. When invoked with `--test` (as `cargo test --benches`
//! does) every benchmark runs a single iteration as a smoke test.

use std::fmt;
use std::hint::black_box as bb;
use std::time::Instant;

pub use std::hint::black_box;

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How batched inputs are grouped; the shim sizes all batches the same.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state; batches of the full sample size.
    SmallInput,
    /// Large per-iteration state; the shim treats it like `SmallInput`.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Identifier `function_name/parameter` for one benchmark point.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Wall-clock nanoseconds each sample should roughly take.
const TARGET_SAMPLE_NS: f64 = 1_000_000.0;
/// Upper bound on calibrated iterations per sample.
const MAX_ITERS: u64 = 1 << 20;

/// Collects per-iteration timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<f64>,
    sample_count: usize,
    quick: bool,
}

impl Bencher {
    fn new(sample_count: usize, quick: bool) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_count,
            quick,
        }
    }

    /// Time `routine`, called in calibrated batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.quick {
            bb(routine());
            self.samples.push(0.0);
            return;
        }
        let mut iters = 1u64;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..iters {
                bb(routine());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            if elapsed >= TARGET_SAMPLE_NS || iters >= MAX_ITERS {
                break elapsed / iters as f64;
            }
            iters *= 2;
        };
        self.samples.push(per_iter);
        for _ in 1..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters {
                bb(routine());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` over inputs built (untimed) by `setup`, passing
    /// each input by mutable reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        if self.quick {
            let mut input = setup();
            bb(routine(&mut input));
            self.samples.push(0.0);
            return;
        }
        // Calibrate: grow the batch until one timed pass is long enough.
        let mut iters = 1u64;
        let per_iter = loop {
            let mut inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs.iter_mut() {
                bb(routine(input));
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            drop(inputs);
            if elapsed >= TARGET_SAMPLE_NS || iters >= 1 << 14 {
                break elapsed / iters as f64;
            }
            iters *= 2;
        };
        self.samples.push(per_iter);
        for _ in 1..self.sample_count {
            let mut inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs.iter_mut() {
                bb(routine(input));
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Like [`Bencher::iter_batched_ref`] but consumes each input.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut routine = move |input: &mut Option<I>| routine(input.take().expect("input reused"));
        self.iter_batched_ref(move || Some(setup()), &mut routine, size);
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn report(group: Option<&str>, id: &str, samples: &mut [f64], throughput: Option<Throughput>) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_owned(),
    };
    if samples.is_empty() {
        println!("bench {full:<50} (no samples)");
        return;
    }
    if samples.len() == 1 && samples[0] == 0.0 {
        println!("bench {full:<50} ok (test mode)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => fmt_rate(n as f64 / (median / 1e9), "elem"),
        Throughput::Bytes(n) => fmt_rate(n as f64 / (median / 1e9), "B"),
    });
    match rate {
        Some(rate) => println!(
            "bench {full:<50} {:>12}/iter  [{} .. {}]  {rate}",
            fmt_time(median),
            fmt_time(min),
            fmt_time(max),
        ),
        None => println!(
            "bench {full:<50} {:>12}/iter  [{} .. {}]",
            fmt_time(median),
            fmt_time(min),
            fmt_time(max),
        ),
    }
}

/// Benchmark driver; entry point created by `criterion_main!`.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` runs bench binaries with `--test`:
        // execute one iteration per benchmark as a smoke test.
        let quick = std::env::args().any(|a| a == "--test");
        Criterion { quick }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_count: 20,
            throughput: None,
        }
    }

    /// Benchmark a single routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(20, self.quick);
        f(&mut b);
        report(None, &id.id, &mut b.samples, None);
        self
    }
}

/// A set of related benchmarks sharing sample-size and throughput
/// settings; see [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_count: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timing samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a routine under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_count, self.criterion.quick);
        f(&mut b);
        report(Some(&self.name), &id.id, &mut b.samples, self.throughput);
        self
    }

    /// Benchmark a routine parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_count, self.criterion.quick);
        f(&mut b, input);
        report(Some(&self.name), &id.id, &mut b.samples, self.throughput);
        self
    }

    /// End the group (all reporting already happened inline).
    pub fn finish(self) {}
}

/// Define a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut b = Bencher::new(5, false);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn batched_ref_gets_fresh_inputs() {
        let mut b = Bencher::new(3, false);
        b.iter_batched_ref(
            || vec![1u32, 2, 3],
            |v| {
                // Routine may mutate; every call must see a fresh input.
                assert_eq!(v.len(), 3);
                v.clear();
            },
            BatchSize::SmallInput,
        );
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn quick_mode_runs_once() {
        let mut calls = 0u32;
        let mut b = Bencher::new(50, true);
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn group_chain_compiles_and_reports() {
        let mut c = Criterion { quick: true };
        let mut g = c.benchmark_group("shim_selftest");
        g.throughput(Throughput::Elements(4));
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("noop", 4usize), &4usize, |b, &n| {
            b.iter(|| bb(n * 2));
        });
        g.bench_function("plain", |b| b.iter(|| bb(1 + 1)));
        g.finish();
        c.bench_function("top_level", |b| b.iter(|| bb(3 * 3)));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(12.34), "12.3 ns");
        assert_eq!(fmt_time(12_340.0), "12.34 µs");
        assert_eq!(fmt_time(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_rate(2.5e6, "elem"), "2.50 Melem/s");
    }
}
