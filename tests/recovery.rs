//! Recovery, end to end: restart/rejoin with incarnation epochs,
//! fault-tolerant agreement, and communicator shrink.
//!
//! `fault_domains.rs` proves failures are *detected* (typed errors
//! instead of hangs). This suite proves the cluster *recovers*:
//!
//! * **restart/rejoin** — a crashed node comes back under a new
//!   incarnation epoch, survivors fence its stale link state (the
//!   reincarnation guard), and retried sends/recvs plus a fresh
//!   offload-path collective all complete across the rebooted rank;
//! * **agreement** — ULFM-shaped `agree` produces one identical
//!   failed-set mask on every survivor even when the rank dies
//!   mid-agreement, and the NIC-offloaded run is equivalent to the
//!   host fallback;
//! * **shrink** — survivors rebuild a dense rank mapping locally from
//!   the agreed mask, and barrier/bcast/allreduce over the shrunk
//!   communicator complete on both the hub and the switched fat tree;
//! * **determinism** — the whole recovery pipeline is bit-identical at
//!   1/2/4/8 worker threads, and the recovery machinery is free when
//!   unarmed (`Cluster::new` ≡ `Cluster::with_recovery` with no
//!   recovery programs, byte for byte);
//! * **detector tuning** — the same outage is fatal under a strict
//!   failure detector and survivable under a lenient one
//!   (`ClusterConfig::builder(..).failure_detector(..)`), pinning the
//!   false-positive regression;
//! * **offloaded collectives under flaps** — a mid-plan link flap
//!   resyncs (short) or goes sticky-dead with typed failures (long),
//!   identically on the offload and host-fallback paths.

use mpiq::dessim::{FaultSchedule, Time};
use mpiq::mpi::script::{mark_log, status_log, StatusLog};
use mpiq::mpi::{AppProgram, Cluster, ClusterConfig, MpiStatus, Script};
use mpiq::net::Topology;
use mpiq::nic::{CollOp, NicConfig};

const FAT_TREE: Topology = Topology::FatTree { down: 4, up: 2 };

fn nic(offload: bool) -> NicConfig {
    let mut cfg = NicConfig::baseline();
    cfg.coll_offload = offload;
    cfg
}

fn statuses_of(log: &StatusLog) -> Vec<(u32, MpiStatus)> {
    log.borrow().clone()
}

fn find(statuses: &[(u32, MpiStatus)], id: u32) -> MpiStatus {
    statuses
        .iter()
        .find(|(i, _)| *i == id)
        .unwrap_or_else(|| panic!("status {id} not recorded: {statuses:?}"))
        .1
}

// ---------------------------------------------------------------------
// Restart / rejoin
// ---------------------------------------------------------------------

/// The full rejoin story on 3 ranks: rank 2 crashes at 40us and
/// restarts at 200us under incarnation epoch 1. Survivors see it
/// declared dead (keepalive at 140us), keep retrying with backoff, and
/// succeed once the scheduled `PeerRestart` fences the old epoch and
/// revives the peer. The rebooted rank runs a staged recovery program —
/// new sends, new recvs, and an offload-path allreduce aligned to the
/// survivors' instance counters — and everything completes.
///
/// Epoch fencing is asserted through the `fault.epoch_fences` counters
/// (the frame-level ghost-drop behavior is pinned by the
/// `reincarnation_fence_resyncs_window_and_drops_ghosts` regression in
/// `mpiq-nic::reliability`).
#[test]
fn restarted_node_rejoins_and_completes_new_work() {
    const RANKS: u32 = 3;
    const DEAD: u32 = 2;
    let sched: FaultSchedule = "crash@40us:node=2,mttr=160us".parse().expect("spec grammar");

    let mut logs = Vec::new();
    let mut programs: Vec<Box<dyn AppProgram>> = Vec::new();
    let mut recovery: Vec<Option<Box<dyn AppProgram>>> = Vec::new();
    for me in 0..RANKS {
        let log = status_log();
        let mut b = Script::builder();
        // Everyone joins a pre-crash collective (consumes instance 0)
        // and an all-to-all exchange, all finished well before 40us.
        b.coll_barrier();
        let mut pending = Vec::new();
        let mut recvs = Vec::new();
        for peer in (0..RANKS).filter(|&p| p != me) {
            let r = b.irecv(Some(peer as u16), Some(100 + peer as u16), 256);
            recvs.push((r, peer));
            pending.push(r);
            pending.push(b.isend(peer, 100 + me as u16, 256));
        }
        b.wait_all(pending);
        for (r, peer) in recvs {
            b.status(r, me * 100 + peer);
        }
        if me != DEAD {
            // Sleep past the 140us dead-declaration so the first retry
            // attempt fails *typed* (an eager send to a silently-down
            // node completes fire-and-forget and would mask the loss).
            b.sleep(Time::from_us(150));
            b.retry_send(DEAD, 200 + me as u16, 256, 8, Time::from_us(30), Some(20));
            b.retry_recv(DEAD as u16, 300, 256, 8, Time::from_us(30), Some(21));
            // Fresh post-rejoin collective, instance 1.
            b.coll(CollOp::Allreduce, 0, 64, Some(22));
        }
        programs.push(Box::new(b.build(mark_log()).with_status_log(log.clone())));
        logs.push(log);

        if me == DEAD {
            // Staged recovery: greet both survivors, collect their
            // retried sends, then join their allreduce. The instance
            // base aligns this script's collective slots with the
            // survivors' (they already consumed instance 0 pre-crash).
            let rlog = status_log();
            let mut rb = Script::builder();
            for peer in (0..RANKS).filter(|&p| p != DEAD) {
                rb.isend(peer, 300, 256);
            }
            let mut rr = Vec::new();
            for peer in (0..RANKS).filter(|&p| p != DEAD) {
                let r = rb.irecv(Some(peer as u16), Some(200 + peer as u16), 256);
                rb.wait(r);
                rr.push((r, peer));
            }
            for (r, peer) in rr {
                rb.status(r, 10 + peer);
            }
            rb.coll(CollOp::Allreduce, 0, 64, Some(22));
            logs.push(rlog.clone());
            recovery.push(Some(Box::new(
                rb.build(mark_log())
                    .with_status_log(rlog)
                    .with_instance_base(1, 0),
            )));
        } else {
            recovery.push(None);
        }
    }

    let cfg = ClusterConfig::builder(nic(true)).fault_schedule(sched).build();
    let mut c = Cluster::with_recovery(cfg, programs, recovery);
    c.run_watched(Time::from_ms(50))
        .unwrap_or_else(|d| panic!("rejoin run stalled: {d}"));

    // Survivors: pre-crash exchange clean, retries concluded in
    // success, post-rejoin allreduce clean (no typed failure — the
    // rebooted rank participated).
    for me in (0..RANKS).filter(|&r| r != DEAD) {
        let st = statuses_of(&logs[me as usize]);
        for peer in (0..RANKS).filter(|&p| p != me) {
            let s = find(&st, me * 100 + peer);
            assert_eq!(s.error, None, "rank {me}: pre-crash recv from {peer}");
            assert_eq!(s.len, 256);
        }
        for id in [20, 21] {
            let s = find(&st, id);
            assert_eq!(s.error, None, "rank {me}: retry op {id} must end in success");
            assert!(!s.cancelled);
        }
        let s = find(&st, 22);
        assert_eq!(s.error, None, "rank {me}: post-rejoin allreduce failed: {s:?}");
    }
    // The rebooted rank's recovery program got both retried sends.
    let rst = statuses_of(&logs[RANKS as usize]);
    for peer in (0..RANKS).filter(|&p| p != DEAD) {
        let s = find(&rst, 10 + peer);
        assert_eq!(s.error, None, "recovered rank: recv from {peer}");
        assert_eq!(s.len, 256);
    }
    assert_eq!(find(&rst, 22).error, None, "recovered rank: allreduce");

    let stats = c.stats();
    for p in ["nic0", "nic1"] {
        assert!(
            stats.get(&format!("{p}.fault.peers_failed")) >= 1,
            "{p} never declared the crashed peer dead"
        );
        assert!(
            stats.get(&format!("{p}.fault.peers_revived")) >= 1,
            "{p} never revived the restarted peer"
        );
        assert!(
            stats.get(&format!("{p}.fault.epoch_fences")) >= 1,
            "{p} never fenced the old incarnation's link state"
        );
    }
    assert_eq!(
        stats.get("nic2.fault.incarnation"),
        1,
        "the restarted NIC must run under epoch 1"
    );
    assert_eq!(stats.get("nic2.fault.crashed"), 1);
}

// ---------------------------------------------------------------------
// Agreement
// ---------------------------------------------------------------------

/// Run the agree workload (rank 3 dies mid-agreement) and return every
/// survivor's recorded agree status.
fn agree_run(offload: bool, threads: usize) -> Vec<MpiStatus> {
    const RANKS: u32 = 4;
    let sched: FaultSchedule = "crash@20us:node=3".parse().expect("spec grammar");
    let mut logs = Vec::new();
    let mut programs: Vec<Box<dyn AppProgram>> = Vec::new();
    for me in 0..RANKS {
        let log = status_log();
        let mut b = Script::builder();
        // Survivors enter agreement at 10us; rank 3 is still asleep when
        // the crash lands at 20us, so the survivors are provably parked
        // mid-protocol (sweep 1 cannot pass without rank 3's frames).
        b.sleep(if me == 3 {
            Time::from_us(30)
        } else {
            Time::from_us(10)
        });
        b.agree(Some(0));
        programs.push(Box::new(b.build(mark_log()).with_status_log(log.clone())));
        logs.push(log);
    }
    let cfg = ClusterConfig::builder(nic(offload))
        .fault_schedule(sched)
        .parallelism(threads)
        .build();
    let mut c = Cluster::new(cfg, programs);
    c.run_watched(Time::from_ms(50))
        .unwrap_or_else(|d| panic!("agree run (offload={offload}) stalled: {d}"));
    if offload {
        assert!(
            c.nic(0).firmware().stats().coll_offloaded > 0,
            "offload run never offloaded an agreement sweep"
        );
    }
    (0..3).map(|r| find(&statuses_of(&logs[r]), 0)).collect()
}

/// A crash in the middle of an agreement still yields *one* failed-set:
/// every survivor's agreed mask is identical (exactly {rank 3}), with
/// no typed error — failures are agreement's output, not a fault. And
/// the NIC-offloaded run returns byte-identical statuses to the host
/// fallback.
#[test]
fn agree_is_consistent_under_mid_agreement_crash_and_offload_equivalent() {
    let off = agree_run(true, 0);
    let host = agree_run(false, 0);
    for (r, s) in off.iter().enumerate() {
        assert_eq!(s.len, 1 << 3, "rank {r}: agreed mask must be exactly {{3}}");
        assert_eq!(s.error, None, "rank {r}: agreement itself must not fail");
        assert!(!s.cancelled);
    }
    assert!(
        off.windows(2).all(|w| w[0].len == w[1].len),
        "survivors disagree on the failed set: {off:?}"
    );
    assert_eq!(off, host, "offloaded agreement differs from host fallback");
}

// ---------------------------------------------------------------------
// Shrink
// ---------------------------------------------------------------------

/// Build the agree→shrink→collectives-over-survivors workload.
fn shrink_programs(ranks: u32, logs: &mut Vec<StatusLog>) -> Vec<Box<dyn AppProgram>> {
    (0..ranks)
        .map(|me| {
            let log = status_log();
            let mut b = Script::builder();
            // The doomed last rank (crash at 20us) sleeps through the
            // survivors' entry into agreement — see `agree_run`.
            b.sleep(if me == ranks - 1 {
                Time::from_us(30)
            } else {
                Time::from_us(10)
            });
            b.agree(Some(0));
            b.shrink(Some(1));
            b.shrunk_coll(CollOp::Barrier, 0, 0, Some(2));
            b.shrunk_coll(CollOp::Bcast, 0, 128, Some(3));
            b.shrunk_coll(CollOp::Allreduce, 0, 64, Some(4));
            logs.push(log.clone());
            Box::new(b.build(mark_log()).with_status_log(log)) as Box<dyn AppProgram>
        })
        .collect()
}

/// After agree + shrink, barrier/bcast/allreduce over the surviving
/// ranks complete cleanly on the hub crossbar *and* on the switched
/// fat tree. The shrink itself reports the dense mapping: survivor
/// count 3, new ranks 0..3 in world-rank order.
#[test]
fn post_shrink_collectives_complete_on_hub_and_fat_tree() {
    const RANKS: u32 = 4;
    const DEAD: u32 = 3;
    for (topology, threads) in [(Topology::Hub, 0), (FAT_TREE, 2)] {
        let sched: FaultSchedule = "crash@20us:node=3".parse().expect("spec grammar");
        let mut logs = Vec::new();
        let programs = shrink_programs(RANKS, &mut logs);
        let cfg = ClusterConfig::builder(nic(false))
            .fault_schedule(sched)
            .topology(topology)
            .parallelism(threads)
            .build();
        let mut c = Cluster::new(cfg, programs);
        c.run_watched(Time::from_ms(100))
            .unwrap_or_else(|d| panic!("{topology:?}: stalled: {d}"));
        for me in (0..RANKS).filter(|&r| r != DEAD) {
            let st = statuses_of(&logs[me as usize]);
            let shrink = find(&st, 1);
            assert_eq!(shrink.len, 3, "{topology:?} rank {me}: survivor count");
            assert_eq!(
                shrink.source, me as u16,
                "{topology:?} rank {me}: dense new rank (world order)"
            );
            assert!(!shrink.cancelled, "{topology:?} rank {me}: survivor shrunk out");
            for id in [2, 3, 4] {
                let s = find(&st, id);
                assert_eq!(
                    s.error, None,
                    "{topology:?} rank {me}: post-shrink collective {id} failed: {s:?}"
                );
                assert!(!s.cancelled);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

/// The whole recovery pipeline — crash, keepalive detection, agree,
/// shrink, post-shrink collectives, and a scheduled restart of the dead
/// node afterwards — produces byte-identical statistics at every
/// worker-thread count.
#[test]
fn recovery_pipeline_bit_identical_across_threads() {
    let run = |threads: usize| {
        let sched: FaultSchedule = "crash@20us:node=3,mttr=300us".parse().expect("spec grammar");
        let mut logs = Vec::new();
        let programs = shrink_programs(4, &mut logs);
        let recovery = programs.iter().map(|_| None).collect();
        let cfg = ClusterConfig::builder(nic(true))
            .fault_schedule(sched)
            .parallelism(threads)
            .build();
        let mut c = Cluster::with_recovery(cfg, programs, recovery);
        c.run_watched(Time::from_ms(50))
            .unwrap_or_else(|d| panic!("threads={threads}: stalled: {d}"));
        (
            c.stats().to_json(),
            logs.iter().map(statuses_of).collect::<Vec<_>>(),
        )
    };
    let (base_stats, base_statuses) = run(1);
    for threads in [2, 4, 8] {
        let (stats, statuses) = run(threads);
        assert_eq!(stats, base_stats, "stats diverged at {threads} threads");
        assert_eq!(statuses, base_statuses, "statuses diverged at {threads} threads");
    }
}

/// Unarmed, the recovery machinery is free: a fault-free workload built
/// through `Cluster::with_recovery` (all slots `None`) is byte-identical
/// to the same workload through `Cluster::new` — the guarantee that
/// keeps the fig5/fig6 goldens (which use `Cluster::new` with no
/// schedule) untouched by this subsystem.
#[test]
fn unarmed_recovery_machinery_is_byte_identical_to_plain_cluster() {
    let build_programs = || -> Vec<Box<dyn AppProgram>> {
        (0..4u32)
            .map(|me| {
                let mut b = Script::builder();
                b.coll_barrier();
                let r = b.irecv(Some(((me + 3) % 4) as u16), Some(7), 512);
                b.isend((me + 1) % 4, 7, 512);
                b.wait(r);
                b.coll(CollOp::Allreduce, 0, 64, None);
                Box::new(b.build(mark_log())) as Box<dyn AppProgram>
            })
            .collect()
    };
    let cfg = || ClusterConfig::builder(nic(true)).seed(5).build();

    let mut plain = Cluster::new(cfg(), build_programs());
    plain.run();
    let mut staged = Cluster::with_recovery(
        cfg(),
        build_programs(),
        (0..4).map(|_| None).collect(),
    );
    staged.run();
    assert_eq!(
        plain.stats().to_json(),
        staged.stats().to_json(),
        "recovery plumbing changed a fault-free run"
    );
}

// ---------------------------------------------------------------------
// Failure-detector tuning (satellite: configurable thresholds)
// ---------------------------------------------------------------------

/// Two-rank traffic across a 150us link outage, under a configurable
/// failure detector. Returns `(cluster, rank-0 recv statuses)`.
fn detector_run(keepalive: Time, retry_budget: u32) -> (Cluster, Vec<(u32, MpiStatus)>) {
    let sched: FaultSchedule = "flap@10us:edge=0-1,down=150us".parse().expect("spec grammar");
    let mut logs = Vec::new();
    let mut programs: Vec<Box<dyn AppProgram>> = Vec::new();
    for me in 0..2u32 {
        let peer = 1 - me;
        let log = status_log();
        let mut b = Script::builder();
        let r0 = b.irecv(Some(peer as u16), Some(100), 512);
        b.isend(peer, 100, 512);
        b.wait(r0);
        b.sleep(Time::from_us(20));
        let mut pending = Vec::new();
        let mut recvs = vec![(r0, 0u16)];
        for i in 1..4u16 {
            let r = b.irecv(Some(peer as u16), Some(100 + i), 512);
            recvs.push((r, i));
            pending.push(r);
            pending.push(b.isend(peer, 100 + i, 512));
        }
        b.wait_all(pending);
        for (r, i) in recvs {
            b.status(r, i as u32);
        }
        programs.push(Box::new(b.build(mark_log()).with_status_log(log.clone())));
        logs.push(log);
    }
    let cfg = ClusterConfig::builder(NicConfig::baseline())
        .fault_schedule(sched)
        .failure_detector(keepalive, retry_budget)
        .build();
    let mut c = Cluster::new(cfg, programs);
    c.run_watched(Time::from_ms(100))
        .unwrap_or_else(|d| panic!("detector run stalled: {d}"));
    let statuses = statuses_of(&logs[0]);
    (c, statuses)
}

/// The false-positive regression: the *same* 150us outage that a
/// strict detector (4-retransmit budget, exhausted in ~75us) escalates
/// to a dead link and typed failures is ridden out by a lenient
/// detector (64-retransmit budget) — the slow-but-alive peer is never
/// declared dead and every message is delivered after the link heals.
#[test]
fn lenient_detector_tolerates_outage_a_strict_one_calls_fatal() {
    let (strict, strict_st) = detector_run(Time::from_us(100), 4);
    let stats = strict.stats();
    assert!(
        stats.sum_prefix("nic0.link.links_dead") > 0,
        "strict detector never tripped: the regression pair is vacuous"
    );
    assert!(
        strict_st.iter().any(|(_, s)| s.rank_failed()),
        "strict detector produced no typed failure: {strict_st:?}"
    );

    let (lenient, lenient_st) = detector_run(Time::from_us(500), 64);
    let stats = lenient.stats();
    assert!(
        stats.sum_prefix("net.sched.edge_drops") > 0,
        "the flap never bit: test is vacuous"
    );
    for p in ["nic0", "nic1"] {
        assert_eq!(
            stats.sum_prefix(&format!("{p}.link.links_dead")),
            0,
            "{p}: lenient detector falsely declared the link dead"
        );
        assert_eq!(
            stats.sum_prefix(&format!("{p}.fault.peers_failed")),
            0,
            "{p}: lenient detector falsely declared the peer dead"
        );
    }
    for (i, s) in &lenient_st {
        assert_eq!(s.error, None, "recv {i} must succeed after resync");
        assert_eq!(s.len, 512);
    }
}

// ---------------------------------------------------------------------
// Offloaded collectives under link flaps (satellite)
// ---------------------------------------------------------------------

/// Offloaded collective sequence with a flap on edge 0-1 starting at
/// 10us. Ranks 0 and 1 first exchange one point-to-point message across
/// the flapped edge: link death is discovered by the *transmitter*
/// (retry-budget exhaustion), and a collective plan parks each endpoint
/// in a recv before it ever transmits on the edge — in-flight
/// application traffic is what lets both sides convict the link, which
/// is exactly the realistic failure story. Returns each rank's recorded
/// statuses.
fn flap_coll_run(offload: bool, down_for: &str) -> (Cluster, Vec<Vec<(u32, MpiStatus)>>) {
    const RANKS: u32 = 4;
    let sched: FaultSchedule = format!("flap@10us:edge=0-1,down={down_for}")
        .parse()
        .expect("spec grammar");
    let mut logs = Vec::new();
    let mut programs: Vec<Box<dyn AppProgram>> = Vec::new();
    for me in 0..RANKS {
        let log = status_log();
        let mut b = Script::builder();
        b.sleep(Time::from_us(15));
        if me < 2 {
            let peer = 1 - me;
            let r = b.irecv(Some(peer as u16), Some(900 + peer as u16), 256);
            b.isend(peer, 900 + me as u16, 256);
            b.wait(r);
            b.status(r, 10);
        }
        b.coll(CollOp::Barrier, 0, 0, Some(0));
        b.coll(CollOp::Allreduce, 0, 64, Some(1));
        programs.push(Box::new(b.build(mark_log()).with_status_log(log.clone())));
        logs.push(log);
    }
    let cfg = ClusterConfig::builder(nic(offload)).fault_schedule(sched).build();
    let mut c = Cluster::new(cfg, programs);
    c.run_watched(Time::from_ms(100))
        .unwrap_or_else(|d| panic!("flap-coll (offload={offload}, {down_for}): stalled: {d}"));
    let statuses = logs.iter().map(statuses_of).collect();
    (c, statuses)
}

/// A flap shorter than the retry budget, landing mid-plan: the
/// offloaded collective rides it out through go-back-N resync — every
/// rank's statuses are clean, no link dies, and the host-fallback run
/// returns identical statuses.
#[test]
fn offloaded_collective_rides_out_short_flap() {
    let (c, off) = flap_coll_run(true, "60us");
    let stats = c.stats();
    assert!(
        c.nic(0).firmware().stats().coll_offloaded > 0,
        "nothing was offloaded: test is vacuous"
    );
    assert_eq!(stats.sum_prefix("nic0.link.links_dead"), 0);
    for (r, st) in off.iter().enumerate() {
        for id in [0, 1] {
            let s = find(st, id);
            assert_eq!(s.error, None, "rank {r}: collective {id} under short flap");
        }
    }
    let (_, host) = flap_coll_run(false, "60us");
    assert_eq!(off, host, "short-flap offload differs from host fallback");
}

/// A flap longer than the retry budget: the 0-1 link goes sticky-dead
/// mid-plan; ranks 0 and 1 finish their collectives with typed
/// `RankFailed` while ranks 2 and 3 (whose tree edges avoid the dead
/// link) stay clean — and the offload path reports exactly what the
/// host fallback reports.
#[test]
fn offloaded_collective_goes_typed_on_sticky_dead_link() {
    let (c, off) = flap_coll_run(true, "3ms");
    let stats = c.stats();
    assert!(
        stats.sum_prefix("nic0.link.links_dead") > 0,
        "the long flap never exhausted the budget: test is vacuous"
    );
    for r in [0usize, 1] {
        assert!(
            off[r].iter().any(|(_, s)| s.rank_failed()),
            "rank {r} sits on the dead link but saw no typed failure: {:?}",
            off[r]
        );
    }
    for r in [2usize, 3] {
        for id in [0, 1] {
            let s = find(&off[r], id);
            assert_eq!(s.error, None, "rank {r}: tree path avoids the dead link");
        }
    }
    let (_, host) = flap_coll_run(false, "3ms");
    assert_eq!(off, host, "sticky-dead offload differs from host fallback");
}
