//! Clock-domain helpers: cycles ↔ picoseconds.
//!
//! The modeled system has several clock domains — a 2 GHz host core, a
//! 500 MHz NIC core, and an ALPU whose clock depends on its configuration —
//! and every hardware model internally counts cycles. `Clock` converts
//! between a domain's cycle counts and kernel [`Time`].

use crate::time::Time;

/// A fixed-frequency clock domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Clock {
    period_ps: u64,
}

impl Clock {
    /// From frequency in hertz. Rounds the period to whole picoseconds
    /// (exact for every frequency used in the paper's configuration).
    pub fn from_hz(hz: u64) -> Clock {
        assert!(hz > 0, "zero-frequency clock");
        Clock {
            period_ps: 1_000_000_000_000 / hz,
        }
    }

    /// From frequency in megahertz.
    pub fn from_mhz(mhz: u64) -> Clock {
        Clock::from_hz(mhz * 1_000_000)
    }

    /// From an explicit period.
    pub fn from_period(period: Time) -> Clock {
        assert!(period > Time::ZERO, "zero-period clock");
        Clock {
            period_ps: period.ps(),
        }
    }

    /// The clock period.
    pub fn period(&self) -> Time {
        Time::from_ps(self.period_ps)
    }

    /// Frequency in MHz (possibly fractional).
    pub fn mhz(&self) -> f64 {
        1e6 / self.period_ps as f64
    }

    /// Duration of `n` cycles.
    pub fn cycles(&self, n: u64) -> Time {
        Time::from_ps(self.period_ps * n)
    }

    /// How many *complete* cycles fit in `t`.
    pub fn cycles_in(&self, t: Time) -> u64 {
        t.ps() / self.period_ps
    }

    /// The first cycle boundary at or after `t` (for aligning work to clock
    /// edges when a request arrives mid-cycle).
    pub fn next_edge(&self, t: Time) -> Time {
        let ps = t.ps();
        let rem = ps % self.period_ps;
        if rem == 0 {
            t
        } else {
            Time::from_ps(ps + (self.period_ps - rem))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clock_domains_are_exact() {
        assert_eq!(Clock::from_hz(2_000_000_000).period(), Time::from_ps(500));
        assert_eq!(Clock::from_mhz(500).period(), Time::from_ps(2_000));
    }

    #[test]
    fn cycle_conversions() {
        let c = Clock::from_mhz(500);
        assert_eq!(c.cycles(7), Time::from_ns(14));
        assert_eq!(c.cycles_in(Time::from_ns(15)), 7); // 7.5 truncates
    }

    #[test]
    fn edge_alignment() {
        let c = Clock::from_mhz(500); // 2 ns period
        assert_eq!(c.next_edge(Time::from_ns(4)), Time::from_ns(4));
        assert_eq!(c.next_edge(Time::from_ns(5)), Time::from_ns(6));
        assert_eq!(c.next_edge(Time::ZERO), Time::ZERO);
    }

    #[test]
    fn mhz_reporting() {
        assert!((Clock::from_mhz(500).mhz() - 500.0).abs() < 1e-9);
    }
}
