//! `mpiq-net` — the network model.
//!
//! The paper's simulation environment uses "a simple network" with a
//! 200 ns wire latency (Table III). This crate provides that: message
//! headers and payloads ([`message`]) and a full-crossbar fabric component
//! ([`fabric`]) that delivers messages after wire latency plus
//! bandwidth-limited serialization, preserving per-(source, destination)
//! ordering — the property MPI's ordering semantics are built on.
//!
//! Beyond the paper's crossbar, the crate also models switched fabrics:
//! [`topo`] plans fat-tree, dragonfly, and 2-D-torus switch graphs with
//! deterministic routing, and [`switch`] is the output-queued switch
//! component the cluster builder instantiates from a plan. Per-node
//! attachment in both hub and switched modes goes through [`port`]'s
//! `FabricPort`.

pub mod fabric;
pub mod message;
pub mod port;
pub mod switch;
pub mod topo;

pub use fabric::{Fabric, NetConfig, WireProfile, PORT_FROM_NIC, PORT_TO_NIC};
pub use message::{LinkState, Message, MsgHeader, MsgKind, NodeId};
pub use port::{wire_ports, FabricPort, PORT_FP_INJECT, PORT_FP_WIRE};
pub use switch::{Switch, PORT_SW_IN};
pub use topo::{RouteStep, TopoPlan, Topology};
