//! Application queue-characterization study (the methodology of refs
//! [8, 9], which motivate the paper): queue depths and traversal work for
//! four application communication patterns, per NIC configuration.

use mpiq_bench::appsim::{run_app, AppPattern};
use mpiq_bench::cli::Cli;
use mpiq_bench::{run_parallel, NicVariant};

fn main() {
    let cli = Cli::parse(
        "appstudy",
        "queue depths and traversal work for four application patterns",
        &[],
    );
    let engine_threads = cli.common.threads;
    let patterns = [
        AppPattern::Stencil2D {
            side: 4,
            iters: 16,
            prepost_depth: 16,
        },
        AppPattern::Wavefront { side: 4, sweeps: 8 },
        AppPattern::MasterWorker {
            workers: 12,
            rounds: 16,
            compute_ns: 4_000,
        },
        AppPattern::Transpose { ranks: 8, rounds: 6 },
    ];

    println!(
        "{:>14} {:>9} | {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "pattern", "config", "max_posted", "avg_posted", "max_unexp", "avg_unexp", "traversed", "runtime_us"
    );
    let work: Vec<(usize, NicVariant)> = (0..patterns.len())
        .flat_map(|p| NicVariant::ALL.map(|v| (p, v)))
        .collect();
    let results = run_parallel(work.clone(), cli.common.sweep_threads, move |&(p, v)| {
        run_app(v.config(), patterns[p], engine_threads)
    });
    for (i, &(p, v)) in work.iter().enumerate() {
        let s = &results[i];
        println!(
            "{:>14} {:>9} | {:>10} {:>10.1} {:>12} {:>12.1} {:>12} {:>12.1}",
            patterns[p].name(),
            v.label(),
            s.max_posted,
            s.avg_posted,
            s.max_unexpected,
            s.avg_unexpected,
            s.traversed,
            s.runtime.as_us_f64()
        );
    }
    eprintln!(
        "\nappstudy: queue depths reach tens-to-hundreds of entries exactly as \
         the motivating studies [8,9] report; the ALPU configurations absorb \
         the traversal work."
    );
}
