//! The published Tables IV/V and side-by-side rendering against the model.

use crate::estimate::estimate;

/// Which ALPU variant a table describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// Table IV: the posted-receives ALPU.
    PostedReceive,
    /// Table V: the unexpected-messages ALPU.
    Unexpected,
}

/// One row of Table IV/V as published.
#[derive(Clone, Copy, Debug)]
pub struct TableRow {
    /// Total cells.
    pub total_cells: usize,
    /// Cells per block.
    pub block_size: usize,
    /// 4-input LUTs reported by the Xilinx tools.
    pub luts: u64,
    /// Flip-flops reported.
    pub ffs: u64,
    /// Slices reported.
    pub slices: u64,
    /// Clock reported, MHz.
    pub mhz: f64,
    /// Match pipeline latency, cycles.
    pub latency: u64,
}

/// The published values of Table IV (posted receives) or Table V
/// (unexpected messages).
pub fn paper_table(variant: Variant) -> Vec<TableRow> {
    let rows: &[(usize, usize, u64, u64, u64, f64, u64)] = match variant {
        Variant::PostedReceive => &[
            (256, 8, 17_372, 28_908, 15_766, 112.5, 7),
            (256, 16, 17_573, 27_656, 15_090, 111.4, 7),
            (256, 32, 18_054, 26_971, 14_742, 100.2, 6),
            (128, 8, 8_687, 14_562, 7_945, 111.5, 7),
            (128, 16, 8_786, 13_897, 7_606, 112.1, 6),
            (128, 32, 9_025, 13_605, 7_431, 100.6, 6),
        ],
        Variant::Unexpected => &[
            (256, 8, 17_339, 19_414, 11_562, 112.1, 7),
            (256, 16, 17_556, 17_490, 10_631, 111.9, 7),
            (256, 32, 18_045, 16_469, 10_350, 100.9, 6),
            (128, 8, 8_672, 9_773, 5_806, 111.2, 7),
            (128, 16, 8_777, 8_771, 5_356, 112.1, 6),
            (128, 32, 9_020, 8_311, 5_215, 100.6, 6),
        ],
    };
    rows.iter()
        .map(
            |&(total_cells, block_size, luts, ffs, slices, mhz, latency)| TableRow {
                total_cells,
                block_size,
                luts,
                ffs,
                slices,
                mhz,
                latency,
            },
        )
        .collect()
}

/// Render one table: the model's estimates beside the published values.
pub fn render_table(variant: Variant) -> String {
    let title = match variant {
        Variant::PostedReceive => "Table IV: Posted Receives ALPU prototypes",
        Variant::Unexpected => "Table V: Unexpected Messages ALPU prototypes",
    };
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(
        "cells block |   LUTs (paper)    FFs (paper)  Slices (paper) |  MHz (paper) | lat (paper)\n",
    );
    out.push_str(&"-".repeat(96));
    out.push('\n');
    for row in paper_table(variant) {
        let e = estimate(variant, row.total_cells, row.block_size);
        out.push_str(&format!(
            "{:5} {:5} | {:6} ({:6})  {:6} ({:6})  {:6} ({:6}) | {:5.1} ({:5.1}) | {:3} ({:3})\n",
            row.total_cells,
            row.block_size,
            e.luts,
            row.luts,
            e.ffs,
            row.ffs,
            e.slices,
            row.slices,
            e.mhz,
            row.mhz,
            e.latency,
            row.latency,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_six_rows_each() {
        assert_eq!(paper_table(Variant::PostedReceive).len(), 6);
        assert_eq!(paper_table(Variant::Unexpected).len(), 6);
    }

    #[test]
    fn render_contains_all_configurations() {
        let t = render_table(Variant::PostedReceive);
        for cells in ["256", "128"] {
            assert!(t.contains(cells));
        }
        assert!(t.contains("Table IV"));
        let t5 = render_table(Variant::Unexpected);
        assert!(t5.contains("Table V"));
    }
}
