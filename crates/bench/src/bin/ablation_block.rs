//! Ablation: ALPU block-size design space (§III-B / §V-D).
//!
//! Block size trades area and clock against pipeline depth: bigger blocks
//! mean fewer inter-block tree levels (6-cycle pipelines) but deeper
//! intra-block muxing (slower clock) and wider space-available scans
//! (more LUTs). This harness combines the FPGA estimator with the
//! pipeline model to report the *effective match service time* for every
//! geometry, on the FPGA and with the paper's conservative 5x ASIC
//! projection.

use mpiq_alpu::PipelineTiming;
use mpiq_bench::cli::Cli;
use mpiq_fpga::{estimate, Variant};

fn main() {
    let _cli = Cli::parse(
        "ablation_block",
        "ALPU block-size design space: area, clock, and match service time",
        &[],
    );
    println!(
        "{:>6} {:>6} | {:>7} {:>7} {:>7} | {:>7} {:>5} | {:>12} {:>12}",
        "cells", "block", "LUTs", "FFs", "slices", "MHz", "lat", "FPGA ns/match", "ASIC ns/match"
    );
    println!("{}", "-".repeat(92));
    for cells in [64usize, 128, 256, 512] {
        for block in [4usize, 8, 16, 32, 64] {
            if block > cells {
                continue;
            }
            let e = estimate(Variant::PostedReceive, cells, block);
            let t = PipelineTiming::for_geometry(cells, block);
            let fpga_ns = t.match_latency as f64 * 1000.0 / e.mhz;
            let asic_ns = t.match_latency as f64 * 1000.0 / e.asic_mhz();
            println!(
                "{:>6} {:>6} | {:>7} {:>7} {:>7} | {:>7.1} {:>5} | {:>12.1} {:>12.1}",
                cells, block, e.luts, e.ffs, e.slices, e.mhz, t.match_latency, fpga_ns, asic_ns
            );
        }
        println!();
    }
    // The sweet spot the paper chose to highlight.
    let best = [(8usize, 16usize), (16, 16), (32, 16)];
    let _ = best;
    eprintln!(
        "ablation_block: block 16 balances the trade — 6-cycle pipelines at the \
         full ~112 MHz FPGA clock for mid-size arrays, without block-32's \
         slow intra-block tree or block-8's register overhead."
    );
}
