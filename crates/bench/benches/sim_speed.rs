//! Whole-stack simulator throughput: how long one experiment point takes
//! on the host. This is what bounds full Fig. 5 / Fig. 6 sweeps.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use mpiq_alpu::{Alpu, AlpuConfig, AlpuKind, Command, Entry, MatchWord, Probe};
use mpiq_bench::{preposted_latency, unexpected_latency, NicVariant, PrepostedPoint, UnexpectedPoint};
use std::hint::black_box;

fn bench_preposted_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_preposted_point");
    g.sample_size(20);
    for (variant, q) in [
        (NicVariant::Baseline, 100usize),
        (NicVariant::Baseline, 400),
        (NicVariant::Alpu256, 400),
    ] {
        g.bench_with_input(
            BenchmarkId::new(variant.label(), q),
            &(variant, q),
            |b, &(v, q)| {
                b.iter(|| {
                    black_box(preposted_latency(
                        v,
                        PrepostedPoint {
                            queue_len: q,
                            fraction: 1.0,
                            msg_size: 0,
                        },
                    ))
                });
            },
        );
    }
    g.finish();
}

fn bench_unexpected_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_unexpected_point");
    g.sample_size(10);
    for (variant, u) in [(NicVariant::Baseline, 200usize), (NicVariant::Alpu128, 200)] {
        g.bench_with_input(
            BenchmarkId::new(variant.label(), u),
            &(variant, u),
            |b, &(v, u)| {
                b.iter(|| {
                    black_box(unexpected_latency(
                        v,
                        UnexpectedPoint {
                            queue_len: u,
                            msg_size: 64,
                        },
                    ))
                });
            },
        );
    }
    g.finish();
}

/// A half-full 256-cell posted-receive ALPU in steady state.
fn prefilled_alpu() -> Alpu {
    let mut alpu = Alpu::new(AlpuConfig::new(256, 8, AlpuKind::PostedReceive));
    alpu.push_command(Command::StartInsert).expect("fifo empty");
    alpu.advance(64);
    assert!(alpu.pop_response().is_some(), "StartAck");
    for tag in 0..128u16 {
        alpu.push_command(Command::Insert(Entry::mpi_recv(1, Some(0), Some(tag), tag as u32)))
            .expect("command fifo drains between pushes");
        alpu.advance(8);
    }
    alpu.push_command(Command::StopInsert).expect("fifo has room");
    alpu.advance(4096); // drain the session fully
    alpu
}

/// The sync-gap workload the two-speed core targets: sparse header
/// arrivals separated by quiescent stretches of `gap` ALPU cycles
/// (500 cycles = 1 us at 500 MHz). `advance` fast-forwards the gaps in
/// O(1); the `tick` variant is the per-cycle baseline it replaced.
fn bench_sync_gap(c: &mut Criterion) {
    const ARRIVALS: u64 = 64;
    let template = prefilled_alpu();
    let mut g = c.benchmark_group("sim_sync_gap");
    g.sample_size(20);
    g.throughput(Throughput::Elements(ARRIVALS));
    for gap in [500u64, 5_000, 50_000] {
        for (label, elide) in [("advance", true), ("tick", false)] {
            g.bench_with_input(
                BenchmarkId::new(label, gap),
                &(gap, elide),
                |b, &(gap, elide)| {
                    b.iter_batched(
                        || template.clone(),
                        |mut alpu| {
                            for i in 0..ARRIVALS {
                                // Tags above the resident range: every probe
                                // walks the full mux tree and misses, so
                                // occupancy stays at steady state.
                                let tag = 200 + (i % 32) as u16;
                                alpu.push_header(Probe::exact(MatchWord::mpi(1, 0, tag)))
                                    .expect("header fifo drained");
                                if elide {
                                    alpu.advance(gap);
                                } else {
                                    for _ in 0..gap {
                                        alpu.tick();
                                    }
                                }
                                while alpu.pop_response().is_some() {}
                            }
                            black_box(alpu.stats().cycles)
                        },
                        BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_preposted_point,
    bench_unexpected_point,
    bench_sync_gap
);
criterion_main!(benches);
