//! Result emission: CSV to stdout/files plus JSON dumps for downstream
//! plotting.

use serde::Serialize;
use std::fmt::Display;
use std::io::Write;
use std::path::Path;

/// Write rows as CSV to any writer. `header` is the comma-joined column
/// list; each row supplies its cells.
pub fn write_csv<W: Write, R: CsvRow>(mut out: W, header: &str, rows: &[R]) -> std::io::Result<()> {
    writeln!(out, "{header}")?;
    for r in rows {
        writeln!(out, "{}", r.csv())?;
    }
    Ok(())
}

/// A row that can render itself as CSV cells.
pub trait CsvRow {
    /// Comma-joined cells for this row.
    fn csv(&self) -> String;
}

/// Serialize rows as pretty JSON into `path` (creating parent dirs).
pub fn write_json<R: Serialize>(path: &Path, rows: &[R]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let f = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(f, rows)?;
    Ok(())
}

/// Join any displayable cells with commas.
pub fn cells<D: Display>(items: &[D]) -> String {
    items
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row(u32, f64);
    impl CsvRow for Row {
        fn csv(&self) -> String {
            format!("{},{}", self.0, self.1)
        }
    }

    #[test]
    fn csv_rendering() {
        let mut buf = Vec::new();
        write_csv(&mut buf, "a,b", &[Row(1, 2.5), Row(3, 4.0)]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "a,b\n1,2.5\n3,4\n");
    }

    #[test]
    fn cells_joins() {
        assert_eq!(cells(&[1, 2, 3]), "1,2,3");
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("mpiq_bench_test");
        let path = dir.join("out.json");
        #[derive(Serialize)]
        struct R {
            x: u32,
        }
        write_json(&path, &[R { x: 1 }, R { x: 2 }]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"x\": 1"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
