//! Events and dynamically typed payloads.

use crate::component::ComponentId;
use crate::time::Time;
use std::any::Any;
use std::fmt;

/// An input port on a component. Pure label; meaning is component-defined.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct InPort(pub u16);

/// An output port on a component. Pure label; wired via
/// [`Simulation::connect`](crate::Simulation::connect).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct OutPort(pub u16);

/// A dynamically typed event payload.
///
/// Components in different crates exchange values without sharing a common
/// payload enum: the sender wraps any `'static` value, the receiver
/// [`downcast`](Payload::downcast)s it back. Wrong-type downcasts return the
/// payload so callers can try other types or fail loudly.
pub struct Payload(Box<dyn Any>);

impl Payload {
    /// Wrap a value.
    pub fn new<T: 'static>(v: T) -> Payload {
        Payload(Box::new(v))
    }

    /// An empty payload for pure "wake up" events.
    pub fn empty() -> Payload {
        Payload::new(())
    }

    /// Recover the concrete value, or get `self` back on type mismatch.
    pub fn downcast<T: 'static>(self) -> Result<Box<T>, Payload> {
        self.0.downcast::<T>().map_err(Payload)
    }

    /// Borrow the concrete value if the type matches.
    pub fn downcast_ref<T: 'static>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }

    /// Does this payload hold a `T`?
    pub fn is<T: 'static>(&self) -> bool {
        self.0.is::<T>()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload(<{:?}>)", (*self.0).type_id())
    }
}

/// A delivered event, handed to [`Component::on_event`](crate::Component::on_event).
#[derive(Debug)]
pub struct Event {
    /// Delivery time (equals `ctx.now()` during handling).
    pub time: Time,
    /// Receiving component.
    pub dst: ComponentId,
    /// Input port the event arrived on.
    pub port: InPort,
    /// The data.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        let p = Payload::new(17u32);
        assert!(p.is::<u32>());
        assert_eq!(p.downcast_ref::<u32>(), Some(&17));
        assert_eq!(*p.downcast::<u32>().unwrap(), 17);
    }

    #[test]
    fn payload_wrong_type_is_recoverable() {
        let p = Payload::new("hello");
        let p = p.downcast::<u32>().unwrap_err();
        assert_eq!(*p.downcast::<&str>().unwrap(), "hello");
    }

    #[test]
    fn empty_payload_is_unit() {
        assert!(Payload::empty().is::<()>());
    }
}
