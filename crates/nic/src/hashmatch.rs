//! Hash-binned posted-receive matching — the software alternative the
//! paper discusses and rejects (§II).
//!
//! "Hash tables can significantly reduce the time needed to find a
//! matching entry, but can also significantly increase the time needed to
//! insert an entry into the list. [...] Hashing is also complicated by the
//! need to support wildcard matching and maintain ordering semantics."
//!
//! This module makes that trade-off measurable. Exact receives (no
//! wildcards) hash by the full {context, source, tag} triplet into bins;
//! wildcard receives cannot be hashed (the implementation has no *a
//! priori* knowledge of which fields senders will match) and live in a
//! side list that every probe must also walk. MPI ordering is preserved
//! by stamping every posted receive with a monotone sequence number and
//! taking the *earliest-posted* match across both structures.
//!
//! The costs the paper calls out appear explicitly:
//!
//! * **insertion** pays hashing plus maintenance of a second structure on
//!   every post — the `insert_visited` addresses the firmware turns into
//!   stores, plus extra integer work;
//! * **wildcard receives degrade lookup back toward a linear scan**: every
//!   probe walks the full wildcard list in addition to its bin;
//! * **removal** (every successful match!) pays a bin scan to unlink.

use crate::queues::Key;
use mpiq_alpu::match_types::{masked_eq, MaskWord, MatchWord};

/// One indexed posted receive.
#[derive(Clone, Copy, Debug)]
struct Slot {
    /// Posting order stamp (global across bins and wildcard list).
    seq: u64,
    /// Queue key of the entry.
    key: Key,
    /// NIC-memory address of the entry (for traversal load traces).
    addr: u64,
    /// Stored match bits.
    word: MatchWord,
    /// Stored wildcard mask (exact entries have `MaskWord::EXACT`).
    mask: MaskWord,
}

/// Outcome of a probe: the winning entry and the memory the walk touched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HashProbe {
    /// Earliest-posted matching entry, if any.
    pub hit: Option<Key>,
    /// Addresses inspected, in walk order (bin first, then wildcards up
    /// to the point the search could stop).
    pub visited: Vec<u64>,
}

/// The hash index over the posted receive queue.
#[derive(Clone, Debug)]
pub struct PostedIndex {
    bins: Vec<Vec<Slot>>,
    wildcards: Vec<Slot>,
    next_seq: u64,
}

impl PostedIndex {
    /// An empty index with `bins` buckets (power of two recommended).
    pub fn new(bins: usize) -> PostedIndex {
        assert!(bins > 0, "hash index needs at least one bin");
        PostedIndex {
            bins: vec![Vec::new(); bins],
            wildcards: Vec::new(),
            next_seq: 0,
        }
    }

    /// Number of buckets.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Entries currently indexed.
    pub fn len(&self) -> usize {
        self.bins.iter().map(Vec::len).sum::<usize>() + self.wildcards.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries on the wildcard side list.
    pub fn wildcard_len(&self) -> usize {
        self.wildcards.len()
    }

    /// The bucket a word hashes to — exposed so the firmware can charge
    /// bin-header memory traffic against a stable address.
    pub fn bin_index(&self, word: MatchWord) -> usize {
        self.bin_of(word)
    }

    #[inline]
    fn bin_of(&self, word: MatchWord) -> usize {
        // Fibonacci hashing over the 42 match bits.
        let h = word.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> (64 - self.bins.len().trailing_zeros().max(1))) as usize % self.bins.len()
    }

    /// Index a newly posted receive. Returns the sequence stamp assigned.
    pub fn insert(&mut self, key: Key, addr: u64, word: MatchWord, mask: MaskWord) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = Slot {
            seq,
            key,
            addr,
            word,
            mask,
        };
        if mask == MaskWord::EXACT {
            let b = self.bin_of(word);
            self.bins[b].push(slot);
        } else {
            self.wildcards.push(slot);
        }
        seq
    }

    /// Probe with an explicit incoming header. The correct match is the
    /// earliest-posted entry that matches — *not* the most specific one
    /// (the ordering-beats-specificity rule of §II).
    pub fn probe(&self, word: MatchWord) -> HashProbe {
        let mut visited = Vec::new();
        // Bin walk: entries are in posting order, so the first match is
        // the earliest exact match.
        let bin = &self.bins[self.bin_of(word)];
        let mut best: Option<(u64, Key)> = None;
        for s in bin {
            visited.push(s.addr);
            if masked_eq(s.word, word, s.mask) {
                best = Some((s.seq, s.key));
                break;
            }
        }
        // Wildcard walk: must continue only until an entry older than the
        // current best could still exist; entries are in posting order, so
        // we can stop at the first wildcard match or once seq exceeds the
        // best exact match.
        for s in &self.wildcards {
            if let Some((seq, _)) = best {
                if s.seq > seq {
                    break;
                }
            }
            visited.push(s.addr);
            if masked_eq(s.word, word, s.mask) {
                best = Some((s.seq, s.key));
                break;
            }
        }
        HashProbe {
            hit: best.map(|(_, k)| k),
            visited,
        }
    }

    /// Unlink a matched entry; returns the addresses touched while
    /// scanning its bin (the removal cost the paper charges against
    /// hashing).
    pub fn remove(&mut self, key: Key) -> Vec<u64> {
        let mut visited = Vec::new();
        for bin in &mut self.bins {
            for (i, s) in bin.iter().enumerate() {
                visited.push(s.addr);
                if s.key == key {
                    bin.remove(i);
                    return visited;
                }
            }
            visited.clear();
        }
        for (i, s) in self.wildcards.iter().enumerate() {
            visited.push(s.addr);
            if s.key == key {
                self.wildcards.remove(i);
                return visited;
            }
        }
        panic!("hash index: removing unknown key {key}");
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        for b in &mut self.bins {
            b.clear();
        }
        self.wildcards.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpiq_alpu::match_types::MaskWord;

    fn word(ctx: u16, src: u16, tag: u16) -> MatchWord {
        MatchWord::mpi(ctx, src, tag)
    }

    #[test]
    fn exact_entries_hash_and_match() {
        let mut ix = PostedIndex::new(16);
        ix.insert(1, 0x100, word(1, 2, 3), MaskWord::EXACT);
        ix.insert(2, 0x200, word(1, 2, 4), MaskWord::EXACT);
        let p = ix.probe(word(1, 2, 4));
        assert_eq!(p.hit, Some(2));
        let p = ix.probe(word(1, 2, 9));
        assert_eq!(p.hit, None);
    }

    #[test]
    fn wildcards_go_to_side_list() {
        let mut ix = PostedIndex::new(16);
        ix.insert(1, 0x100, word(1, 0, 3), MaskWord::ANY_SOURCE);
        assert_eq!(ix.wildcard_len(), 1);
        assert_eq!(ix.probe(word(1, 77, 3)).hit, Some(1));
    }

    #[test]
    fn ordering_beats_specificity() {
        // Older ANY_SOURCE receive must beat a newer exact match — the
        // exact rule that breaks naive hash-first designs (§II).
        let mut ix = PostedIndex::new(16);
        ix.insert(10, 0x100, word(1, 0, 3), MaskWord::ANY_SOURCE); // older
        ix.insert(20, 0x200, word(1, 5, 3), MaskWord::EXACT); // newer
        assert_eq!(ix.probe(word(1, 5, 3)).hit, Some(10));
    }

    #[test]
    fn specificity_wins_when_older() {
        let mut ix = PostedIndex::new(16);
        ix.insert(20, 0x200, word(1, 5, 3), MaskWord::EXACT); // older
        ix.insert(10, 0x100, word(1, 0, 3), MaskWord::ANY_SOURCE); // newer
        assert_eq!(ix.probe(word(1, 5, 3)).hit, Some(20));
    }

    #[test]
    fn bin_walk_is_short_but_wildcards_scan() {
        let mut ix = PostedIndex::new(64);
        for i in 0..64u32 {
            ix.insert(i, 0x1000 + i as u64 * 64, word(1, 9, 100 + i as u16), MaskWord::EXACT);
        }
        for i in 0..32u32 {
            ix.insert(
                1000 + i,
                0x9000 + i as u64 * 64,
                word(2, 0, i as u16),
                MaskWord::ANY_SOURCE,
            );
        }
        // A probe that misses everything walks its (short) bin plus the
        // whole wildcard list.
        let p = ix.probe(word(1, 9, 999));
        assert!(p.visited.len() >= 32, "wildcards must be scanned");
        assert!(
            p.visited.len() < 64,
            "bin walk must not degenerate to a full scan ({} visited)",
            p.visited.len()
        );
    }

    #[test]
    fn wildcard_walk_stops_at_older_exact_match() {
        let mut ix = PostedIndex::new(16);
        ix.insert(1, 0x100, word(1, 5, 3), MaskWord::EXACT); // seq 0
        for i in 0..10u32 {
            ix.insert(100 + i, 0x9000 + i as u64 * 64, word(2, 0, i as u16), MaskWord::ANY_SOURCE);
        }
        let p = ix.probe(word(1, 5, 3));
        assert_eq!(p.hit, Some(1));
        // Only the bin entry; every wildcard is newer than the exact hit.
        assert_eq!(p.visited.len(), 1);
    }

    #[test]
    fn remove_unlinks() {
        let mut ix = PostedIndex::new(8);
        ix.insert(1, 0x100, word(1, 2, 3), MaskWord::EXACT);
        ix.insert(2, 0x200, word(1, 2, 3), MaskWord::EXACT);
        assert_eq!(ix.probe(word(1, 2, 3)).hit, Some(1));
        ix.remove(1);
        assert_eq!(ix.probe(word(1, 2, 3)).hit, Some(2));
        ix.remove(2);
        assert!(ix.is_empty());
    }

    #[test]
    fn first_match_in_bin_wins_among_duplicates() {
        let mut ix = PostedIndex::new(8);
        ix.insert(1, 0x100, word(1, 2, 3), MaskWord::EXACT);
        ix.insert(2, 0x200, word(1, 2, 3), MaskWord::EXACT);
        ix.insert(3, 0x300, word(1, 2, 3), MaskWord::EXACT);
        assert_eq!(ix.probe(word(1, 2, 3)).hit, Some(1));
    }

    #[test]
    fn clear_empties_everything() {
        let mut ix = PostedIndex::new(8);
        ix.insert(1, 0x100, word(1, 2, 3), MaskWord::EXACT);
        ix.insert(2, 0x200, word(1, 0, 3), MaskWord::ANY_SOURCE);
        ix.clear();
        assert!(ix.is_empty());
        assert_eq!(ix.probe(word(1, 2, 3)).hit, None);
    }
}
