//! The RunSpec contract: every bin's flag table parses into a spec that
//! survives the wire (parse → serialize → parse identity), and the cache
//! key honors the determinism contract — seed, code version, and the
//! engine (hub vs sharded) change it; worker counts within one engine
//! do not.

use mpiq_bench::cli::Cli;
use mpiq_bench::spec::{flags, RunSpec};

/// Every bench with representative non-default arguments, as a CLI
/// would receive them.
const CASES: &[(&str, &[&str])] = &[
    ("fig5", &["--config", "alpu128", "--max-queue", "100", "--step", "10", "--fractions", "0.5,1.0", "--sizes", "0,1024", "--seed", "7"]),
    ("fig6", &["--max-queue", "200", "--step", "40", "--sizes", "64", "--threads", "2"]),
    ("gap", &["128"]),
    ("breakeven", &["8", "--sweep-threads", "3"]),
    ("soak", &["--seeds", "2", "--senders", "8", "--msgs", "4", "--size", "256", "--credits", "2", "--max-unexpected", "16", "--eager-buffer", "8192", "--deadline-ms", "250", "--faults", "seed=3,drop=0.01", "--mtbf-us", "100", "--mttr-us", "20", "--node-mttr-us", "40"]),
    ("scaling", &["--senders", "16", "--msgs", "32", "--size", "512", "--thread-counts", "1,2", "--scenarios", "incast,hetero"]),
    ("collectives", &["--ranks", "16,32", "--ops", "barrier,bcast", "--topos", "fattree", "--modes", "offload,host", "--len", "128", "--iters", "2"]),
    ("appstudy", &[]),
    ("ablation_block", &[]),
    ("ablation_hash", &["--threads", "1"]),
    ("ablation_prefetch", &["--sweep-threads", "2"]),
    ("ablation_threshold", &["--seed", "9"]),
    ("ablation_wildcard", &[]),
];

fn spec_from_args(bench: &'static str, args: &[&str]) -> RunSpec {
    let cli = Cli::try_parse_from(
        bench,
        "test",
        flags(bench),
        args.iter().map(|s| s.to_string()),
    )
    .unwrap_or_else(|e| panic!("{bench}: args failed to parse: {e:?}"));
    RunSpec::from_cli(bench, &cli).unwrap_or_else(|e| panic!("{bench}: {e}"))
}

#[test]
fn every_bench_round_trips_through_json() {
    for &(bench, args) in CASES {
        let spec = spec_from_args(bench, args);
        let json = spec.to_json();
        let back = RunSpec::from_json(&json)
            .unwrap_or_else(|e| panic!("{bench}: serialized spec failed to parse: {e}\n{json}"));
        assert_eq!(spec, back, "{bench}: round trip changed the spec\n{json}");
        // Serialization is canonical: a second trip produces the same bytes.
        assert_eq!(json, back.to_json(), "{bench}: serialization is not canonical");
    }
}

#[test]
fn every_bench_round_trips_with_defaults() {
    for &(bench, _) in CASES {
        let spec = spec_from_args(bench, &[]);
        let back = RunSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back, "{bench}: default spec round trip changed the spec");
    }
}

#[test]
fn cache_key_is_stable_for_identical_submissions() {
    let a = spec_from_args("fig5", &["--max-queue", "50", "--seed", "3"]);
    let b = spec_from_args("fig5", &["--max-queue", "50", "--seed", "3"]);
    assert_eq!(a.cache_key("v1"), b.cache_key("v1"));
}

#[test]
fn cache_key_misses_on_seed_code_version_and_params() {
    let base = spec_from_args("fig5", &["--max-queue", "50", "--seed", "3"]);
    let reseeded = spec_from_args("fig5", &["--max-queue", "50", "--seed", "4"]);
    let resized = spec_from_args("fig5", &["--max-queue", "75", "--seed", "3"]);
    assert_ne!(base.cache_key("v1"), base.cache_key("v2"), "code version must shift the key");
    assert_ne!(base.cache_key("v1"), reseeded.cache_key("v1"), "seed must shift the key");
    assert_ne!(base.cache_key("v1"), resized.cache_key("v1"), "params must shift the key");
}

#[test]
fn cache_key_ignores_worker_counts_within_an_engine() {
    // The determinism contract: within one engine, results are
    // byte-identical at any worker/sweep parallelism, so the counts
    // must not fragment the cache.
    let one = spec_from_args("fig6", &["--max-queue", "100", "--threads", "1"]);
    let eight =
        spec_from_args("fig6", &["--max-queue", "100", "--threads", "8", "--sweep-threads", "4"]);
    assert_ne!(one, eight, "thread flags should still parse into the spec");
    assert_eq!(
        one.cache_key("v1"),
        eight.cache_key("v1"),
        "worker counts must not shift the cache key"
    );
}

#[test]
fn cache_key_splits_the_hub_engine_from_the_sharded_engine() {
    // threads == 0 runs the legacy hub engine, whose output is
    // deterministic but not bit-identical to the sharded engine's
    // (DESIGN.md "Determinism") — the two must never share cached bytes.
    let hub = spec_from_args("fig6", &["--max-queue", "100"]);
    let sharded = spec_from_args("fig6", &["--max-queue", "100", "--threads", "1"]);
    assert_eq!(hub.engine(), "hub");
    assert_eq!(sharded.engine(), "sharded");
    assert_ne!(
        hub.cache_key("v1"),
        sharded.cache_key("v1"),
        "hub and sharded results must occupy distinct cache slots"
    );
    // Collectives never touches the hub engine (threads == 0 maps to 4
    // sharded workers), so its discriminant — and key — is pinned.
    let coll0 = spec_from_args("collectives", &["--ranks", "8"]);
    let coll1 = spec_from_args("collectives", &["--ranks", "8", "--threads", "1"]);
    assert_eq!(coll0.engine(), "sharded");
    assert_eq!(coll0.cache_key("v1"), coll1.cache_key("v1"));
}

#[test]
fn faults_shift_the_cache_key() {
    let clean = spec_from_args("soak", &["--seeds", "1"]);
    let faulty = spec_from_args("soak", &["--seeds", "1", "--faults", "seed=1,drop=0.01"]);
    assert_ne!(clean.cache_key("v1"), faulty.cache_key("v1"));
}
